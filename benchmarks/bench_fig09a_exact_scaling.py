"""Fig. 9a: exact query answering vs. dataset size.

Paper shape: the Coconut-Tree family is fastest for exact search at
every size because the index is contiguous and compact and the
approximate seed is better (more pruning).
"""

from repro.bench import DatasetSpec, print_experiment, run_query_experiment

BASE = DatasetSpec("randomwalk", n_series=10_000, length=128, seed=7)
SIZES = [2_000, 5_000, 10_000]
INDEXES = ["CTree", "CTreeFull", "ADS+", "ADSFull", "R-tree", "R-tree+"]
N_QUERIES = 20


def sweep():
    rows = []
    for n in SIZES:
        rows.extend(
            run_query_experiment(
                INDEXES, BASE.scaled(n), N_QUERIES, mode="exact"
            )
        )
    return rows


def bench_fig09a_exact_query_scaling(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_experiment("Fig. 9a — exact query cost vs data size", rows)
    cost = {(r["index"], r["n_series"]): r["avg_total_s"] for r in rows}
    largest = SIZES[-1]
    # Coconut variants beat the matching ADS variants at scale.
    assert cost[("CTree", largest)] < cost[("ADS+", largest)]
    assert cost[("CTreeFull", largest)] < cost[("ADSFull", largest)]
    # And beat the R-trees.
    assert cost[("CTree", largest)] < cost[("R-tree+", largest)]
    assert cost[("CTreeFull", largest)] < cost[("R-tree", largest)]
