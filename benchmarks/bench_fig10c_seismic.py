"""Fig. 10c: complete workload (construction + exact queries) on the
seismic dataset, for several memory configurations.

Paper shape: same as Fig. 10b — Coconut-Tree wins under constrained
memory in both regimes; seismic data is denser than random walks so
queries visit more data everywhere.
"""

from repro.bench import (
    DatasetSpec,
    print_experiment,
    run_complete_workload,
    run_query_experiment,
)

SPEC = DatasetSpec("seismic", n_series=8_000, length=128, seed=13)
MEMORY_FRACTIONS = [0.5, 0.02]
INDEXES = ["CTree", "ADS+", "CTreeFull", "ADSFull"]
N_QUERIES = 15


def bench_fig10c_seismic_complete(benchmark):
    rows = benchmark.pedantic(
        run_complete_workload,
        args=(INDEXES, SPEC, N_QUERIES, MEMORY_FRACTIONS),
        rounds=1,
        iterations=1,
    )
    print_experiment("Fig. 10c — seismic complete workload", rows)
    cost = {(r["index"], r["memory_frac"]): r["total_s"] for r in rows}
    tight = MEMORY_FRACTIONS[-1]
    assert cost[("CTree", tight)] < cost[("ADS+", tight)]
    assert cost[("CTreeFull", tight)] < cost[("ADSFull", tight)]


def bench_fig10c_real_data_is_harder(benchmark):
    """Sec. 5.3: denser real-like data prunes worse than random walks."""

    def pruning_gap():
        walk_rows = run_query_experiment(
            ["CTree"],
            DatasetSpec("randomwalk", 6_000, 128, seed=13),
            10,
            mode="exact",
        )
        seismic_rows = run_query_experiment(
            ["CTree"], DatasetSpec("seismic", 6_000, 128, seed=13), 10,
            mode="exact",
        )
        return walk_rows + seismic_rows

    rows = benchmark.pedantic(pruning_gap, rounds=1, iterations=1)
    print_experiment("Fig. 10c companion — pruning by dataset", rows)
    # Queries on the denser dataset visit at least as many records.
    assert rows[1]["avg_visited"] >= rows[0]["avg_visited"] * 0.8
