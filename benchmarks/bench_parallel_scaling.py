"""Parallel bulk-loading: build wall-clock vs. worker count.

The paper argues sortable summarizations make construction "scale with
the hardware": summarization is embarrassingly parallel per chunk and
the external sort merges presorted runs from any number of producers.
This benchmark measures that claim directly — CoconutTreeFull built
serially and with 2/4 worker processes over 100k series — and checks
two invariants alongside the timing:

* the index is bit-identical across worker counts (leaf count matches;
  a dedicated test asserts key/boundary equality at small scale), and
* simulated I/O does not change with workers: parallelism reorganizes
  CPU work only.

Speedup depends on the machine: with one worker per otherwise-idle
physical core the summarization phase scales near-linearly (>1.5x at 4
workers); on a single-core host (e.g. a constrained CI container, where
``os.cpu_count() == 1``) process workers cannot beat the serial build
and the measured speedup honestly reports ~1x.  The assertions below
therefore gate on the host's core count.

Run standalone (no pytest-benchmark) with::

    PYTHONPATH=src python benchmarks/bench_parallel_scaling.py [n_series]
"""

import os
import sys

from repro.bench import DatasetSpec, print_experiment, run_parallel_build_sweep

SPEC = DatasetSpec("randomwalk", n_series=100_000, length=128, seed=7)
WORKERS = [1, 2, 4]
INDEX = "CTreeFull"
#: Generous memory budget: the sort stays in memory, so simulated I/O
#: must be *exactly* equal across worker counts (see _check).
MEMORY_FRACTION = 2.0


def _check(rows) -> None:
    by_workers = {row["workers"]: row for row in rows}
    # Identical structure: parallelism must not change the index.
    assert len({row["n_leaves"] for row in rows}) == 1
    # Identical simulated I/O: only CPU work is redistributed.
    assert len({round(row["sim_io_s"], 9) for row in rows}) == 1
    # The speedup gate needs both the cores and enough data for the
    # default 4096-series chunks to keep 4 workers busy; a smoke run
    # at a few thousand series only exercises correctness.
    if (os.cpu_count() or 1) >= 4 and by_workers[4]["n_series"] >= 50_000:
        assert by_workers[4]["speedup"] > 1.5, (
            f"expected >1.5x at 4 workers on a >=4-core host, got "
            f"{by_workers[4]['speedup']:.2f}x"
        )


def bench_parallel_scaling(benchmark):
    rows = benchmark.pedantic(
        run_parallel_build_sweep,
        args=(INDEX, SPEC, WORKERS, MEMORY_FRACTION),
        rounds=1,
        iterations=1,
    )
    print_experiment("parallel build scaling (CTreeFull)", rows)
    _check(rows)


def main(argv: list[str]) -> int:
    spec = SPEC.scaled(int(argv[1])) if len(argv) > 1 else SPEC
    rows = run_parallel_build_sweep(INDEX, spec, WORKERS, MEMORY_FRACTION)
    print_experiment(
        f"parallel build scaling ({INDEX}, {spec.n_series} series, "
        f"{os.cpu_count()} cores)",
        rows,
    )
    _check(rows)
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
