"""Fig. 8d: materialized construction vs. dataset size, fixed memory.

Paper shape: with data small relative to memory, Coconut-Tree-Full and
ADSFull are comparable; as data grows past memory, ADSFull's random
I/Os dominate and Coconut-Tree-Full pulls ahead.
"""

from repro.bench import DatasetSpec, print_experiment, run_scaling_sweep

SPEC = DatasetSpec("randomwalk", n_series=12_000, length=128, seed=7)
SIZES = [1_000, 4_000, 12_000]
MEMORY_BYTES = 1_000 * 128 * 4 * 2  # fits the smallest dataset twice


def bench_fig08d_scaling_materialized(benchmark):
    rows = benchmark.pedantic(
        run_scaling_sweep,
        args=(["CTreeFull", "ADSFull"], SPEC, SIZES, MEMORY_BYTES),
        rounds=1,
        iterations=1,
    )
    print_experiment("Fig. 8d — materialized construction vs data size", rows)
    cost = {(r["index"], r["n_series"]): r["total_s"] for r in rows}
    # Small data (fits in memory): the two are within a modest factor.
    assert cost[("ADSFull", SIZES[0])] < 20 * cost[("CTreeFull", SIZES[0])]
    # Large data: Coconut wins and the gap grows with scale.
    assert cost[("CTreeFull", SIZES[-1])] < cost[("ADSFull", SIZES[-1])]
    gap_small = cost[("ADSFull", SIZES[0])] / cost[("CTreeFull", SIZES[0])]
    gap_large = cost[("ADSFull", SIZES[-1])] / cost[("CTreeFull", SIZES[-1])]
    assert gap_large > gap_small
