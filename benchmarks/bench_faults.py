"""Fault-injection layer: disabled-hook overhead + recovery smoke.

The robustness PR threads a ``FaultyDevice`` seam under every page
store, shard and pool so tests can inject transient/permanent errors,
torn writes, bit flips and crashes deterministically
(``docs/robustness.md``).  Production deployments keep the wrapper
with ``plan=None`` — a pure forwarder — so the seam must be close to
free.  This benchmark measures and *asserts* that contract:

* ``overhead`` cells run the headline skip-sequential gather bare vs
  through ``FaultyDevice(plan=None)`` on both page stores; fetched
  records, classified ``DiskStats`` and head positions must be
  bit-identical (the harness raises on any violation);
* at the headline configuration (>= 200k series, the regime where the
  gather itself is cheap and per-op dispatch would show) the
  disabled hook must cost **< 5%** wall clock, **on a host with >= 4
  cores** (small/noisy CI boxes stay ungated and report honest
  numbers);
* ``recovery`` cells run seeded crash/recover cycles on both stores;
  the recovered index must answer exactly like a fault-free oracle
  rebuilt from the acknowledged batches.

Run standalone with::

    PYTHONPATH=src python benchmarks/bench_faults.py \
        [--n N ...] [--headline-n N] [--fetch-fraction F] \
        [--repeats R] [--recovery-seeds S] [--json PATH]
"""

import argparse
import json
import os
import sys

from repro.bench import print_experiment
from repro.bench.harness import run_fault_overhead_sweep

#: Headline configuration the < 5% disabled-hook gate applies to.
GATE_SERIES = 200_000
GATE_OVERHEAD = 1.05
GATE_MIN_CORES = 4

COLUMNS = [
    "workload", "store", "n_series", "cores",
    "bare_s", "hooked_s", "overhead", "identical", "io_identical",
]


def check(rows: list) -> None:
    """Assert the equivalence contract and the headline overhead gate."""
    for row in rows:
        assert row["identical"], f"answer-equivalence violation: {row}"
        assert row["io_identical"], f"I/O-equivalence violation: {row}"
    recoveries = [row for row in rows if row["workload"] == "recovery"]
    assert recoveries, "no recovery cells ran"
    cores = os.cpu_count() or 1
    if cores < GATE_MIN_CORES:
        return
    gated = [
        row
        for row in rows
        if row["workload"] == "overhead" and row["n_series"] >= GATE_SERIES
    ]
    for row in gated:
        assert row["overhead"] <= GATE_OVERHEAD, (
            f"expected the disabled fault hook to cost < "
            f"{(GATE_OVERHEAD - 1) * 100:.0f}% on the {row['store']} store "
            f"at {row['n_series']} series on {cores} cores, got "
            f"{(row['overhead'] - 1) * 100:.1f}%"
        )


def main(argv: list) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, nargs="+", default=[50_000])
    parser.add_argument("--length", type=int, default=128)
    parser.add_argument("--fetch-fraction", type=float, default=0.3)
    parser.add_argument("--headline-n", type=int, default=GATE_SERIES,
                        help="series count of the gated headline cell "
                             "(0 disables the headline sweep)")
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--recovery-seeds", type=int, default=4)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--json", default="",
        help="write rows as JSON to this path ('-' for stdout)",
    )
    args = parser.parse_args(argv[1:])
    n_list = list(args.n)
    if args.headline_n and args.headline_n not in n_list:
        n_list.append(args.headline_n)
    rows = run_fault_overhead_sweep(
        n_list,
        length=args.length,
        fetch_fraction=args.fetch_fraction,
        seed=args.seed,
        repeats=args.repeats,
        recovery_seeds=args.recovery_seeds,
    )
    print_experiment(
        "fault layer: disabled-hook overhead + recovery smoke",
        rows,
        columns=COLUMNS,
    )
    check(rows)
    if args.json:
        payload = json.dumps(
            {
                "benchmark": "fault_layer_overhead",
                "config": {
                    "n_series": n_list,
                    "length": args.length,
                    "fetch_fraction": args.fetch_fraction,
                    "headline_n": args.headline_n,
                    "repeats": args.repeats,
                    "recovery_seeds": args.recovery_seeds,
                    "seed": args.seed,
                    "cores": os.cpu_count() or 1,
                },
                "rows": rows,
            },
            indent=2,
        )
        if args.json == "-":
            print(payload)
        else:
            with open(args.json, "w") as handle:
                handle.write(payload + "\n")
    return 0


def bench_faults(benchmark):
    """pytest-benchmark entry point (tiny, correctness-focused)."""
    rows = benchmark.pedantic(
        run_fault_overhead_sweep,
        args=([4_000],),
        kwargs={"length": 32, "repeats": 1, "recovery_seeds": 1},
        rounds=1,
        iterations=1,
    )
    check(rows)


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
