"""Fig. 9d: quality of approximate answers (average Euclidean distance).

Paper shape: the Coconut family returns better (smaller-distance)
approximate answers than ADSFull; widening the radius improves them
further — CTree(1) beat ADSFull on 69% of queries, CTree(10) on 94%.
"""

import numpy as np

from repro.bench import DatasetSpec, make_environment, print_experiment

SPEC = DatasetSpec("randomwalk", n_series=10_000, length=128, seed=7)
N_QUERIES = 50
MEMORY_FRACTION = 0.25


def quality_rows():
    memory = max(4096, int(SPEC.raw_bytes * MEMORY_FRACTION))
    queries = SPEC.queries(N_QUERIES)

    ctree_env = make_environment("CTreeFull", SPEC, memory)
    ctree_env.index.build(ctree_env.raw)
    ads_env = make_environment("ADSFull", SPEC, memory)
    ads_env.index.build(ads_env.raw)

    ctree_1 = [
        ctree_env.index.approximate_search(q, radius_leaves=1).distance
        for q in queries
    ]
    ctree_10 = [
        ctree_env.index.approximate_search(q, radius_leaves=10).distance
        for q in queries
    ]
    ads = [ads_env.index.approximate_search(q).distance for q in queries]

    rows = [
        {"method": "ADSFull", "avg_distance": float(np.mean(ads))},
        {
            "method": "CTree(1)",
            "avg_distance": float(np.mean(ctree_1)),
            "beats_ADSFull_%": 100.0
            * float(np.mean([c <= a for c, a in zip(ctree_1, ads)])),
        },
        {
            "method": "CTree(10)",
            "avg_distance": float(np.mean(ctree_10)),
            "beats_ADSFull_%": 100.0
            * float(np.mean([c <= a for c, a in zip(ctree_10, ads)])),
        },
    ]
    return rows


def bench_fig09d_approximate_quality(benchmark):
    rows = benchmark.pedantic(quality_rows, rounds=1, iterations=1)
    print_experiment(
        "Fig. 9d — approximate answer quality",
        rows,
        columns=["method", "avg_distance", "beats_ADSFull_%"],
    )
    by_method = {r["method"]: r for r in rows}
    # Wider radius only improves quality.
    assert (
        by_method["CTree(10)"]["avg_distance"]
        <= by_method["CTree(1)"]["avg_distance"] + 1e-9
    )
    # Coconut answers are better than ADSFull on average ...
    assert (
        by_method["CTree(10)"]["avg_distance"]
        < by_method["ADSFull"]["avg_distance"]
    )
    # ... and beat it on most queries (paper: 69% / 94%).
    assert by_method["CTree(1)"]["beats_ADSFull_%"] >= 50.0
    assert by_method["CTree(10)"]["beats_ADSFull_%"] >= 75.0
    assert (
        by_method["CTree(10)"]["beats_ADSFull_%"]
        >= by_method["CTree(1)"]["beats_ADSFull_%"]
    )
