"""Fig. 9c: approximate query answering at a fixed dataset size.

The paper's 40 GB point, scaled down.  Paper shape: the Coconut family
answers approximate queries fastest; the ADS family pays adaptive
materialization and scattered leaves.
"""

from repro.bench import DatasetSpec, print_experiment, run_query_experiment

SPEC = DatasetSpec("randomwalk", n_series=12_000, length=128, seed=7)
INDEXES = ["CTree", "CTreeFull", "ADS+", "ADSFull", "R-tree", "R-tree+"]
N_QUERIES = 40


def bench_fig09c_approximate_fixed_size(benchmark):
    rows = benchmark.pedantic(
        run_query_experiment,
        args=(INDEXES, SPEC, N_QUERIES),
        kwargs={"mode": "approximate"},
        rounds=1,
        iterations=1,
    )
    print_experiment("Fig. 9c — approximate query cost (fixed size)", rows)
    cost = {r["index"]: r["avg_total_s"] for r in rows}
    # Secondary regime: Coconut-Tree beats ADS+ (which pays adaptive
    # materialization on first leaf visits) and R-tree+.
    assert cost["CTree"] < cost["ADS+"]
    assert cost["CTree"] < cost["R-tree+"]
    # Materialized regime: a single-leaf read for both leaders; at this
    # scale both cost one seek, so they are statistically tied (the
    # paper's larger gap needs leaves spanning many pages).
    assert cost["CTreeFull"] < cost["ADSFull"] * 1.15
    # Materialized approximate search beats the secondary variant
    # (no raw-file hop), as in the paper.
    assert cost["CTreeFull"] < cost["CTree"]
    assert cost["ADSFull"] < cost["ADS+"]
