"""Fig. 9b: approximate query answering vs. dataset size.

Paper shape: Coconut-Tree and Coconut-Tree-Full are always fastest;
materialized variants answer approximate queries faster than their
secondary counterparts because the leaf already holds the series
(no raw-file hop).
"""

from repro.bench import DatasetSpec, print_experiment, run_query_experiment

BASE = DatasetSpec("randomwalk", n_series=10_000, length=128, seed=7)
SIZES = [2_000, 10_000]
INDEXES = ["CTree", "CTreeFull", "ADS+", "ADSFull"]
N_QUERIES = 30


def sweep():
    rows = []
    for n in SIZES:
        rows.extend(
            run_query_experiment(
                INDEXES, BASE.scaled(n), N_QUERIES, mode="approximate"
            )
        )
    return rows


def bench_fig09b_approximate_query_scaling(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_experiment("Fig. 9b — approximate query cost vs data size", rows)
    cost = {(r["index"], r["n_series"]): r["avg_total_s"] for r in rows}
    for n in SIZES:
        # Coconut beats ADS in the secondary regime (ADS+ pays
        # adaptive materialization); in the materialized regime both
        # leaders cost one leaf seek at this scale, so they tie.
        assert cost[("CTree", n)] < cost[("ADS+", n)]
        assert cost[("CTreeFull", n)] < cost[("ADSFull", n)] * 1.15
        # Materialized approximate search avoids the raw-file hop.
        assert cost[("CTreeFull", n)] < cost[("CTree", n)]
        assert cost[("ADSFull", n)] < cost[("ADS+", n)]
