"""Integrity layer: verified-read overhead + scrub/repair smoke.

The integrity PR adds a per-page CRC sidecar recorded at write time
and a ``verified_reads`` mode that hashes every page view against it
on the way up (``docs/robustness.md``).  Detection must be cheap
enough to leave on in production, and repair must be exact — this
benchmark measures and *asserts* both contracts:

* ``overhead`` cells run the headline skip-sequential gather
  unverified vs ``verified_reads=True`` on both page stores; fetched
  records, classified ``DiskStats`` and head positions must be
  bit-identical (the harness raises on any violation);
* at the headline configuration (>= 200k series) verified reads must
  cost **<= 10%** wall clock, **on a host with >= 4 cores**
  (small/noisy CI boxes stay ungated and report honest numbers);
* ``scrub`` cells run seeded decay + sweep cycles on both stores;
  every cell asserts the sweep detects **exactly** the injected
  pages (detected == injected), repairs them all, and answers never
  move.

Run standalone with::

    PYTHONPATH=src python benchmarks/bench_scrub.py \
        [--n N ...] [--headline-n N] [--fetch-fraction F] \
        [--repeats R] [--scrub-seeds S] [--json PATH]
"""

import argparse
import json
import os
import sys

from repro.bench import print_experiment
from repro.bench.harness import run_scrub_sweep

#: Headline configuration the <= 10% verified-read gate applies to.
GATE_SERIES = 200_000
GATE_OVERHEAD = 1.10
GATE_MIN_CORES = 4

COLUMNS = [
    "workload", "store", "n_series", "cores",
    "plain_s", "verified_s", "overhead", "identical", "io_identical",
]


def check(rows: list) -> None:
    """Assert the equivalence contract and the headline overhead gate."""
    for row in rows:
        assert row["identical"], f"answer-equivalence violation: {row}"
        assert row["io_identical"], f"I/O-equivalence violation: {row}"
    scrubs = [row for row in rows if row["workload"] == "scrub"]
    assert scrubs, "no scrub cells ran"
    for row in scrubs:
        assert row["detected"] == row["injected"], (
            f"scrub accounting violation: detected {row['detected']} of "
            f"{row['injected']} injected pages in {row}"
        )
    cores = os.cpu_count() or 1
    if cores < GATE_MIN_CORES:
        return
    gated = [
        row
        for row in rows
        if row["workload"] == "overhead" and row["n_series"] >= GATE_SERIES
    ]
    for row in gated:
        assert row["overhead"] <= GATE_OVERHEAD, (
            f"expected verified reads to cost <= "
            f"{(GATE_OVERHEAD - 1) * 100:.0f}% on the {row['store']} store "
            f"at {row['n_series']} series on {cores} cores, got "
            f"{(row['overhead'] - 1) * 100:.1f}%"
        )


def main(argv: list) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, nargs="+", default=[50_000])
    parser.add_argument("--length", type=int, default=128)
    parser.add_argument("--fetch-fraction", type=float, default=0.3)
    parser.add_argument("--headline-n", type=int, default=GATE_SERIES,
                        help="series count of the gated headline cell "
                             "(0 disables the headline sweep)")
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--scrub-seeds", type=int, default=4)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--json", default="",
        help="write rows as JSON to this path ('-' for stdout)",
    )
    args = parser.parse_args(argv[1:])
    n_list = list(args.n)
    if args.headline_n and args.headline_n not in n_list:
        n_list.append(args.headline_n)
    rows = run_scrub_sweep(
        n_list,
        length=args.length,
        fetch_fraction=args.fetch_fraction,
        seed=args.seed,
        repeats=args.repeats,
        scrub_seeds=args.scrub_seeds,
    )
    print_experiment(
        "integrity: verified-read overhead + scrub/repair smoke",
        rows,
        columns=COLUMNS,
    )
    check(rows)
    if args.json:
        payload = json.dumps(
            {
                "benchmark": "integrity_scrub",
                "config": {
                    "n_series": n_list,
                    "length": args.length,
                    "fetch_fraction": args.fetch_fraction,
                    "headline_n": args.headline_n,
                    "repeats": args.repeats,
                    "scrub_seeds": args.scrub_seeds,
                    "seed": args.seed,
                    "cores": os.cpu_count() or 1,
                },
                "rows": rows,
            },
            indent=2,
        )
        if args.json == "-":
            print(payload)
        else:
            with open(args.json, "w") as handle:
                handle.write(payload + "\n")
    return 0


def bench_scrub(benchmark):
    """pytest-benchmark entry point (tiny, correctness-focused)."""
    rows = benchmark.pedantic(
        run_scrub_sweep,
        args=([4_000],),
        kwargs={"length": 32, "repeats": 1, "scrub_seeds": 1},
        rounds=1,
        iterations=1,
    )
    check(rows)


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
