"""Fig. 8e: non-materialized construction vs. dataset size, fixed memory.

Paper shape: Coconut-Tree's sort is over summaries only (tiny), so its
cost stays near a clean scan of the data; ADS+ splits and buffer
evictions add random I/O that grows with the data size.
"""

from repro.bench import DatasetSpec, print_experiment, run_scaling_sweep

SPEC = DatasetSpec("randomwalk", n_series=16_000, length=128, seed=7)
SIZES = [2_000, 8_000, 16_000]
MEMORY_BYTES = 2_000 * 128 * 4 // 4  # a quarter of the smallest dataset


def bench_fig08e_scaling_secondary(benchmark):
    rows = benchmark.pedantic(
        run_scaling_sweep,
        args=(["CTree", "ADS+"], SPEC, SIZES, MEMORY_BYTES),
        rounds=1,
        iterations=1,
    )
    print_experiment("Fig. 8e — secondary construction vs data size", rows)
    cost = {(r["index"], r["n_series"]): r["total_s"] for r in rows}
    assert cost[("CTree", SIZES[-1])] < cost[("ADS+", SIZES[-1])]
    gap_small = cost[("ADS+", SIZES[0])] / cost[("CTree", SIZES[0])]
    gap_large = cost[("ADS+", SIZES[-1])] / cost[("CTree", SIZES[-1])]
    assert gap_large > gap_small
    # Coconut-Tree construction scales near-linearly (sequential passes).
    ctree_ratio = cost[("CTree", SIZES[-1])] / max(
        cost[("CTree", SIZES[0])], 1e-9
    )
    assert ctree_ratio < (SIZES[-1] / SIZES[0]) * 3
