"""Sharded parallel spilled-run merging vs. the serial external sort.

After the vectorized merge engine (bench_merge_engine), the file-backed
merge cascade was the last serial phase of bulk loading: the simulated
disk is a single I/O domain, so ``merge_workers`` only helped resident
runs.  The sharded storage layer (:mod:`repro.parallel.spill`) lifts
that: each cascade group's key range is partitioned, every partition
streams its slices of the run files through a private
:class:`repro.storage.disk.DiskShard`, and the shards reconcile
deterministically.  This benchmark measures the speedup and *asserts*
the contract on every cell:

* merged stream, chunk shapes and ``SortReport`` byte-identical to the
  serial sorter for every worker count;
* reconciled ``DiskStats`` of the pooled run byte-identical to the
  serial replay of the same sharded plan (``pool_kind="serial"``);
* at the headline configuration (>= 200k records, >= 8 runs, spilled)
  the sharded *merge phase* must be >= 2x faster than the serial
  sorter's — **on a host with >= 4 cores**.  On fewer cores the gate
  stays disarmed and the sweep honestly reports ~1x (or slightly
  below: coordination is not free): range partitioning cannot conjure
  parallelism out of one core.

Any equivalence violation raises, which is what CI's tiny smoke
configuration is for.  Run standalone with::

    PYTHONPATH=src python benchmarks/bench_spilled_merge.py \
        [--records N ...] [--runs K ...] [--workers W ...] [--json PATH]
"""

import argparse
import json
import os
import sys

from repro.bench import print_experiment
from repro.bench.harness import run_spilled_merge_sweep

#: Headline configuration the >= 2x gate applies to.
GATE_RECORDS = 200_000
GATE_RUNS = 8
GATE_SPEEDUP = 2.0
GATE_MIN_CORES = 4


def check(rows: list) -> None:
    """Assert the equivalence contract and the headline speedup gate."""
    for row in rows:
        assert row["identical"], f"stream-equivalence violation: {row}"
        assert row["io_deterministic"], f"replay-determinism violation: {row}"
    cores = os.cpu_count() or 1
    if cores < GATE_MIN_CORES:
        return
    gated = [
        row
        for row in rows
        if row["spilled"]
        and row["records"] >= GATE_RECORDS
        and row["runs"] >= GATE_RUNS
        and row["workers"] >= GATE_MIN_CORES
    ]
    for row in gated:
        assert row["merge_speedup"] >= GATE_SPEEDUP, (
            f"expected >= {GATE_SPEEDUP}x over the serial spilled merge at "
            f"{row['records']} records / {row['runs']} runs / "
            f"{row['workers']} workers on {cores} cores, "
            f"got {row['merge_speedup']:.2f}x"
        )


def main(argv: list) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--records", type=int, nargs="+",
                        default=[50_000, GATE_RECORDS])
    parser.add_argument("--runs", type=int, nargs="+", default=[GATE_RUNS, 24])
    parser.add_argument("--workers", type=int, nargs="+", default=[2, 4])
    parser.add_argument(
        "--payload-dims", type=int, default=16,
        help="float32 payload columns per record (0 = int64 offsets)",
    )
    parser.add_argument("--dup-alphabet", type=int, default=0)
    parser.add_argument("--memory-fraction", type=float, default=1 / 8)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--json", default="",
        help="write rows as JSON to this path ('-' for stdout)",
    )
    args = parser.parse_args(argv[1:])
    rows = run_spilled_merge_sweep(
        args.records,
        args.runs,
        workers_list=args.workers,
        seed=args.seed,
        dup_alphabet=args.dup_alphabet,
        payload_dims=args.payload_dims,
        memory_fraction=args.memory_fraction,
    )
    print_experiment(
        "sharded spilled-run merging (serial vs replay vs thread pool)", rows
    )
    check(rows)
    if args.json:
        payload = json.dumps(
            {
                "benchmark": "spilled_merge",
                "config": {
                    "records": args.records,
                    "runs": args.runs,
                    "workers": args.workers,
                    "payload_dims": args.payload_dims,
                    "dup_alphabet": args.dup_alphabet,
                    "memory_fraction": args.memory_fraction,
                    "seed": args.seed,
                    "cores": os.cpu_count() or 1,
                },
                "rows": rows,
            },
            indent=2,
        )
        if args.json == "-":
            print(payload)
        else:
            with open(args.json, "w") as handle:
                handle.write(payload + "\n")
    return 0


def bench_spilled_merge(benchmark):
    """pytest-benchmark entry point (tiny, correctness-focused)."""
    rows = benchmark.pedantic(
        run_spilled_merge_sweep,
        args=([20_000], [8], [2]),
        rounds=1,
        iterations=1,
    )
    check(rows)


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
