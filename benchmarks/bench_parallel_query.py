"""Multi-worker batched queries vs. the serial batched engine.

PRs 1–3 made index *construction* scale with the hardware; this gate
covers the query side.  The multi-worker engine
(:mod:`repro.parallel.query`) range-partitions the batch's lower-bound
scan across a pool and streams the record fetches through per-worker
read-only shards.  The sweep *asserts* the contract on every cell:

* answers — ids, distances, tie order — bit-identical to the serial
  batched engine for every index and worker count;
* reconciled ``DiskStats`` of the pooled run bit-identical to the
  serial replay of the same per-worker plans
  (``query_pool_kind="serial"``);
* at the headline configuration (>= 20k series, >= 32 queries, 4+
  workers) the parallel exact batch must be >= 2x faster than the
  serial batched engine — **on a host with >= 4 cores**.  On fewer
  cores the gate stays disarmed and the sweep honestly reports ~1x
  (or slightly below: partitioned domains re-read boundary pages and
  coordination is not free).

Any equivalence violation raises, which is what CI's tiny smoke
configuration is for.  Run standalone with::

    PYTHONPATH=src python benchmarks/bench_parallel_query.py \
        [--n N] [--queries Q] [--k K] [--workers W ...] [--json PATH]
"""

import argparse
import json
import os
import sys

from repro.bench import print_experiment
from repro.bench.harness import run_parallel_query_sweep
from repro.bench.workloads import DatasetSpec

#: Headline configuration the >= 2x gate applies to.
GATE_SERIES = 20_000
GATE_QUERIES = 32
GATE_SPEEDUP = 2.0
GATE_MIN_CORES = 4

#: The gate measures the Coconut exact-batch path; the serial scan row
#: is informational (its batch is bandwidth-bound, not compute-bound).
GATE_INDEXES = ("CTree", "CTreeFull")


def check(rows: list) -> None:
    """Assert the equivalence contract and the headline speedup gate."""
    for row in rows:
        assert row["identical"], f"answer-equivalence violation: {row}"
        assert row["io_deterministic"], f"replay-determinism violation: {row}"
    cores = os.cpu_count() or 1
    if cores < GATE_MIN_CORES:
        return
    gated = [
        row
        for row in rows
        if row["index"] in GATE_INDEXES
        and row["n_series"] >= GATE_SERIES
        and row["n_queries"] >= GATE_QUERIES
        and row["workers"] >= GATE_MIN_CORES
    ]
    for row in gated:
        assert row["speedup"] >= GATE_SPEEDUP, (
            f"expected >= {GATE_SPEEDUP}x over the serial batched engine on "
            f"{row['index']} at {row['n_series']} series / "
            f"{row['n_queries']} queries / {row['workers']} workers on "
            f"{cores} cores, got {row['speedup']:.2f}x"
        )


def main(argv: list) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=GATE_SERIES,
                        help="series count")
    parser.add_argument("--queries", type=int, default=GATE_QUERIES)
    parser.add_argument("--k", type=int, default=1)
    parser.add_argument("--length", type=int, default=128)
    parser.add_argument("--workers", type=int, nargs="+", default=[2, 4])
    parser.add_argument(
        "--indexes", nargs="+", default=["CTree", "CTreeFull", "Serial"]
    )
    parser.add_argument("--dataset", default="randomwalk")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--json", default="",
        help="write rows as JSON to this path ('-' for stdout)",
    )
    args = parser.parse_args(argv[1:])
    spec = DatasetSpec(args.dataset, args.n, args.length, args.seed)
    rows = run_parallel_query_sweep(
        args.indexes,
        spec,
        args.queries,
        workers_list=args.workers,
        k=args.k,
    )
    print_experiment(
        "multi-worker batched queries (serial vs replay vs thread pool)", rows
    )
    check(rows)
    if args.json:
        payload = json.dumps(
            {
                "benchmark": "parallel_query",
                "config": {
                    "n_series": args.n,
                    "queries": args.queries,
                    "k": args.k,
                    "length": args.length,
                    "workers": args.workers,
                    "indexes": args.indexes,
                    "dataset": args.dataset,
                    "seed": args.seed,
                    "cores": os.cpu_count() or 1,
                },
                "rows": rows,
            },
            indent=2,
        )
        if args.json == "-":
            print(payload)
        else:
            with open(args.json, "w") as handle:
                handle.write(payload + "\n")
    return 0


def bench_parallel_query(benchmark):
    """pytest-benchmark entry point (tiny, correctness-focused)."""
    rows = benchmark.pedantic(
        run_parallel_query_sweep,
        args=(["CTree", "Serial"], DatasetSpec("randomwalk", 2000, 64, 7), 8),
        kwargs={"workers_list": [2]},
        rounds=1,
        iterations=1,
    )
    check(rows)


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
