"""Fig. 8f: indexing collections of variable-length data series.

Paper shape: for every series length, the Coconut-Tree variants beat
the corresponding ADS variants under limited memory.
"""

from repro.bench import DatasetSpec, print_experiment, run_length_sweep

BASE = DatasetSpec("randomwalk", n_series=4_000, length=128, seed=7)
LENGTHS = [64, 128, 256]
MEMORY_FRACTION = 0.02


def bench_fig08f_series_length(benchmark):
    rows = benchmark.pedantic(
        run_length_sweep,
        args=(
            ["CTree", "ADS+", "CTreeFull", "ADSFull"],
            BASE,
            LENGTHS,
            MEMORY_FRACTION,
        ),
        rounds=1,
        iterations=1,
    )
    print_experiment("Fig. 8f — construction vs series length", rows)
    cost = {(r["index"], r["length"]): r["total_s"] for r in rows}
    for length in LENGTHS:
        assert cost[("CTree", length)] < cost[("ADS+", length)]
        assert cost[("CTreeFull", length)] < cost[("ADSFull", length)]
