"""Fig. 8a: materialized index construction vs. memory budget.

Paper shape: Coconut-Tree-Full is fastest and degrades gently as
memory shrinks; ADSFull degrades sharply (random leaf flushes);
R-tree and DSTree perform poorly throughout.
"""

from repro.bench import (
    DatasetSpec,
    MATERIALIZED_GROUP,
    print_experiment,
    run_build_sweep,
)

SPEC = DatasetSpec("randomwalk", n_series=8000, length=128, seed=7)
MEMORY_FRACTIONS = [1.0, 0.2, 0.05]


def bench_fig08a_build_materialized(benchmark):
    rows = benchmark.pedantic(
        run_build_sweep,
        args=(MATERIALIZED_GROUP, SPEC, MEMORY_FRACTIONS),
        rounds=1,
        iterations=1,
    )
    print_experiment("Fig. 8a — materialized construction vs memory", rows)
    cost = {
        (r["index"], r["memory_frac"]): r["total_s"] for r in rows
    }
    tight = MEMORY_FRACTIONS[-1]
    ample = MEMORY_FRACTIONS[0]
    # Coconut-Tree-Full beats ADSFull, R-tree and DSTree when memory
    # is scarce (the paper's headline, order-of-magnitude for ADSFull).
    assert cost[("CTreeFull", tight)] < cost[("ADSFull", tight)]
    assert cost[("CTreeFull", tight)] < cost[("R-tree", tight)]
    assert cost[("CTreeFull", tight)] < cost[("DSTree", tight)]
    assert cost[("ADSFull", tight)] / cost[("CTreeFull", tight)] > 4
    # ADSFull degrades with shrinking memory much more than CTreeFull.
    ads_degradation = cost[("ADSFull", tight)] / cost[("ADSFull", ample)]
    ctree_degradation = cost[("CTreeFull", tight)] / cost[("CTreeFull", ample)]
    assert ads_degradation > ctree_degradation * 0.8
    # DSTree is the slowest one-at-a-time inserter with ample memory.
    assert cost[("DSTree", ample)] > cost[("CTreeFull", ample)]
