"""Ablation: Coconut-Tree leaf fill factor (Sec. 4.3).

The paper notes the fill factor "can be controlled by the user": full
leaves minimize space and sequential traversal length; half-full
leaves leave room for future inserts at the cost of more leaves.
"""

import numpy as np

from repro.bench import DatasetSpec, PAGE_SIZE, default_config, print_experiment
from repro.core import CoconutTree
from repro.series import random_walk
from repro.storage import RawSeriesFile, SimulatedDisk

SPEC = DatasetSpec("randomwalk", n_series=8_000, length=128, seed=7)
FILL_FACTORS = [0.5, 0.75, 1.0]


def fill_rows():
    rows = []
    data = SPEC.generate()
    for fill in FILL_FACTORS:
        disk = SimulatedDisk(page_size=PAGE_SIZE)
        raw = RawSeriesFile.create(disk, data)
        disk.reset_stats()
        index = CoconutTree(
            disk,
            memory_bytes=SPEC.raw_bytes,
            config=default_config(SPEC.length),
            leaf_size=100,
            fill_factor=fill,
        )
        report = index.build(raw)
        batch = random_walk(800, length=SPEC.length, seed=99)
        update = index.insert_batch(batch)
        rows.append(
            {
                "fill_factor": fill,
                "n_leaves": report.n_leaves,
                "index_MB": report.index_bytes / 1e6,
                "build_s": report.total_cost_s,
                "insert_s": update.total_cost_s,
                "leaves_after_insert": index.leaf_stats()[0],
            }
        )
    return rows


def bench_ablation_fill_factor(benchmark):
    rows = benchmark.pedantic(fill_rows, rounds=1, iterations=1)
    print_experiment("Ablation — Coconut-Tree fill factor", rows)
    by_fill = {r["fill_factor"]: r for r in rows}
    # Fuller leaves -> fewer leaves and a smaller index.
    assert by_fill[1.0]["n_leaves"] < by_fill[0.5]["n_leaves"]
    assert by_fill[1.0]["index_MB"] <= by_fill[0.5]["index_MB"]
    # Slack absorbs inserts: half-full trees split less on update.
    grown_full = (
        by_fill[1.0]["leaves_after_insert"] - by_fill[1.0]["n_leaves"]
    )
    grown_half = (
        by_fill[0.5]["leaves_after_insert"] - by_fill[0.5]["n_leaves"]
    )
    assert grown_half <= grown_full
