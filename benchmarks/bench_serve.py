"""Online service throughput: concurrent ingest + query serving.

The PR 9 gate: sustained mixed read/write traffic through
:class:`repro.service.CoconutService` — a feeder thread streaming
WAL-durable ingest batches while the batch-window server thread
coalesces and serves concurrent queries against snapshot-isolated
read-only sessions.  The sweep (:func:`repro.bench.harness.
run_serve_sweep`) *asserts* on every cell before any number is
reported:

* every served exact ticket is bit-identical to a fault-free oracle
  index built over exactly the first ``snapshot_series`` rows the
  ticket reports (serving never reads a half-flushed run or a torn
  watermark);
* every served approximate ticket names an in-watermark row;
* ticket accounting conserves: ``submitted == served + shed +
  rejected`` — nothing is silently dropped.

The reported cells are the service's own health surface: sustained
ingest rows/s and queries/s over the same wall-clock window, with
p50/p95/p99 end-to-end query latency and the degradation counters
(shed, degraded batches, session conflicts).  There is no speedup
gate — the contract gates are equivalence and conservation; the
throughput numbers are the honest product.

Run standalone with::

    PYTHONPATH=src python benchmarks/bench_serve.py \
        [--n N] [--queries Q] [--workers W ...] [--json PATH]
"""

import argparse
import json
import os
import sys

from repro.bench import print_experiment
from repro.bench.harness import run_serve_sweep
from repro.bench.workloads import DatasetSpec


def check(rows: list) -> None:
    """Assert the serving contract on every reported cell."""
    for row in rows:
        assert row["identical"], f"oracle-equivalence violation: {row}"
        assert row["served"] + row["shed"] + row["rejected"] >= row["served"]
        assert row["served"] > 0, f"no queries served: {row}"
        assert row["p50_ms"] <= row["p99_ms"], f"latency order broken: {row}"


def main(argv: list) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=4000, help="base series")
    parser.add_argument("--queries", type=int, default=64)
    parser.add_argument("--length", type=int, default=128)
    parser.add_argument("--workers", type=int, nargs="+", default=[1, 2])
    parser.add_argument("--batch-rows", type=int, default=200)
    parser.add_argument("--batches", type=int, default=10)
    parser.add_argument("--k", type=int, default=3)
    parser.add_argument("--dataset", default="randomwalk")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--json", default="",
        help="write rows as JSON to this path ('-' for stdout)",
    )
    args = parser.parse_args(argv[1:])
    spec = DatasetSpec(args.dataset, args.n, args.length, args.seed)
    rows = run_serve_sweep(
        spec,
        n_queries=args.queries,
        workers_list=args.workers,
        batch_rows=args.batch_rows,
        n_batches=args.batches,
        k=args.k,
        seed=args.seed,
    )
    print_experiment(
        "online service: concurrent ingest + query serving",
        rows,
        columns=[
            "workers", "cores", "n_series", "ingest_rows_per_s",
            "queries_per_s", "p50_ms", "p95_ms", "p99_ms", "served",
            "shed", "degraded_batches", "session_conflicts", "flushes",
            "merges", "identical",
        ],
    )
    check(rows)
    if args.json:
        payload = json.dumps(
            {
                "benchmark": "serve",
                "config": {
                    "n_series": args.n,
                    "queries": args.queries,
                    "length": args.length,
                    "workers": args.workers,
                    "batch_rows": args.batch_rows,
                    "batches": args.batches,
                    "k": args.k,
                    "dataset": args.dataset,
                    "seed": args.seed,
                    "cores": os.cpu_count() or 1,
                },
                "rows": rows,
            },
            indent=2,
        )
        if args.json == "-":
            print(payload)
        else:
            with open(args.json, "w") as handle:
                handle.write(payload + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
