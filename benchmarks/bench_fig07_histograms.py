"""Fig. 7: value histograms of the three datasets.

The paper shows that random-walk and seismology values are nearly
identically distributed (close to Gaussian) while astronomy values are
slightly skewed.  This bench regenerates the histogram series and
checks those properties.
"""

import numpy as np
from scipy import stats

from repro.bench import print_experiment
from repro.series import make_dataset

BINS = np.linspace(-5.0, 5.0, 21)


def histogram_rows(n_series=2000, length=256, seed=7):
    rows = []
    summary = {}
    for name in ("randomwalk", "seismic", "astronomy"):
        data = make_dataset(name, n_series, length=length, seed=seed)
        values = data.ravel().astype(np.float64)
        density, _ = np.histogram(values, bins=BINS, density=True)
        summary[name] = {
            "dataset": name,
            "mean": float(values.mean()),
            "std": float(values.std()),
            "skew": float(stats.skew(values)),
            "kurtosis": float(stats.kurtosis(values)),
            "p01": float(np.quantile(values, 0.01)),
            "p99": float(np.quantile(values, 0.99)),
        }
        for low, high, d in zip(BINS[:-1], BINS[1:], density):
            rows.append(
                {
                    "dataset": name,
                    "bin": f"[{low:+.1f},{high:+.1f})",
                    "density": float(d),
                }
            )
    return rows, list(summary.values())


def bench_fig07_value_histograms(benchmark):
    rows, summary = benchmark.pedantic(
        histogram_rows, rounds=1, iterations=1
    )
    print_experiment("Fig. 7 — dataset value summary", summary)
    print_experiment(
        "Fig. 7 — value histograms (density per bin)",
        [r for r in rows if abs(float(r["bin"][1:5])) <= 2.6],
    )
    by_name = {s["dataset"]: s for s in summary}
    # Paper shape: randomwalk and seismic near-symmetric, astronomy skewed.
    assert abs(by_name["randomwalk"]["skew"]) < 0.25
    assert abs(by_name["astronomy"]["skew"]) > abs(by_name["randomwalk"]["skew"])
    assert abs(by_name["astronomy"]["skew"]) > 0.2
    # All three are z-normalized.
    for s in summary:
        assert abs(s["mean"]) < 0.05
        assert abs(s["std"] - 1.0) < 0.05
