"""Ablation: sortable (invSAX) vs. plain lexicographic SAX ordering.

Isolates the paper's core claim (Sec. 3 / Fig. 2): sorting by the
interleaved z-order key keeps similar series adjacent, whereas sorting
by the plain SAX word only clusters series by their first segment.  We
measure (i) the mean true distance between neighbors in each sorted
order and (ii) the quality of a one-leaf approximate answer when an
index is bulk-loaded from each order.
"""

import numpy as np

from repro.bench import DatasetSpec, print_experiment
from repro.core import interleave_words
from repro.series import euclidean
from repro.summaries import SAXConfig, sax_words

SPEC = DatasetSpec("randomwalk", n_series=6_000, length=128, seed=7)
CONFIG = SAXConfig(series_length=128, word_length=8, cardinality=256)
LEAF = 100


def neighbor_stats():
    data = SPEC.generate().astype(np.float64)
    words = sax_words(data, CONFIG)
    z_order = np.argsort(interleave_words(words, CONFIG), kind="stable")
    lex_order = np.lexsort(words.T[::-1])
    rng = np.random.default_rng(3)
    sample = rng.choice(len(data) - 1, size=600, replace=False)

    def mean_neighbor(order):
        return float(
            np.mean(
                [euclidean(data[order[i]], data[order[i + 1]]) for i in sample]
            )
        )

    def mean_leaf_radius(order):
        """Average distance from a leaf's first series to its others."""
        radii = []
        for start in range(0, len(order) - LEAF, LEAF * 10):
            leaf = order[start : start + LEAF]
            anchor = data[leaf[0]]
            radii.append(
                np.mean([euclidean(anchor, data[i]) for i in leaf[1:]])
            )
        return float(np.mean(radii))

    rows = [
        {
            "ordering": "invSAX (z-order)",
            "mean_neighbor_ED": mean_neighbor(z_order),
            "mean_leaf_radius": mean_leaf_radius(z_order),
        },
        {
            "ordering": "plain SAX (lexicographic)",
            "mean_neighbor_ED": mean_neighbor(lex_order),
            "mean_leaf_radius": mean_leaf_radius(lex_order),
        },
        {
            "ordering": "unsorted (file order)",
            "mean_neighbor_ED": mean_neighbor(np.arange(len(data))),
            "mean_leaf_radius": mean_leaf_radius(np.arange(len(data))),
        },
    ]
    return rows


def bench_ablation_sortability(benchmark):
    rows = benchmark.pedantic(neighbor_stats, rounds=1, iterations=1)
    print_experiment("Ablation — sortability of summarizations", rows)
    z, lex, unsorted_ = rows
    # z-order neighbors are genuinely closer than lexicographic ones,
    # which are in turn better than no sorting at all.
    assert z["mean_neighbor_ED"] < lex["mean_neighbor_ED"]
    assert lex["mean_neighbor_ED"] < unsorted_["mean_neighbor_ED"]
    assert z["mean_leaf_radius"] < unsorted_["mean_leaf_radius"]
