"""Fig. 10b: complete workload (construction + 100 exact queries)
on the astronomy dataset, for several memory configurations.

Paper shape: with constrained memory Coconut-Tree wins in both the
materialized and non-materialized regimes; the skewed, denser data
makes pruning less effective than on random walks for every index.
"""

from repro.bench import DatasetSpec, print_experiment, run_complete_workload

SPEC = DatasetSpec("astronomy", n_series=8_000, length=128, seed=11)
MEMORY_FRACTIONS = [0.5, 0.02]
INDEXES = ["CTree", "ADS+", "CTreeFull", "ADSFull"]
N_QUERIES = 15


def bench_fig10b_astronomy_complete(benchmark):
    rows = benchmark.pedantic(
        run_complete_workload,
        args=(INDEXES, SPEC, N_QUERIES, MEMORY_FRACTIONS),
        rounds=1,
        iterations=1,
    )
    print_experiment("Fig. 10b — astronomy complete workload", rows)
    cost = {(r["index"], r["memory_frac"]): r["total_s"] for r in rows}
    tight = MEMORY_FRACTIONS[-1]
    assert cost[("CTree", tight)] < cost[("ADS+", tight)]
    assert cost[("CTreeFull", tight)] < cost[("ADSFull", tight)]
    size = {(r["index"], r["memory_frac"]): r["index_MB"] for r in rows}
    # Index size ordering as reported in Sec. 5.3 (CTree smallest
    # secondary, ADSFull largest materialized).
    assert size[("CTree", tight)] < size[("ADS+", tight)]
    assert size[("CTreeFull", tight)] < size[("ADSFull", tight)]
