"""Ablation: prefix-based vs. median-based splitting (Sec. 3.2).

Coconut-Trie and Coconut-Tree are built from the *same* sorted key
stream; the only difference is the splitting policy.  This isolates
the paper's second design lever: median splits give a balanced,
densely packed index; prefix splits underfill leaves and inflate both
storage and exact-query cost.
"""

import numpy as np

from repro.bench import DatasetSpec, make_environment, print_experiment

SPEC = DatasetSpec("randomwalk", n_series=10_000, length=128, seed=7)
N_QUERIES = 15
MEMORY_FRACTION = 0.25


def policy_rows():
    memory = max(4096, int(SPEC.raw_bytes * MEMORY_FRACTION))
    queries = SPEC.queries(N_QUERIES)
    rows = []
    for key, policy in (("CTree", "median"), ("CTrie", "prefix")):
        env = make_environment(key, SPEC, memory)
        report = env.index.build(env.raw)
        results = [env.index.exact_search(q) for q in queries]
        rows.append(
            {
                "policy": policy,
                "index": key,
                "build_s": report.total_cost_s,
                "index_MB": report.index_bytes / 1e6,
                "n_leaves": report.n_leaves,
                "leaf_fill": report.avg_leaf_fill,
                "avg_exact_s": float(
                    np.mean([r.total_cost_s for r in results])
                ),
            }
        )
    return rows


def bench_ablation_split_policy(benchmark):
    rows = benchmark.pedantic(policy_rows, rounds=1, iterations=1)
    print_experiment("Ablation — split policy (median vs prefix)", rows)
    median = next(r for r in rows if r["policy"] == "median")
    prefix = next(r for r in rows if r["policy"] == "prefix")
    # Median splitting dominates on every axis the paper names.
    assert median["leaf_fill"] > prefix["leaf_fill"]
    assert median["n_leaves"] < prefix["n_leaves"]
    assert median["index_MB"] < prefix["index_MB"]
