"""Vectorized columnar gather + fused refine vs. the loop-level oracle.

The fetch path used to assemble every record with per-record Python
slicing and refine candidates one scalar early-abandon call at a time.
``RawSeriesFile.get_many`` is now a two-phase grouped gather — one
counted read per maximal consecutive page run, then a single strided
fancy-index take over the joined stream — and the refine step runs
through the batched :func:`repro.series.distance.
early_abandon_euclidean_block` kernel (chunked partial sums with
per-row abandon masks).  This benchmark measures the win and *asserts*
the contract on every cell:

* fetched records bit-identical between the vectorized gather and the
  retained loop-level oracle (``get_many_loop``), on both page stores;
* classified ``DiskStats`` and head positions bit-identical between
  the two paths — the gather visits exactly the pages the
  skip-sequential plan visits, once each, in ascending order — and
  records/stats/traces/heads bit-identical across stores per path
  (the harness raises on any violation);
* refine distances bitwise-identical (``uint64`` view) between the
  block kernel and the scalar early-abandon loop applied row by row;
* at the headline configuration (>= 200k series of length 16, the
  dense regime where whole page runs collapse into single bulk reads)
  the gather must be >= 5x faster than the loop oracle, **on a host
  with >= 4 cores** (small/noisy CI boxes stay ungated and report
  honest numbers).  Long-record cells are reported honestly without a
  gate: their wall clock is dominated by the page-granular I/O both
  paths share.

Run standalone with::

    PYTHONPATH=src python benchmarks/bench_fetch.py \
        [--n N ...] [--length L] [--fetch-fraction F] \
        [--headline-n N] [--headline-length L] [--json PATH]
"""

import argparse
import json
import os
import sys

from repro.bench import print_experiment
from repro.bench.harness import run_fetch_sweep

#: Headline configuration the >= 5x gather gate applies to.
GATE_SERIES = 200_000
GATE_LENGTH = 16
GATE_SPEEDUP = 5.0
GATE_MIN_CORES = 4

COLUMNS = [
    "workload", "store", "n_series", "length", "cores",
    "loop_s", "vector_s", "speedup", "identical", "io_identical",
]


def check(rows: list) -> None:
    """Assert the equivalence contract and the headline gather gate."""
    for row in rows:
        assert row["identical"], f"answer-equivalence violation: {row}"
        assert row["io_identical"], f"I/O-equivalence violation: {row}"
    cores = os.cpu_count() or 1
    if cores < GATE_MIN_CORES:
        return
    gated = [
        row
        for row in rows
        if row["workload"] == "gather"
        and row["n_series"] >= GATE_SERIES
        and row["length"] == GATE_LENGTH
    ]
    for row in gated:
        assert row["speedup"] >= GATE_SPEEDUP, (
            f"expected >= {GATE_SPEEDUP}x over the loop-level gather on "
            f"the {row['store']} store at {row['n_series']} series of "
            f"length {row['length']} on {cores} cores, got "
            f"{row['speedup']:.2f}x"
        )


def main(argv: list) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, nargs="+",
                        default=[10_000, 50_000])
    parser.add_argument("--length", type=int, default=128)
    parser.add_argument("--fetch-fraction", type=float, default=0.3)
    parser.add_argument("--headline-n", type=int, default=GATE_SERIES,
                        help="series count of the gated headline cell "
                             "(0 disables the headline sweep)")
    parser.add_argument("--headline-length", type=int, default=GATE_LENGTH)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--json", default="",
        help="write rows as JSON to this path ('-' for stdout)",
    )
    args = parser.parse_args(argv[1:])
    rows = run_fetch_sweep(
        args.n,
        length=args.length,
        fetch_fraction=args.fetch_fraction,
        seed=args.seed,
        repeats=args.repeats,
    )
    if args.headline_n:
        rows += run_fetch_sweep(
            [args.headline_n],
            length=args.headline_length,
            fetch_fraction=args.fetch_fraction,
            seed=args.seed,
            repeats=args.repeats,
        )
    print_experiment(
        "vectorized gather + fused refine vs loop oracle",
        rows,
        columns=COLUMNS,
    )
    check(rows)
    if args.json:
        payload = json.dumps(
            {
                "benchmark": "fetch_gather_refine",
                "config": {
                    "n_series": args.n,
                    "length": args.length,
                    "fetch_fraction": args.fetch_fraction,
                    "headline_n": args.headline_n,
                    "headline_length": args.headline_length,
                    "repeats": args.repeats,
                    "seed": args.seed,
                    "cores": os.cpu_count() or 1,
                },
                "rows": rows,
            },
            indent=2,
        )
        if args.json == "-":
            print(payload)
        else:
            with open(args.json, "w") as handle:
                handle.write(payload + "\n")
    return 0


def bench_fetch(benchmark):
    """pytest-benchmark entry point (tiny, correctness-focused)."""
    rows = benchmark.pedantic(
        run_fetch_sweep,
        args=([4_000],),
        kwargs={"length": 32, "repeats": 1},
        rounds=1,
        iterations=1,
    )
    check(rows)


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
