"""Fig. 8b: non-materialized index construction vs. memory budget.

Paper shape: with ample memory ADS+ and Coconut-Tree are comparable
(summaries fit in memory, sorting is cheap); with restricted memory
Coconut-Tree wins because ADS+ leaf splits cause small random I/Os.
Coconut-Trie pays extra for node compaction; R-tree+ mirrors R-tree.
"""

from repro.bench import (
    DatasetSpec,
    SECONDARY_GROUP,
    print_experiment,
    run_build_sweep,
)

SPEC = DatasetSpec("randomwalk", n_series=10_000, length=128, seed=7)
MEMORY_FRACTIONS = [1.0, 0.05, 0.01]


def bench_fig08b_build_secondary(benchmark):
    rows = benchmark.pedantic(
        run_build_sweep,
        args=(SECONDARY_GROUP, SPEC, MEMORY_FRACTIONS),
        rounds=1,
        iterations=1,
    )
    print_experiment("Fig. 8b — secondary construction vs memory", rows)
    cost = {(r["index"], r["memory_frac"]): r["total_s"] for r in rows}
    tight = MEMORY_FRACTIONS[-1]
    ample = MEMORY_FRACTIONS[0]
    # With ample memory the two leaders are within ~2x of each other.
    assert cost[("CTree", ample)] < 2.0 * cost[("ADS+", ample)]
    # With restricted memory Coconut-Tree clearly wins (paper: 8.2 vs
    # 13.4 min; here the simulated gap is larger because the buffering
    # regime is harsher at scaled-down absolute memory).
    assert cost[("CTree", tight)] < cost[("ADS+", tight)]
    assert cost[("ADS+", tight)] / cost[("CTree", tight)] > 2
    # The ADS+ degradation slope exceeds Coconut-Tree's.
    assert (
        cost[("ADS+", tight)] / cost[("ADS+", ample)]
        > cost[("CTree", tight)] / cost[("CTree", ample)]
    )
