"""Adaptive query scheduling vs. the fixed plan, contract-checked.

PR 4's gate (:mod:`benchmarks.bench_parallel_query`) covers the
multi-worker engine against the serial batched engine; this gate
covers the *scheduler* on top of it — shared best-k bounds, cost-model
planning, parallel approximate batches.  The sweep
(:func:`repro.bench.harness.run_sched_sweep`) *asserts* on every cell:

* answers — ids, distances, tie order — bit-identical to the serial
  batched engine across worker counts, schedulers and sharing modes;
* pooled ``bound_sharing="off"`` ``DiskStats`` bit-identical to the
  serial replay oracle (the replay pin, quantified over sharing off);
* sharing-on visits no more pages or bytes than sharing-off at the
  same partition split (the monotone-visits bound);
* at the headline configuration (>= 20k series, >= 32 queries, 4
  workers) the adaptive scheduler must beat ``scheduler="fixed"`` by
  >= 1.3x on the exact batch — **on a host with >= 4 cores**.  On
  fewer cores the gate stays disarmed and the sweep honestly reports
  ~1x (a shared board nobody races on is pure overhead).

Any equivalence violation raises.  Run standalone with::

    PYTHONPATH=src python benchmarks/bench_sched.py \
        [--n N] [--queries Q] [--k K] [--workers W ...] [--json PATH]
"""

import argparse
import json
import os
import sys

from repro.bench import print_experiment
from repro.bench.harness import run_sched_sweep
from repro.bench.workloads import DatasetSpec

#: Headline configuration the >= 1.3x gate applies to.
GATE_SERIES = 20_000
GATE_QUERIES = 32
GATE_SPEEDUP = 1.3
GATE_MIN_CORES = 4

#: The gate measures the Coconut exact-batch path, where the shared
#: board closes the threshold-feedback gap between fetch workers.
GATE_INDEXES = ("CTree", "CTreeFull")


def check(rows: list) -> None:
    """Assert the scheduler contract and the headline speedup gate."""
    for row in rows:
        assert row["identical"], f"answer-equivalence violation: {row}"
        assert row["io_deterministic"], f"replay-determinism violation: {row}"
        assert row["pages_monotone"], f"monotone-visits violation: {row}"
    cores = os.cpu_count() or 1
    if cores < GATE_MIN_CORES:
        return
    gated = [
        row
        for row in rows
        if row["index"] in GATE_INDEXES
        and row["n_series"] >= GATE_SERIES
        and row["n_queries"] >= GATE_QUERIES
        and row["workers"] >= GATE_MIN_CORES
    ]
    for row in gated:
        assert row["speedup"] >= GATE_SPEEDUP, (
            f"expected >= {GATE_SPEEDUP}x over scheduler='fixed' on "
            f"{row['index']} at {row['n_series']} series / "
            f"{row['n_queries']} queries / {row['workers']} workers on "
            f"{cores} cores, got {row['speedup']:.2f}x"
        )


def main(argv: list) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=GATE_SERIES,
                        help="series count")
    parser.add_argument("--queries", type=int, default=GATE_QUERIES)
    parser.add_argument(
        "--k", type=int, default=8,
        help="neighbors per query; k > 1 leaves heaps unfilled by the "
        "approximate seed, which is what the shared board accelerates",
    )
    parser.add_argument("--length", type=int, default=128)
    parser.add_argument("--workers", type=int, nargs="+", default=[2, 4])
    parser.add_argument(
        "--indexes", nargs="+", default=["CTree", "CTreeFull"]
    )
    parser.add_argument("--dataset", default="randomwalk")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--json", default="",
        help="write rows as JSON to this path ('-' for stdout)",
    )
    args = parser.parse_args(argv[1:])
    spec = DatasetSpec(args.dataset, args.n, args.length, args.seed)
    rows = run_sched_sweep(
        args.indexes,
        spec,
        args.queries,
        workers_list=args.workers,
        k=args.k,
    )
    print_experiment(
        "adaptive scheduler vs fixed plan (shared best-k bounds)",
        rows,
        columns=[
            "index", "workers", "k", "cores", "fixed_batch_s",
            "adaptive_batch_s", "speedup", "pages_sharing_on",
            "pages_sharing_off", "identical", "io_deterministic",
        ],
    )
    check(rows)
    if args.json:
        payload = json.dumps(
            {
                "benchmark": "sched",
                "config": {
                    "n_series": args.n,
                    "queries": args.queries,
                    "k": args.k,
                    "length": args.length,
                    "workers": args.workers,
                    "indexes": args.indexes,
                    "dataset": args.dataset,
                    "seed": args.seed,
                    "cores": os.cpu_count() or 1,
                    "gate_armed": (os.cpu_count() or 1) >= GATE_MIN_CORES,
                },
                "rows": rows,
            },
            indent=2,
        )
        if args.json == "-":
            print(payload)
        else:
            with open(args.json, "w") as handle:
                handle.write(payload + "\n")
    return 0


def bench_sched(benchmark):
    """pytest-benchmark entry point (tiny, correctness-focused)."""
    rows = benchmark.pedantic(
        run_sched_sweep,
        args=(["CTree"], DatasetSpec("randomwalk", 2000, 64, 7), 8),
        kwargs={"workers_list": [2], "k": 4},
        rounds=1,
        iterations=1,
    )
    check(rows)


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
