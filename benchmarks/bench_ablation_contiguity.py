"""Ablation: what contiguity is worth (HDD vs. uniform cost model).

The paper attributes Coconut's query advantage partly to leaf
contiguity (large sequential I/O instead of scattered seeks).  Here we
replay the same builds under a cost model where random and sequential
accesses cost the same: the Coconut-vs-ADS construction gap should
shrink dramatically, confirming that the win comes from access
*pattern*, not access *count* alone.
"""

from repro.bench import DatasetSpec, PAGE_SIZE, default_config, print_experiment
from repro.indexes import ADSIndex
from repro.core import CoconutTree
from repro.storage import CostModel, RawSeriesFile, SimulatedDisk, UNIFORM_COST

SPEC = DatasetSpec("randomwalk", n_series=8_000, length=128, seed=7)
MEMORY_FRACTION = 0.01


def contiguity_rows():
    rows = []
    data = SPEC.generate()
    memory = max(4096, int(SPEC.raw_bytes * MEMORY_FRACTION))
    for model_name, model in (("hdd", CostModel()), ("uniform", UNIFORM_COST)):
        costs = {}
        for key in ("CTree", "ADS+"):
            disk = SimulatedDisk(page_size=PAGE_SIZE, cost_model=model)
            raw = RawSeriesFile.create(disk, data)
            disk.reset_stats()
            if key == "CTree":
                index = CoconutTree(
                    disk, memory, config=default_config(SPEC.length),
                    leaf_size=100,
                )
            else:
                index = ADSIndex(
                    disk, memory, config=default_config(SPEC.length),
                    leaf_size=100,
                )
            report = index.build(raw)
            costs[key] = report.simulated_io_ms / 1000.0
        rows.append(
            {
                "cost_model": model_name,
                "CTree_io_s": costs["CTree"],
                "ADS+_io_s": costs["ADS+"],
                "ratio": costs["ADS+"] / max(costs["CTree"], 1e-9),
            }
        )
    return rows


def bench_ablation_contiguity(benchmark):
    rows = benchmark.pedantic(contiguity_rows, rounds=1, iterations=1)
    print_experiment("Ablation — value of contiguity (cost models)", rows)
    hdd = next(r for r in rows if r["cost_model"] == "hdd")
    uniform = next(r for r in rows if r["cost_model"] == "uniform")
    # Under seek-penalizing media the gap is much larger than under a
    # uniform model: contiguity, not just I/O count, drives the win.
    assert hdd["ratio"] > 2 * uniform["ratio"]
    assert hdd["ratio"] > 5
