"""Vectorized k-way merge engine vs. the per-record heapq reference.

The merge phase of the external sort was the last record-at-a-time
Python loop in the bulk-loading pipeline.  The blockwise engine
(:mod:`repro.storage.merge`) replaces it with NumPy galloping over
page-sized blocks; this benchmark measures the speedup and *asserts*
the engine's contract on every cell:

* byte-identical output stream and chunk shapes,
* identical ``SortReport`` and identical simulated-I/O trace
  (``DiskStats``, sequential/random classification included),
* at the headline configuration (>= 32 runs, >= 200k records) the
  blockwise engine must be >= 5x faster than the heapq oracle,
* the parallel range-partitioned in-memory merge stays byte-identical
  for every worker count (its speedup depends on cores, so only
  equivalence is gated).

Any equivalence violation raises, which is what CI's tiny smoke
configuration is for.  Run standalone with::

    PYTHONPATH=src python benchmarks/bench_merge_engine.py \
        [--records N ...] [--runs K ...] [--workers W ...] [--json PATH]
"""

import argparse
import json
import sys

from repro.bench import print_experiment
from repro.bench.harness import run_merge_engine_sweep

#: Headline configuration the >= 5x gate applies to.
GATE_RECORDS = 200_000
GATE_RUNS = 32
GATE_SPEEDUP = 5.0


def check(rows: list) -> None:
    """Assert the equivalence contract and the headline speedup gate."""
    for row in rows:
        assert row["identical"], f"output-equivalence violation: {row}"
        assert row["io_identical"], f"I/O-equivalence violation: {row}"
    gated = [
        row
        for row in rows
        if row["engine"] == "blockwise"
        and row["records"] >= GATE_RECORDS
        and row["runs"] >= GATE_RUNS
    ]
    for row in gated:
        assert row["speedup"] >= GATE_SPEEDUP, (
            f"expected >= {GATE_SPEEDUP}x over heapq at "
            f"{row['records']} records / {row['runs']} runs, "
            f"got {row['speedup']:.2f}x"
        )


def main(argv: list) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--records", type=int, nargs="+",
                        default=[50_000, GATE_RECORDS])
    parser.add_argument("--runs", type=int, nargs="+", default=[8, GATE_RUNS])
    parser.add_argument("--workers", type=int, nargs="+", default=[2, 4])
    parser.add_argument("--dup-alphabet", type=int, default=0)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--json", default="",
        help="write rows as JSON to this path ('-' for stdout)",
    )
    args = parser.parse_args(argv[1:])
    rows = run_merge_engine_sweep(
        args.records,
        args.runs,
        workers_list=args.workers,
        seed=args.seed,
        dup_alphabet=args.dup_alphabet,
    )
    print_experiment("k-way merge engines (heapq vs blockwise vs parallel)", rows)
    check(rows)
    if args.json:
        payload = json.dumps(
            {
                "benchmark": "merge_engine",
                "config": {
                    "records": args.records,
                    "runs": args.runs,
                    "workers": args.workers,
                    "dup_alphabet": args.dup_alphabet,
                    "seed": args.seed,
                },
                "rows": rows,
            },
            indent=2,
        )
        if args.json == "-":
            print(payload)
        else:
            with open(args.json, "w") as handle:
                handle.write(payload + "\n")
    return 0


def bench_merge_engine(benchmark):
    """pytest-benchmark entry point (tiny, correctness-focused)."""
    rows = benchmark.pedantic(
        run_merge_engine_sweep,
        args=([20_000], [8]),
        kwargs={"workers_list": [2]},
        rounds=1,
        iterations=1,
    )
    check(rows)


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
