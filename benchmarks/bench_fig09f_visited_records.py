"""Fig. 9f: records visited during exact query answering.

Paper shape: the ADS family visits more records (>80K in the paper)
than the Coconut family (<59K) because Coconut's approximate seed is
better; a wider seed radius reduces visited records further.
"""

import numpy as np

from repro.bench import DatasetSpec, make_environment, print_experiment

SPEC = DatasetSpec("randomwalk", n_series=10_000, length=128, seed=7)
N_QUERIES = 30
MEMORY_FRACTION = 0.25


def visited_rows():
    memory = max(4096, int(SPEC.raw_bytes * MEMORY_FRACTION))
    queries = SPEC.queries(N_QUERIES)
    rows = []
    plans = [
        ("ADS+", None),
        ("ADSFull", None),
        ("CTree", 1),
        ("CTree", 10),
        ("CTreeFull", 1),
    ]
    for key, radius in plans:
        env = make_environment(key, SPEC, memory)
        env.index.build(env.raw)
        if radius is None:
            results = [env.index.exact_search(q) for q in queries]
            label = key
        else:
            results = [
                env.index.exact_search(q, radius_leaves=radius)
                for q in queries
            ]
            label = f"{key}({radius})"
        rows.append(
            {
                "index": label,
                "avg_visited": float(
                    np.mean([r.visited_records for r in results])
                ),
                "avg_pruned_%": 100
                * float(np.mean([r.pruned_fraction for r in results])),
            }
        )
    return rows


def bench_fig09f_visited_records(benchmark):
    rows = benchmark.pedantic(visited_rows, rounds=1, iterations=1)
    print_experiment("Fig. 9f — visited records during exact search", rows)
    visited = {r["index"]: r["avg_visited"] for r in rows}
    pruned = {r["index"]: r["avg_pruned_%"] for r in rows}
    # Coconut visits fewer records than the matching ADS variant; the
    # margin at this scale is smaller than the paper's 80K-vs-59K
    # because our scaled-down ADS leaves are less sparse (see
    # EXPERIMENTS.md).
    assert visited["CTree(1)"] < visited["ADS+"]
    assert visited["CTree(10)"] < visited["ADS+"]
    assert visited["CTreeFull(1)"] < visited["ADSFull"] * 1.1
    # A wider approximate seed gives a better best-so-far and prunes
    # more during the SIMS phase (the paper's Fig. 9d/9f link).
    assert visited["CTree(10)"] <= visited["CTree(1)"]
    assert pruned["CTree(10)"] >= pruned["CTree(1)"]
    # All SIMS-based methods prune the vast majority of the data.
    for name in ("CTree(1)", "CTree(10)", "CTreeFull(1)", "ADS+", "ADSFull"):
        assert pruned[name] > 85.0
