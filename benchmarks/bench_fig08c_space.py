"""Fig. 8c (+ Sec. 5.1 fill factors): indexing space overhead.

Paper shape: median-based splitting packs leaves (~97% fill measured
in the paper) so Coconut-Tree-Full has the smallest materialized
footprint; prefix-based leaves are sparse (~10%), so the ADS family
needs more leaves and more space.  Among secondary indexes,
Coconut-Tree needs about half the space of its competitors.
"""

from repro.bench import (
    DatasetSpec,
    MATERIALIZED_GROUP,
    SECONDARY_GROUP,
    make_environment,
    print_experiment,
)

SPEC = DatasetSpec("randomwalk", n_series=10_000, length=128, seed=7)
MEMORY_FRACTION = 0.25


def space_rows():
    rows = []
    memory = max(4096, int(SPEC.raw_bytes * MEMORY_FRACTION))
    for key in MATERIALIZED_GROUP + SECONDARY_GROUP:
        env = make_environment(key, SPEC, memory)
        report = env.index.build(env.raw)
        rows.append(
            {
                "index": key,
                "group": "materialized" if key in MATERIALIZED_GROUP else "secondary",
                "index_MB": report.index_bytes / 1e6,
                "data_MB": SPEC.raw_bytes / 1e6,
                "overhead_x": report.index_bytes / SPEC.raw_bytes,
                "n_leaves": report.n_leaves,
                "leaf_fill": report.avg_leaf_fill,
            }
        )
    return rows


def bench_fig08c_space_overhead(benchmark):
    rows = benchmark.pedantic(space_rows, rounds=1, iterations=1)
    print_experiment("Fig. 8c — index space overhead", rows)
    by_name = {r["index"]: r for r in rows}
    # Median split keeps leaves full; prefix split leaves them sparse.
    assert by_name["CTreeFull"]["leaf_fill"] > 0.9
    assert by_name["ADSFull"]["leaf_fill"] < 0.5
    assert by_name["CTree"]["leaf_fill"] > 2 * by_name["ADS+"]["leaf_fill"]
    # Coconut-Tree-Full is the smallest materialized index.
    materialized = [r for r in rows if r["group"] == "materialized"]
    smallest = min(materialized, key=lambda r: r["index_MB"])
    assert smallest["index"] in ("CTreeFull", "Vertical")
    assert (
        by_name["CTreeFull"]["index_MB"] < by_name["ADSFull"]["index_MB"]
    )
    # Secondary: Coconut-Tree needs about half the space of ADS+.
    assert by_name["CTree"]["index_MB"] < 0.7 * by_name["ADS+"]["index_MB"]
    # Prefix-split trees need more leaves for the same data.
    assert by_name["ADSFull"]["n_leaves"] > by_name["CTreeFull"]["n_leaves"]
    assert by_name["CTrieFull"]["n_leaves"] > by_name["CTreeFull"]["n_leaves"]
