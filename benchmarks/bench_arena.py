"""Arena page store vs. the dict-store oracle: zero-copy reads end to end.

The PR 4 bytes-level streaming moved whole runs per call, but every
byte still materialized through a per-page ``dict[int, bytes]``:
``read_run_bytes`` paid a join-and-pad copy per run, fetches paid one
per page, and shard detach re-inserted every page.  The arena store
(:mod:`repro.storage.disk`, ``store="arena"``) keeps each allocation
extent in one contiguous ``bytearray`` and serves reads as zero-copy
read-only memoryviews, end to end through ``PagedFile.read_stream``,
``BufferPool``, ``RawSeriesFile.scan``/``get_many`` and the merge
cursors.  This benchmark measures the win and *asserts* the contract
on every cell:

* scanned/fetched/merged records bit-identical between the stores;
* classified ``DiskStats``, access traces (``trace=True``) and head
  positions bit-identical — for the serial paths and the sharded merge
  cascade alike (the harness raises on any violation);
* at the headline configuration (>= 50k series) the copy-bound
  ``scan`` cell — the block-streaming fetch path the SIMS scans and
  the parallel query workers ride — must be >= 1.5x faster on the
  arena store, **on a host with >= 4 cores** (small/noisy CI boxes
  stay ungated and report honest numbers).  The ``fetch`` and
  ``merge`` cells are reported honestly without a gate: their wall
  clock is dominated by per-record Python work that is identical on
  both stores (and which the arena PR also cut — ``get_many`` now
  parses one float view per page instead of one buffer per record);
* the tracemalloc peak of the fetch sweep must not regress vs. the
  dict store — the copy-count regression check: views allocate less
  than join-and-pad, always.

Run standalone with::

    PYTHONPATH=src python benchmarks/bench_arena.py \
        [--n N ...] [--records R ...] [--runs K ...] [--workers W ...] \
        [--json PATH]
"""

import argparse
import json
import os
import sys
import tracemalloc

from repro.bench import print_experiment
from repro.bench.harness import PAGE_SIZE, run_arena_sweep

#: Headline configuration the >= 1.5x gate applies to.
GATE_SERIES = 50_000
GATE_SPEEDUP = 1.5
GATE_MIN_CORES = 4

#: The copy-regression check tolerates this much bookkeeping slack.
PEAK_SLACK = 1.10

COLUMNS = [
    "workload", "n_series", "records", "runs", "cores",
    "dict_s", "arena_s", "speedup", "identical", "io_identical",
]


def fetch_peak_bytes(store: str, n_series: int, length: int,
                     fetch_fraction: float, seed: int) -> int:
    """tracemalloc peak of one scan + fetch pass (build untraced)."""
    import numpy as np

    from repro.storage import RawSeriesFile, SimulatedDisk

    disk = SimulatedDisk(page_size=PAGE_SIZE, store=store)
    rng = np.random.default_rng(seed)
    data = rng.standard_normal((n_series, length)).astype(np.float32)
    raw = RawSeriesFile.create(disk, data)
    idxs = np.sort(
        rng.choice(
            n_series, size=max(1, int(n_series * fetch_fraction)),
            replace=False,
        )
    )
    tracemalloc.start()
    for _, block in raw.scan():
        pass
    raw.get_many(idxs)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return peak


def check(rows: list) -> None:
    """Assert the equivalence contract and the headline speedup gate."""
    for row in rows:
        assert row["identical"], f"answer-equivalence violation: {row}"
        assert row["io_identical"], f"I/O-trace violation: {row}"
    cores = os.cpu_count() or 1
    if cores < GATE_MIN_CORES:
        return
    gated = [
        row
        for row in rows
        if row["workload"] == "scan" and row["n_series"] >= GATE_SERIES
    ]
    for row in gated:
        assert row["speedup"] >= GATE_SPEEDUP, (
            f"expected >= {GATE_SPEEDUP}x over the dict page store on the "
            f"{row['workload']} cell at {row['n_series']} series on "
            f"{cores} cores, got {row['speedup']:.2f}x"
        )


def check_copy_regression(n_series: int, length: int, fetch_fraction: float,
                          seed: int) -> dict:
    """The fetch sweep must not allocate more on the arena store."""
    dict_peak = fetch_peak_bytes("dict", n_series, length, fetch_fraction, seed)
    arena_peak = fetch_peak_bytes(
        "arena", n_series, length, fetch_fraction, seed
    )
    assert arena_peak <= dict_peak * PEAK_SLACK, (
        f"copy-count regression: arena fetch sweep peaked at "
        f"{arena_peak} bytes vs {dict_peak} on the dict store"
    )
    return {
        "n_series": n_series,
        "dict_peak_bytes": dict_peak,
        "arena_peak_bytes": arena_peak,
        "peak_ratio": arena_peak / dict_peak if dict_peak else float("inf"),
    }


def main(argv: list) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, nargs="+",
                        default=[10_000, GATE_SERIES])
    parser.add_argument("--length", type=int, default=128)
    parser.add_argument("--fetch-fraction", type=float, default=0.3)
    parser.add_argument("--records", type=int, nargs="+", default=[200_000])
    parser.add_argument("--runs", type=int, nargs="+", default=[8])
    parser.add_argument("--workers", type=int, nargs="+", default=[1, 2])
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--json", default="",
        help="write rows as JSON to this path ('-' for stdout)",
    )
    args = parser.parse_args(argv[1:])
    rows = run_arena_sweep(
        args.n,
        length=args.length,
        fetch_fraction=args.fetch_fraction,
        record_counts=args.records,
        run_counts=args.runs,
        workers_list=args.workers,
        seed=args.seed,
    )
    print_experiment("arena vs dict page store", rows, columns=COLUMNS)
    check(rows)
    copy_check = check_copy_regression(
        max(args.n), args.length, args.fetch_fraction, args.seed
    )
    print(
        f"\nfetch-sweep tracemalloc peak: dict "
        f"{copy_check['dict_peak_bytes']:,} B, arena "
        f"{copy_check['arena_peak_bytes']:,} B "
        f"(ratio {copy_check['peak_ratio']:.3f})"
    )
    if args.json:
        payload = json.dumps(
            {
                "benchmark": "arena_page_store",
                "config": {
                    "n_series": args.n,
                    "length": args.length,
                    "fetch_fraction": args.fetch_fraction,
                    "records": args.records,
                    "runs": args.runs,
                    "workers": args.workers,
                    "seed": args.seed,
                    "cores": os.cpu_count() or 1,
                },
                "rows": rows,
                "copy_regression": copy_check,
            },
            indent=2,
        )
        if args.json == "-":
            print(payload)
        else:
            with open(args.json, "w") as handle:
                handle.write(payload + "\n")
    return 0


def bench_arena(benchmark):
    """pytest-benchmark entry point (tiny, correctness-focused)."""
    rows = benchmark.pedantic(
        run_arena_sweep,
        args=([4_000],),
        kwargs={"record_counts": [20_000], "run_counts": [8],
                "workers_list": [1, 2]},
        rounds=1,
        iterations=1,
    )
    check(rows)


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
