"""Fig. 9e: exact query answering at a fixed dataset size.

Paper shape: Coconut's SIMS beats ADS's SIMS because the better
approximate seed prunes more; visiting more leaves in the seed
(CTree(10)) prunes even more records but does not pay off in time —
the extra leaf visits offset the savings (the paper's "unexpected
impact" observation).
"""

import numpy as np

from repro.bench import DatasetSpec, make_environment, print_experiment

SPEC = DatasetSpec("randomwalk", n_series=10_000, length=128, seed=7)
N_QUERIES = 25
MEMORY_FRACTION = 0.25


def exact_rows():
    memory = max(4096, int(SPEC.raw_bytes * MEMORY_FRACTION))
    queries = SPEC.queries(N_QUERIES)
    rows = []
    for key in ("CTree", "CTreeFull", "ADS+", "ADSFull"):
        env = make_environment(key, SPEC, memory)
        env.index.build(env.raw)
        results = [env.index.exact_search(q) for q in queries]
        rows.append(
            {
                "index": key,
                "avg_total_s": float(np.mean([r.total_cost_s for r in results])),
                "avg_visited": float(np.mean([r.visited_records for r in results])),
                "avg_pruned_%": 100 * float(np.mean([r.pruned_fraction for r in results])),
            }
        )
    # The radius variant: seed exact search with a 10-leaf approximate.
    env = make_environment("CTree", SPEC, memory)
    env.index.build(env.raw)
    results = [env.index.exact_search(q, radius_leaves=10) for q in queries]
    rows.append(
        {
            "index": "CTree(10)",
            "avg_total_s": float(np.mean([r.total_cost_s for r in results])),
            "avg_visited": float(np.mean([r.visited_records for r in results])),
            "avg_pruned_%": 100 * float(np.mean([r.pruned_fraction for r in results])),
        }
    )
    return rows


def bench_fig09e_exact_fixed_size(benchmark):
    rows = benchmark.pedantic(exact_rows, rounds=1, iterations=1)
    print_experiment("Fig. 9e — exact query cost (fixed size)", rows)
    cost = {r["index"]: r["avg_total_s"] for r in rows}
    assert cost["CTree"] < cost["ADS+"]
    assert cost["CTreeFull"] < cost["ADSFull"]
