"""Fig. 10a: mixed insert/query workload vs. update batch size.

Paper shape: with highly fragmented (tiny) batches the ADS family
behaves better; as batches grow, Coconut-Tree wins because its bulk
merge performs fewer splits per inserted series.
"""

from repro.bench import DatasetSpec, print_experiment, run_update_workload

SPEC = DatasetSpec("randomwalk", n_series=8_000, length=128, seed=7)
BATCH_SIZES = [50, 500, 4_000]
INDEXES = ["CTree", "ADS+"]


def bench_fig10a_mixed_updates(benchmark):
    rows = benchmark.pedantic(
        run_update_workload,
        args=(INDEXES, SPEC, BATCH_SIZES),
        kwargs={"n_queries": 10},
        rounds=1,
        iterations=1,
    )
    print_experiment("Fig. 10a — mixed insert/query workload", rows)
    cost = {(r["index"], r["batch_size"]): r["total_s"] for r in rows}
    # Coconut-Tree wins with large batches.
    assert cost[("CTree", BATCH_SIZES[-1])] < cost[("ADS+", BATCH_SIZES[-1])]
    # The Coconut/ADS cost ratio improves monotonically with batch size.
    ratios = [
        cost[("CTree", b)] / cost[("ADS+", b)] for b in BATCH_SIZES
    ]
    assert ratios[-1] < ratios[0]
