"""Ablation: LSM-style updates (the paper's future work, implemented).

The paper's conclusion proposes LSM trees for efficient updates.  This
bench replays the Fig. 10a mixed workload with Coconut-LSM against
Coconut-Tree's in-place leaf merging: the LSM variant should absorb
fine-grained batches far more cheaply (sequential run flushes instead
of per-leaf read-modify-writes), at a modest query penalty from
probing multiple runs.
"""

import numpy as np

from repro.bench import DatasetSpec, PAGE_SIZE, default_config, print_experiment
from repro.core import CoconutLSM, CoconutTree
from repro.series import random_walk
from repro.storage import RawSeriesFile, SimulatedDisk

SPEC = DatasetSpec("randomwalk", n_series=6_000, length=128, seed=7)
BATCH_SIZES = [25, 200]
N_BATCHES = 12
N_QUERIES = 8


def run_one(kind: str, batch_size: int) -> dict:
    disk = SimulatedDisk(page_size=PAGE_SIZE)
    data = SPEC.generate()
    raw = RawSeriesFile.create(disk, data)
    disk.reset_stats()
    memory = max(4096, SPEC.raw_bytes // 100)
    config = default_config(SPEC.length)
    if kind == "Coconut-LSM":
        index = CoconutLSM(disk, memory, config=config)
    else:
        index = CoconutTree(disk, memory, config=config, leaf_size=100)
    build = index.build(raw)
    insert_s = 0.0
    for b in range(N_BATCHES):
        batch = random_walk(batch_size, length=SPEC.length, seed=100 + b)
        insert_s += index.insert_batch(batch).total_cost_s
    query_s = 0.0
    for query in SPEC.queries(N_QUERIES):
        query_s += index.exact_search(query).total_cost_s
    return {
        "index": kind,
        "batch_size": batch_size,
        "build_s": build.total_cost_s,
        "insert_s": insert_s,
        "query_s": query_s,
        "total_s": build.total_cost_s + insert_s + query_s,
    }


def workload_rows():
    rows = []
    for batch_size in BATCH_SIZES:
        for kind in ("Coconut-LSM", "Coconut-Tree"):
            rows.append(run_one(kind, batch_size))
    return rows


def bench_ablation_lsm_updates(benchmark):
    rows = benchmark.pedantic(workload_rows, rounds=1, iterations=1)
    print_experiment("Ablation — LSM updates (paper future work)", rows)
    cost = {(r["index"], r["batch_size"]): r for r in rows}
    for batch_size in BATCH_SIZES:
        lsm = cost[("Coconut-LSM", batch_size)]
        tree = cost[("Coconut-Tree", batch_size)]
        # LSM absorbs inserts far more cheaply ...
        assert lsm["insert_s"] < tree["insert_s"]
    # ... and for fine-grained batches it wins the whole workload.
    smallest = BATCH_SIZES[0]
    assert (
        cost[("Coconut-LSM", smallest)]["total_s"]
        < cost[("Coconut-Tree", smallest)]["total_s"]
    )
