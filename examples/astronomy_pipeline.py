"""Astronomy pipeline: the paper's Fig. 10b experiment in miniature.

Run with:  python examples/astronomy_pipeline.py

Indexes a collection of light-curve-like series under a *restricted*
memory budget and compares the complete workload (construction + exact
queries) of Coconut-Tree against the previous state of the art (ADS+),
reproducing the paper's headline: bottom-up bulk loading wins when the
data outgrows main memory.
"""

from repro import ADSIndex, CoconutTree, RawSeriesFile, SAXConfig, SimulatedDisk
from repro.series import astronomy, query_workload

N_SERIES = 15_000
LENGTH = 128
MEMORY_FRACTION = 0.02
N_QUERIES = 10


def run(index_cls_name: str) -> None:
    data = astronomy(N_SERIES, length=LENGTH, seed=11)
    queries = query_workload("astronomy", N_QUERIES, length=LENGTH, seed=11)
    memory = int(data.nbytes * MEMORY_FRACTION)

    disk = SimulatedDisk()
    raw = RawSeriesFile.create(disk, data)
    disk.reset_stats()
    config = SAXConfig(series_length=LENGTH, word_length=8, cardinality=256)
    if index_cls_name == "Coconut-Tree":
        index = CoconutTree(disk, memory, config=config, leaf_size=100)
    else:
        index = ADSIndex(disk, memory, config=config, leaf_size=100)

    build = index.build(raw)
    query_cost = 0.0
    worst = 0
    for query in queries:
        result = index.exact_search(query)
        query_cost += result.total_cost_s
        worst = max(worst, result.visited_records)
    print(
        f"{index.name:12s}  build {build.total_cost_s:7.2f} s   "
        f"queries {query_cost:7.2f} s   total "
        f"{build.total_cost_s + query_cost:7.2f} s   "
        f"index {build.index_bytes / 1e6:5.1f} MB   "
        f"max visited {worst}"
    )


def main() -> None:
    print(
        f"{N_SERIES} light curves of length {LENGTH}, memory = "
        f"{MEMORY_FRACTION:.0%} of data, {N_QUERIES} exact queries\n"
    )
    run("Coconut-Tree")
    run("ADS+")
    print(
        "\nThe skewed, dense astronomy data makes pruning harder for "
        "every index (paper Sec. 5.3), but bottom-up bulk loading keeps "
        "Coconut-Tree's construction I/O sequential and cheap."
    )


if __name__ == "__main__":
    main()
