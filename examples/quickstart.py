"""Quickstart: build a Coconut-Tree index and answer similarity queries.

Run with:  python examples/quickstart.py

Walks through the full life of a Coconut index:
1. generate a data series collection (random walks, as in the paper),
2. store it as the raw file on the simulated disk,
3. bulk-load a Coconut-Tree via sortable invSAX summarizations,
4. answer approximate and exact nearest-neighbor queries,
5. inspect the I/O the disk access model charged for each step.
"""

import numpy as np

from repro import (
    CoconutTree,
    RawSeriesFile,
    SAXConfig,
    SimulatedDisk,
    random_walk,
)

N_SERIES = 20_000
LENGTH = 256


def main() -> None:
    # 1. A collection of z-normalized random-walk series.
    data = random_walk(N_SERIES, length=LENGTH, seed=42)
    print(f"dataset: {N_SERIES} series of length {LENGTH} "
          f"({data.nbytes / 1e6:.1f} MB)")

    # 2. The raw file lives on a simulated disk that counts classified
    #    (sequential vs random) page I/Os — the paper's cost model.
    disk = SimulatedDisk(page_size=8192)
    raw = RawSeriesFile.create(disk, data)
    disk.reset_stats()

    # 3. Bulk-load Coconut-Tree: summarize -> invSAX keys -> external
    #    sort -> write the contiguous leaf level bottom-up.
    config = SAXConfig(series_length=LENGTH, word_length=16, cardinality=256)
    index = CoconutTree(
        disk,
        memory_bytes=2 << 20,  # 2 MiB budget: the sort will spill
        config=config,
        leaf_size=200,
    )
    report = index.build(raw)
    print(
        f"\nbuilt {report.index_name}: {report.n_leaves} leaves, "
        f"avg fill {report.avg_leaf_fill:.0%}, "
        f"index {report.index_bytes / 1e6:.2f} MB"
    )
    print(
        f"construction I/O: {report.io.sequential_writes} sequential + "
        f"{report.io.random_writes} random writes, "
        f"{report.io.sequential_reads} sequential + "
        f"{report.io.random_reads} random reads "
        f"(~{report.simulated_io_ms / 1000:.2f} s simulated)"
    )

    # 4. Queries: a fresh series from the same source.
    query = random_walk(1, length=LENGTH, seed=7)[0]

    approx = index.approximate_search(query)
    print(
        f"\napproximate: series #{approx.answer_idx} at distance "
        f"{approx.distance:.3f} (visited {approx.visited_records} records, "
        f"~{approx.simulated_io_ms:.1f} ms simulated I/O)"
    )

    exact = index.exact_search(query)
    print(
        f"exact:       series #{exact.answer_idx} at distance "
        f"{exact.distance:.3f} (visited {exact.visited_records} of "
        f"{N_SERIES} records, pruned {exact.pruned_fraction:.1%})"
    )

    # 5. Ground truth, the expensive way.
    true = np.sqrt(((data.astype(np.float64) - query) ** 2).sum(axis=1))
    assert np.isclose(exact.distance, true.min(), rtol=1e-6)
    print(f"\nverified against brute force: min distance {true.min():.3f} ✓")


if __name__ == "__main__":
    main()
