"""Seismic monitoring: index waveform windows, find similar events.

Run with:  python examples/seismic_monitoring.py

Mirrors how the paper's seismic dataset was collected (Sec. 5): a
continuous seismogram is cut into fixed-length windows with a sliding
step, every window is z-normalized and indexed, and an analyst asks
"where else did something like this event happen?".  The example also
shows the Coconut-Tree update path: a new day of recordings arrives
as a batch insert.
"""

import numpy as np

from repro import (
    CoconutTree,
    RawSeriesFile,
    SAXConfig,
    SimulatedDisk,
    sliding_windows,
)

WINDOW = 128
STEP = 16


def synthetic_seismogram(n_samples: int, n_events: int, seed: int) -> np.ndarray:
    """A continuous recording: noise plus decaying wave packets."""
    rng = np.random.default_rng(seed)
    t = np.arange(n_samples, dtype=np.float64)
    signal = 0.1 * rng.standard_normal(n_samples)
    for _ in range(n_events):
        onset = rng.uniform(0, n_samples - WINDOW)
        freq = rng.uniform(0.03, 0.15)
        rel = t - onset
        signal += np.where(
            rel >= 0,
            rng.uniform(1.0, 4.0)
            * np.exp(-0.02 * np.clip(rel, 0, None))
            * np.sin(2 * np.pi * freq * rel),
            0.0,
        )
    return signal


def main() -> None:
    # Day 1: record, window, index.
    day1 = synthetic_seismogram(200_000, n_events=40, seed=1)
    windows = sliding_windows(day1, WINDOW, step=STEP)
    print(f"day 1: {len(windows)} windows of {WINDOW} samples")

    disk = SimulatedDisk()
    raw = RawSeriesFile.create(disk, windows)
    disk.reset_stats()
    index = CoconutTree(
        disk,
        memory_bytes=1 << 21,
        config=SAXConfig(series_length=WINDOW, word_length=16, cardinality=256),
        leaf_size=200,
    )
    report = index.build(raw)
    print(
        f"indexed in ~{report.total_cost_s:.2f} s "
        f"({report.n_leaves} leaves, fill {report.avg_leaf_fill:.0%})"
    )

    # An analyst picks one event window and looks for similar shaking.
    event = windows[len(windows) // 3]
    matches = index.exact_search(event)
    sample_position = matches.answer_idx * STEP
    print(
        f"\nclosest other event: window #{matches.answer_idx} "
        f"(sample offset {sample_position}), distance {matches.distance:.3f}"
    )
    print(
        f"scanned {matches.visited_records} of {len(windows)} windows "
        f"(pruned {matches.pruned_fraction:.1%})"
    )

    # Day 2 arrives: append a batch without rebuilding from scratch.
    day2 = synthetic_seismogram(50_000, n_events=15, seed=2)
    new_windows = sliding_windows(day2, WINDOW, step=STEP)
    update = index.insert_batch(new_windows)
    print(
        f"\nday 2: inserted {update.n_series} windows in "
        f"~{update.total_cost_s:.2f} s; index now has "
        f"{index.leaf_stats()[0]} leaves"
    )

    # The same query now also considers day-2 data.
    again = index.exact_search(event)
    print(
        f"re-query across both days: best distance {again.distance:.3f} "
        f"(was {matches.distance:.3f})"
    )
    assert again.distance <= matches.distance + 1e-9


if __name__ == "__main__":
    main()
