"""Streaming ingestion: Coconut-LSM vs. Coconut-Tree in-place merges.

Run with:  python examples/streaming_updates.py

The paper's conclusion proposes LSM trees as the way to make Coconut
handle efficient updates; this example runs that design next to the
in-place leaf-merging path of Coconut-Tree on a trickle-style
workload (many small batches, occasional queries) and prints the
trade-off: sequential run flushes vs. per-leaf read-modify-writes on
ingest, one probe per run vs. one probe total at query time.
"""

import numpy as np

from repro import CoconutTree, RawSeriesFile, SAXConfig, SimulatedDisk, random_walk
from repro.core import CoconutLSM

LENGTH = 128
INITIAL = 6_000
BATCHES = 40
BATCH_SIZE = 50
QUERY_EVERY = 10
CONFIG = SAXConfig(series_length=LENGTH, word_length=8, cardinality=256)


def run(kind: str) -> None:
    data = random_walk(INITIAL, length=LENGTH, seed=21)
    disk = SimulatedDisk()
    raw = RawSeriesFile.create(disk, data)
    disk.reset_stats()
    memory = INITIAL * LENGTH * 4 // 100  # 1% of the initial data
    if kind == "Coconut-LSM":
        index = CoconutLSM(disk, memory, config=CONFIG)
    else:
        index = CoconutTree(disk, memory, config=CONFIG, leaf_size=100)
    build = index.build(raw)

    insert_cost = query_cost = 0.0
    n_queries = 0
    for b in range(BATCHES):
        batch = random_walk(BATCH_SIZE, length=LENGTH, seed=100 + b)
        insert_cost += index.insert_batch(batch).total_cost_s
        if (b + 1) % QUERY_EVERY == 0:
            query = random_walk(1, length=LENGTH, seed=500 + b)[0]
            query_cost += index.exact_search(query).total_cost_s
            n_queries += 1

    structure = (
        f"{index.n_runs} runs ({index.n_flushes} flushes, "
        f"{index.n_merges} merges)"
        if kind == "Coconut-LSM"
        else f"{index.leaf_stats()[0]} leaves"
    )
    print(
        f"{kind:13s} build {build.total_cost_s:6.2f} s   "
        f"ingest {insert_cost:6.2f} s   "
        f"{n_queries} queries {query_cost:6.2f} s   -> {structure}"
    )


def main() -> None:
    print(
        f"{INITIAL} series bulk-loaded, then {BATCHES} batches of "
        f"{BATCH_SIZE} with a query every {QUERY_EVERY} batches "
        f"(memory = 1% of data)\n"
    )
    run("Coconut-Tree")
    run("Coconut-LSM")
    print(
        "\nLSM runs absorb the trickle with sequential flushes; the "
        "balanced tree pays per-leaf read-modify-writes per batch but "
        "answers queries from a single structure."
    )


if __name__ == "__main__":
    main()
