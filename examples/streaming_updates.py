"""Streaming ingestion: Coconut-LSM vs. Coconut-Tree in-place merges.

Run with:  python examples/streaming_updates.py

The paper's conclusion proposes LSM trees as the way to make Coconut
handle efficient updates; this example runs that design next to the
in-place leaf-merging path of Coconut-Tree on a trickle-style
workload (many small batches, occasional queries) and prints the
trade-off: sequential run flushes vs. per-leaf read-modify-writes on
ingest, one probe per run vs. one probe total at query time.

The third variant wraps the same LSM in :class:`repro.CoconutService`
— the online serving layer: WAL-durable ingest acknowledged batch by
batch, queries admitted through a bounded queue and answered against
snapshot-isolated read-only sessions, and a mid-stream power loss that
the service rides out (queries keep serving the last acknowledged
snapshot) before ``restart()`` recovers every acknowledged row.
"""

import numpy as np

from repro import (
    CoconutService,
    CoconutTree,
    RawSeriesFile,
    SAXConfig,
    SimulatedDisk,
    random_walk,
)
from repro.core import CoconutLSM
from repro.service import ServiceUnavailable
from repro.storage import FaultyDevice

LENGTH = 128
INITIAL = 6_000
BATCHES = 40
BATCH_SIZE = 50
QUERY_EVERY = 10
CONFIG = SAXConfig(series_length=LENGTH, word_length=8, cardinality=256)


def run(kind: str) -> None:
    data = random_walk(INITIAL, length=LENGTH, seed=21)
    disk = SimulatedDisk()
    raw = RawSeriesFile.create(disk, data)
    disk.reset_stats()
    memory = INITIAL * LENGTH * 4 // 100  # 1% of the initial data
    if kind == "Coconut-LSM":
        index = CoconutLSM(disk, memory, config=CONFIG)
    else:
        index = CoconutTree(disk, memory, config=CONFIG, leaf_size=100)
    build = index.build(raw)

    insert_cost = query_cost = 0.0
    n_queries = 0
    for b in range(BATCHES):
        batch = random_walk(BATCH_SIZE, length=LENGTH, seed=100 + b)
        insert_cost += index.insert_batch(batch).total_cost_s
        if (b + 1) % QUERY_EVERY == 0:
            query = random_walk(1, length=LENGTH, seed=500 + b)[0]
            query_cost += index.exact_search(query).total_cost_s
            n_queries += 1

    structure = (
        f"{index.n_runs} runs ({index.n_flushes} flushes, "
        f"{index.n_merges} merges)"
        if kind == "Coconut-LSM"
        else f"{index.leaf_stats()[0]} leaves"
    )
    print(
        f"{kind:13s} build {build.total_cost_s:6.2f} s   "
        f"ingest {insert_cost:6.2f} s   "
        f"{n_queries} queries {query_cost:6.2f} s   -> {structure}"
    )


def run_service() -> None:
    """The online layer: durable acks, serving through a power loss."""
    data = random_walk(INITIAL, length=LENGTH, seed=21)
    disk = SimulatedDisk()
    raw = RawSeriesFile(disk, LENGTH)
    raw.append_batch(data)
    device = FaultyDevice(disk, None)
    memory = INITIAL * LENGTH * 4 // 100
    svc = CoconutService(
        disk, raw, memory, sax_config=CONFIG, device=device
    )
    svc.bootstrap()

    crash_at = BATCHES // 2
    acked = raw.n_series
    n_queries = 0
    for b in range(BATCHES):
        batch = random_walk(BATCH_SIZE, length=LENGTH, seed=100 + b)
        if b == crash_at:
            device.halt()  # power loss mid-stream
        try:
            receipt = svc.ingest(batch, expected_first=acked)
            acked = receipt.first_index + receipt.n_rows
        except ServiceUnavailable as exc:
            # Queries keep serving the last acknowledged snapshot.
            ticket = svc.query(batch[0], mode="exact", k=1)
            assert ticket.snapshot_series == acked
            print(
                f"  batch {b}: ingest rejected ({exc.reason}); queries "
                f"still serve the {acked}-row snapshot"
            )
            device.reopen()
            svc.restart()  # recovers every acknowledged row
            receipt = svc.ingest(batch, expected_first=acked)
            acked = receipt.first_index + receipt.n_rows
        if (b + 1) % QUERY_EVERY == 0:
            query = random_walk(1, length=LENGTH, seed=500 + b)[0]
            ticket = svc.query(query, mode="exact", k=1)
            assert ticket.status == "served"
            n_queries += 1
    svc.stop(drain=True)

    assert acked == raw.n_series == INITIAL + BATCHES * BATCH_SIZE
    stats = svc.stats_snapshot()
    print(
        f"{'CoconutService':13s} ingest {stats['ingest_batches']} acked "
        f"batches   {n_queries + 1} queries served   "
        f"-> {stats['lsm']['runs']} runs "
        f"({stats['lsm']['flushes']} flushes, "
        f"{stats['lsm']['merges']} merges), "
        f"{stats['crashes']} crash, {stats['restarts']} restart, "
        f"every ack recovered"
    )


def main() -> None:
    print(
        f"{INITIAL} series bulk-loaded, then {BATCHES} batches of "
        f"{BATCH_SIZE} with a query every {QUERY_EVERY} batches "
        f"(memory = 1% of data)\n"
    )
    run("Coconut-Tree")
    run("Coconut-LSM")
    print(
        "\nLSM runs absorb the trickle with sequential flushes; the "
        "balanced tree pays per-leaf read-modify-writes per batch but "
        "answers queries from a single structure.\n"
    )
    run_service()
    print(
        "\nThe service rides the same LSM: each ingest batch is "
        "acknowledged only after its WAL frame is durable, queries "
        "answer from snapshot-isolated sessions, and a power loss "
        "sheds ingest loudly while serving continues — restart() "
        "brings back every acknowledged row."
    )


if __name__ == "__main__":
    main()
