"""Finance: correlation search over price series, plus a DTW re-rank.

Run with:  python examples/finance_similarity.py

The paper notes that random walks "effectively model real-world
financial data" and that minimizing Euclidean distance on z-normalized
series is equivalent to maximizing Pearson correlation.  This example
finds, for a target instrument, the most correlated instruments in a
universe of synthetic price histories — then re-ranks the shortlist
with dynamic time warping (the paper's noted DTW extension).
"""

import numpy as np

from repro import (
    CoconutTree,
    RawSeriesFile,
    SAXConfig,
    SimulatedDisk,
    dtw,
    z_normalize,
)

N_INSTRUMENTS = 8_000
N_DAYS = 128


def synthetic_prices(n: int, days: int, seed: int) -> np.ndarray:
    """Geometric-random-walk price histories with sector structure."""
    rng = np.random.default_rng(seed)
    n_sectors = 12
    sector_paths = np.cumsum(
        rng.standard_normal((n_sectors, days)) * 0.01, axis=1
    )
    sector_of = rng.integers(0, n_sectors, size=n)
    idiosyncratic = np.cumsum(rng.standard_normal((n, days)) * 0.02, axis=1)
    log_prices = sector_paths[sector_of] * 2.0 + idiosyncratic
    return np.exp(log_prices) * 100.0, sector_of


def correlation_from_distance(distance: float, length: int) -> float:
    """Pearson r from the ED of z-normalized series: d^2 = 2n(1 - r)."""
    return 1.0 - distance * distance / (2.0 * length)


def main() -> None:
    prices, sector_of = synthetic_prices(N_INSTRUMENTS, N_DAYS, seed=3)
    returns_normalized = z_normalize(prices)
    print(
        f"universe: {N_INSTRUMENTS} instruments x {N_DAYS} days, "
        f"{prices.nbytes / 1e6:.1f} MB of raw prices"
    )

    disk = SimulatedDisk()
    raw = RawSeriesFile.create(disk, returns_normalized)
    disk.reset_stats()
    index = CoconutTree(
        disk,
        memory_bytes=1 << 21,
        config=SAXConfig(series_length=N_DAYS, word_length=16, cardinality=256),
        leaf_size=200,
    )
    index.build(raw)

    target = 1234
    query = returns_normalized[target]

    # Sanity: the exact nearest neighbor of an indexed series is itself.
    exact = index.exact_search(query)
    assert exact.answer_idx == target and exact.distance < 1e-5

    # The most correlated *peer*: scan the z-order neighborhood from a
    # widened approximate pass and drop the self-match.
    result = index.approximate_search(query, radius_leaves=15)
    neighborhood_ids = np.argsort(
        np.linalg.norm(
            returns_normalized.astype(np.float64) - query[None, :], axis=1
        )
    )
    best_other = int(neighborhood_ids[1])  # rank 0 is the target itself
    distance_to_peer = float(
        np.linalg.norm(
            query.astype(np.float64)
            - returns_normalized[best_other].astype(np.float64)
        )
    )
    r = correlation_from_distance(distance_to_peer, N_DAYS)
    print(
        f"\ninstrument #{target} (sector {sector_of[target]}): most "
        f"correlated peer is #{best_other} (sector {sector_of[best_other]}), "
        f"Pearson r = {r:.3f}"
    )

    # DTW re-rank of the z-order neighborhood tolerates small lags.
    neighborhood = np.argsort(
        np.linalg.norm(
            returns_normalized.astype(np.float64) - query[None, :], axis=1
        )
    )[1:6]
    print("\ntop-5 by Euclidean distance, re-ranked by DTW (window 5):")
    scored = []
    for idx in neighborhood:
        warped = dtw(query, returns_normalized[idx], window=5)
        scored.append((warped, idx))
    for rank, (warped, idx) in enumerate(sorted(scored), start=1):
        print(
            f"  {rank}. instrument #{idx:5d}  sector {sector_of[idx]:2d}  "
            f"DTW {warped:.3f}"
        )


if __name__ == "__main__":
    main()
