"""Setup shim for environments without the `wheel` package.

All project metadata lives in pyproject.toml; this file only enables
`pip install -e .` via the legacy setuptools code path.
"""

from setuptools import setup

setup()
