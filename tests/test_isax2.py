"""Tests for the iSAX 2.0 baseline (top-down buffered construction)."""

import numpy as np
import pytest

from repro.indexes import ISAX2Index, SerialScan
from repro.series import random_walk
from repro.storage import RawSeriesFile, SimulatedDisk
from repro.summaries import SAXConfig

CONFIG = SAXConfig(series_length=64, word_length=8, cardinality=16)


def build(n=400, materialized=True, leaf_size=32, memory=1 << 20, seed=0):
    disk = SimulatedDisk(page_size=2048)
    data = random_walk(n, length=64, seed=seed)
    raw = RawSeriesFile.create(disk, data)
    index = ISAX2Index(
        disk,
        memory_bytes=memory,
        config=CONFIG,
        leaf_size=leaf_size,
        materialized=materialized,
    )
    report = index.build(raw)
    return disk, index, data, report


def test_all_series_indexed_once():
    _, index, _, _ = build(n=321)
    offsets = []
    for leaf in index.tree.leaves:
        records = index.tree._leaf_records_in_memory(leaf)
        offsets.extend(int(o) for o in records["off"])
    assert sorted(offsets) == list(range(321))


def test_leaves_respect_capacity_after_splits():
    _, index, _, report = build(n=600, leaf_size=16)
    assert report.extra["splits"] > 0
    for leaf in index.tree.leaves:
        assert leaf.count <= 16 or len(set(map(tuple, (
            index.tree._leaf_records_in_memory(leaf)["w"]
        )))) == 1


def test_leaf_members_match_leaf_prefix():
    _, index, _, _ = build(n=300, leaf_size=16)
    for leaf in index.tree.leaves:
        records = index.tree._leaf_records_in_memory(leaf)
        for word in records["w"]:
            assert leaf.prefix.matches(word, CONFIG)


def test_topdown_construction_does_random_io():
    """Sec. 3.1: tight memory makes construction random-I/O heavy."""
    disk, _, _, _ = build(n=800, leaf_size=16, memory=4096)
    assert disk.stats.random_writes > disk.stats.sequential_writes


def test_prefix_leaves_scattered_across_disk():
    """Split-time allocation scatters the leaf pages (non-contiguity)."""
    _, index, _, _ = build(n=600, leaf_size=16)
    pages = sorted(
        leaf.first_page for leaf in index.tree.leaves if leaf.first_page >= 0
    )
    gaps = np.diff(pages)
    assert (gaps > 1).any()


def test_exact_search_matches_serial_scan():
    disk, index, data, _ = build(n=300, seed=1)
    oracle = SerialScan(disk, memory_bytes=1024)
    oracle.build(index.raw)
    for query in random_walk(10, length=64, seed=42):
        got = index.exact_search(query)
        want = oracle.exact_search(query)
        assert got.distance == pytest.approx(want.distance, rel=1e-6)


def test_exact_search_nonmaterialized_matches():
    disk, index, data, _ = build(n=250, materialized=False, seed=2)
    oracle = SerialScan(disk, memory_bytes=1024)
    oracle.build(index.raw)
    for query in random_walk(6, length=64, seed=43):
        got = index.exact_search(query)
        want = oracle.exact_search(query)
        assert got.distance == pytest.approx(want.distance, rel=1e-6)


def test_approximate_search_returns_plausible_answer():
    _, index, data, _ = build(n=400, seed=3)
    query = random_walk(1, length=64, seed=44)[0]
    result = index.approximate_search(query)
    assert 0 <= result.answer_idx < 400
    assert np.isfinite(result.distance)


def test_insert_batch_updates_answers():
    disk, index, data, _ = build(n=200, seed=4)
    extra = random_walk(50, length=64, seed=45)
    index.insert_batch(extra)
    index.tree.flush_all()
    oracle = SerialScan(disk, memory_bytes=1024)
    oracle.build(index.raw)
    query = extra[7]
    got = index.exact_search(query)
    assert got.distance == pytest.approx(0.0, abs=1e-5)


def test_low_fill_factor_of_prefix_splitting():
    """Sec. 3.2 / 5.1: prefix-split leaves are sparsely populated."""
    _, index, _, _ = build(n=1000, leaf_size=64, seed=5)
    _, fill = index.leaf_stats()
    assert fill < 0.75


def test_storage_accounts_dead_pages():
    disk, index, _, _ = build(n=600, leaf_size=16, seed=6)
    assert index.storage_bytes() >= sum(
        leaf.n_pages for leaf in index.tree.leaves
    ) * disk.page_size
