"""Tests for z-normalization and batch validation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.series import is_z_normalized, validate_series_batch, z_normalize


def test_znorm_single_series():
    out = z_normalize(np.array([1.0, 2.0, 3.0, 4.0]))
    assert abs(out.mean()) < 1e-6
    assert abs(out.std() - 1.0) < 1e-6


def test_znorm_batch():
    rng = np.random.default_rng(0)
    data = rng.uniform(-100, 100, size=(20, 64))
    out = z_normalize(data)
    assert out.shape == data.shape
    assert out.dtype == np.float32
    np.testing.assert_allclose(out.mean(axis=1), 0.0, atol=1e-5)
    np.testing.assert_allclose(out.std(axis=1), 1.0, atol=1e-5)


def test_constant_series_become_zero():
    out = z_normalize(np.full(16, 3.5))
    np.testing.assert_array_equal(out, np.zeros(16, dtype=np.float32))


def test_constant_rows_in_batch_become_zero():
    data = np.vstack([np.full(8, 2.0), np.arange(8, dtype=float)])
    out = z_normalize(data)
    np.testing.assert_array_equal(out[0], np.zeros(8, dtype=np.float32))
    assert out[1].std() == pytest.approx(1.0, abs=1e-5)


def test_is_z_normalized():
    rng = np.random.default_rng(1)
    data = z_normalize(rng.standard_normal((5, 32)))
    assert is_z_normalized(data)
    assert not is_z_normalized(rng.uniform(5, 10, size=(5, 32)))


def test_znorm_idempotent():
    rng = np.random.default_rng(2)
    once = z_normalize(rng.standard_normal((3, 16)) * 7 + 3)
    twice = z_normalize(once)
    np.testing.assert_allclose(once, twice, atol=1e-5)


def test_validate_promotes_1d():
    out = validate_series_batch(np.arange(4, dtype=np.float32))
    assert out.shape == (1, 4)


def test_validate_rejects_bad_shapes_and_values():
    with pytest.raises(ValueError):
        validate_series_batch(np.zeros((2, 3, 4)))
    with pytest.raises(ValueError):
        validate_series_batch(np.array([[1.0, np.nan]]))
    with pytest.raises(ValueError):
        validate_series_batch(np.zeros((2, 8)), length=16)


@settings(max_examples=50, deadline=None)
@given(
    hnp.arrays(
        np.float64,
        hnp.array_shapes(min_dims=2, max_dims=2, min_side=4, max_side=64),
        elements=st.floats(-1e6, 1e6),
    )
)
def test_property_znorm_output_is_normalized(data):
    out = z_normalize(data)
    assert is_z_normalized(out, tolerance=1e-2)
