"""Edge-case tests across configurations the main suites don't hit."""

import numpy as np
import pytest

from repro.core import CoconutTree, CoconutTrie
from repro.series import euclidean_batch, random_walk, z_normalize
from repro.storage import RawSeriesFile, SimulatedDisk
from repro.summaries import SAXConfig


def brute(query, data):
    return float(
        euclidean_batch(
            np.asarray(query, dtype=np.float64), data.astype(np.float64)
        ).min()
    )


def test_long_series_span_multiple_pages_in_materialized_index():
    """Records larger than a page must survive the leaf round-trip."""
    disk = SimulatedDisk(page_size=512)  # 512-float series = 2 KB record
    data = random_walk(60, length=512, seed=0)
    raw = RawSeriesFile.create(disk, data)
    config = SAXConfig(series_length=512, word_length=8, cardinality=16)
    index = CoconutTree(
        disk, memory_bytes=1 << 22, config=config, leaf_size=8,
        materialized=True,
    )
    index.build(raw)
    query = random_walk(1, length=512, seed=1)[0]
    assert index.exact_search(query).distance == pytest.approx(
        brute(query, data), rel=1e-6
    )


@pytest.mark.parametrize("word_length", [2, 4, 16])
def test_ctree_works_across_word_lengths(word_length):
    disk = SimulatedDisk(page_size=2048)
    data = random_walk(150, length=64, seed=2)
    raw = RawSeriesFile.create(disk, data)
    config = SAXConfig(
        series_length=64, word_length=word_length, cardinality=64
    )
    index = CoconutTree(disk, memory_bytes=1 << 20, config=config, leaf_size=16)
    index.build(raw)
    query = random_walk(1, length=64, seed=3)[0]
    assert index.exact_search(query).distance == pytest.approx(
        brute(query, data), rel=1e-6
    )


@pytest.mark.parametrize("cardinality", [2, 4, 1024])
def test_ctree_works_across_cardinalities(cardinality):
    disk = SimulatedDisk(page_size=2048)
    data = random_walk(120, length=64, seed=4)
    raw = RawSeriesFile.create(disk, data)
    config = SAXConfig(
        series_length=64, word_length=8, cardinality=cardinality
    )
    index = CoconutTree(disk, memory_bytes=1 << 20, config=config, leaf_size=16)
    index.build(raw)
    query = random_walk(1, length=64, seed=5)[0]
    assert index.exact_search(query).distance == pytest.approx(
        brute(query, data), rel=1e-6
    )


def test_outlier_query_far_from_all_data():
    """A query outside the indexed distribution still answers exactly."""
    disk = SimulatedDisk(page_size=2048)
    data = random_walk(200, length=64, seed=6)
    raw = RawSeriesFile.create(disk, data)
    config = SAXConfig(series_length=64, word_length=8, cardinality=16)
    index = CoconutTree(disk, memory_bytes=1 << 20, config=config, leaf_size=16)
    index.build(raw)
    # A spike series: z-normalized but extreme in SAX space.
    spike = np.zeros(64)
    spike[0] = 10.0
    spike = z_normalize(spike).astype(np.float64)
    assert index.exact_search(spike).distance == pytest.approx(
        brute(spike, data), rel=1e-6
    )


def test_constant_series_in_dataset():
    """All-zero (constant) series quantize to the middle symbol."""
    disk = SimulatedDisk(page_size=2048)
    walks = random_walk(50, length=64, seed=7)
    data = np.vstack([walks, np.zeros((3, 64), dtype=np.float32)])
    raw = RawSeriesFile.create(disk, data)
    config = SAXConfig(series_length=64, word_length=8, cardinality=16)
    index = CoconutTree(disk, memory_bytes=1 << 20, config=config, leaf_size=8)
    index.build(raw)
    result = index.exact_search(np.zeros(64))
    assert result.distance == pytest.approx(0.0, abs=1e-6)
    assert result.answer_idx >= 50  # one of the constant rows


def test_trie_rejects_updates():
    disk = SimulatedDisk(page_size=2048)
    data = random_walk(40, length=64, seed=8)
    raw = RawSeriesFile.create(disk, data)
    config = SAXConfig(series_length=64, word_length=8, cardinality=16)
    index = CoconutTrie(disk, memory_bytes=1 << 20, config=config)
    index.build(raw)
    with pytest.raises(NotImplementedError):
        index.insert_batch(random_walk(4, length=64, seed=9))


def test_sequential_batches_of_identical_series():
    """Repeated inserts of the same series pile into overflow leaves."""
    disk = SimulatedDisk(page_size=2048)
    base = random_walk(8, length=64, seed=10)
    raw = RawSeriesFile.create(disk, base)
    config = SAXConfig(series_length=64, word_length=8, cardinality=16)
    index = CoconutTree(disk, memory_bytes=1 << 20, config=config, leaf_size=4)
    index.build(raw)
    clone = np.tile(base[0], (30, 1)).astype(np.float32)
    index.insert_batch(clone)
    total = sum(leaf.count for leaf in index._leaves)
    assert total == 38
    result = index.exact_search(base[0])
    assert result.distance == pytest.approx(0.0, abs=1e-5)


def test_tiny_pages_force_multi_page_leaves():
    disk = SimulatedDisk(page_size=256)
    data = random_walk(80, length=32, seed=11)
    raw = RawSeriesFile.create(disk, data)
    config = SAXConfig(series_length=32, word_length=4, cardinality=16)
    index = CoconutTree(
        disk, memory_bytes=1 << 20, config=config, leaf_size=32,
        materialized=True,
    )
    index.build(raw)
    assert index.pages_per_leaf > 1
    query = random_walk(1, length=32, seed=12)[0]
    assert index.exact_search(query).distance == pytest.approx(
        brute(query, data), rel=1e-6
    )


def test_query_radius_larger_than_tree():
    disk = SimulatedDisk(page_size=2048)
    data = random_walk(30, length=64, seed=13)
    raw = RawSeriesFile.create(disk, data)
    config = SAXConfig(series_length=64, word_length=8, cardinality=16)
    index = CoconutTree(disk, memory_bytes=1 << 20, config=config, leaf_size=8)
    index.build(raw)
    query = random_walk(1, length=64, seed=14)[0]
    result = index.approximate_search(query, radius_leaves=1000)
    assert result.visited_leaves == index.leaf_stats()[0]
    assert result.distance >= brute(query, data) - 1e-9


def test_rebuild_on_same_disk_is_independent():
    """Two indexes over the same raw file must not interfere."""
    disk = SimulatedDisk(page_size=2048)
    data = random_walk(100, length=64, seed=15)
    raw = RawSeriesFile.create(disk, data)
    config = SAXConfig(series_length=64, word_length=8, cardinality=16)
    first = CoconutTree(disk, memory_bytes=1 << 20, config=config, leaf_size=8)
    first.build(raw)
    second = CoconutTree(disk, memory_bytes=1 << 20, config=config, leaf_size=32)
    second.build(raw)
    query = random_walk(1, length=64, seed=16)[0]
    want = brute(query, data)
    assert first.exact_search(query).distance == pytest.approx(want, rel=1e-6)
    assert second.exact_search(query).distance == pytest.approx(want, rel=1e-6)
