"""The online index service: admission, deadlines, snapshots, degradation.

Unit-level contracts of :class:`repro.service.CoconutService`
(``docs/service.md``):

* **bounded admission** — a full queue rejects with ``queue_full``; a
  dead-on-arrival deadline rejects with ``deadline_expired``; malformed
  requests raise ``ValueError`` before touching admission accounting;
* **deadline shedding** — a ticket whose deadline passes while queued
  is shed with the reason reported (driven by a manual clock, so the
  schedule is deterministic);
* **exactness** — served answers are bit-identical to the LSM's own
  engines over the snapshot watermark the ticket reports;
* **snapshot isolation** — a snapshot taken before further ingest
  (flushes, compactions) keeps answering bit-identically afterwards;
* **graceful degradation** — a writing ``ShardedDisk`` session (a
  compaction mid-commit) fences the parent, yet serving proceeds:
  the single-worker path reads straight through the snapshot's
  pre-attached read-only shard, the multi-worker path degrades onto
  it with ``session_conflicts`` counted;
* **crash latch** — an ingest crash rejects further ingest with
  ``device_crashed`` while queries keep serving the last good
  snapshot; ``restart()`` recovers and resumes, with every
  acknowledged row intact and no duplicates;
* **accounting conservation** — ``submitted == served + shed +
  rejected`` at every quiescent point; nothing is silently dropped.
"""

import numpy as np
import pytest

from repro.core.lsm import CoconutLSM
from repro.service import (
    REJECT_CRASHED,
    REJECT_DEADLINE,
    REJECT_QUEUE_FULL,
    REJECT_SHUTDOWN,
    AdmissionError,
    CoconutService,
    ServiceConfig,
    ServiceUnavailable,
    serve_snapshot_batch,
)
from repro.indexes.base import QueryBatch
from repro.storage import (
    FaultPlan,
    FaultyDevice,
    ShardedDisk,
    SimulatedDisk,
)
from repro.storage.seriesfile import RawSeriesFile
from repro.summaries.sax import SAXConfig

LENGTH = 64
CONFIG = SAXConfig(series_length=LENGTH, word_length=8, cardinality=16)
MEM = 1 << 10
PAGE = 2048

_rng = np.random.default_rng(4242)
BASE = _rng.standard_normal((150, LENGTH)).astype(np.float32)
EXTRA = _rng.standard_normal((200, LENGTH)).astype(np.float32)
QUERIES = _rng.standard_normal((4, LENGTH))


class ManualClock:
    """Deterministic injected clock for deadline schedules."""

    def __init__(self):
        self.now = 0.0

    def advance(self, dt: float) -> None:
        self.now += dt

    def __call__(self) -> float:
        return self.now


def make_service(config=None, device=None, clock=None, n_base=len(BASE)):
    disk = SimulatedDisk(page_size=PAGE, store="arena")
    raw = RawSeriesFile(disk, LENGTH)
    raw.append_batch(BASE[:n_base])
    kwargs = {}
    if clock is not None:
        kwargs["clock"] = clock
    svc = CoconutService(
        disk,
        raw,
        MEM,
        sax_config=CONFIG,
        config=config,
        device=device,
        **kwargs,
    )
    svc.bootstrap()
    return disk, raw, svc


def expected_answers(lsm, k=3):
    """(exact ids+distances, approximate id) per query, on the LSM's engines."""
    out = []
    for q in QUERIES:
        exact = lsm.exact_knn(q, k)
        approx = lsm.approximate_search(q)
        out.append((list(exact.answer_ids), list(exact.distances), approx.answer_idx))
    return out


def assert_serves_expected(svc, expected, k=3, watermark=None):
    # In the crashed state the raw file may hold unacknowledged rows
    # beyond the last good snapshot (recovery truncates them away), so
    # crash tests pass the acked watermark explicitly.
    if watermark is None:
        watermark = svc.raw.n_series
    for q, (ids, dists, approx_idx) in zip(QUERIES, expected):
        ticket = svc.query(q, mode="exact", k=k)
        assert ticket.status == "served"
        assert list(ticket.knn_ids) == ids
        assert ticket.knn_distances == dists
        assert ticket.snapshot_series == watermark
        t2 = svc.query(q, mode="approximate")
        assert t2.status == "served"
        assert t2.knn_ids == [approx_idx]


def assert_conservation(svc):
    s = svc.stats_snapshot()
    terminal = s["served"] + sum(s["shed"].values()) + sum(s["rejected"].values())
    assert s["submitted"] == terminal + s["queue_depth"]


# ----------------------------------------------------------------------
# Admission control
# ----------------------------------------------------------------------
def test_queue_full_rejects_with_reason():
    _, _, svc = make_service(ServiceConfig(queue_capacity=2))
    svc.submit(QUERIES[0])
    svc.submit(QUERIES[1])
    with pytest.raises(AdmissionError) as err:
        svc.submit(QUERIES[2])
    assert err.value.reason == REJECT_QUEUE_FULL
    # The queued tickets still serve once the pump runs.
    assert svc.serve_pending() >= 1
    assert_conservation(svc)
    assert svc.stats_snapshot()["rejected"] == {REJECT_QUEUE_FULL: 1}


def test_dead_on_arrival_deadline_rejects():
    clock = ManualClock()
    _, _, svc = make_service(clock=clock)
    with pytest.raises(AdmissionError) as err:
        svc.submit(QUERIES[0], timeout_s=0.0)
    assert err.value.reason == REJECT_DEADLINE
    assert_conservation(svc)


def test_malformed_requests_raise_before_accounting():
    _, _, svc = make_service()
    with pytest.raises(ValueError):
        svc.submit(QUERIES[0], mode="fuzzy")
    with pytest.raises(ValueError):
        svc.submit(QUERIES[0], k=0)
    with pytest.raises(ValueError):
        svc.submit(QUERIES[0], mode="approximate", k=2)
    assert svc.stats_snapshot()["submitted"] == 0


def test_deadline_expired_in_queue_is_shed():
    clock = ManualClock()
    _, _, svc = make_service(clock=clock)
    doomed = svc.submit(QUERIES[0], timeout_s=5.0)
    safe = svc.submit(QUERIES[1])  # no deadline
    clock.advance(10.0)
    svc.serve_pending()
    assert doomed.status == "shed"
    assert doomed.shed_reason == REJECT_DEADLINE
    assert safe.status == "served"
    assert svc.stats_snapshot()["shed"] == {REJECT_DEADLINE: 1}
    assert_conservation(svc)


def test_stop_without_drain_sheds_with_reason_reported():
    _, _, svc = make_service()
    tickets = [svc.submit(q) for q in QUERIES]
    svc.stop(drain=False)
    for ticket in tickets:
        assert ticket.status == "shed"
        assert ticket.shed_reason == REJECT_SHUTDOWN
    with pytest.raises(AdmissionError) as err:
        svc.submit(QUERIES[0])
    assert err.value.reason == REJECT_SHUTDOWN
    with pytest.raises(ServiceUnavailable):
        svc.ingest(EXTRA[:10])
    assert_conservation(svc)


# ----------------------------------------------------------------------
# Exactness and snapshot isolation
# ----------------------------------------------------------------------
@pytest.mark.parametrize("workers", [1, 2])
def test_served_answers_match_the_lsm_engines(workers):
    _, _, svc = make_service(ServiceConfig(query_workers=workers))
    for lo in range(0, 100, 25):
        svc.ingest(EXTRA[lo : lo + 25])
    assert_serves_expected(svc, expected_answers(svc._lsm))
    assert_conservation(svc)


def test_snapshot_survives_later_flushes_and_compactions():
    _, raw, svc = make_service()
    snapshot = svc.current_snapshot()
    watermark = snapshot.n_series
    before = expected_answers(svc._lsm)
    # Enough ingest to flush and compact several times (MEM is tiny).
    for lo in range(0, len(EXTRA), 25):
        svc.ingest(EXTRA[lo : lo + 25])
    assert svc._lsm.n_flushes > 0
    assert raw.n_series == len(BASE) + len(EXTRA)
    # The old snapshot still answers exactly over its own watermark.
    assert snapshot.n_series == watermark
    for q, (ids, dists, approx_idx) in zip(QUERIES, before):
        batch = QueryBatch(queries=q[None, :], k=3, mode="exact")
        got_ids, got_dists, degraded = serve_snapshot_batch(snapshot, batch)
        assert not degraded
        assert list(got_ids[0]) == ids
        assert got_dists[0] == dists
    # And the service's current snapshot moved to the new watermark.
    assert svc.current_snapshot().n_series == raw.n_series


def test_ticket_reports_the_watermark_it_is_exact_over():
    _, raw, svc = make_service()
    ticket = svc.submit(QUERIES[0], k=2)
    svc.ingest(EXTRA[:25])  # arrives before the pump runs
    svc.serve_pending()
    # Served against the freshest snapshot at serve time — and says so.
    assert ticket.snapshot_series == raw.n_series
    oracle = svc._lsm.exact_knn(QUERIES[0], 2)
    assert list(ticket.knn_ids) == list(oracle.answer_ids)


# ----------------------------------------------------------------------
# Degradation under the parent-disk fence
# ----------------------------------------------------------------------
@pytest.mark.parametrize("workers", [1, 2])
def test_serving_proceeds_while_a_writing_session_fences_the_parent(workers):
    disk, _, svc = make_service(ServiceConfig(query_workers=workers))
    expected = expected_answers(svc._lsm)
    session = ShardedDisk(disk, [(disk.allocate(4), 4)])
    try:
        assert disk.sharded  # the commit-window fence is up
        assert_serves_expected(svc, expected)
    finally:
        session.abort()
    stats = svc.stats_snapshot()
    if workers > 1:
        # The engine's own sessions could not attach: every batch
        # degraded onto the snapshot shard, and the conflict was counted.
        assert stats["session_conflicts"] == stats["batches"]
        assert stats["degraded_batches"] > 0
    else:
        # The single-worker path never even noticed the fence.
        assert stats["session_conflicts"] == 0
        assert stats["degraded_batches"] == 0
    assert_conservation(svc)


# ----------------------------------------------------------------------
# Ingest faults: in-place recovery, crash latch, restart
# ----------------------------------------------------------------------
def test_transient_ingest_fault_recovers_in_place_and_acks_once():
    disk = SimulatedDisk(page_size=PAGE, store="arena")
    raw = RawSeriesFile(disk, LENGTH)
    raw.append_batch(BASE)
    dev = FaultyDevice(disk, None)
    svc = CoconutService(disk, raw, MEM, sax_config=CONFIG, device=dev)
    svc.bootstrap()
    # Arm after bootstrap: the very next journal write faults once.
    dev.plan = FaultPlan(seed=1, p_transient_write=1.0, max_faults=1)
    receipt = svc.ingest(EXTRA[:25])
    assert receipt.recovered
    assert receipt.n_attempts == 2
    assert receipt.n_rows == 25
    assert raw.n_series == len(BASE) + 25  # exactly once — no duplicates
    assert svc.state == "ready"
    assert svc.stats_snapshot()["ingest_retries"] == 1
    # The service keeps working normally afterwards.
    svc.ingest(EXTRA[25:50])
    assert raw.n_series == len(BASE) + 50
    assert_serves_expected(svc, expected_answers(svc._lsm))


def test_crash_latch_keeps_serving_then_restart_recovers():
    disk = SimulatedDisk(page_size=PAGE, store="arena")
    raw = RawSeriesFile(disk, LENGTH)
    raw.append_batch(BASE)
    dev = FaultyDevice(disk, None)
    svc = CoconutService(disk, raw, MEM, sax_config=CONFIG, device=dev)
    svc.bootstrap()
    svc.ingest(EXTRA[:25])
    expected = expected_answers(svc._lsm)
    acked = raw.n_series
    dev.halt()  # pull the plug
    with pytest.raises(ServiceUnavailable) as err:
        svc.ingest(EXTRA[25:50])
    assert err.value.reason == REJECT_CRASHED
    assert svc.state == "crashed"
    # Queries keep serving the last good snapshot through the crash —
    # the read path owns its device handle.  The faulted batch's rows
    # sit unacknowledged past the snapshot watermark until recovery
    # truncates them.
    assert_serves_expected(svc, expected, watermark=acked)
    with pytest.raises(ServiceUnavailable):
        svc.ingest(EXTRA[25:50])
    svc.restart()
    assert svc.state == "ready"
    assert raw.n_series == acked  # every acknowledged row survived
    svc.ingest(EXTRA[25:50])
    assert raw.n_series == acked + 25
    assert_serves_expected(svc, expected_answers(svc._lsm))
    stats = svc.stats_snapshot()
    assert stats["crashes"] == 1
    assert stats["restarts"] == 1
    assert stats["ingest_rejected"] == 2
    assert_conservation(svc)


def test_recovered_index_matches_acknowledged_oracle():
    disk = SimulatedDisk(page_size=PAGE, store="arena")
    raw = RawSeriesFile(disk, LENGTH)
    raw.append_batch(BASE)
    dev = FaultyDevice(disk, None)
    svc = CoconutService(disk, raw, MEM, sax_config=CONFIG, device=dev)
    svc.bootstrap()
    for lo in range(0, 75, 25):
        svc.ingest(EXTRA[lo : lo + 25])
    dev.halt()
    with pytest.raises(ServiceUnavailable):
        svc.ingest(EXTRA[75:100])
    svc.restart()
    # Fault-free oracle over exactly the acknowledged rows.
    odisk = SimulatedDisk(page_size=PAGE, store="arena")
    oraw = RawSeriesFile(odisk, LENGTH)
    oraw.append_batch(BASE)
    oraw.append_batch(EXTRA[:75])
    oracle = CoconutLSM(odisk, MEM, CONFIG)
    oracle.build(oraw)
    for q in QUERIES:
        ticket = svc.query(q, mode="exact", k=3)
        exact = oracle.exact_knn(q, 3)
        assert list(ticket.knn_ids) == list(exact.answer_ids)
        assert ticket.knn_distances == list(exact.distances)


def test_client_stream_offset_makes_retries_exactly_once():
    _, raw, svc = make_service()
    base = raw.n_series
    receipt = svc.ingest(EXTRA[:25], expected_first=base)
    assert not receipt.deduplicated
    assert raw.n_series == base + 25
    # A client that never heard the ack (crash ate it) re-sends the
    # same batch at the same stream offset: deduplicated, not appended.
    again = svc.ingest(EXTRA[:25], expected_first=base)
    assert again.deduplicated
    assert again.first_index == base
    assert raw.n_series == base + 25
    # An offset past the watermark is a client-side gap: loud failure.
    with pytest.raises(ValueError):
        svc.ingest(EXTRA[25:50], expected_first=base + 100)


# ----------------------------------------------------------------------
# Health surface
# ----------------------------------------------------------------------
def test_stats_snapshot_shape_and_latency_percentiles():
    _, _, svc = make_service()
    for q in QUERIES:
        svc.query(q, k=2)
    stats = svc.stats_snapshot()
    assert stats["served"] == len(QUERIES)
    assert stats["batches"] >= 1
    lat = stats["query_latency_s"]
    assert lat["samples"] == len(QUERIES)
    assert 0.0 <= lat["p50"] <= lat["p95"] <= lat["p99"]
    assert stats["lsm"]["state_version"] == svc._lsm.state_version
    assert stats["heal"]["attempts"] >= stats["heal"]["calls"] > 0
    assert_conservation(svc)
