"""Tests for the raw data series file."""

import numpy as np
import pytest

from repro.storage import BufferPool, RawSeriesFile, SimulatedDisk


def make_raw(n=50, length=32, page_size=512, seed=0):
    rng = np.random.default_rng(seed)
    data = rng.standard_normal((n, length)).astype(np.float32)
    disk = SimulatedDisk(page_size=page_size)
    raw = RawSeriesFile.create(disk, data)
    return disk, raw, data


def test_roundtrip_single_series():
    _, raw, data = make_raw()
    for idx in (0, 17, 49):
        np.testing.assert_array_equal(raw.get(idx), data[idx])


def test_get_out_of_range():
    _, raw, _ = make_raw(n=5)
    with pytest.raises(IndexError):
        raw.get(5)
    with pytest.raises(IndexError):
        raw.get(-1)


def test_get_many_out_of_range():
    """Regression: get_many silently fetched zeros for OOB indexes."""
    _, raw, _ = make_raw(n=5)
    with pytest.raises(IndexError):
        raw.get_many(np.array([0, 5]))
    with pytest.raises(IndexError):
        raw.get_many(np.array([-1]))


def test_create_requires_2d():
    disk = SimulatedDisk()
    with pytest.raises(ValueError):
        RawSeriesFile.create(disk, np.zeros((2, 3, 4), dtype=np.float32))


def test_initial_write_is_sequential():
    disk, raw, _ = make_raw(n=200, length=32, page_size=512)
    stats = disk.stats
    assert stats.random_writes == 1  # first page seek only
    assert stats.sequential_writes == raw.file.n_pages - 1


def test_scan_returns_all_series_in_order():
    disk, raw, data = make_raw(n=77, length=16, page_size=256)
    disk.reset_stats()
    seen = []
    for start, block in raw.scan():
        assert start == sum(len(b) for b in seen)
        seen.append(block)
    restored = np.concatenate(seen)
    np.testing.assert_array_equal(restored, data)
    # A scan is one seek plus streaming reads.
    assert disk.stats.random_reads == 1


def test_get_many_skip_sequential_visits_each_page_once():
    disk, raw, data = make_raw(n=100, length=32, page_size=512)
    spp = raw.series_per_page
    idxs = np.array([0, 1, spp * 3, spp * 3 + 1, 2])
    disk.reset_stats()
    disk.park_head()
    result = raw.get_many(idxs)
    np.testing.assert_array_equal(result, data[idxs])
    # Pages: page 0 (series 0, 1, 2), page 3 — two distinct pages.
    assert disk.stats.total_reads == 2


def test_get_many_preserves_request_order():
    _, raw, data = make_raw(n=30)
    idxs = np.array([20, 3, 15, 3])
    result = raw.get_many(idxs)
    np.testing.assert_array_equal(result, data[idxs])


def test_append_batch_extends_file():
    disk, raw, data = make_raw(n=10, length=16, page_size=256)
    rng = np.random.default_rng(1)
    extra = rng.standard_normal((7, 16)).astype(np.float32)
    first = raw.append_batch(extra)
    assert first == 10
    assert len(raw) == 17
    np.testing.assert_array_equal(raw.get(12), extra[2])
    np.testing.assert_array_equal(raw.get(3), data[3])


def test_append_batch_validates_length():
    _, raw, _ = make_raw(length=16)
    with pytest.raises(ValueError):
        raw.append_batch(np.zeros((2, 8), dtype=np.float32))


def test_append_into_partial_page_with_non_float_page_size():
    """Regression: the partial-page rewrite parses a padded page.

    Page reads return full zero-padded pages; when ``page_size`` is not
    a float32 multiple the rewrite must bound its parse to the resident
    records instead of ``frombuffer``-ing the whole page.
    """
    rng = np.random.default_rng(8)
    data = rng.standard_normal((3, 4)).astype(np.float32)  # 16 B records
    disk = SimulatedDisk(page_size=70)  # 4 records + 6 B padding, 70 % 4 != 0
    raw = RawSeriesFile.create(disk, data[:2])
    extra = rng.standard_normal((4, 4)).astype(np.float32)
    raw.append_batch(extra)  # starts mid-page
    combined = np.concatenate([data[:2], extra])
    for idx in range(len(combined)):
        np.testing.assert_array_equal(raw.get(idx), combined[idx])


def test_long_series_span_multiple_pages():
    rng = np.random.default_rng(2)
    data = rng.standard_normal((5, 64)).astype(np.float32)  # 256 bytes each
    disk = SimulatedDisk(page_size=128)
    raw = RawSeriesFile.create(disk, data)
    assert raw.pages_per_series == 2
    for idx in range(5):
        np.testing.assert_array_equal(raw.get(idx), data[idx])


def test_scan_with_multipage_series():
    rng = np.random.default_rng(3)
    data = rng.standard_normal((9, 64)).astype(np.float32)
    disk = SimulatedDisk(page_size=128)
    raw = RawSeriesFile.create(disk, data)
    blocks = [block for _, block in raw.scan(chunk_series=4)]
    np.testing.assert_array_equal(np.concatenate(blocks), data)


def test_buffer_pool_attachment_caches_reads():
    disk, raw, _ = make_raw(n=20, length=16, page_size=256)
    pool = BufferPool(disk, capacity_pages=8)
    raw.attach_pool(pool)
    raw.get(0)
    disk.reset_stats()
    raw.get(0)
    assert disk.stats.total_reads == 0
    raw.attach_pool(None)
    raw.get(0)
    assert disk.stats.total_reads == 1


def test_scan_with_page_unaligned_records():
    """Regression: records that do not divide the page size evenly.

    Each page then carries tail padding; scan() must strip it per page
    instead of parsing records across it (which silently misaligned
    every record after the first page and corrupted the serial-scan
    oracle for such lengths).
    """
    rng = np.random.default_rng(4)
    data = rng.standard_normal((25, 12)).astype(np.float32)  # 48B records
    disk = SimulatedDisk(page_size=256)  # 5 records + 16B padding per page
    raw = RawSeriesFile.create(disk, data)
    assert raw.series_per_page * raw.record_bytes != disk.page_size
    blocks = [block for _, block in raw.scan()]
    np.testing.assert_array_equal(np.concatenate(blocks), data)
    chunked = [block for _, block in raw.scan(chunk_series=7)]
    np.testing.assert_array_equal(np.concatenate(chunked), data)
    np.testing.assert_array_equal(raw.get_many(np.arange(25)), data)


# --------------------------------------------- views and range scans
def test_range_scan_matches_full_scan_slices():
    import numpy as np

    from repro.storage import SimulatedDisk

    rng = np.random.default_rng(7)
    disk = SimulatedDisk(page_size=1000)  # not a record multiple: padding
    data = rng.standard_normal((137, 16)).astype(np.float32)
    raw = RawSeriesFile.create(disk, data)
    whole = np.concatenate([b for _, b in raw.scan(chunk_series=20)])
    np.testing.assert_array_equal(whole, data)
    for start, stop in [(0, 137), (1, 136), (30, 31), (50, 137), (0, 1), (136, 137)]:
        got_idx = []
        parts = []
        for first, block in raw.scan(chunk_series=17, start=start, stop=stop):
            got_idx.append((first, len(block)))
            parts.append(block)
        ranged = np.concatenate(parts)
        np.testing.assert_array_equal(ranged, data[start:stop])
        assert got_idx[0][0] == start
        assert sum(n for _, n in got_idx) == stop - start
    assert list(raw.scan(start=5, stop=5)) == []
    assert list(raw.scan(start=200)) == []


def test_view_reads_through_device_and_leaves_parent_untouched():
    import numpy as np

    from repro.storage import ShardedDisk, SimulatedDisk
    from repro.storage.bufferpool import BufferPool

    rng = np.random.default_rng(11)
    disk = SimulatedDisk(page_size=512)
    data = rng.standard_normal((40, 24)).astype(np.float32)
    raw = RawSeriesFile.create(disk, data)
    disk.reset_stats()
    with ShardedDisk(disk, [(0, 0)], read_only=True) as (shard,):
        with BufferPool(shard, capacity_pages=4) as pool:
            view = raw.view(pool)
            np.testing.assert_array_equal(
                view.get_many(np.array([3, 17, 3, 29])),
                data[[3, 17, 3, 29]],
            )
            got = np.concatenate([b for _, b in view.scan(start=10, stop=30)])
            np.testing.assert_array_equal(got, data[10:30])
            assert shard.stats.total_reads > 0
    # Every read went through the shard: the parent saw none of it
    # (the reconciled session stats land on the parent only at detach).
    assert disk.stats.total_reads == shard.stats.total_reads
    assert disk.stats.bytes_written == 0
