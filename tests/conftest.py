"""Shared test configuration: a hang guard for the whole suite.

The fault-injection and self-healing tests exercise retry loops,
worker pools and crash-recovery paths — exactly the code that, when
broken, *hangs* rather than fails (a worker parked on a queue, a retry
loop that never gives up).  ``pytest-timeout`` is not available in the
pinned environment, so an autouse fixture arms a ``SIGALRM`` watchdog
around every test instead: on POSIX main-thread runs a test exceeding
the budget raises a ``Failed`` error with a clear message instead of
wedging CI.

Override the budget (seconds) with ``REPRO_TEST_TIMEOUT``; ``0``
disables the guard entirely.
"""

import os
import signal
import threading

import pytest

DEFAULT_TIMEOUT_S = 180


def _timeout_budget() -> int:
    try:
        return int(os.environ.get("REPRO_TEST_TIMEOUT", DEFAULT_TIMEOUT_S))
    except ValueError:
        return DEFAULT_TIMEOUT_S


@pytest.fixture(autouse=True)
def _test_timeout_guard(request):
    budget = _timeout_budget()
    if (
        budget <= 0
        or not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return

    def on_alarm(signum, frame):
        pytest.fail(
            f"test exceeded the {budget}s watchdog "
            f"(REPRO_TEST_TIMEOUT): {request.node.nodeid}",
            pytrace=False,
        )

    previous = signal.signal(signal.SIGALRM, on_alarm)
    signal.alarm(budget)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)
