"""Tests for distance functions and lower bounds."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.series import (
    dtw,
    early_abandon_euclidean,
    euclidean,
    euclidean_batch,
    lb_keogh,
    squared_euclidean,
)


def test_euclidean_known_value():
    assert euclidean([0.0, 0.0], [3.0, 4.0]) == pytest.approx(5.0)


def test_euclidean_identity():
    a = np.arange(8, dtype=float)
    assert euclidean(a, a) == 0.0


def test_euclidean_shape_mismatch():
    with pytest.raises(ValueError):
        euclidean(np.zeros(3), np.zeros(4))


def test_squared_euclidean_consistency():
    rng = np.random.default_rng(0)
    a, b = rng.standard_normal((2, 32))
    assert squared_euclidean(a, b) == pytest.approx(euclidean(a, b) ** 2)


def test_euclidean_batch_matches_scalar():
    rng = np.random.default_rng(1)
    query = rng.standard_normal(16)
    batch = rng.standard_normal((10, 16))
    dists = euclidean_batch(query, batch)
    for i in range(10):
        assert dists[i] == pytest.approx(euclidean(query, batch[i]))


def test_early_abandon_agrees_when_within_threshold():
    rng = np.random.default_rng(2)
    a, b = rng.standard_normal((2, 64))
    full = euclidean(a, b)
    assert early_abandon_euclidean(a, b, full + 1.0) == pytest.approx(full)


def test_early_abandon_returns_inf_beyond_threshold():
    # Longer than one chunk so a proper-prefix boundary exists: the
    # kernel abandons between chunks, never after the final one.
    a = np.zeros(64)
    b = np.ones(64) * 10
    assert early_abandon_euclidean(a, b, 1.0, chunk=32) == float("inf")


def test_early_abandon_shape_mismatch():
    """Regression: mismatched lengths used to be silently truncated."""
    with pytest.raises(ValueError):
        early_abandon_euclidean(np.zeros(32), np.zeros(31), 1.0)


def test_early_abandon_single_chunk_never_abandons():
    """No proper-prefix boundary -> the exact distance, never inf."""
    a = np.zeros(32)
    b = np.ones(32) * 10
    got = early_abandon_euclidean(a, b, 1.0, chunk=32)
    assert got == euclidean(a, b)


@settings(max_examples=50, deadline=None)
@given(
    data=st.lists(
        st.tuples(st.floats(-50, 50), st.floats(-50, 50)),
        min_size=1,
        max_size=200,
    ),
    threshold=st.floats(0, 100),
    chunk=st.integers(min_value=1, max_value=64),
)
def test_property_early_abandon_outcome_matches_full_distance(
    data, threshold, chunk
):
    """Finite results are bitwise the full distance; inf implies beyond.

    The chunked partial sums only ever grow, so a proper prefix
    exceeding the threshold proves the full distance does too — inf is
    only ever returned for candidates strictly beyond best-so-far.
    Survivors are recomputed with the plain reduction, so any finite
    result equals :func:`euclidean` exactly, regardless of chunk size.
    """
    a = np.array([x for x, _ in data])
    b = np.array([y for _, y in data])
    full = euclidean(a, b)
    got = early_abandon_euclidean(a, b, threshold, chunk=chunk)
    if got == float("inf"):
        assert full > threshold
    else:
        assert got == full  # bitwise, not approx


def test_early_abandon_vectorized_abandons_between_chunks():
    """A huge early chunk triggers inf without summing the tail."""
    a = np.zeros(128)
    b = np.concatenate([np.full(32, 100.0), np.zeros(96)])
    assert early_abandon_euclidean(a, b, 5.0, chunk=32) == float("inf")


def test_dtw_identity_and_symmetry():
    rng = np.random.default_rng(3)
    a, b = rng.standard_normal((2, 24))
    assert dtw(a, a) == pytest.approx(0.0)
    assert dtw(a, b) == pytest.approx(dtw(b, a))


def test_dtw_never_exceeds_euclidean():
    """Unconstrained DTW is upper-bounded by lock-step ED."""
    rng = np.random.default_rng(4)
    for _ in range(5):
        a, b = rng.standard_normal((2, 20))
        assert dtw(a, b) <= euclidean(a, b) + 1e-9


def test_dtw_aligns_shifted_patterns():
    """A shifted copy should be much closer under DTW than ED."""
    base = np.sin(np.linspace(0, 4 * np.pi, 64))
    shifted = np.roll(base, 3)
    assert dtw(base, shifted, window=8) < 0.5 * euclidean(base, shifted)


def test_dtw_empty_rejected():
    with pytest.raises(ValueError):
        dtw(np.array([]), np.array([1.0]))


def test_lb_keogh_lower_bounds_dtw():
    rng = np.random.default_rng(5)
    for _ in range(10):
        a, b = rng.standard_normal((2, 32))
        window = 4
        assert lb_keogh(a, b, window) <= dtw(a, b, window=window) + 1e-9


def test_lb_keogh_shape_mismatch():
    with pytest.raises(ValueError):
        lb_keogh(np.zeros(4), np.zeros(5), 1)


@settings(max_examples=30, deadline=None)
@given(
    data=st.lists(
        st.tuples(st.floats(-100, 100), st.floats(-100, 100)),
        min_size=2,
        max_size=40,
    ),
    window=st.integers(min_value=1, max_value=8),
)
def test_property_lb_keogh_is_a_lower_bound(data, window):
    a = np.array([x for x, _ in data])
    b = np.array([y for _, y in data])
    assert lb_keogh(a, b, window) <= dtw(a, b, window=window) + 1e-6


@settings(max_examples=30, deadline=None)
@given(
    data=st.lists(
        st.tuples(st.floats(-100, 100), st.floats(-100, 100)),
        min_size=1,
        max_size=50,
    )
)
def test_property_triangle_inequality(data):
    a = np.array([x for x, _ in data])
    b = np.array([y for _, y in data])
    c = np.zeros(len(data))
    assert euclidean(a, b) <= euclidean(a, c) + euclidean(c, b) + 1e-6
