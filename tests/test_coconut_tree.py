"""Tests for Coconut-Tree (Algorithm 3-5): build, search, updates."""

import numpy as np
import pytest

from repro.core import CoconutTree
from repro.series import euclidean, euclidean_batch, random_walk
from repro.storage import RawSeriesFile, SimulatedDisk
from repro.summaries import SAXConfig

CONFIG = SAXConfig(series_length=64, word_length=8, cardinality=16)


def build_index(n=500, materialized=False, leaf_size=32, memory=1 << 20,
                fill_factor=1.0, seed=0, page_size=2048):
    disk = SimulatedDisk(page_size=page_size)
    data = random_walk(n, length=64, seed=seed)
    raw = RawSeriesFile.create(disk, data)
    index = CoconutTree(
        disk,
        memory_bytes=memory,
        config=CONFIG,
        leaf_size=leaf_size,
        fill_factor=fill_factor,
        materialized=materialized,
    )
    report = index.build(raw)
    return disk, index, data, report


def brute_force_nn(query, data):
    distances = euclidean_batch(query, data.astype(np.float64))
    best = int(np.argmin(distances))
    return best, float(distances[best])


def test_build_report_basics():
    _, index, data, report = build_index()
    assert report.n_series == 500
    assert report.n_leaves == index.leaf_stats()[0]
    assert report.index_bytes > 0
    assert report.simulated_io_ms > 0


def test_leaves_are_full_with_unit_fill_factor():
    _, index, _, report = build_index(n=512, leaf_size=32)
    n_leaves, fill = index.leaf_stats()
    assert n_leaves == 16
    assert fill == pytest.approx(1.0)


def test_fill_factor_controls_packing():
    _, index, _, _ = build_index(n=512, leaf_size=32, fill_factor=0.5)
    n_leaves, fill = index.leaf_stats()
    assert n_leaves == 32
    assert fill == pytest.approx(0.5)


def test_leaf_level_is_contiguous():
    """Bulk loading writes the leaf level as one extent."""
    _, index, _, _ = build_index()
    assert index._leaf_file.n_extents == 1


def test_records_sorted_across_leaves():
    _, index, _, _ = build_index(n=300)
    previous = b""
    for leaf in index._leaves:
        records = index._read_leaf_records(leaf)
        keys = [bytes(k).ljust(CONFIG.key_bytes, b"\x00") for k in records["k"]]
        assert all(keys[i] <= keys[i + 1] for i in range(len(keys) - 1))
        assert previous <= keys[0]
        previous = keys[-1]


def test_every_series_lands_in_exactly_one_leaf():
    _, index, data, _ = build_index(n=277)
    seen = []
    for leaf in index._leaves:
        seen.extend(int(off) for off in index._read_leaf_records(leaf)["off"])
    assert sorted(seen) == list(range(277))


def test_materialized_leaves_store_series():
    _, index, data, _ = build_index(n=100, materialized=True)
    for leaf in index._leaves:
        records = index._read_leaf_records(leaf)
        for row in records:
            np.testing.assert_array_almost_equal(
                row["series"], data[int(row["off"])], decimal=5
            )


def test_build_with_tight_memory_spills_runs():
    _, _, _, report = build_index(n=800, memory=2048)
    assert report.extra["sort_runs"] > 1


def test_approximate_search_returns_valid_answer():
    _, index, data, _ = build_index(n=400, seed=1)
    query = random_walk(1, length=64, seed=123)[0]
    result = index.approximate_search(query)
    assert 0 <= result.answer_idx < 400
    assert result.distance == pytest.approx(
        euclidean(query.astype(np.float64), data[result.answer_idx])
    )
    assert result.visited_leaves == 1


def test_approximate_radius_improves_or_matches_quality():
    _, index, data, _ = build_index(n=600, seed=2)
    queries = random_walk(20, length=64, seed=99)
    narrow = [index.approximate_search(q, radius_leaves=1).distance for q in queries]
    wide = [index.approximate_search(q, radius_leaves=9).distance for q in queries]
    assert all(w <= n + 1e-9 for w, n in zip(wide, narrow))
    assert np.mean(wide) < np.mean(narrow)


@pytest.mark.parametrize("materialized", [False, True])
def test_exact_search_matches_brute_force(materialized):
    _, index, data, _ = build_index(n=350, materialized=materialized, seed=3)
    queries = random_walk(15, length=64, seed=55)
    for query in queries:
        result = index.exact_search(query)
        expected_idx, expected_dist = brute_force_nn(query, data)
        assert result.distance == pytest.approx(expected_dist, rel=1e-6)
        assert euclidean(query.astype(np.float64), data[result.answer_idx]) == (
            pytest.approx(expected_dist, rel=1e-6)
        )


def test_exact_search_prunes_records():
    _, index, _, _ = build_index(n=1000, seed=4)
    query = random_walk(1, length=64, seed=77)[0]
    result = index.exact_search(query)
    assert result.visited_records < 1000
    assert result.pruned_fraction > 0.0


def test_exact_on_indexed_series_finds_itself():
    _, index, data, _ = build_index(n=200, seed=5)
    result = index.exact_search(data[42])
    assert result.distance == pytest.approx(0.0, abs=1e-5)


def test_query_length_validation():
    _, index, _, _ = build_index(n=50)
    with pytest.raises(ValueError):
        index.exact_search(np.zeros(32))


def test_query_before_build_fails():
    disk = SimulatedDisk()
    index = CoconutTree(disk, memory_bytes=1024, config=CONFIG)
    with pytest.raises(RuntimeError):
        index.exact_search(np.zeros(64))


def test_constructor_validation():
    disk = SimulatedDisk()
    with pytest.raises(ValueError):
        CoconutTree(disk, memory_bytes=0)
    with pytest.raises(ValueError):
        CoconutTree(disk, memory_bytes=1024, fill_factor=0.3)
    with pytest.raises(ValueError):
        CoconutTree(disk, memory_bytes=1024, leaf_size=0)


def test_insert_batch_then_exact_search():
    disk, index, data, _ = build_index(n=256, leaf_size=32, seed=6)
    extra = random_walk(64, length=64, seed=7)
    report = index.insert_batch(extra)
    assert report.n_series == 64
    all_data = np.vstack([data, extra])
    queries = random_walk(10, length=64, seed=8)
    for query in queries:
        result = index.exact_search(query)
        _, expected = brute_force_nn(query, all_data)
        assert result.distance == pytest.approx(expected, rel=1e-6)


def test_insert_batch_splits_keep_leaf_bounds():
    _, index, _, _ = build_index(n=200, leaf_size=16, seed=9)
    index.insert_batch(random_walk(100, length=64, seed=10))
    for leaf in index._leaves:
        assert 0 < leaf.count <= index.leaf_size


def test_insert_into_empty_index():
    disk = SimulatedDisk(page_size=2048)
    raw = RawSeriesFile.create(
        disk, np.empty((0, 64), dtype=np.float32)
    ) if False else None
    # Build over a tiny file, then grow it via inserts.
    data = random_walk(4, length=64, seed=11)
    raw = RawSeriesFile.create(disk, data)
    index = CoconutTree(disk, memory_bytes=1 << 20, config=CONFIG, leaf_size=8)
    index.build(raw)
    index.insert_batch(random_walk(40, length=64, seed=12))
    assert sum(l.count for l in index._leaves) == 44


def test_larger_radius_counts_more_visited_leaves():
    _, index, _, _ = build_index(n=600, seed=13)
    query = random_walk(1, length=64, seed=14)[0]
    assert index.approximate_search(query, radius_leaves=5).visited_leaves == 5
