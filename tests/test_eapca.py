"""Tests for EAPCA summarization and the DSTree lower bounds."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.series import euclidean, z_normalize
from repro.summaries import (
    eapca,
    node_lower_bound,
    series_lower_bound,
    validate_boundaries,
)


def test_validate_boundaries():
    out = validate_boundaries([0, 4, 8], 8)
    np.testing.assert_array_equal(out, [0, 4, 8])
    with pytest.raises(ValueError):
        validate_boundaries([0, 4], 8)
    with pytest.raises(ValueError):
        validate_boundaries([1, 8], 8)
    with pytest.raises(ValueError):
        validate_boundaries([0, 4, 4, 8], 8)


def test_eapca_known_values():
    series = np.array([[0.0, 2.0, 10.0, 10.0]])
    means, stds = eapca(series, [0, 2, 4])
    np.testing.assert_allclose(means[0], [1.0, 10.0])
    np.testing.assert_allclose(stds[0], [1.0, 0.0])


def test_eapca_adaptive_segmentation():
    rng = np.random.default_rng(0)
    data = rng.standard_normal((5, 32))
    means, stds = eapca(data, [0, 3, 20, 32])
    assert means.shape == (5, 3)
    np.testing.assert_allclose(means[:, 0], data[:, :3].mean(axis=1))
    np.testing.assert_allclose(stds[:, 1], data[:, 3:20].std(axis=1), atol=1e-9)


def test_series_lower_bound_holds():
    rng = np.random.default_rng(1)
    data = z_normalize(rng.standard_normal((40, 64)))
    query = z_normalize(rng.standard_normal(64))
    boundaries = np.array([0, 10, 30, 50, 64])
    means, stds = eapca(data, boundaries)
    bounds = series_lower_bound(query, boundaries, means, stds)
    for i in range(40):
        assert bounds[i] <= euclidean(query, data[i]) + 1e-6


def test_node_lower_bound_holds_for_members():
    rng = np.random.default_rng(2)
    data = z_normalize(rng.standard_normal((25, 32)))
    query = z_normalize(rng.standard_normal(32))
    boundaries = np.array([0, 8, 16, 32])
    means, stds = eapca(data, boundaries)
    bound = node_lower_bound(
        query,
        boundaries,
        means.min(axis=0),
        means.max(axis=0),
        stds.min(axis=0),
        stds.max(axis=0),
    )
    for i in range(25):
        assert bound <= euclidean(query, data[i]) + 1e-6


def test_node_bound_weaker_than_series_bound():
    """Aggregating over a node can only loosen the bound."""
    rng = np.random.default_rng(3)
    data = z_normalize(rng.standard_normal((10, 32)))
    query = z_normalize(rng.standard_normal(32))
    boundaries = np.array([0, 16, 32])
    means, stds = eapca(data, boundaries)
    node = node_lower_bound(
        query,
        boundaries,
        means.min(axis=0),
        means.max(axis=0),
        stds.min(axis=0),
        stds.max(axis=0),
    )
    per_series = series_lower_bound(query, boundaries, means, stds)
    assert node <= per_series.min() + 1e-9


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(0, 2**16),
    cut=st.integers(min_value=1, max_value=31),
)
def test_property_eapca_bound_any_segmentation(seed, cut):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal(32)
    b = rng.standard_normal(32)
    boundaries = np.array([0, cut, 32])
    means, stds = eapca(b[None, :], boundaries)
    bound = series_lower_bound(a, boundaries, means, stds)[0]
    assert bound <= euclidean(a, b) + 1e-6
