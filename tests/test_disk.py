"""Tests for the simulated block device and its I/O classification."""

import pytest

from repro.storage import CostModel, DiskStats, PageError, SimulatedDisk


def test_allocate_returns_contiguous_ranges():
    disk = SimulatedDisk()
    first = disk.allocate(4)
    second = disk.allocate(2)
    assert first == 0
    assert second == 4
    assert disk.pages_allocated == 6


def test_allocate_rejects_nonpositive():
    disk = SimulatedDisk()
    with pytest.raises(ValueError):
        disk.allocate(0)


def test_write_then_read_roundtrip():
    disk = SimulatedDisk(page_size=64)
    page = disk.allocate()
    disk.write_page(page, b"hello")
    # Reads always return the full zero-padded page.
    got = disk.read_page(page)
    assert len(got) == 64
    assert bytes(got) == b"hello".ljust(64, b"\x00")


def test_write_rejects_oversized_data():
    disk = SimulatedDisk(page_size=8)
    page = disk.allocate()
    with pytest.raises(PageError):
        disk.write_page(page, b"123456789")


def test_unallocated_page_access_fails():
    disk = SimulatedDisk()
    with pytest.raises(PageError):
        disk.read_page(0)
    with pytest.raises(PageError):
        disk.write_page(3, b"x")


def test_first_access_is_random():
    disk = SimulatedDisk()
    disk.allocate(2)
    disk.write_page(0, b"a")
    assert disk.stats.random_writes == 1
    assert disk.stats.sequential_writes == 0


def test_adjacent_accesses_are_sequential():
    disk = SimulatedDisk()
    disk.allocate(5)
    for page in range(5):
        disk.write_page(page, b"x")
    assert disk.stats.random_writes == 1
    assert disk.stats.sequential_writes == 4


def test_read_after_adjacent_write_is_sequential():
    """The head position is shared between reads and writes."""
    disk = SimulatedDisk()
    disk.allocate(3)
    for page in range(3):
        disk.write_page(page, b"x")
    disk.park_head()
    disk.read_page(0)
    disk.read_page(1)
    assert disk.stats.random_reads == 1
    assert disk.stats.sequential_reads == 1


def test_backwards_access_is_random():
    disk = SimulatedDisk()
    disk.allocate(3)
    disk.write_page(0, b"a")
    disk.write_page(1, b"b")
    disk.write_page(0, b"c")  # head moves backwards
    assert disk.stats.random_writes == 2
    assert disk.stats.sequential_writes == 1


def test_scattered_access_is_random():
    disk = SimulatedDisk()
    disk.allocate(10)
    for page in (0, 5, 2, 9):
        disk.write_page(page, b"x")
    assert disk.stats.random_writes == 4


def test_snapshot_diffs_are_isolated():
    disk = SimulatedDisk()
    disk.allocate(4)
    disk.write_page(0, b"x")
    snapshot = disk.snapshot()
    disk.write_page(1, b"y")
    disk.write_page(2, b"z")
    delta = disk.stats_since(snapshot)
    assert delta.total_writes == 2
    assert snapshot.total_writes == 1


def test_bytes_are_counted_in_whole_pages():
    disk = SimulatedDisk(page_size=100)
    disk.allocate(1)
    disk.write_page(0, b"ab")
    assert disk.stats.bytes_written == 100


def test_read_run_is_one_seek_then_streaming():
    disk = SimulatedDisk()
    disk.allocate(8)
    for page in range(8):
        disk.write_page(page, bytes([page]))
    disk.park_head()
    data = disk.read_run(2, 4)
    assert [d[0] for d in data] == [2, 3, 4, 5]
    assert disk.stats.random_reads == 1
    assert disk.stats.sequential_reads == 3


def test_cost_model_penalizes_random_access():
    model = CostModel(random_read_ms=10.0, sequential_read_ms=0.1)
    random_heavy = DiskStats(random_reads=100)
    sequential_heavy = DiskStats(sequential_reads=100)
    assert model.io_ms(random_heavy) == pytest.approx(1000.0)
    assert model.io_ms(sequential_heavy) == pytest.approx(10.0)


def test_stats_arithmetic():
    a = DiskStats(1, 2, 3, 4, 500, 600)
    b = DiskStats(1, 1, 1, 1, 100, 100)
    diff = a - b
    assert diff.sequential_reads == 0
    assert diff.random_reads == 1
    assert diff.bytes_written == 500
    total = diff + b
    assert total.total_ios == a.total_ios


def test_reset_stats():
    disk = SimulatedDisk()
    disk.allocate(1)
    disk.write_page(0, b"x")
    disk.reset_stats()
    assert disk.stats.total_ios == 0
