"""Equivalence tests for the vectorized and parallel merge engines.

The merge engine contract is strict: for any run shapes, key
distribution (duplicate-heavy included), memory budget and worker
count, the blockwise engine and the parallel range-partitioned merge
produce *byte-identical* output streams — same records, same chunk
shapes — and, for the engines that touch disk, an identical simulated
I/O trace (every sequential/random counter) and identical
``SortReport``.  The per-record heapq loop stays in the tree as the
oracle these properties pin everything to.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import RawSeriesFile, SimulatedDisk, random_walk
from repro.core import CoconutTree
from repro.core.lsm import CoconutLSM
from repro.parallel import parallel_merge_runs, sample_splitters
from repro.storage import (
    ExternalSorter,
    LoserTree,
    merge_pair,
    merge_presorted,
)
from repro.summaries import SAXConfig


def make_sorted_runs(n, run_sizes, key_bytes=4, alphabet=256, seed=0):
    """Arbitrary internally-sorted runs with globally unique payloads."""
    rng = np.random.default_rng(seed)
    raw = rng.integers(0, alphabet, size=(n, key_bytes), dtype=np.uint8)
    keys = raw.view(f"S{key_bytes}").ravel()
    payloads = np.arange(n, dtype=np.int64)
    runs, at = [], 0
    for size in run_sizes:
        size = min(size, n - at)
        chunk_keys = keys[at : at + size]
        chunk_payloads = payloads[at : at + size]
        order = np.argsort(chunk_keys, kind="stable")
        runs.append((chunk_keys[order], chunk_payloads[order]))
        at += size
    if at < n:
        chunk_keys, chunk_payloads = keys[at:], payloads[at:]
        order = np.argsort(chunk_keys, kind="stable")
        runs.append((chunk_keys[order], chunk_payloads[order]))
    return runs


def drive(engine, runs, memory_bytes, page_size=256, workers=1, pool_kind="thread"):
    disk = SimulatedDisk(page_size=page_size)
    sorter = ExternalSorter(
        disk,
        memory_bytes,
        merge_engine=engine,
        merge_workers=workers,
        pool_kind=pool_kind,
    )
    parts = list(sorter.sort_runs(runs))
    shapes = [len(k) for k, _ in parts]
    if parts:
        keys = np.concatenate([k for k, _ in parts])
        payloads = np.concatenate([p for _, p in parts])
    else:
        keys = payloads = np.empty(0)
    return keys, payloads, shapes, disk.stats, sorter.report


# ----------------------------------------------------- engine vs oracle
@settings(max_examples=60, deadline=None)
@given(
    n=st.integers(min_value=0, max_value=400),
    n_runs=st.integers(min_value=1, max_value=40),
    alphabet=st.sampled_from([2, 4, 256]),
    memory_records=st.integers(min_value=2, max_value=64),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_property_blockwise_equals_heapq(n, n_runs, alphabet, memory_records, seed):
    """Byte-identical stream, chunks, report and I/O trace vs the oracle.

    Covers duplicate-heavy keys (tiny alphabets force cross-run ties),
    empty runs, single-record runs, in-memory and spilled merges, and
    cascaded multi-pass merges (tiny budgets push fan-in below the run
    count).
    """
    rng = np.random.default_rng(seed)
    sizes = rng.integers(0, max(1, 2 * n // n_runs + 1), size=n_runs)
    runs = make_sorted_runs(n, sizes.tolist(), alphabet=alphabet, seed=seed)
    memory = 12 * memory_records
    hk, hp, hs, hio, hrep = drive("heapq", runs, memory)
    bk, bp, bs, bio, brep = drive("blockwise", runs, memory)
    np.testing.assert_array_equal(hk, bk)
    np.testing.assert_array_equal(hp, bp)
    assert hs == bs
    assert hrep == brep
    assert hio == bio


def test_blockwise_is_correct_and_stable():
    """The merged stream equals a stable argsort of the concatenation."""
    runs = make_sorted_runs(500, [100, 0, 250, 1, 80], alphabet=3, seed=5)
    all_keys = np.concatenate([k for k, _ in runs])
    all_payloads = np.concatenate([p for _, p in runs])
    keys, payloads, _, _, report = drive("blockwise", runs, 12 * 32)
    assert report.spilled
    order = np.argsort(all_keys, kind="stable")
    np.testing.assert_array_equal(keys, all_keys[order])
    np.testing.assert_array_equal(payloads, all_payloads[order])


def test_all_equal_keys_resolve_by_run_order():
    """Every key identical: output payloads must follow run order."""
    runs = [
        (np.full(60, b"x", dtype="S1"), np.arange(60, dtype=np.int64) + 100 * i)
        for i in range(5)
    ]
    keys, payloads, _, _, _ = drive("blockwise", runs, 8 * 16)
    want = np.concatenate([p for _, p in runs])
    np.testing.assert_array_equal(payloads, want)
    hk, hp, *_ = drive("heapq", runs, 8 * 16)
    np.testing.assert_array_equal(payloads, hp)


def test_unknown_engine_rejected():
    with pytest.raises(ValueError):
        ExternalSorter(SimulatedDisk(), 1024, merge_engine="bubble")


def test_merge_pair_matrix_payloads():
    """Regression: merge_pair must preserve trailing payload dims."""
    rng = np.random.default_rng(1)
    left_keys = np.sort(rng.integers(0, 9, 20).astype("S2"))
    right_keys = np.sort(rng.integers(0, 9, 30).astype("S2"))
    left_pay = rng.standard_normal((20, 8)).astype(np.float32)
    right_pay = rng.standard_normal((30, 8)).astype(np.float32)
    keys, payloads = merge_pair((left_keys, left_pay), (right_keys, right_pay))
    assert payloads.shape == (50, 8)
    order = np.argsort(np.concatenate([left_keys, right_keys]), kind="stable")
    np.testing.assert_array_equal(
        payloads, np.concatenate([left_pay, right_pay])[order]
    )


# ------------------------------------------------------------ loser tree
def test_loser_tree_tracks_minimum():
    tree = LoserTree([b"d", b"b", None, b"b", b"a"])
    assert tree.winner == 4
    tree.update(4, None)
    assert tree.winner == 1  # ties (b, 1) vs (b, 3) break by index
    tree.update(1, b"z")
    assert tree.winner == 3
    tree.update(3, None)
    assert tree.winner == 0  # d < z
    tree.update(0, None)
    tree.update(1, None)
    assert tree.key(tree.winner) is None  # only exhausted runs remain


def test_loser_tree_single_run():
    tree = LoserTree([b"k"])
    assert tree.winner == 0 and tree.key(0) == b"k"
    tree.update(0, None)
    assert tree.key(tree.winner) is None


# ------------------------------------------------------- parallel merge
@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=300),
    n_runs=st.integers(min_value=1, max_value=12),
    alphabet=st.sampled_from([2, 8, 256]),
    workers=st.integers(min_value=1, max_value=8),
    kind=st.sampled_from(["serial", "thread"]),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_property_parallel_merge_bit_identical(
    n, n_runs, alphabet, workers, kind, seed
):
    """Range-partitioned merge equals the serial merge for any pool."""
    rng = np.random.default_rng(seed)
    sizes = rng.integers(0, max(1, 2 * n // n_runs + 1), size=n_runs)
    runs = make_sorted_runs(n, sizes.tolist(), alphabet=alphabet, seed=seed)
    nonempty = [run for run in runs if len(run[0])]
    if not nonempty:
        return
    want_keys, want_payloads = merge_presorted(list(nonempty))
    got_keys, got_payloads = parallel_merge_runs(runs, workers=workers, kind=kind)
    np.testing.assert_array_equal(got_keys, want_keys)
    np.testing.assert_array_equal(got_payloads, want_payloads)


def test_parallel_merge_process_pool():
    runs = make_sorted_runs(400, [97, 150, 3, 150], seed=9)
    want = merge_presorted(list(runs))
    got = parallel_merge_runs(runs, workers=2, kind="process")
    np.testing.assert_array_equal(got[0], want[0])
    np.testing.assert_array_equal(got[1], want[1])


def test_parallel_merge_rejects_bad_input():
    with pytest.raises(ValueError):
        parallel_merge_runs([], workers=2)
    with pytest.raises(ValueError):
        parallel_merge_runs(
            [(np.array([b"a"], dtype="S1"), np.arange(2))], workers=2
        )
    with pytest.raises(ValueError):
        parallel_merge_runs(
            [(np.array([b"a"], dtype="S1"), np.arange(1))], kind="gpu"
        )


def test_sample_splitters_are_ascending_and_bounded():
    runs = make_sorted_runs(600, [200, 200, 200], alphabet=16, seed=2)
    splitters = sample_splitters([k for k, _ in runs], 8)
    assert len(splitters) <= 7
    assert np.all(splitters[:-1] < splitters[1:])
    # Degenerate key space: fewer (or no) usable splitters, never a crash.
    flat = [np.full(50, b"s", dtype="S1")]
    assert len(sample_splitters(flat, 4)) <= 1


def test_sorter_merge_workers_bit_identical_spilled_and_resident():
    """Worker counts never change the stream; I/O follows the plan.

    The resident merge performs no I/O, so its stats equal the serial
    sorter's.  The spilled cascade with ``merge_workers > 1`` runs the
    *sharded* plan — its stream, chunk shapes and SortReport stay
    bit-identical to the serial sorter, while its DiskStats are pinned
    to the serial replay of the same sharded plan
    (``pool_kind="serial"``); see tests/test_sharded_storage.py for the
    property-style version.
    """
    runs = make_sorted_runs(900, [220, 180, 300, 200], alphabet=32, seed=4)
    for memory in (12 * 2000, 12 * 40):  # resident merge, spilled merge
        base = drive("blockwise", runs, memory, workers=1)
        multi = drive("blockwise", runs, memory, workers=4)
        np.testing.assert_array_equal(base[0], multi[0])
        np.testing.assert_array_equal(base[1], multi[1])
        assert base[2] == multi[2] and base[4] == multi[4]
        if not base[4].spilled:
            assert base[3] == multi[3]
        else:
            replay = drive("blockwise", runs, memory, workers=4, pool_kind="serial")
            assert multi[3] == replay[3]


# ----------------------------------------------- index-level equivalence
CONFIG = SAXConfig(series_length=32, word_length=4, cardinality=16)
DATA = random_walk(600, length=32, seed=11)


@pytest.mark.parametrize("materialized", [False, True])
def test_tree_build_identical_across_engines(materialized):
    """A spilled CoconutTree build is byte-identical for both engines."""

    memory_bytes = 24 * 1024 if materialized else 4 * 1024

    def build(engine):
        disk = SimulatedDisk(page_size=2048)
        raw = RawSeriesFile.create(disk, DATA)
        index = CoconutTree(
            disk, memory_bytes=memory_bytes, config=CONFIG, leaf_size=40,
            materialized=materialized, merge_engine=engine,
        )
        report = index.build(raw)
        assert report.extra["sort_runs"] > 1
        return index, disk

    oracle, disk_o = build("heapq")
    engine, disk_e = build("blockwise")
    assert len(oracle._leaves) == len(engine._leaves)
    for leaf_o, leaf_e in zip(oracle._leaves, engine._leaves):
        assert (leaf_o.slot, leaf_o.count, leaf_o.first_key) == (
            leaf_e.slot, leaf_e.count, leaf_e.first_key,
        )
        records_o = oracle._read_leaf_records(leaf_o)
        records_e = engine._read_leaf_records(leaf_e)
        assert records_o.tobytes() == records_e.tobytes()
    assert disk_o.stats == disk_e.stats


# --------------------------------------------------- LSM compaction
def build_lsm(**kwargs):
    disk = SimulatedDisk(page_size=2048)
    raw = RawSeriesFile.create(disk, DATA[:200])
    lsm = CoconutLSM(
        disk, memory_bytes=4096, config=CONFIG, size_ratio=2, **kwargs
    )
    lsm.build(raw)
    for i in range(8):
        lsm.insert_batch(random_walk(90, length=32, seed=100 + i))
    return disk, lsm


def test_lsm_compaction_identical_across_engines_and_workers():
    """Vectorized, sharded-parallel and argsort-oracle compaction agree.

    Every engine produces the same runs (levels, keys, offsets — and
    the same on-disk run bytes).  DiskStats: the two single-domain
    engines match each other, and the sharded plan (``workers > 1``)
    matches its serial replay (``pool_kind="serial"``) bit for bit.
    """
    disk_serial, serial = build_lsm()
    disk_parallel, parallel = build_lsm(workers=3, pool_kind="thread")
    disk_replay, replay = build_lsm(workers=3, pool_kind="serial")
    disk_oracle, oracle = build_lsm(merge_engine="argsort")
    # Snapshot before the file-byte comparisons below add reads.
    stats_serial, stats_parallel = disk_serial.snapshot(), disk_parallel.snapshot()
    stats_replay, stats_oracle = disk_replay.snapshot(), disk_oracle.snapshot()
    assert serial.n_merges == parallel.n_merges == oracle.n_merges
    assert serial.n_merges > 0
    assert len(serial._runs) == len(parallel._runs) == len(oracle._runs)
    for run_s, run_p, run_o in zip(serial._runs, parallel._runs, oracle._runs):
        assert run_s.level == run_p.level == run_o.level
        for other in (run_p, run_o):
            np.testing.assert_array_equal(run_s.keys, other.keys)
            np.testing.assert_array_equal(run_s.offsets, other.offsets)
        assert run_s.file.read_stream(0, run_s.file.n_pages) == (
            run_p.file.read_stream(0, run_p.file.n_pages)
        )
    assert stats_serial == stats_oracle
    assert stats_parallel == stats_replay


def test_lsm_rejects_unknown_merge_engine():
    with pytest.raises(ValueError):
        CoconutLSM(SimulatedDisk(), 4096, merge_engine="bubble")


def test_lsm_queries_unchanged_by_parallel_compaction():
    _, serial = build_lsm()
    _, parallel = build_lsm(workers=4, pool_kind="thread")
    for seed in range(5):
        query = random_walk(1, length=32, seed=500 + seed)[0]
        result_s = serial.exact_search(query)
        result_p = parallel.exact_search(query)
        assert result_s.answer_idx == result_p.answer_idx
        assert result_s.distance == pytest.approx(result_p.distance)
