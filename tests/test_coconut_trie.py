"""Tests for Coconut-Trie (Algorithm 2): prefix-split bulk loading."""

import numpy as np
import pytest

from repro.core import CoconutTree, CoconutTrie, key_bytes
from repro.series import euclidean, euclidean_batch, random_walk
from repro.storage import RawSeriesFile, SimulatedDisk
from repro.summaries import SAXConfig

CONFIG = SAXConfig(series_length=64, word_length=8, cardinality=16)


def build_trie(n=400, materialized=False, leaf_size=32, seed=0):
    disk = SimulatedDisk(page_size=2048)
    data = random_walk(n, length=64, seed=seed)
    raw = RawSeriesFile.create(disk, data)
    index = CoconutTrie(
        disk,
        memory_bytes=1 << 20,
        config=CONFIG,
        leaf_size=leaf_size,
        materialized=materialized,
    )
    report = index.build(raw)
    return disk, index, data, report


def test_build_covers_all_series():
    _, index, _, _ = build_trie(n=333)
    total = sum(leaf.count for leaf in index._leaves)
    assert total == 333
    seen = set()
    for leaf in index._leaves:
        seen.update(int(o) for o in index._read_leaf_records(leaf)["off"])
    assert seen == set(range(333))


def test_leaves_respect_leaf_size():
    _, index, _, _ = build_trie(n=500, leaf_size=24)
    for leaf in index._leaves:
        assert leaf.count <= 24


def test_leaves_are_prefix_aligned_regions():
    """Each leaf's records must share the leaf's key bit-prefix."""
    _, index, _, _ = build_trie(n=300)
    for leaf in index._leaves:
        records = index._read_leaf_records(leaf)
        bits = leaf.prefix_bits
        if bits == 0:
            continue
        first = int.from_bytes(key_bytes(records["k"][0], CONFIG), "big")
        shift = CONFIG.key_bits - bits
        for key in records["k"]:
            value = int.from_bytes(key_bytes(key, CONFIG), "big")
            assert value >> shift == first >> shift


def test_leaf_file_contiguous():
    _, index, _, _ = build_trie()
    assert index._leaf_file.n_extents == 1


def test_prefix_split_fill_factor_below_median_split():
    """Sec. 3.2: prefix splitting underfills leaves vs median splitting."""
    disk = SimulatedDisk(page_size=2048)
    data = random_walk(800, length=64, seed=1)
    raw = RawSeriesFile.create(disk, data)
    trie = CoconutTrie(disk, memory_bytes=1 << 20, config=CONFIG, leaf_size=32)
    trie.build(raw)
    tree = CoconutTree(disk, memory_bytes=1 << 20, config=CONFIG, leaf_size=32)
    tree.build(raw)
    _, trie_fill = trie.leaf_stats()
    _, tree_fill = tree.leaf_stats()
    assert tree_fill > trie_fill
    assert trie.leaf_stats()[0] > tree.leaf_stats()[0]


def test_approximate_search_valid():
    _, index, data, _ = build_trie(n=400, seed=2)
    query = random_walk(1, length=64, seed=50)[0]
    result = index.approximate_search(query)
    assert 0 <= result.answer_idx < 400
    assert result.distance == pytest.approx(
        euclidean(query.astype(np.float64), data[result.answer_idx])
    )


@pytest.mark.parametrize("materialized", [False, True])
def test_exact_search_matches_brute_force(materialized):
    _, index, data, _ = build_trie(n=300, materialized=materialized, seed=3)
    queries = random_walk(12, length=64, seed=60)
    for query in queries:
        result = index.exact_search(query)
        distances = euclidean_batch(query.astype(np.float64), data.astype(np.float64))
        assert result.distance == pytest.approx(float(distances.min()), rel=1e-6)


def test_exact_search_prunes():
    _, index, _, _ = build_trie(n=900, seed=4)
    query = random_walk(1, length=64, seed=70)[0]
    result = index.exact_search(query)
    assert result.pruned_fraction > 0.0


def test_duplicate_words_overflow_leaf_allowed():
    """Identical summaries cannot be prefix-split: one fat leaf."""
    disk = SimulatedDisk(page_size=2048)
    base = random_walk(1, length=64, seed=5)[0]
    data = np.tile(base, (50, 1)).astype(np.float32)
    raw = RawSeriesFile.create(disk, data)
    index = CoconutTrie(disk, memory_bytes=1 << 20, config=CONFIG, leaf_size=8)
    index.build(raw)
    counts = sorted(leaf.count for leaf in index._leaves)
    assert counts[-1] == 50  # all in one exhausted-prefix leaf


def test_depth_and_internal_node_stats():
    _, index, _, report = build_trie(n=600, leaf_size=16)
    assert report.extra["internal_nodes"] == index.n_internal_nodes > 0
    assert 0 < report.extra["max_depth"] <= CONFIG.key_bits


def test_build_report_fill_factor_consistency():
    _, index, _, report = build_trie(n=500)
    n_leaves, fill = index.leaf_stats()
    assert report.n_leaves == n_leaves
    assert report.avg_leaf_fill == pytest.approx(fill)
