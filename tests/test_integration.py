"""Cross-index integration tests.

The correctness contract of the whole library: every index — the
Coconut family, every baseline, and the LSM extension — answers exact
queries identically to the serial-scan oracle on a shared dataset, and
their reports obey basic conservation properties.
"""

import numpy as np
import pytest

from repro.core import CoconutLSM, CoconutTree, CoconutTrie
from repro.indexes import (
    ADSIndex,
    DSTree,
    ISAX2Index,
    RTreeIndex,
    SerialScan,
    VerticalIndex,
)
from repro.series import make_dataset, query_workload
from repro.storage import RawSeriesFile, SimulatedDisk
from repro.summaries import SAXConfig

N = 220
LENGTH = 64
CONFIG = SAXConfig(series_length=LENGTH, word_length=8, cardinality=16)


def all_indexes(disk, memory):
    return [
        CoconutTree(disk, memory, config=CONFIG, leaf_size=32),
        CoconutTree(disk, memory, config=CONFIG, leaf_size=32, materialized=True),
        CoconutTrie(disk, memory, config=CONFIG, leaf_size=32),
        CoconutTrie(disk, memory, config=CONFIG, leaf_size=32, materialized=True),
        CoconutLSM(disk, memory, config=CONFIG),
        ADSIndex(disk, memory, config=CONFIG, leaf_size=32, plus=True),
        ADSIndex(disk, memory, config=CONFIG, leaf_size=32, plus=False),
        ISAX2Index(disk, memory, config=CONFIG, leaf_size=32),
        RTreeIndex(disk, memory, n_dimensions=8, leaf_size=32),
        RTreeIndex(disk, memory, n_dimensions=8, leaf_size=32, materialized=False),
        DSTree(disk, memory, leaf_size=32),
        VerticalIndex(disk, memory),
    ]


@pytest.fixture(scope="module")
def world():
    disk = SimulatedDisk(page_size=2048)
    data = make_dataset("randomwalk", N, length=LENGTH, seed=5)
    raw = RawSeriesFile.create(disk, data)
    oracle = SerialScan(disk, memory_bytes=1024)
    oracle.build(raw)
    indexes = all_indexes(disk, 1 << 20)
    for index in indexes:
        index.build(raw)
    queries = query_workload("randomwalk", 5, length=LENGTH, seed=5)
    truths = [oracle.exact_search(q) for q in queries]
    return indexes, queries, truths, disk, data


def test_every_index_matches_oracle_exactly(world):
    indexes, queries, truths, _, _ = world
    for index in indexes:
        for query, truth in zip(queries, truths):
            got = index.exact_search(query)
            assert got.distance == pytest.approx(
                truth.distance, rel=1e-5
            ), index.name


def test_approximate_never_beats_exact(world):
    indexes, queries, truths, _, _ = world
    for index in indexes:
        for query, truth in zip(queries, truths):
            approx = index.approximate_search(query)
            assert approx.distance >= truth.distance - 1e-6, index.name


def test_approximate_answers_are_real_series(world):
    indexes, queries, _, _, data = world
    for index in indexes:
        for query in queries:
            approx = index.approximate_search(query)
            assert 0 <= approx.answer_idx < N, index.name
            true = float(
                np.sqrt(
                    ((data[approx.answer_idx].astype(np.float64)
                      - query.astype(np.float64)) ** 2).sum()
                )
            )
            assert approx.distance == pytest.approx(true, rel=1e-5), index.name


def test_query_io_is_accounted(world):
    indexes, queries, _, _, _ = world
    for index in indexes:
        result = index.exact_search(queries[0])
        assert result.io.total_ios > 0, index.name
        assert result.simulated_io_ms > 0, index.name


def test_query_determinism(world):
    indexes, queries, _, _, _ = world
    for index in indexes:
        first = index.exact_search(queries[1])
        second = index.exact_search(queries[1])
        assert first.answer_idx == second.answer_idx, index.name
        assert first.distance == second.distance, index.name


def test_storage_reports_are_positive(world):
    indexes, _, _, _, _ = world
    for index in indexes:
        if isinstance(index, SerialScan):
            continue
        assert index.storage_bytes() > 0, index.name


def test_indexed_series_found_at_zero_distance(world):
    indexes, _, _, _, data = world
    for index in indexes:
        result = index.exact_search(data[100])
        assert result.distance == pytest.approx(0.0, abs=1e-4), index.name


def test_exact_on_duplicate_heavy_dataset():
    """Many identical series: overflow leaves, ties — still exact."""
    disk = SimulatedDisk(page_size=2048)
    base = make_dataset("randomwalk", 4, length=LENGTH, seed=9)
    data = np.vstack([np.tile(base[0], (60, 1)), base]).astype(np.float32)
    raw = RawSeriesFile.create(disk, data)
    oracle = SerialScan(disk, memory_bytes=1024)
    oracle.build(raw)
    query = query_workload("randomwalk", 1, length=LENGTH, seed=9)[0]
    want = oracle.exact_search(query).distance
    for index in all_indexes(disk, 1 << 20):
        index.build(raw)
        got = index.exact_search(query)
        assert got.distance == pytest.approx(want, rel=1e-5), index.name


def test_single_series_dataset():
    disk = SimulatedDisk(page_size=2048)
    data = make_dataset("randomwalk", 1, length=LENGTH, seed=10)
    raw = RawSeriesFile.create(disk, data)
    for index in all_indexes(disk, 1 << 20):
        index.build(raw)
        result = index.exact_search(data[0])
        assert result.answer_idx == 0, index.name
        assert result.distance == pytest.approx(0.0, abs=1e-5), index.name


def test_tight_memory_does_not_change_answers():
    """I/O strategy must never affect correctness."""
    disk = SimulatedDisk(page_size=2048)
    data = make_dataset("seismic", 150, length=LENGTH, seed=11)
    raw = RawSeriesFile.create(disk, data)
    oracle = SerialScan(disk, memory_bytes=1024)
    oracle.build(raw)
    query = query_workload("seismic", 1, length=LENGTH, seed=11)[0]
    want = oracle.exact_search(query).distance
    for memory in (1 << 20, 4096):
        index = CoconutTree(disk, memory, config=CONFIG, leaf_size=16)
        index.build(raw)
        assert index.exact_search(query).distance == pytest.approx(
            want, rel=1e-5
        )
