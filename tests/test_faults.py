"""Fault-injection device layer: plans, wrapper semantics, transparency.

Covers the contract ``docs/robustness.md`` documents:

* :class:`FaultPlan` decisions are pure functions of (seed, op kind,
  op index) — replayable from any thread, no RNG state;
* :class:`FaultyDevice` slots under ``PagedFile`` / ``BufferPool`` /
  ``DiskShard`` unchanged, and with ``plan=None`` is byte- and
  stats-transparent;
* each fault kind's semantics: transient (no effect, retry works),
  permanent (bad ranges always fail), torn (prefix + old tail +
  halt), bit flip (silent single-bit corruption), crash (halt before
  effect) and ``reopen``.
"""

import numpy as np
import pytest

from repro.storage import (
    BufferPool,
    DeviceCrash,
    FaultPlan,
    FaultyDevice,
    PagedFile,
    PermanentIOError,
    ShardedDisk,
    SimulatedDisk,
    TornWrite,
    TransientIOError,
)
from repro.storage.faults import _READ, _WRITE

PAGE = 512


def make_disk(store="arena"):
    return SimulatedDisk(page_size=PAGE, store=store)


# ----------------------------------------------------------------------
# FaultPlan determinism
# ----------------------------------------------------------------------
def test_plan_decisions_are_pure_functions():
    plan = FaultPlan(seed=42, p_transient_read=0.3, p_torn_write=0.2,
                     p_bitflip_write=0.1, p_crash_write=0.05)
    for index in range(200):
        first = (
            plan.transient_on(_READ, index),
            plan.torn_on(index),
            plan.bitflip_on(index),
            plan.crash_on(_WRITE, index),
            plan.position(_WRITE, index, 4096),
        )
        again = (
            plan.transient_on(_READ, index),
            plan.torn_on(index),
            plan.bitflip_on(index),
            plan.crash_on(_WRITE, index),
            plan.position(_WRITE, index, 4096),
        )
        assert first == again


def test_plan_streams_differ_by_seed_and_kind():
    a = FaultPlan(seed=1, p_transient_read=0.5, p_transient_write=0.5)
    b = FaultPlan(seed=2, p_transient_read=0.5, p_transient_write=0.5)
    reads_a = [a.transient_on(_READ, i) for i in range(256)]
    reads_b = [b.transient_on(_READ, i) for i in range(256)]
    writes_a = [a.transient_on(_WRITE, i) for i in range(256)]
    assert reads_a != reads_b  # seed changes the schedule
    assert reads_a != writes_a  # reads and writes draw independently
    assert any(reads_a) and not all(reads_a)


def test_same_plan_same_device_history():
    def run():
        disk = make_disk()
        dev = FaultyDevice(
            disk, FaultPlan(seed=9, p_transient_write=0.3, p_bitflip_write=0.2)
        )
        first = disk.allocate(8)
        log = []
        for i in range(8):
            try:
                dev.write_page(first + i, bytes([i]) * PAGE)
                log.append("ok")
            except TransientIOError:
                log.append("transient")
        return log, [f.kind for f in dev.injected], [
            bytes(disk.page_view(first + i)) for i in range(8)
        ]

    assert run() == run()


def test_max_faults_budget_allows_progress():
    disk = make_disk()
    dev = FaultyDevice(
        disk, FaultPlan(seed=3, p_transient_write=1.0, max_faults=4)
    )
    first = disk.allocate(1)
    failures = 0
    while True:
        try:
            dev.write_page(first, b"x" * PAGE)
            break
        except TransientIOError:
            failures += 1
            assert failures <= 4
    assert failures == 4
    assert dev.faults_injected == 4


# ----------------------------------------------------------------------
# Fault-kind semantics
# ----------------------------------------------------------------------
def test_transient_read_has_no_effect_and_retry_succeeds():
    disk = make_disk()
    first = disk.allocate(1)
    disk.write_page(first, b"a" * PAGE)
    dev = FaultyDevice(disk, FaultPlan(seed=0, p_transient_read=1.0, max_faults=1))
    with pytest.raises(TransientIOError):
        dev.read_page(first)
    assert bytes(dev.read_page(first)) == b"a" * PAGE


def test_permanent_bad_range_fails_every_retry():
    disk = make_disk()
    first = disk.allocate(4)
    dev = FaultyDevice(disk, FaultPlan(bad_pages=((first + 1, 2),)))
    dev.write_page(first, b"ok" )  # outside the bad range
    for _ in range(3):
        with pytest.raises(PermanentIOError):
            dev.read_page(first + 2)
        with pytest.raises(PermanentIOError):
            dev.write_page(first + 1, b"x")
    # multi-page ops overlapping the range fail too
    with pytest.raises(PermanentIOError):
        dev.read_run_bytes(first, 4)


def test_torn_write_leaves_prefix_then_old_tail_and_halts():
    disk = make_disk()
    first = disk.allocate(1)
    old = bytes(range(256)) * (PAGE // 256)
    disk.write_page(first, old)
    dev = FaultyDevice(disk, FaultPlan(seed=5, p_torn_write=1.0))
    new = b"N" * PAGE
    with pytest.raises(TornWrite):
        dev.write_page(first, new)
    assert dev.crashed
    landed = bytes(disk.page_view(first))
    keep = dev.plan.position(_WRITE, 0, PAGE)
    assert landed == new[:keep] + old[keep:]
    assert landed != new and landed != old or keep in (0, PAGE)
    # halted: every op fails until reopen
    with pytest.raises(DeviceCrash):
        dev.read_page(first)
    with pytest.raises(DeviceCrash):
        dev.allocate(1)
    dev.reopen()
    assert bytes(dev.read_page(first)) == landed


def test_bitflip_acks_silently_with_one_bit_inverted():
    disk = make_disk()
    first = disk.allocate(1)
    dev = FaultyDevice(disk, FaultPlan(seed=6, p_bitflip_write=1.0, max_faults=1))
    payload = b"\x00" * PAGE
    dev.write_page(first, payload)  # no exception: the ack is the bug
    landed = np.frombuffer(bytes(disk.page_view(first)), dtype=np.uint8)
    assert int(np.unpackbits(landed).sum()) == 1
    assert dev.injected[0].kind == "flip"


def test_flip_bookkeeping_counts_writes_not_reads():
    """``n_flips_injected`` is write-side accounting: reading a flipped
    page twice must not move it, so tests can assert detected ==
    injected without read-count skew."""
    disk = make_disk()
    first = disk.allocate(2)
    dev = FaultyDevice(disk, FaultPlan(seed=6, p_bitflip_write=1.0, max_faults=2))
    dev.write_page(first, b"\x00" * PAGE)
    dev.write_page(first + 1, b"\x00" * PAGE)
    assert dev.n_flips_injected == 2
    for _ in range(3):  # re-reading flipped pages changes nothing
        dev.read_page(first)
        dev.read_run_bytes(first, 2)
    assert dev.n_flips_injected == 2
    assert dev.faults_injected == 2


def test_flip_records_exact_bit_and_page():
    disk = make_disk()
    first = disk.allocate(4)
    dev = FaultyDevice(disk, FaultPlan(seed=13, p_bitflip_write=1.0, max_faults=1))
    payload = b"\x00" * (3 * PAGE)  # multi-page op: the flip may land anywhere
    dev.write_run_bytes(first, payload, 3)
    fault = dev.injected[0]
    assert fault.kind == "flip" and fault.bit >= 0
    flipped_page = first + (fault.bit >> 3) // PAGE
    assert dev.flipped_pages == {flipped_page}
    # The recorded bit is the bit that actually landed.
    landed = np.frombuffer(
        bytes(disk.read_run_bytes(first, 3)), dtype=np.uint8
    )
    (byte_at,) = np.nonzero(landed)[0]
    assert byte_at == fault.bit >> 3
    assert int(landed[byte_at]) == 1 << (fault.bit & 7)


def test_flip_on_empty_payload_records_nothing():
    disk = make_disk()
    first = disk.allocate(1)
    disk.write_page(first, b"keep")
    dev = FaultyDevice(disk, FaultPlan(seed=6, p_bitflip_write=1.0, max_faults=1))
    dev.write_page(first, b"")  # zero payload bits: nothing can flip
    assert dev.n_flips_injected == 0
    assert dev.flipped_pages == set()
    assert bytes(disk.page_view(first))[:4] == b"\x00\x00\x00\x00"


def test_crash_halts_before_any_effect():
    disk = make_disk()
    first = disk.allocate(1)
    disk.write_page(first, b"z" * PAGE)
    dev = FaultyDevice(disk, FaultPlan(seed=7, p_crash_write=1.0))
    with pytest.raises(DeviceCrash):
        dev.write_page(first, b"q" * PAGE)
    assert bytes(disk.page_view(first)) == b"z" * PAGE


# ----------------------------------------------------------------------
# Transparency and stack composition
# ----------------------------------------------------------------------
@pytest.mark.parametrize("store", ["arena", "dict"])
def test_plan_none_is_fully_transparent(store):
    bare = make_disk(store)
    wrapped_disk = make_disk(store)
    dev = FaultyDevice(wrapped_disk, plan=None)
    rng = np.random.default_rng(0)
    blob = rng.integers(0, 256, size=3 * PAGE + 17, dtype=np.uint8).tobytes()
    for target in (bare, dev):
        file = PagedFile(target, name="t")
        file.write_stream(blob, at_page=0)
        assert bytes(file.read_stream(0, file.n_pages))[: len(blob)] == blob
    assert bare.stats == wrapped_disk.stats
    assert bare.head_position == wrapped_disk.head_position
    assert dev.faults_injected == 0


@pytest.mark.parametrize("store", ["arena", "dict"])
def test_faulty_device_under_paged_file_and_buffer_pool(store):
    disk = make_disk(store)
    dev = FaultyDevice(
        disk, FaultPlan(seed=8, p_transient_read=1.0, max_faults=3)
    )
    file = PagedFile(dev, name="wal-ish")
    blob = bytes(range(256)) * 4
    file.write_stream(blob, at_page=0)
    failures = 0
    while True:
        try:
            with BufferPool(dev, capacity_pages=2) as pool:
                view = file.attach(pool)
                got = bytes(view.read_stream(0, file.n_pages))[: len(blob)]
            break
        except TransientIOError:
            failures += 1
    assert got == blob
    assert failures == dev.faults_injected == 3


def test_faulty_shard_fault_aborts_session_parent_stays_live():
    disk = make_disk()
    out_first = disk.allocate(4)
    session = ShardedDisk(disk, [(out_first, 2), (out_first + 2, 2)])
    with pytest.raises(PermanentIOError):
        with session as shards:
            dev = FaultyDevice(shards[0], FaultPlan(bad_pages=((out_first, 2),)))
            dev.write_page(out_first, b"x" * PAGE)
    # abort on exception: parent unfenced, extent untouched, no stats
    assert disk.pages_allocated == 4
    disk.write_page(out_first, b"fine")
    disk.allocate(1)
