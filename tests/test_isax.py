"""Tests for iSAX multi-resolution prefixes."""

import numpy as np
import pytest

from repro.series import euclidean, random_walk
from repro.summaries import ISAXPrefix, SAXConfig, paa, sax_words

CONFIG = SAXConfig(series_length=64, word_length=4, cardinality=16)


def test_root_matches_everything():
    root = ISAXPrefix.root(4)
    data = random_walk(10, length=64, seed=0)
    words = sax_words(data, CONFIG)
    assert root.matches_batch(words, CONFIG).all()
    assert root.mindist(paa(data[0], 4)[0], CONFIG) == 0.0


def test_prefix_validation():
    with pytest.raises(ValueError):
        ISAXPrefix((2,), (1,))  # symbol 2 needs 2 bits
    with pytest.raises(ValueError):
        ISAXPrefix((0,), (-1,))
    with pytest.raises(ValueError):
        ISAXPrefix((0, 0), (1,))


def test_from_full_word_truncation():
    word = np.array([0b1010, 0b0110, 0b1111, 0b0000])
    prefix = ISAXPrefix.from_full_word(word, CONFIG, bits=(2, 1, 3, 0))
    assert prefix.symbols == (0b10, 0b0, 0b111, 0)


def test_matches_batch_agrees_with_scalar():
    data = random_walk(30, length=64, seed=1)
    words = sax_words(data, CONFIG)
    prefix = ISAXPrefix.from_full_word(words[0], CONFIG, bits=(2, 2, 1, 1))
    batch = prefix.matches_batch(words, CONFIG)
    scalar = np.array([prefix.matches(w, CONFIG) for w in words])
    np.testing.assert_array_equal(batch, scalar)
    assert batch[0]  # its own word matches


def test_split_partitions_members():
    data = random_walk(200, length=64, seed=2)
    words = sax_words(data, CONFIG)
    root = ISAXPrefix.root(4)
    left, right = root.split(0)
    in_left = left.matches_batch(words, CONFIG)
    in_right = right.matches_batch(words, CONFIG)
    np.testing.assert_array_equal(in_left ^ in_right, np.ones(200, dtype=bool))


def test_split_deepens_one_segment():
    root = ISAXPrefix.root(4)
    left, right = root.split(2)
    assert left.bits == (0, 0, 1, 0)
    assert left.symbols[2] == 0
    assert right.symbols[2] == 1
    assert left.depth == 1


def test_mindist_is_lower_bound_for_members():
    data = random_walk(100, length=64, seed=3)
    words = sax_words(data, CONFIG)
    query = random_walk(1, length=64, seed=77)[0]
    query_paa = paa(query, 4)[0]
    prefix = ISAXPrefix.from_full_word(words[0], CONFIG, bits=(2, 2, 2, 2))
    members = prefix.matches_batch(words, CONFIG)
    bound = prefix.mindist(query_paa, CONFIG)
    for i in np.nonzero(members)[0]:
        assert bound <= euclidean(query, data[i]) + 1e-6


def test_mindist_shrinks_with_depth():
    """Coarser regions give weaker (smaller) bounds."""
    data = random_walk(1, length=64, seed=4)
    word = sax_words(data, CONFIG)[0]
    query = random_walk(1, length=64, seed=5)[0]
    query_paa = paa(query, 4)[0]
    previous = -1.0
    for depth in range(CONFIG.bits_per_symbol + 1):
        prefix = ISAXPrefix.from_full_word(word, CONFIG, bits=(depth,) * 4)
        bound = prefix.mindist(query_paa, CONFIG)
        assert bound >= previous - 1e-12
        previous = bound


def test_choose_split_segment_prefers_balance():
    # Segment 0: all words share the next bit -> bad split.
    # Segment 1: words split 50/50 on the next bit -> good split.
    words = np.array([[0b0000, 0b0000], [0b0001, 0b1000]] * 5)
    config = SAXConfig(series_length=32, word_length=2, cardinality=16)
    root = ISAXPrefix.root(2)
    assert root.choose_split_segment(words, config) == 1


def test_choose_split_segment_exhausted():
    config = SAXConfig(series_length=32, word_length=2, cardinality=4)
    full = ISAXPrefix((1, 2), (2, 2))
    with pytest.raises(ValueError):
        full.choose_split_segment(np.array([[1, 2]]), config)


def test_str_rendering():
    prefix = ISAXPrefix((0b10, 0), (2, 0))
    assert str(prefix) == "10 *"
