"""Background scrub + automatic repair: the healing half of integrity.

The property pinned here (the "oracle scrub"): for seeded corruption
schedules — at-rest decay via :func:`decay_bit` and in-flight
:class:`FaultyDevice` write flips — on both page stores,

* :meth:`Scrubber.sweep` detects **exactly** the pages a brute-force
  hash of every live target finds corrupt (no misses, no false
  positives);
* every repair restores bit-identical page content, and post-repair
  index content and exact-search answers equal the fault-free oracle;
* corrupt runs are quarantined and rebuilt through the
  ``CoconutLSM`` recovery seam; raw multi-bit damage stays quarantined
  loudly (verified reads keep refusing it);
* ``step()`` honours its page budget, so the online service can scrub
  in bounded increments without stalling serving.
"""

import numpy as np
import pytest

from repro.core.lsm import CoconutLSM
from repro.storage import (
    CorruptionError,
    FaultError,
    FaultPlan,
    FaultyDevice,
    RawSeriesFile,
    Scrubber,
    SimulatedDisk,
    decay_bit,
)
from repro.summaries.sax import SAXConfig

LENGTH = 64
CONFIG = SAXConfig(series_length=LENGTH, word_length=8, cardinality=16)
MEM = 1 << 10
PAGE = 2048
BATCH_ROWS = 25

_rng = np.random.default_rng(2024)
BASE = _rng.standard_normal((200, LENGTH)).astype(np.float32)
EXTRA = _rng.standard_normal((250, LENGTH)).astype(np.float32)
QUERIES = _rng.standard_normal((3, LENGTH))


def build_index(store, workers=1, device=None):
    disk = SimulatedDisk(page_size=PAGE, store=store, integrity=True)
    raw = RawSeriesFile(disk, LENGTH)
    raw.append_batch(BASE)
    ix = CoconutLSM(
        device if device is not None else disk,
        MEM,
        CONFIG,
        durability="wal",
        workers=workers,
    )
    ix.build(raw)
    for lo in range(0, len(EXTRA), BATCH_ROWS):
        ix.insert_batch(EXTRA[lo : lo + BATCH_ROWS])
    return disk, raw, ix


def target_pages(scrubber):
    """(kind, page) for every page a sweep covers, in sweep order."""
    return [
        (kind, first + i)
        for kind, _, first, n_pages in scrubber._targets()
        for i in range(n_pages)
    ]


def oracle_scrub(disk, scrubber):
    """Brute force: every target page whose content fails its checksum."""
    return {
        page
        for _, page in target_pages(scrubber)
        if not disk.checksums.verify(page, disk.page_view(page))
    }


def answers(ix):
    return [
        (r.answer_idx, r.distance) for r in (ix.exact_search(q) for q in QUERIES)
    ]


# ----------------------------------------------------------------------
# Clean workloads scrub clean (recording has no gaps)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("store", ["arena", "dict"])
@pytest.mark.parametrize("workers", [1, 2])
def test_clean_workload_scrubs_clean(store, workers):
    """Every page the sweep covers was recorded by some consumer —
    including sharded-compaction interior and boundary pages."""
    disk, raw, ix = build_index(store, workers=workers)
    assert ix.n_merges > 0  # compactions (the sharded path when workers=2)
    scrubber = Scrubber(disk, lsm=ix, raw=raw)
    report = scrubber.sweep()
    assert report.complete
    assert report.pages_scanned == len(target_pages(scrubber))
    assert report.pages_scanned > 0
    assert report.corrupt_pages == []
    assert scrubber.unrepairable == set()


# ----------------------------------------------------------------------
# Oracle-scrub pin: seeded at-rest decay
# ----------------------------------------------------------------------
@pytest.mark.parametrize("store", ["arena", "dict"])
@pytest.mark.parametrize("seed", range(6))
def test_decay_detected_exactly_and_repaired_bit_identical(store, seed):
    disk, raw, ix = build_index(store)
    scrubber = Scrubber(disk, lsm=ix, raw=raw)
    pages = target_pages(scrubber)
    before = {page: bytes(disk.page_view(page)) for _, page in pages}
    expect = answers(ix)

    rng = np.random.default_rng(seed)
    picks = rng.choice(len(pages), size=min(12, len(pages)), replace=False)
    corrupted = set()
    for pick in picks:
        kind, page = pages[int(pick)]
        # Raw pages get single-bit decay (algebraically repairable in
        # place); run pages alternate single- and multi-bit (multi-bit
        # forces the quarantine + rebuild-from-raw path).
        n_bits = 3 if kind == "run" and int(pick) % 2 else 1
        for bit in rng.choice(PAGE * 8, size=n_bits, replace=False):
            decay_bit(disk, page, int(bit))
        corrupted.add(page)

    assert oracle_scrub(disk, scrubber) == corrupted
    report = scrubber.sweep()
    assert report.complete
    assert set(report.corrupt_pages) == corrupted  # found every flip
    assert scrubber.unrepairable == set()
    assert report.unrepairable_pages == []
    # Every repair restored bit-identical content...
    for _, page in pages:
        assert bytes(disk.page_view(page)) == before[page]
        assert disk.checksums.verify(page, disk.page_view(page))
    # ...and the answers never moved.
    assert answers(ix) == expect
    # A follow-up sweep finds nothing left to do.
    again = scrubber.sweep()
    assert again.corrupt_pages == [] and again.complete


@pytest.mark.parametrize("store", ["arena", "dict"])
def test_multibit_run_decay_quarantines_and_rebuilds_from_raw(store):
    disk, raw, ix = build_index(store)
    scrubber = Scrubber(disk, lsm=ix, raw=raw)
    run = ix._runs[0]
    first = run.file.physical_page(0)
    before = bytes(disk.page_view(first))
    for bit in (5, 777, 4242):
        decay_bit(disk, first, bit)
    rebuilt_before = ix.n_rebuilt_runs
    report = scrubber.sweep()
    assert report.quarantined_runs == [first]
    assert report.rebuilt_runs == 1
    assert ix.n_rebuilt_runs == rebuilt_before + 1
    assert bytes(disk.page_view(first)) == before
    assert scrubber.unrepairable == set()


def test_multibit_raw_decay_stays_quarantined_loudly():
    disk, raw, ix = build_index("arena")
    raw.verified_reads = True
    scrubber = Scrubber(disk, lsm=ix, raw=raw)
    page = raw.file.physical_page(0)
    decay_bit(disk, page, 3)
    decay_bit(disk, page, 999)
    report = scrubber.sweep()
    assert page in report.unrepairable_pages
    assert page in scrubber.unrepairable
    # The source of truth cannot be reconstructed; verified reads keep
    # refusing rather than serving garbage.
    with pytest.raises(CorruptionError):
        raw.get(0)
    # Still corrupt on the next sweep — never silently forgotten.
    assert page in scrubber.sweep().corrupt_pages


def test_step_honours_page_budget_and_completes():
    disk, raw, ix = build_index("arena")
    scrubber = Scrubber(disk, lsm=ix, raw=raw, pages_per_step=7)
    total = len(target_pages(scrubber))
    decay_bit(disk, raw.file.physical_page(1), 40)
    scanned = 0
    steps = 0
    while True:
        report = scrubber.step()
        steps += 1
        assert report.pages_scanned <= 7
        scanned += report.pages_scanned
        if report.complete:
            break
        assert steps < 10_000
    assert scanned == total
    assert steps == -(-total // 7)
    assert scrubber.n_sweeps == 1
    assert scrubber.total.repaired_pages == [raw.file.physical_page(1)]


# ----------------------------------------------------------------------
# Oracle-scrub pin: seeded in-flight FaultyDevice write flips
# ----------------------------------------------------------------------
@pytest.mark.parametrize("store", ["arena", "dict"])
@pytest.mark.parametrize("seed", range(6))
def test_writetime_flips_found_repaired_and_recovery_equivalent(store, seed):
    """End to end: flips land during a live WAL workload, the sweep
    finds exactly the brute-force corrupt set, every corrupt page is
    provably one of the injected flips, and after repair a recovered
    index matches the acknowledged-batches oracle bit for bit."""
    disk = SimulatedDisk(page_size=PAGE, store=store, integrity=True)
    raw = RawSeriesFile(disk, LENGTH)
    raw.append_batch(BASE)
    dev = FaultyDevice(
        disk, FaultPlan(seed=seed, p_bitflip_write=0.03, max_faults=5)
    )
    ix = CoconutLSM(dev, MEM, CONFIG, durability="wal")
    try:
        ix.build(raw)
        for lo in range(0, len(EXTRA), BATCH_ROWS):
            ix.insert_batch(EXTRA[lo : lo + BATCH_ROWS])
    except FaultError:
        # A flip on a WAL page fails the read-back ack barrier —
        # detection at write time, before any scrub.
        pass
    scrubber = Scrubber(disk, lsm=ix, raw=raw)
    corrupt = oracle_scrub(disk, scrubber)
    # Provenance: every corruption the oracle sees is an injected flip
    # (raw rides the bare disk here, so flips hit WAL/run pages only).
    assert corrupt <= dev.flipped_pages
    report = scrubber.sweep()
    assert report.complete
    assert set(report.corrupt_pages) == corrupt
    assert scrubber.unrepairable == set()  # single-bit flips all heal
    assert oracle_scrub(disk, scrubber) == set()
    # The repaired disk recovers to the acknowledged oracle.
    try:
        rec = CoconutLSM.recover(disk, raw)
    except CorruptionError:
        # Crashed before the META frame: nothing was ever acknowledged.
        raw.truncate(len(BASE))
        rec = CoconutLSM(disk, MEM, CONFIG, durability="wal", wal_id=2)
        rec.build(raw)
    odisk = SimulatedDisk(page_size=PAGE, store=store)
    oraw = RawSeriesFile(odisk, LENGTH)
    oraw.append_batch(BASE)
    oracle = CoconutLSM(odisk, MEM, CONFIG, durability="wal")
    oracle.build(oraw)
    extra = EXTRA[: raw.n_series - len(BASE)]
    for lo in range(0, len(extra), BATCH_ROWS):
        oracle.insert_batch(extra[lo : lo + BATCH_ROWS])
    for q in QUERIES:
        a, b = rec.exact_search(q), oracle.exact_search(q)
        assert (a.answer_idx, a.distance) == (b.answer_idx, b.distance)
