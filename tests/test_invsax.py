"""Tests for invSAX: the sortable summarization (paper Sec. 4.1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    deinterleave_keys,
    int_to_key,
    interleave_words,
    invsax_keys,
    key_bytes,
    key_to_int,
    query_key,
)
from repro.series import euclidean, random_walk
from repro.summaries import SAXConfig, sax_words

CONFIG = SAXConfig(series_length=64, word_length=4, cardinality=16)
PAPER_CONFIG = SAXConfig(series_length=256, word_length=16, cardinality=256)


def test_key_width():
    assert CONFIG.key_bytes == 2  # 4 segments x 4 bits
    assert PAPER_CONFIG.key_bytes == 16  # 16 segments x 8 bits = 128 bits


def test_interleave_figure2_example():
    """The paper's running example: 3-bit symbols e=100, c=010.

    S1 = "ec" -> segments (100, 010); interleaving MSB-first across
    segments gives 10 01 00 -> 0b100100.
    """
    config = SAXConfig(series_length=16, word_length=2, cardinality=8)
    keys = interleave_words(np.array([[0b100, 0b010]]), config)
    assert key_to_int(keys[0], config) == 0b100100 << 2  # left-aligned byte


def test_interleave_orders_like_z_curve():
    """Fig. 2/4: sorting invSAX groups (S1, S3) and (S2, S4).

    S1=ec, S2=ee, S3=fc, S4=ge with 3-bit symbols.  Lexicographic SAX
    order is S1 S2 S3 S4; z-order must place S1 next to S3.
    """
    config = SAXConfig(series_length=16, word_length=2, cardinality=8)
    words = np.array(
        [
            [0b100, 0b010],  # S1 = ec
            [0b100, 0b100],  # S2 = ee
            [0b101, 0b010],  # S3 = fc
            [0b110, 0b100],  # S4 = ge
        ]
    )
    keys = interleave_words(words, config)
    order = np.argsort(keys, kind="stable")
    sorted_names = [["S1", "S2", "S3", "S4"][i] for i in order]
    assert sorted_names.index("S3") == sorted_names.index("S1") + 1
    assert sorted_names.index("S4") == sorted_names.index("S2") + 1


def test_roundtrip_exact():
    rng = np.random.default_rng(0)
    words = rng.integers(0, 16, size=(200, 4)).astype(np.uint16)
    keys = interleave_words(words, CONFIG)
    np.testing.assert_array_equal(deinterleave_keys(keys, CONFIG), words)


def test_roundtrip_paper_scale_128_bit_keys():
    rng = np.random.default_rng(1)
    words = rng.integers(0, 256, size=(500, 16)).astype(np.uint16)
    keys = interleave_words(words, PAPER_CONFIG)
    assert keys.dtype == np.dtype("S16")
    np.testing.assert_array_equal(
        deinterleave_keys(keys, PAPER_CONFIG), words
    )


def test_roundtrip_extreme_symbols():
    words = np.array([[0, 0, 0, 0], [15, 15, 15, 15], [0, 15, 0, 15]])
    keys = interleave_words(words, CONFIG)
    np.testing.assert_array_equal(deinterleave_keys(keys, CONFIG), words)
    assert key_to_int(keys[0], CONFIG) == 0
    assert key_to_int(keys[1], CONFIG) == 0xFFFF


def test_symbol_out_of_range_rejected():
    with pytest.raises(ValueError):
        interleave_words(np.array([[16, 0, 0, 0]]), CONFIG)
    with pytest.raises(ValueError):
        interleave_words(np.array([[0, 0]]), CONFIG)


def test_numpy_sort_equals_integer_sort():
    """Byte-string sorting must equal numeric z-order sorting."""
    rng = np.random.default_rng(2)
    words = rng.integers(0, 256, size=(300, 16)).astype(np.uint16)
    keys = interleave_words(words, PAPER_CONFIG)
    byte_order = np.argsort(keys, kind="stable")
    numeric = np.array([key_to_int(k, PAPER_CONFIG) for k in keys])
    numeric_order = np.argsort(numeric, kind="stable")
    np.testing.assert_array_equal(
        numeric[byte_order], numeric[numeric_order]
    )


def test_query_key_matches_batch_path():
    data = random_walk(3, length=64, seed=3)
    batch_keys = invsax_keys(data, CONFIG)
    for i in range(3):
        assert query_key(data[i], CONFIG) == key_bytes(batch_keys[i], CONFIG)


def test_key_int_roundtrip():
    value = 0b1010_1100_0011_0101
    assert key_to_int(int_to_key(value, CONFIG), CONFIG) == value


def test_sorting_preserves_locality_better_than_sax():
    """The paper's core claim: z-order neighbors are closer in ED than
    lexicographic-SAX neighbors, on average."""
    data = random_walk(400, length=256, seed=4).astype(np.float64)
    words = sax_words(data, PAPER_CONFIG)
    keys = invsax_keys(data, PAPER_CONFIG)

    def mean_neighbor_distance(order):
        pairs = zip(order[:-1], order[1:])
        return np.mean([euclidean(data[i], data[j]) for i, j in pairs])

    lex_order = np.lexsort(words.T[::-1])  # segment 0 most significant
    z_order = np.argsort(keys, kind="stable")
    assert mean_neighbor_distance(z_order) < mean_neighbor_distance(lex_order)


def test_information_is_preserved():
    """Sortable form contains the same information as SAX (Sec. 4.1)."""
    data = random_walk(50, length=256, seed=5)
    words = sax_words(data, PAPER_CONFIG)
    keys = interleave_words(words, PAPER_CONFIG)
    np.testing.assert_array_equal(
        deinterleave_keys(keys, PAPER_CONFIG), words
    )


@settings(max_examples=50, deadline=None)
@given(
    seed=st.integers(0, 2**16),
    word_length=st.sampled_from([2, 4, 8, 16]),
    bits=st.sampled_from([1, 2, 4, 8]),
)
def test_property_roundtrip_any_geometry(seed, word_length, bits):
    config = SAXConfig(
        series_length=64, word_length=word_length, cardinality=1 << bits
    )
    rng = np.random.default_rng(seed)
    words = rng.integers(0, 1 << bits, size=(64, word_length)).astype(np.uint16)
    keys = interleave_words(words, config)
    np.testing.assert_array_equal(deinterleave_keys(keys, config), words)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 2**16))
def test_property_zorder_monotone_in_msb(seed):
    """Keys with a larger first-bit plane always sort later."""
    config = SAXConfig(series_length=32, word_length=4, cardinality=4)
    rng = np.random.default_rng(seed)
    words = rng.integers(0, 4, size=(32, 4)).astype(np.uint16)
    keys = interleave_words(words, config)
    msb_plane = ((words >> 1) & 1) @ (1 << np.arange(3, -1, -1))
    order = np.argsort(keys, kind="stable")
    # The first w key bits are exactly the per-segment MSBs, so the
    # sorted order must be primarily ordered by that bit plane.
    assert np.all(np.diff(msb_plane[order]) >= 0)


def test_interleave_zero_records():
    """Regression: zero-record inputs interleave to zero keys."""
    for empty in (
        np.empty((0, 4), dtype=np.uint32),
        np.empty((0,), dtype=np.uint32),
        np.empty((0, 2), dtype=np.uint32),  # shape checks don't apply at n=0
    ):
        keys = interleave_words(empty, CONFIG)
        assert keys.shape == (0,)
        assert keys.dtype == CONFIG.key_dtype


def test_deinterleave_zero_keys():
    words = deinterleave_keys(np.empty(0, dtype=CONFIG.key_dtype), CONFIG)
    assert words.shape == (0, CONFIG.word_length)


def test_invsax_keys_zero_series():
    keys = invsax_keys(np.empty((0, 64)), CONFIG)
    assert keys.shape == (0,)
    assert keys.dtype == CONFIG.key_dtype


def test_single_record_roundtrip():
    """Regression companion: one record survives the full key cycle."""
    words = np.array([[3, 1, 4, 15]], dtype=np.uint16)
    keys = interleave_words(words, CONFIG)
    assert keys.shape == (1,)
    np.testing.assert_array_equal(deinterleave_keys(keys, CONFIG), words)
