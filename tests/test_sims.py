"""Unit tests for the shared SIMS scan engine."""

import numpy as np
import pytest

from repro.core import sims_scan
from repro.series import euclidean_batch, random_walk
from repro.summaries import SAXConfig, sax_words

CONFIG = SAXConfig(series_length=64, word_length=8, cardinality=16)


def make_corpus(n=300, seed=0):
    data = random_walk(n, length=64, seed=seed)
    words = sax_words(data, CONFIG)
    calls = []

    def fetch(positions):
        calls.append(np.array(positions))
        return data[positions].astype(np.float64), positions

    return data, words, fetch, calls


def test_finds_exact_nearest_neighbor():
    data, words, fetch, _ = make_corpus()
    query = random_walk(1, length=64, seed=1)[0]
    outcome = sims_scan(query, words, CONFIG, fetch)
    true = euclidean_batch(query.astype(np.float64), data.astype(np.float64))
    assert outcome.distance == pytest.approx(float(true.min()), rel=1e-9)
    assert outcome.answer_id == int(np.argmin(true))


def test_good_seed_reduces_visits():
    data, words, fetch, _ = make_corpus(seed=2)
    query = random_walk(1, length=64, seed=3)[0]
    cold = sims_scan(query, words, CONFIG, fetch)
    true = euclidean_batch(query.astype(np.float64), data.astype(np.float64))
    seeded = sims_scan(
        query,
        words,
        CONFIG,
        fetch,
        initial_bsf=float(np.partition(true, 3)[3]),
        initial_answer=int(np.argsort(true)[3]),
    )
    assert seeded.visited_records <= cold.visited_records
    assert seeded.distance == pytest.approx(cold.distance, rel=1e-9)


def test_perfect_seed_visits_almost_nothing():
    data, words, fetch, _ = make_corpus(seed=4)
    query = data[17]
    outcome = sims_scan(
        query, words, CONFIG, fetch, initial_bsf=1e-9, initial_answer=17
    )
    assert outcome.answer_id == 17
    # Only the query's own summary can tie the zero bound.
    assert outcome.visited_records <= 1
    assert outcome.pruned_fraction == pytest.approx(1.0, abs=0.01)


def test_fetch_receives_ascending_positions():
    _, words, fetch, calls = make_corpus(seed=5)
    query = random_walk(1, length=64, seed=6)[0]
    sims_scan(query, words, CONFIG, fetch, block_records=32)
    for block in calls:
        assert np.all(np.diff(block) > 0)


def test_blocks_refiltered_as_bsf_shrinks():
    """Later blocks must respect the improved best-so-far."""
    data, words, fetch, calls = make_corpus(n=500, seed=7)
    query = random_walk(1, length=64, seed=8)[0]
    small_blocks = sims_scan(query, words, CONFIG, fetch, block_records=16)
    calls.clear()
    one_block = sims_scan(query, words, CONFIG, fetch, block_records=10**6)
    # Same answer, but the incremental scan can only fetch fewer rows.
    assert small_blocks.distance == pytest.approx(one_block.distance, rel=1e-9)
    assert small_blocks.visited_records <= one_block.visited_records


def test_empty_corpus():
    words = np.empty((0, CONFIG.word_length), dtype=np.uint16)

    def fetch(positions):  # pragma: no cover - never called
        raise AssertionError("fetch must not be called on empty corpus")

    query = random_walk(1, length=64, seed=9)[0]
    outcome = sims_scan(query, words, CONFIG, fetch)
    assert outcome.answer_id == -1
    assert outcome.distance == float("inf")
    assert outcome.visited_records == 0
