"""Tests for DFT and Haar wavelet summarizations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.series import euclidean, z_normalize
from repro.summaries import (
    dft_features,
    dft_lower_bound,
    haar_lower_bound,
    haar_transform,
    inverse_haar_transform,
    is_power_of_two,
    level_slices,
)


def test_is_power_of_two():
    assert is_power_of_two(1)
    assert is_power_of_two(256)
    assert not is_power_of_two(0)
    assert not is_power_of_two(3)


# ---------------------------------------------------------------- DFT
def test_dft_features_shape():
    rng = np.random.default_rng(0)
    data = z_normalize(rng.standard_normal((5, 64)))
    features = dft_features(data, 8)
    assert features.shape == (5, 16)


def test_dft_validation():
    with pytest.raises(ValueError):
        dft_features(np.zeros((2, 64)), 0)
    with pytest.raises(ValueError):
        dft_features(np.zeros((2, 64)), 32)


def test_dft_lower_bound_holds():
    rng = np.random.default_rng(1)
    data = z_normalize(rng.standard_normal((30, 64)))
    query = z_normalize(rng.standard_normal(64))
    q_features = dft_features(query, 8)[0]
    c_features = dft_features(data, 8)
    bounds = dft_lower_bound(q_features, c_features)
    for i in range(30):
        assert bounds[i] <= euclidean(query, data[i]) + 1e-6


def test_dft_bound_tightens_with_more_coefficients():
    rng = np.random.default_rng(2)
    a = z_normalize(rng.standard_normal(64))
    b = z_normalize(rng.standard_normal(64))
    bounds = [
        dft_lower_bound(dft_features(a, k)[0], dft_features(b, k))[0]
        for k in (2, 8, 24)
    ]
    assert bounds[0] <= bounds[1] + 1e-9 <= bounds[2] + 1e-9


# --------------------------------------------------------------- DHWT
def test_haar_roundtrip():
    rng = np.random.default_rng(3)
    data = rng.standard_normal((7, 64))
    restored = inverse_haar_transform(haar_transform(data))
    np.testing.assert_allclose(restored, data, atol=1e-10)


def test_haar_requires_power_of_two():
    with pytest.raises(ValueError):
        haar_transform(np.zeros((2, 48)))


def test_haar_preserves_euclidean_distance():
    """Orthonormality: full-coefficient distance equals true ED."""
    rng = np.random.default_rng(4)
    a, b = rng.standard_normal((2, 128))
    ca = haar_transform(a)[0]
    cb = haar_transform(b)[0]
    assert np.linalg.norm(ca - cb) == pytest.approx(euclidean(a, b))


def test_haar_first_coefficient_is_scaled_mean():
    data = np.ones((1, 8)) * 3.0
    coefficients = haar_transform(data)
    assert coefficients[0, 0] == pytest.approx(3.0 * np.sqrt(8))
    np.testing.assert_allclose(coefficients[0, 1:], 0.0, atol=1e-12)


def test_level_slices_partition_everything():
    slices = level_slices(16)
    covered = []
    for s in slices:
        covered.extend(range(s.start, s.stop))
    assert covered == list(range(16))
    assert [s.stop - s.start for s in slices] == [1, 1, 2, 4, 8]


def test_haar_prefix_lower_bound():
    rng = np.random.default_rng(5)
    data = rng.standard_normal((20, 64))
    query = rng.standard_normal(64)
    cq = haar_transform(query)[0]
    cd = haar_transform(data)
    for k in (1, 4, 16, 64):
        bounds = haar_lower_bound(cq, cd[:, :k])
        for i in range(20):
            true = euclidean(query, data[i])
            assert bounds[i] <= true + 1e-9
    # Full prefix is exact.
    np.testing.assert_allclose(
        haar_lower_bound(cq, cd),
        [euclidean(query, row) for row in data],
        atol=1e-9,
    )


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 2**16), k=st.sampled_from([1, 2, 4, 8, 16, 32]))
def test_property_haar_prefix_bound_monotone(seed, k):
    rng = np.random.default_rng(seed)
    a, b = rng.standard_normal((2, 32))
    ca, cb = haar_transform(np.vstack([a, b]))
    shorter = haar_lower_bound(ca, cb[None, :k])[0]
    longer = haar_lower_bound(ca, cb[None, : min(32, 2 * k)])[0]
    assert shorter <= longer + 1e-9
