"""Arena page store: zero-copy invariants and the dict-store oracle.

The arena store keeps one contiguous ``bytearray`` per allocation
extent and serves reads as read-only memoryview slices; the dict store
is the per-page copy-level oracle it replaced.  These tests pin

* the hardened read semantics (never-written pages read as a full zero
  page, on ``read_page`` and ``read_run_bytes`` alike, on both stores);
* the zero-copy invariants (views alias the arena; scan blocks share
  arena memory; the buffer pool caches views; shard detach splices
  whole arenas instead of looping pages);
* the cross-store equivalence oracle: the same op sequence produces
  identical contents, counters, head movement and access traces.
"""

import tracemalloc

import numpy as np
import pytest

from repro.storage import (
    PAGE_STORES,
    BufferPool,
    ExternalSorter,
    PagedFile,
    RawSeriesFile,
    ShardedDisk,
    SimulatedDisk,
)


# ------------------------------------------------- hardened semantics
@pytest.mark.parametrize("store", PAGE_STORES)
def test_unwritten_pages_read_zero_filled_on_both_apis(store):
    disk = SimulatedDisk(page_size=32, store=store)
    disk.allocate(3)
    disk.write_page(1, b"abc")
    assert len(disk.read_page(0)) == 32
    assert bytes(disk.read_page(0)) == bytes(32)
    assert bytes(disk.read_page(1)) == b"abc".ljust(32, b"\x00")
    assert bytes(disk.read_run_bytes(0, 3)) == (
        bytes(32) + b"abc".ljust(32, b"\x00") + bytes(32)
    )
    # A shorter overwrite zeroes the replaced tail.
    disk.write_page(1, b"xy")
    assert bytes(disk.read_page(1)) == b"xy".ljust(32, b"\x00")
    # A short bulk write zeroes the rest of the run.
    disk.write_run_bytes(0, b"Q" * 40, 2)
    assert bytes(disk.read_run_bytes(0, 2)) == (b"Q" * 40).ljust(64, b"\x00")


@pytest.mark.parametrize("store", PAGE_STORES)
def test_shard_reads_are_zero_filled_full_pages(store):
    disk = SimulatedDisk(page_size=32, store=store)
    disk.allocate(2)
    disk.write_page(0, b"parent")
    extent = disk.allocate(2)
    with ShardedDisk(disk, [(extent, 2)]) as (shard,):
        assert bytes(shard.read_page(0)) == b"parent".ljust(32, b"\x00")
        assert bytes(shard.read_page(1)) == bytes(32)  # never written
        assert bytes(shard.read_page(extent)) == bytes(32)  # own, unwritten
        shard.write_page(extent, b"mine")
        assert bytes(shard.read_page(extent)) == b"mine".ljust(32, b"\x00")
        assert bytes(shard.read_run_bytes(0, 2)) == (
            b"parent".ljust(32, b"\x00") + bytes(32)
        )


# ------------------------------------------------- zero-copy invariants
def test_read_apis_alias_the_arena():
    disk = SimulatedDisk(page_size=64)
    first = disk.allocate(8)
    payload = bytes(range(256)) * 2
    disk.write_run_bytes(first, payload, 8)
    arena = disk._arenas.arenas[0]
    view = disk.read_run_bytes(first, 8)
    assert isinstance(view, memoryview) and view.readonly
    assert view.obj is arena  # zero-copy: a slice of the arena itself
    assert bytes(view) == payload.ljust(8 * 64, b"\x00")
    page = disk.read_page(first + 3)
    assert isinstance(page, memoryview) and page.obj is arena
    # The legacy list API rides the same single bulk read.
    disk.park_head()
    disk.reset_stats()
    pages = disk.read_run(first, 4)
    assert disk.stats.random_reads == 1 and disk.stats.sequential_reads == 3
    assert all(isinstance(p, memoryview) and p.obj is arena for p in pages)
    assert b"".join(bytes(p) for p in pages) == bytes(
        disk.read_run_bytes(first, 4)
    )


def test_paged_file_stream_is_zero_copy_within_one_extent():
    disk = SimulatedDisk(page_size=128)
    file = PagedFile(disk, n_pages=16)
    file.write_stream(bytes(range(256)) * 7)
    blob = file.read_stream(2, 10)
    assert isinstance(blob, memoryview)
    assert blob.obj is disk._arenas.arenas[0]


def test_scan_blocks_share_arena_memory():
    rng = np.random.default_rng(3)
    disk = SimulatedDisk(page_size=512)
    data = rng.standard_normal((64, 32)).astype(np.float32)  # 128 B records
    raw = RawSeriesFile.create(disk, data)
    assert raw.series_per_page * raw.record_bytes == disk.page_size
    arena = np.frombuffer(disk._arenas.arenas[0], dtype=np.uint8)
    blocks = list(raw.scan(chunk_series=16))
    assert blocks
    for _, block in blocks:
        assert np.shares_memory(block, arena)  # no intermediate bytes
    np.testing.assert_array_equal(
        np.concatenate([b for _, b in blocks]), data
    )


def test_buffer_pool_caches_views_not_copies():
    disk = SimulatedDisk(page_size=256)
    file = PagedFile(disk, n_pages=6)
    file.write_stream(b"x" * 1400)
    arena = disk._arenas.arenas[0]
    pool = BufferPool(disk, capacity_pages=8)
    blob = pool.read_run_bytes(0, 6)  # cold cache: one bulk device read
    assert isinstance(blob, memoryview) and blob.obj is arena
    for page_id, cached in pool._cache.items():
        assert isinstance(cached, memoryview) and cached.obj is arena
    hit = pool.read(2)
    assert isinstance(hit, memoryview) and hit.obj is arena
    assert pool.hits == 1 and pool.misses == 6
    # Write-through admits the device's own page view, not a copy.
    pool.write(1, b"fresh")
    assert pool._cache[1].obj is arena
    assert bytes(pool.read(1)) == b"fresh".ljust(256, b"\x00")


def test_arena_views_observe_later_writes():
    """Documented aliasing contract: views are windows, not snapshots."""
    disk = SimulatedDisk(page_size=16)
    disk.allocate(1)
    disk.write_page(0, b"before")
    view = disk.read_page(0)
    disk.write_page(0, b"after!")
    assert bytes(view) == b"after!".ljust(16, b"\x00")


def test_shard_detach_splices_without_per_page_copies():
    page_size, extent_pages = 1024, 128
    disk = SimulatedDisk(page_size=page_size)
    source = PagedFile(disk, n_pages=4)
    source.write_stream(bytes(range(256)) * 12)
    extent = disk.allocate(extent_pages)
    payload = (bytes(range(256)) * (extent_pages * 4))[: extent_pages * page_size]
    session = ShardedDisk(disk, [(extent, extent_pages)])
    (shard,) = session.shards
    shard.write_run_bytes(extent, payload, extent_pages)
    tracemalloc.start()
    session.detach()
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    # The whole 128 KiB extent reconciles as one arena splice: no page
    # payload is allocated on the way (the dict store would re-insert
    # 128 KiB of page objects; what remains is the written-page id
    # bookkeeping, a few bytes per page).
    assert peak < extent_pages * 128
    assert bytes(disk.read_run_bytes(extent, extent_pages)) == payload


# ------------------------------------------------- extent coalescing
def test_adjacent_extents_coalesce_into_one_arena():
    """Back-to-back allocations grow the tail arena in place."""
    disk = SimulatedDisk(page_size=64)
    first = disk.allocate(4)
    second = disk.allocate(4)
    assert second == first + 4  # physically adjacent
    assert len(disk._arenas.arenas) == 1
    payload = bytes(range(256)) * 2
    disk.write_run_bytes(first, payload, 8)
    # A run spanning both allocate calls is one zero-copy view.
    view = disk.read_run_bytes(first, 8)
    assert isinstance(view, memoryview) and view.readonly
    assert view.obj is disk._arenas.arenas[0]
    assert bytes(view) == payload


def test_coalescing_backs_off_while_views_are_exported():
    """A live memoryview pins the tail arena; growth must not move it."""
    disk = SimulatedDisk(page_size=64)
    first = disk.allocate(2)
    disk.write_page(first, b"pinned")
    held = disk.read_page(first)  # exported view of the tail arena
    second = disk.allocate(2)
    assert second == first + 2
    # BufferError fallback: a separate arena, the held view intact.
    assert len(disk._arenas.arenas) == 2
    assert bytes(held)[:6] == b"pinned"
    disk.write_page(second, b"new")
    assert bytes(disk.read_page(second))[:3] == b"new"
    # Cross-boundary runs still read correctly (joined copy path).
    assert bytes(disk.read_run_bytes(first, 4))[:6] == b"pinned"
    del held
    # With the export gone the next adjacent extent coalesces again.
    third = disk.allocate(2)
    assert third == second + 2
    assert len(disk._arenas.arenas) == 2


def test_incrementally_grown_file_reads_back_zero_copy():
    """An extent-at-a-time file stays on the zero-copy read path.

    Before coalescing, each ``allocate`` call made its own arena and a
    whole-file read joined them through a bytes copy; now the read is
    a single arena slice, pinned by tracemalloc staying far below the
    file size.
    """
    page_size, n_extents, extent_pages = 1024, 16, 8
    disk = SimulatedDisk(page_size=page_size)
    rng = np.random.default_rng(5)
    first = None
    for i in range(n_extents):
        start = disk.allocate(extent_pages)
        first = start if first is None else first
        disk.write_run_bytes(
            start,
            bytes(rng.integers(0, 256, size=extent_pages * page_size,
                               dtype=np.uint8)),
            extent_pages,
        )
    assert len(disk._arenas.arenas) == 1
    total_pages = n_extents * extent_pages
    tracemalloc.start()
    view = disk.read_run_bytes(first, total_pages)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    assert isinstance(view, memoryview)
    assert view.obj is disk._arenas.arenas[0]
    # 128 KiB of data read with no materialized copy.
    assert peak < total_pages * page_size // 8


# ------------------------------------------------- cross-store oracle
def _random_ops(disk, rng):
    """Drive one device with a deterministic mixed op sequence."""
    out = []
    disk.allocate(int(rng.integers(1, 6)))
    for _ in range(60):
        op = int(rng.integers(0, 6))
        allocated = disk.pages_allocated
        if op == 0 or allocated == 0:
            disk.allocate(int(rng.integers(1, 6)))
            continue
        first = int(rng.integers(0, allocated))
        span = int(rng.integers(1, min(6, allocated - first) + 1))
        if op == 1:
            data = bytes(rng.integers(0, 256, size=int(rng.integers(0, disk.page_size + 1)), dtype=np.uint8))
            disk.write_page(first, data)
        elif op == 2:
            n_bytes = int(rng.integers(0, span * disk.page_size + 1))
            data = bytes(rng.integers(0, 256, size=n_bytes, dtype=np.uint8))
            disk.write_run_bytes(first, data, span)
        elif op == 3:
            out.append(bytes(disk.read_page(first)))
        elif op == 4:
            out.append(bytes(disk.read_run_bytes(first, span)))
        else:
            out.append(b"".join(bytes(p) for p in disk.read_run(first, span)))
    return out


def test_dict_and_arena_stores_are_equivalent_under_random_ops():
    for seed in range(8):
        arena = SimulatedDisk(page_size=96, store="arena", trace=True)
        dict_ = SimulatedDisk(page_size=96, store="dict", trace=True)
        got_a = _random_ops(arena, np.random.default_rng(seed))
        got_d = _random_ops(dict_, np.random.default_rng(seed))
        assert got_a == got_d, seed
        assert arena.stats == dict_.stats, seed
        assert arena.head_position == dict_.head_position, seed
        assert arena.trace == dict_.trace, seed
        assert arena.dump_pages() == dict_.dump_pages(), seed
        assert arena.pages_written == dict_.pages_written, seed


@pytest.mark.parametrize("workers", [1, 3])
def test_spilled_sort_identical_across_stores(workers):
    """The whole sort/spill/merge stack is store-agnostic, sharded too.

    Same merged stream, chunk shapes, SortReport, DiskStats and access
    trace on the arena store as on the dict oracle — serially and with
    the sharded parallel cascade (``workers > 1`` exercises DiskShard
    arenas and the splice-based detach end to end).
    """
    rng = np.random.default_rng(11)
    raw = rng.integers(0, 256, size=(4000, 8), dtype=np.uint8)
    keys = raw.view("S8").ravel()
    payloads = rng.standard_normal((4000, 4)).astype(np.float32)
    results = {}
    for store in PAGE_STORES:
        disk = SimulatedDisk(page_size=1024, store=store, trace=True)
        sorter = ExternalSorter(
            disk, 4096 * 4, merge_workers=workers, pool_kind="serial"
        )
        parts = list(sorter.sort(keys, payloads))
        results[store] = {
            "keys": np.concatenate([k for k, _ in parts]),
            "payloads": np.concatenate([p for _, p in parts]),
            "shapes": [len(k) for k, _ in parts],
            "stats": disk.stats,
            "trace": disk.trace,
            "report": sorter.report,
            "pages": disk.dump_pages(),
        }
    a, d = results["arena"], results["dict"]
    assert a["report"].spilled
    np.testing.assert_array_equal(a["keys"], d["keys"])
    np.testing.assert_array_equal(a["payloads"], d["payloads"])
    assert a["shapes"] == d["shapes"]
    assert a["report"] == d["report"]
    assert a["stats"] == d["stats"]
    assert a["trace"] == d["trace"]
    assert a["pages"] == d["pages"]
