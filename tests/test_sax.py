"""Tests for SAX symbols, breakpoints and mindist bounds."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.series import euclidean, random_walk, z_normalize
from repro.summaries import (
    SAXConfig,
    breakpoints,
    extended_breakpoints,
    mindist_paa_to_words,
    mindist_words,
    paa,
    sax_from_paa,
    sax_words,
    symbol_bounds,
    word_to_text,
)


def test_breakpoints_count_and_monotonicity():
    for cardinality in (2, 4, 8, 256):
        bps = breakpoints(cardinality)
        assert len(bps) == cardinality - 1
        assert np.all(np.diff(bps) > 0)


def test_breakpoints_are_standard_normal_quantiles():
    bps = breakpoints(4)
    np.testing.assert_allclose(bps[1], 0.0, atol=1e-12)
    np.testing.assert_allclose(bps[0], -bps[2], atol=1e-12)


def test_breakpoints_validation():
    with pytest.raises(ValueError):
        breakpoints(3)
    with pytest.raises(ValueError):
        breakpoints(1)


def test_extended_breakpoints_sentinels():
    ext = extended_breakpoints(8)
    assert ext[0] == -np.inf and ext[-1] == np.inf
    assert len(ext) == 9


def test_sax_from_paa_quantization():
    # Cardinality 4: regions split at (-0.6745, 0, 0.6745).
    symbols = sax_from_paa(np.array([-2.0, -0.3, 0.3, 2.0]), 4)
    np.testing.assert_array_equal(symbols, [0, 1, 2, 3])


def test_sax_config_validation():
    with pytest.raises(ValueError):
        SAXConfig(cardinality=3)
    with pytest.raises(ValueError):
        SAXConfig(word_length=0)
    with pytest.raises(ValueError):
        SAXConfig(series_length=8, word_length=16)


def test_sax_config_derived_sizes():
    config = SAXConfig(series_length=256, word_length=16, cardinality=256)
    assert config.bits_per_symbol == 8
    assert config.key_bits == 128
    assert config.key_bytes == 16
    assert config.key_dtype == np.dtype("S16")


def test_sax_words_shape_and_range():
    config = SAXConfig(series_length=64, word_length=8, cardinality=16)
    data = random_walk(10, length=64, seed=0)
    words = sax_words(data, config)
    assert words.shape == (10, 8)
    assert words.max() < 16


def test_sax_words_rejects_wrong_length():
    config = SAXConfig(series_length=64, word_length=8)
    with pytest.raises(ValueError):
        sax_words(np.zeros((2, 32)), config)


def test_symbol_bounds_bracket_paa_values():
    config = SAXConfig(series_length=64, word_length=8, cardinality=32)
    data = random_walk(20, length=64, seed=1)
    values = paa(data, 8)
    words = sax_from_paa(values, 32)
    lower, upper = symbol_bounds(words, 32)
    assert np.all(values <= upper)
    assert np.all(values >= lower)


def test_mindist_paa_to_words_is_lower_bound():
    config = SAXConfig(series_length=128, word_length=16, cardinality=64)
    data = random_walk(50, length=128, seed=2)
    query = random_walk(1, length=128, seed=99)[0]
    words = sax_words(data, config)
    bounds = mindist_paa_to_words(paa(query, 16)[0], words, config)
    for i in range(50):
        assert bounds[i] <= euclidean(query, data[i]) + 1e-6


def test_mindist_zero_for_same_region():
    config = SAXConfig(series_length=32, word_length=4, cardinality=8)
    series = z_normalize(np.sin(np.linspace(0, 6, 32)))
    word = sax_words(series, config)
    bound = mindist_paa_to_words(paa(series, 4)[0], word, config)
    assert bound[0] == pytest.approx(0.0, abs=1e-12)


def test_mindist_words_symmetric_lower_bound():
    config = SAXConfig(series_length=64, word_length=8, cardinality=16)
    data = random_walk(12, length=64, seed=3)
    words = sax_words(data, config)
    for i in range(0, 12, 3):
        for j in range(0, 12, 4):
            d_ij = mindist_words(words[i], words[j], config)
            d_ji = mindist_words(words[j], words[i], config)
            assert d_ij == pytest.approx(d_ji)
            true = euclidean(data[i].astype(float), data[j].astype(float))
            assert d_ij <= true + 1e-6


def test_word_to_text_example():
    assert word_to_text(np.array([5, 2, 5, 3]), 8) == "fcfd"


def test_word_to_text_rejects_high_cardinality():
    with pytest.raises(ValueError):
        word_to_text(np.array([0]), 256)


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 2**16), cardinality=st.sampled_from([4, 16, 256]))
def test_property_sax_mindist_lower_bounds_euclidean(seed, cardinality):
    config = SAXConfig(series_length=64, word_length=8, cardinality=cardinality)
    rng = np.random.default_rng(seed)
    data = z_normalize(rng.standard_normal((8, 64)))
    query = z_normalize(rng.standard_normal(64))
    bounds = mindist_paa_to_words(paa(query, 8)[0], sax_words(data, config), config)
    true = [euclidean(query, row) for row in data]
    assert np.all(bounds <= np.array(true) + 1e-6)
