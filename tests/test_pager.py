"""Tests for paged files and extent bookkeeping."""

import pytest

from repro.storage import PagedFile, PageError, SimulatedDisk


def test_single_allocation_is_one_extent():
    disk = SimulatedDisk()
    file = PagedFile(disk, n_pages=10)
    assert file.n_extents == 1
    assert file.n_pages == 10


def test_incremental_growth_without_interference_merges_extents():
    disk = SimulatedDisk()
    file = PagedFile(disk)
    file.grow(2)
    file.grow(3)
    assert file.n_extents == 1
    assert file.n_pages == 5


def test_interleaved_growth_fragments_files():
    """Two files grown alternately scatter each other's extents."""
    disk = SimulatedDisk()
    a = PagedFile(disk)
    b = PagedFile(disk)
    for _ in range(3):
        a.grow(1)
        b.grow(1)
    assert a.n_extents == 3
    assert b.n_extents == 3


def test_logical_to_physical_mapping_across_extents():
    disk = SimulatedDisk()
    a = PagedFile(disk)
    a.grow(2)  # physical 0, 1
    PagedFile(disk, n_pages=3)  # physical 2..4 (interloper)
    a.grow(2)  # physical 5, 6
    assert [a.physical_page(i) for i in range(4)] == [0, 1, 5, 6]


def test_out_of_range_access_fails():
    disk = SimulatedDisk()
    file = PagedFile(disk, n_pages=2)
    with pytest.raises(PageError):
        file.read(2)
    with pytest.raises(PageError):
        file.physical_page(-1)


def test_contiguous_file_io_is_sequential():
    disk = SimulatedDisk()
    file = PagedFile(disk, n_pages=5)
    for i in range(5):
        file.write(i, b"x")
    assert disk.stats.sequential_writes == 4
    assert disk.stats.random_writes == 1


def test_fragmented_file_io_pays_random_accesses():
    disk = SimulatedDisk()
    a = PagedFile(disk)
    b = PagedFile(disk)
    for _ in range(4):
        a.grow(1)
        b.grow(1)
    for i in range(4):
        a.write(i, b"x")
    # Every logical page of `a` lives in its own extent: all seeks.
    assert disk.stats.random_writes == 4


def test_write_stream_spans_pages_and_reads_back():
    disk = SimulatedDisk(page_size=8)
    file = PagedFile(disk)
    payload = bytes(range(20))
    n_pages = file.write_stream(payload)
    assert n_pages == 3
    restored = file.read_stream(0, 3)
    assert restored[:20] == payload
    assert len(restored) == 24  # padded to whole pages


def test_append_page():
    disk = SimulatedDisk()
    file = PagedFile(disk)
    idx = file.append_page(b"abc")
    assert idx == 0
    assert file.read(0) == b"abc"
