"""Tests for paged files and extent bookkeeping."""

import pytest

from repro.storage import PagedFile, PageError, SimulatedDisk


def test_single_allocation_is_one_extent():
    disk = SimulatedDisk()
    file = PagedFile(disk, n_pages=10)
    assert file.n_extents == 1
    assert file.n_pages == 10


def test_incremental_growth_without_interference_merges_extents():
    disk = SimulatedDisk()
    file = PagedFile(disk)
    file.grow(2)
    file.grow(3)
    assert file.n_extents == 1
    assert file.n_pages == 5


def test_interleaved_growth_fragments_files():
    """Two files grown alternately scatter each other's extents."""
    disk = SimulatedDisk()
    a = PagedFile(disk)
    b = PagedFile(disk)
    for _ in range(3):
        a.grow(1)
        b.grow(1)
    assert a.n_extents == 3
    assert b.n_extents == 3


def test_logical_to_physical_mapping_across_extents():
    disk = SimulatedDisk()
    a = PagedFile(disk)
    a.grow(2)  # physical 0, 1
    PagedFile(disk, n_pages=3)  # physical 2..4 (interloper)
    a.grow(2)  # physical 5, 6
    assert [a.physical_page(i) for i in range(4)] == [0, 1, 5, 6]


def test_out_of_range_access_fails():
    disk = SimulatedDisk()
    file = PagedFile(disk, n_pages=2)
    with pytest.raises(PageError):
        file.read(2)
    with pytest.raises(PageError):
        file.physical_page(-1)


def test_contiguous_file_io_is_sequential():
    disk = SimulatedDisk()
    file = PagedFile(disk, n_pages=5)
    for i in range(5):
        file.write(i, b"x")
    assert disk.stats.sequential_writes == 4
    assert disk.stats.random_writes == 1


def test_fragmented_file_io_pays_random_accesses():
    disk = SimulatedDisk()
    a = PagedFile(disk)
    b = PagedFile(disk)
    for _ in range(4):
        a.grow(1)
        b.grow(1)
    for i in range(4):
        a.write(i, b"x")
    # Every logical page of `a` lives in its own extent: all seeks.
    assert disk.stats.random_writes == 4


def test_write_stream_spans_pages_and_reads_back():
    disk = SimulatedDisk(page_size=8)
    file = PagedFile(disk)
    payload = bytes(range(20))
    n_pages = file.write_stream(payload)
    assert n_pages == 3
    restored = file.read_stream(0, 3)
    assert restored[:20] == payload
    assert len(restored) == 24  # padded to whole pages


def test_append_page():
    disk = SimulatedDisk()
    file = PagedFile(disk)
    idx = file.append_page(b"abc")
    assert idx == 0
    assert file.read(0)[:3] == b"abc"  # reads return full padded pages


# --------------------------------------------- bytes-level fast path
def _slow_read_stream(file, first, n):
    """Per-page reference for the read_stream fast path."""
    return b"".join(
        bytes(file.read(i)) for i in range(first, first + n)
    )


def test_stream_fast_path_matches_per_page_on_fragmented_files():
    """read/write_stream via run-bytes == the page-at-a-time oracle:
    same bytes, same stored pages, same classified DiskStats — across
    extent boundaries and short tail pages."""
    import numpy as np

    rng = np.random.default_rng(3)
    for trial in range(25):
        d_fast, d_slow = SimulatedDisk(page_size=96), SimulatedDisk(page_size=96)
        f_fast, f_slow = PagedFile(d_fast), PagedFile(d_slow)
        o_fast, o_slow = PagedFile(d_fast), PagedFile(d_slow)
        for _ in range(int(rng.integers(1, 5))):  # interleave: fragmentation
            g = int(rng.integers(1, 6))
            f_fast.grow(g)
            f_slow.grow(g)
            o_fast.grow(1)
            o_slow.grow(1)
        n_bytes = int(rng.integers(1, f_fast.n_pages * 96 + 1))
        data = bytes(rng.integers(0, 256, size=n_bytes, dtype=np.uint8))
        at_page = int(rng.integers(0, f_fast.n_pages))
        f_fast.write_stream(data, at_page=at_page)
        ps = 96
        n_pages = max(1, -(-len(data) // ps))
        if at_page + n_pages > f_slow.n_pages:
            f_slow.grow(at_page + n_pages - f_slow.n_pages)
        for i in range(n_pages):
            f_slow.write(at_page + i, data[i * ps : (i + 1) * ps])
        assert d_fast.stats == d_slow.stats, trial
        assert d_fast.dump_pages() == d_slow.dump_pages(), trial
        first = int(rng.integers(0, f_fast.n_pages))
        count = int(rng.integers(0, f_fast.n_pages - first + 1))
        assert f_fast.read_stream(first, count) == _slow_read_stream(
            f_slow, first, count
        )
        assert d_fast.stats == d_slow.stats, trial
        assert d_fast.head_position == d_slow.head_position, trial


def test_stream_fast_path_on_shards_matches_per_page():
    """The bulk interface of DiskShard classifies like its page loop."""
    from repro.storage import ShardedDisk

    def build():
        disk = SimulatedDisk(page_size=32)
        source = PagedFile(disk, n_pages=4)
        source.write_stream(bytes(range(100)))
        extent = disk.allocate(3)
        disk.reset_stats()
        disk.park_head()
        return disk, source, extent

    d1, s1, e1 = build()
    d2, s2, e2 = build()
    with ShardedDisk(d1, [(e1, 3)]) as (shard1,):
        out1 = PagedFile.from_extent(shard1, e1, 3)
        out1.write_stream(b"z" * 70)
        got_bulk = s1.attach(shard1).read_stream(0, 4)
        back_bulk = out1.read_stream(0, 3)
        stats1 = shard1.snapshot()
    with ShardedDisk(d2, [(e2, 3)]) as (shard2,):
        view = s2.attach(shard2)
        parts = [view.read(i) for i in range(4)]  # warms nothing; per page
        got_pages = b"".join(bytes(p) for p in parts)
        out2 = PagedFile.from_extent(shard2, e2, 3)
        for i in range(3):
            out2.write(i, (b"z" * 70)[i * 32 : (i + 1) * 32])
        back_pages = b"".join(bytes(out2.read(i)) for i in range(3))
        stats2 = shard2.snapshot()
    # Same ops in a different order: compare content and totals of the
    # matching phases rather than the interleaving-dependent split.
    assert got_bulk == got_pages
    assert back_bulk == back_pages
    assert stats1.bytes_read == stats2.bytes_read
    assert stats1.bytes_written == stats2.bytes_written
    assert d1.dump_pages() == d2.dump_pages()


def test_read_stream_empty_range_and_bounds():
    disk = SimulatedDisk(page_size=16)
    file = PagedFile(disk, n_pages=2)
    assert file.read_stream(0, 0) == b""
    assert file.read_stream(2, 0) == b""
    with pytest.raises(PageError):
        file.read_stream(1, 2)
    with pytest.raises(PageError):
        file.read_stream(-1, 1)


def test_write_stream_empty_payload_still_touches_one_page():
    fast, slow = SimulatedDisk(page_size=16), SimulatedDisk(page_size=16)
    f_fast, f_slow = PagedFile(fast), PagedFile(slow)
    assert f_fast.write_stream(b"") == 1
    f_slow.grow(1)
    f_slow.write(0, b"")
    assert fast.stats == slow.stats
    assert fast.dump_pages() == slow.dump_pages()
