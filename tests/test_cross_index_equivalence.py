"""Cross-index equivalence: every engine returns the same exact answers.

The serial scan is the ground-truth oracle.  Every Coconut variant —
tree/trie x materialized/secondary, plus the LSM — and both execution
styles (per-query and the batched shared-scan executor) must agree
with it on exact (id, distance) answers, for 1-NN and for kNN.  This
is the safety net under the parallel/batched machinery: any pruning
bug, any mis-seeded bound, any batching shortcut shows up here as a
disagreement with brute force.
"""

import numpy as np
import pytest

from repro import QueryBatch, RawSeriesFile, SerialScan, SimulatedDisk, make_dataset
from repro.core import CoconutLSM, CoconutTree, CoconutTrie
from repro.series import query_workload
from repro.summaries import SAXConfig

CONFIG = SAXConfig(series_length=48, word_length=8, cardinality=64)
N_SERIES = 700
N_QUERIES = 6
MEMORY = 1 << 20

INDEX_MAKERS = {
    "CTree": lambda disk: CoconutTree(
        disk, MEMORY, config=CONFIG, leaf_size=32
    ),
    "CTreeFull": lambda disk: CoconutTree(
        disk, MEMORY, config=CONFIG, leaf_size=32, materialized=True
    ),
    "CTrie": lambda disk: CoconutTrie(
        disk, MEMORY, config=CONFIG, leaf_size=32
    ),
    "CTrieFull": lambda disk: CoconutTrie(
        disk, MEMORY, config=CONFIG, leaf_size=32, materialized=True
    ),
    "LSM": lambda disk: CoconutLSM(disk, MEMORY, config=CONFIG),
    "Serial": lambda disk: SerialScan(disk, MEMORY),
}


@pytest.fixture(scope="module", params=["randomwalk", "seismic"])
def workload(request):
    data = make_dataset(request.param, N_SERIES, length=48, seed=21)
    queries = query_workload(request.param, N_QUERIES, length=48, seed=21)
    disk = SimulatedDisk(page_size=2048)
    raw = RawSeriesFile.create(disk, data)
    oracle = SerialScan(disk, MEMORY)
    oracle.build(raw)
    return disk, raw, queries, oracle


def _built(name, workload):
    disk, raw, _, _ = workload
    index = INDEX_MAKERS[name](disk)
    index.build(raw)
    return index


@pytest.mark.parametrize("name", sorted(INDEX_MAKERS))
def test_exact_search_matches_serial_oracle(name, workload):
    _, _, queries, oracle = workload
    index = _built(name, workload)
    for query in queries:
        want = oracle.exact_search(query)
        got = index.exact_search(query)
        assert got.answer_idx == want.answer_idx
        assert got.distance == pytest.approx(want.distance, rel=1e-9)


@pytest.mark.parametrize("name", sorted(INDEX_MAKERS))
@pytest.mark.parametrize("k", [1, 5])
def test_exact_knn_matches_serial_oracle(name, workload, k):
    _, _, queries, oracle = workload
    index = _built(name, workload)
    if name == "Serial" and k > 1:
        pytest.skip("the oracle is the thing under comparison")
    for query in queries:
        want = oracle.exact_knn(query, k)
        got = index.exact_knn(query, k)
        assert got.answer_ids == want.answer_ids
        np.testing.assert_allclose(got.distances, want.distances, rtol=1e-9)


@pytest.mark.parametrize("name", sorted(INDEX_MAKERS))
@pytest.mark.parametrize("k", [1, 4])
def test_batched_executor_matches_per_query(name, workload, k):
    """The ISSUE acceptance gate: batched == per-query, all variants."""
    _, _, queries, _ = workload
    index = _built(name, workload)
    report = index.query_batch(QueryBatch(queries=queries, k=k))
    assert len(report) == len(queries)
    for i, query in enumerate(queries):
        solo = index.exact_knn(query, k)
        assert report.knn_ids[i] == solo.answer_ids
        np.testing.assert_allclose(
            report.knn_distances[i], solo.distances, rtol=1e-9
        )
        assert report.results[i].answer_idx == solo.answer_ids[0]


@pytest.mark.parametrize("name", sorted(set(INDEX_MAKERS) - {"Serial"}))
def test_batched_executor_matches_oracle_batch(name, workload):
    """All indexes' batch reports carry one identical answer set."""
    _, _, queries, oracle = workload
    index = _built(name, workload)
    batch = QueryBatch(queries=queries, k=3)
    want = oracle.query_batch(batch)
    got = index.query_batch(batch)
    assert got.knn_ids == want.knn_ids
    for got_d, want_d in zip(got.knn_distances, want.knn_distances):
        np.testing.assert_allclose(got_d, want_d, rtol=1e-9)


def test_approximate_batch_matches_per_query(workload):
    """Approximate mode falls back to the per-query path, unchanged."""
    _, _, queries, _ = workload
    index = _built("CTreeFull", workload)
    report = index.query_batch(QueryBatch(queries=queries, mode="approximate"))
    for i, query in enumerate(queries):
        solo = index.approximate_search(query)
        assert report.results[i].answer_idx == solo.answer_idx
        assert report.results[i].distance == pytest.approx(solo.distance)


def test_query_batch_validation():
    with pytest.raises(ValueError):
        QueryBatch(queries=np.zeros((2, 8)), k=0)
    with pytest.raises(ValueError):
        QueryBatch(queries=np.zeros((2, 8)), mode="fuzzy")


def test_default_loop_fallback_agrees(workload):
    """Indexes without a shared-scan override use the per-query loop."""
    from repro import ADSIndex
    from repro.bench.harness import default_config

    disk, raw, queries, oracle = workload
    index = ADSIndex(disk, MEMORY, config=default_config(48), leaf_size=32)
    index.build(raw)
    report = index.query_batch(QueryBatch(queries=queries, k=1))
    for i, query in enumerate(queries):
        want = oracle.exact_search(query)
        assert report.results[i].answer_idx == want.answer_idx
        assert report.results[i].distance == pytest.approx(want.distance)


def test_default_knn_fallback_matches_oracle(workload):
    """Indexes without a SIMS k-NN override fall back to a ground-truth
    scan of the raw file (regression: they used to raise for k > 1)."""
    from repro import ADSIndex
    from repro.bench.harness import default_config

    disk, raw, queries, oracle = workload
    index = ADSIndex(disk, MEMORY, config=default_config(48), leaf_size=32)
    index.build(raw)
    report = index.query_batch(QueryBatch(queries=queries, k=3))
    want = oracle.query_batch(QueryBatch(queries=queries, k=3))
    assert report.knn_ids == want.knn_ids


def test_approximate_knn_batch_rejected():
    """Regression: approximate + k>1 silently returned one answer."""
    with pytest.raises(ValueError):
        QueryBatch(queries=np.zeros((2, 8)), k=5, mode="approximate")


def test_oversized_batch_splits_without_changing_answers(workload, monkeypatch):
    """Batches past the mindist-matrix cap split recursively and still
    return exactly the per-query answers."""
    from repro.parallel import batch as batch_module

    _, _, queries, _ = workload
    index = _built("CTree", workload)
    whole = index.query_batch(QueryBatch(queries=queries, k=2))
    monkeypatch.setattr(batch_module, "MAX_MINDIST_CELLS", N_SERIES + 1)
    split = index.query_batch(QueryBatch(queries=queries, k=2))
    assert split.knn_ids == whole.knn_ids
    for a, b in zip(split.knn_distances, whole.knn_distances):
        np.testing.assert_allclose(a, b, rtol=1e-12)
