"""Cross-store fetch oracle suite: vectorized gather vs loop-level oracle.

The vectorized ``RawSeriesFile.get_many`` / ``scan`` paths must be
indistinguishable from the retained loop-level oracle
(``get_many_loop``) on *both* page stores — same float32 payloads, same
classified :class:`DiskStats`, same head movement, same buffer-pool
hit/miss counts — for every layout the file supports: page-divisor and
non-divisor record sizes, records spanning multiple pages, duplicate /
unsorted / empty / out-of-range index arrays.  The fused refine kernel
is pinned the same way: bitwise against the scalar early-abandon loop
and against the plain batch distance for survivors.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.series.distance import (
    early_abandon_euclidean,
    early_abandon_euclidean_block,
    euclidean_batch,
)
from repro.storage import BufferPool, RawSeriesFile, SimulatedDisk
from repro.storage.disk import PAGE_STORES

# (n_series, length, page_size): divisor and non-divisor single-page
# layouts, a page_size that is not a float32 multiple, and multi-page
# records (page_size < record_bytes).
GEOMETRIES = [
    (50, 32, 512),  # divisor: 4 records/page, no padding
    (25, 12, 256),  # non-divisor: 5 records + 16 B padding per page
    (137, 16, 1000),  # non-divisor, non-power-of-two page
    (3, 4, 70),  # page_size not a multiple of 4
    (9, 64, 128),  # multi-page: 2 pages per record
    (5, 96, 100),  # multi-page, padding in the last page of each record
]

INDEX_PATTERNS = [
    lambda n: np.arange(n),
    lambda n: np.arange(n)[::-1],  # descending
    lambda n: np.array([n - 1, 0, n // 2, n // 2, 0]),  # dup + unsorted
    lambda n: np.array([0]),
    lambda n: np.array([], dtype=np.int64),
    lambda n: np.arange(n)[::3],  # strided: non-consecutive pages
]


def make_raw(n, length, page_size, store, seed=0):
    rng = np.random.default_rng(seed)
    data = rng.standard_normal((n, length)).astype(np.float32)
    disk = SimulatedDisk(page_size=page_size, store=store)
    return disk, RawSeriesFile.create(disk, data), data


@pytest.mark.parametrize("store", PAGE_STORES)
@pytest.mark.parametrize("n,length,page_size", GEOMETRIES)
def test_get_many_matches_oracle_and_data(store, n, length, page_size):
    _, raw, data = make_raw(n, length, page_size, store)
    for pattern in INDEX_PATTERNS:
        idxs = pattern(n)
        got = raw.get_many(idxs)
        oracle = raw.get_many_loop(idxs)
        assert got.shape == (len(idxs), length)
        np.testing.assert_array_equal(got, oracle)
        if len(idxs):
            np.testing.assert_array_equal(got, data[idxs])


@pytest.mark.parametrize("store", PAGE_STORES)
@pytest.mark.parametrize("n,length,page_size", GEOMETRIES)
def test_get_many_stats_match_oracle(store, n, length, page_size):
    """Same classified I/O and head movement as the loop oracle."""
    for pattern in INDEX_PATTERNS:
        idxs = pattern(n)
        d1, r1, _ = make_raw(n, length, page_size, store)
        d2, r2, _ = make_raw(n, length, page_size, store)
        for d in (d1, d2):
            d.reset_stats()
            d.park_head()
        np.testing.assert_array_equal(r1.get_many(idxs), r2.get_many_loop(idxs))
        assert d1.stats == d2.stats
        assert d1.head_position == d2.head_position


@pytest.mark.parametrize("store", PAGE_STORES)
@pytest.mark.parametrize("n,length,page_size", GEOMETRIES)
def test_get_many_out_of_range_raises_before_io(store, n, length, page_size):
    """Regression: OOB indexes used to silently gather padded zeros."""
    disk, raw, _ = make_raw(n, length, page_size, store)
    for bad in ([n], [-1], [0, n], [n + 100], [0, -1, 1]):
        for fn in (raw.get_many, raw.get_many_loop):
            snap = disk.snapshot()
            with pytest.raises(IndexError):
                fn(np.array(bad))
            assert disk.stats_since(snap).total_reads == 0


@pytest.mark.parametrize("store", PAGE_STORES)
@pytest.mark.parametrize("n,length,page_size", GEOMETRIES)
def test_scan_matches_data_everywhere(store, n, length, page_size):
    _, raw, data = make_raw(n, length, page_size, store)
    for chunk in (None, 1, 3, n, 10 * n):
        kwargs = {} if chunk is None else {"chunk_series": chunk}
        got = np.concatenate(
            [block for _, block in raw.scan(**kwargs)] or [data[:0]]
        )
        np.testing.assert_array_equal(got, data)
    for start, stop in [(0, n), (1, n - 1), (n // 2, n // 2 + 1), (n, n)]:
        parts = [b for _, b in raw.scan(chunk_series=3, start=start, stop=stop)]
        got = np.concatenate(parts) if parts else data[:0]
        np.testing.assert_array_equal(got, data[start:stop])


@pytest.mark.parametrize("store", PAGE_STORES)
def test_multipage_get_many_visits_each_page_once(store):
    """Regression: the multi-page path re-read pages per record."""
    n, length, page_size = 9, 64, 128  # 2 pages per record
    disk, raw, data = make_raw(n, length, page_size, store)
    assert raw.pages_per_series == 2
    idxs = np.array([0, 1, 5, 5, 1])  # dups must not re-read
    disk.reset_stats()
    disk.park_head()
    np.testing.assert_array_equal(raw.get_many(idxs), data[idxs])
    # Distinct records {0, 1, 5}: 3 records x 2 pages, each read once.
    assert disk.stats.total_reads == 3 * raw.pages_per_series


@pytest.mark.parametrize("store", PAGE_STORES)
def test_get_many_through_pool_matches_and_counts_like_oracle(store):
    n, length, page_size = 60, 12, 256
    disk, raw, data = make_raw(n, length, page_size, store)
    idxs = np.array([0, 7, 7, 30, 2, 59])
    pools = []
    results = []
    for fn_name in ("get_many", "get_many_loop"):
        d, r, _ = make_raw(n, length, page_size, store)
        pool = BufferPool(d, capacity_pages=4)
        r.attach_pool(pool)
        results.append(getattr(r, fn_name)(idxs))
        results.append(getattr(r, fn_name)(idxs))  # second pass: warm cache
        pools.append(pool)
    np.testing.assert_array_equal(results[0], data[idxs])
    np.testing.assert_array_equal(results[0], results[2])
    np.testing.assert_array_equal(results[1], results[3])
    assert (pools[0].hits, pools[0].misses) == (pools[1].hits, pools[1].misses)


@settings(max_examples=60, deadline=None)
@given(
    idxs=st.lists(st.integers(min_value=0, max_value=24), max_size=60),
    geometry=st.sampled_from([(25, 12, 256), (25, 7, 100), (25, 32, 128)]),
    store=st.sampled_from(PAGE_STORES),
)
def test_property_gather_equals_oracle(idxs, geometry, store):
    n, length, page_size = geometry
    d1, r1, data = make_raw(n, length, page_size, store, seed=5)
    d2, r2, _ = make_raw(n, length, page_size, store, seed=5)
    idxs = np.array(idxs, dtype=np.int64)
    for d in (d1, d2):
        d.reset_stats()
        d.park_head()
    got = r1.get_many(idxs)
    oracle = r2.get_many_loop(idxs)
    np.testing.assert_array_equal(got, oracle)
    if len(idxs):
        np.testing.assert_array_equal(got, data[idxs])
    assert d1.stats == d2.stats


# ------------------------------------------------- fused refine kernel
@settings(max_examples=60, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    n=st.integers(min_value=0, max_value=24),
    length=st.integers(min_value=1, max_value=130),
    chunk=st.integers(min_value=1, max_value=48),
    bound_kind=st.sampled_from(["inf", "zero", "median", "min", "max"]),
)
def test_property_block_kernel_pinned_to_scalar_loop(
    seed, n, length, chunk, bound_kind
):
    """Bitwise: block kernel == scalar loop per row, finite == batch."""
    rng = np.random.default_rng(seed)
    block = rng.standard_normal((n, length)).astype(np.float32)
    query = rng.standard_normal(length).astype(np.float32)
    full = euclidean_batch(query, block)
    bound = {
        "inf": np.inf,
        "zero": 0.0,
        "median": float(np.median(full)) if n else 1.0,
        "min": float(full.min()) if n else 0.5,
        "max": float(full.max()) if n else 2.0,
    }[bound_kind]
    got = early_abandon_euclidean_block(query, block, bound, chunk=chunk)
    scalar = np.array(
        [
            early_abandon_euclidean(query, block[i], bound, chunk=chunk)
            for i in range(n)
        ]
    )
    assert got.shape == (n,)
    # Bitwise equality (inf == inf, finite payloads identical).
    assert np.array_equal(
        got.view(np.uint64), scalar.reshape(n).view(np.uint64)
    )
    finite = np.isfinite(got)
    assert np.array_equal(got[finite].view(np.uint64), full[finite].view(np.uint64))
    # Abandoned rows provably sit strictly beyond the bound.
    if np.isfinite(bound):
        assert np.all(full[~finite] > bound)


def test_block_kernel_inf_bound_is_plain_batch():
    rng = np.random.default_rng(9)
    block = rng.standard_normal((40, 256)).astype(np.float32)
    query = rng.standard_normal(256).astype(np.float32)
    got = early_abandon_euclidean_block(query, block, np.inf)
    ref = euclidean_batch(query, block)
    assert np.array_equal(got.view(np.uint64), ref.view(np.uint64))


def test_block_kernel_shape_mismatch():
    query = np.zeros(16)
    with pytest.raises(ValueError):
        early_abandon_euclidean_block(query, np.zeros((3, 15)), 1.0)
    with pytest.raises(ValueError):
        early_abandon_euclidean_block(query, np.zeros(16), 1.0)  # 1-D block


def test_block_kernel_empty_block():
    got = early_abandon_euclidean_block(np.zeros(8), np.empty((0, 8)), 1.0)
    assert got.shape == (0,)


def test_block_kernel_nan_rows_survive_like_scalar():
    """NaN payloads must come back NaN (kept), never inf (abandoned)."""
    query = np.zeros(64)
    block = np.zeros((2, 64))
    block[0, 40] = np.nan  # NaN after the first chunk boundary
    block[1, :] = 100.0  # genuinely abandoned
    got = early_abandon_euclidean_block(query, block, 1.0, chunk=32)
    scalar = [
        early_abandon_euclidean(query, block[i], 1.0, chunk=32)
        for i in range(2)
    ]
    assert np.isnan(got[0]) and np.isnan(scalar[0])
    assert got[1] == float("inf") == scalar[1]
