"""The adaptive scheduler's correctness contract.

Four pinned properties:

* **Answer invariance under any publish schedule** — a hypothesis-
  driven adversarial bound board serves each ``read()`` the min over an
  *arbitrary* subset of past publishes (stale, out-of-order, empty),
  and the exact batch's answers, distances and tie order stay
  bit-identical to the serial batched engine.  This is the certified-
  upper-bound argument made executable.
* **Monotone visits** — with bound sharing on, every query's visited
  records and the batch's visited pages are ``<=`` the sharing-off run
  of the *same* plan; sharing can only tighten pruning.
* **Deterministic replay** — the sharing-on inline replay
  (``pool_kind="serial"``) is reproducible run to run, and the
  ``"partition"`` cadence (coordinator snapshot exchange) answers
  identically to the ``"block"`` cadence.
* **The planner** — a pure function of batch shape and cost model:
  ``scheduler="fixed"`` reproduces the pre-scheduler plan, adaptive
  only clamps downward, invalid knobs raise.
"""

import os
import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import QueryBatch, RawSeriesFile, SerialScan, SimulatedDisk, make_dataset
from repro.core import CoconutTree, CoconutTrie
from repro.parallel.query import parallel_sims_query_batch
from repro.parallel.sched import (
    MAX_FETCH_FLOOR_RECORDS,
    PartitionBoardView,
    SharedBoundBoard,
    plan_query_batch,
    run_sims_query_batch,
)
from repro.series import query_workload
from repro.storage.cost import DEFAULT_QUERY_COST
from repro.summaries import SAXConfig

CONFIG = SAXConfig(series_length=48, word_length=8, cardinality=64)
N_SERIES = 500
N_QUERIES = 6
MEMORY = 1 << 20

# Widen worker counts from CI via REPRO_QUERY_WORKERS, mirroring
# tests/test_parallel_query.py.
WORKER_COUNTS = [
    int(w)
    for w in os.environ.get("REPRO_QUERY_WORKERS", "2,3,5").split(",")
]


@pytest.fixture(scope="module")
def tree_workload():
    data = make_dataset("randomwalk", N_SERIES, length=48, seed=21)
    queries = query_workload("randomwalk", N_QUERIES, length=48, seed=22)
    disk = SimulatedDisk(page_size=2048)
    raw = RawSeriesFile.create(disk, data)
    index = CoconutTree(disk, MEMORY, config=CONFIG, leaf_size=32)
    index.build(raw)
    batch = QueryBatch(queries=queries, k=3)
    serial = index.query_batch(batch)  # also warms the summary cache
    return index, batch, serial


# ----------------------------------------------------------------------
# The board primitives
# ----------------------------------------------------------------------
def test_shared_bound_board_min_merges_and_snapshots():
    board = SharedBoundBoard(3)
    first = board.read()
    assert np.all(np.isinf(first)) and not first.flags.writeable
    board.publish(np.array([5.0, np.inf, 2.0]))
    board.publish(np.array([7.0, 4.0, np.inf]))
    np.testing.assert_array_equal(board.read(), [5.0, 4.0, 2.0])
    assert board.epoch == 2
    # Snapshots are immutable: the pre-publish read never changed.
    assert np.all(np.isinf(first))
    with pytest.raises(ValueError):
        board.read()[0] = 0.0


def test_partition_board_view_freezes_and_flushes():
    board = SharedBoundBoard(2)
    board.publish(np.array([9.0, 9.0]))
    view = PartitionBoardView(board)
    board.publish(np.array([1.0, 1.0]))  # another partition, mid-flight
    np.testing.assert_array_equal(view.read(), [9.0, 9.0])  # frozen
    view.publish(np.array([5.0, 0.5]))
    view.publish(np.array([4.0, 2.0]))
    np.testing.assert_array_equal(board.read(), [1.0, 1.0])  # buffered
    view.flush()
    np.testing.assert_array_equal(board.read(), [1.0, 0.5])
    view.flush()  # idempotent
    np.testing.assert_array_equal(board.read(), [1.0, 0.5])


# ----------------------------------------------------------------------
# Adversarial publish schedules (hypothesis)
# ----------------------------------------------------------------------
class AdversarialBoard:
    """A board whose reads replay an arbitrary legal interleaving.

    Every value it ever returns is the element-wise min over a subset
    of the bounds actually published — exactly the set of snapshots a
    reader could observe under *some* scheduling of real workers
    (including reading nothing, re-reading old state, or seeing
    publishes out of order).  ``choose(n)`` picks the subset.
    """

    def __init__(self, n_queries: int, choose):
        self.n_queries = n_queries
        self.choose = choose
        self.published: list[np.ndarray] = []
        self._lock = threading.Lock()

    def read(self) -> np.ndarray:
        with self._lock:
            history = list(self.published)
        out = np.full(self.n_queries, np.inf)
        for i in self.choose(len(history)):
            np.minimum(out, history[i], out=out)
        out.setflags(write=False)
        return out

    def publish(self, bounds: np.ndarray) -> None:
        with self._lock:
            self.published.append(
                np.asarray(bounds, dtype=np.float64).copy()
            )


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 2**32 - 1), workers=st.integers(2, 5))
def test_answers_bit_identical_under_any_publish_schedule(
    tree_workload, seed, workers
):
    index, batch, serial = tree_workload
    rng = np.random.default_rng(seed)

    def choose(n):  # any subset of past publishes, any order
        if n == 0:
            return []
        size = int(rng.integers(0, n + 1))
        return rng.permutation(n)[:size].tolist()

    board = AdversarialBoard(batch.n_queries, choose)
    got = run_sims_query_batch(
        index,
        batch,
        query_workers=workers,
        query_pool_kind="serial",
        bound_sharing="on",
        bound_board=board,
    )
    assert got.knn_ids == serial.knn_ids
    assert got.knn_distances == serial.knn_distances
    assert board.published  # the schedule actually exercised the board


def test_answers_bit_identical_with_threaded_sharing(tree_workload):
    """Real racing publishes (no adversary) on a thread pool."""
    index, batch, serial = tree_workload
    for workers in WORKER_COUNTS:
        got = index.query_batch(
            batch, query_workers=workers, query_pool_kind="thread",
            bound_sharing="on",
        )
        assert got.knn_ids == serial.knn_ids, workers
        assert got.knn_distances == serial.knn_distances, workers


# ----------------------------------------------------------------------
# Monotone visits + deterministic sharing-on replay
# ----------------------------------------------------------------------
def _replay(index, batch, workers, sharing):
    index.disk.park_head()
    index.disk.reset_stats()
    return index.query_batch(
        batch, query_workers=workers, query_pool_kind="serial",
        bound_sharing=sharing,
    )


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_sharing_never_increases_visits_or_pages(tree_workload, workers):
    index, batch, serial = tree_workload
    off = _replay(index, batch, workers, "off")
    on = _replay(index, batch, workers, "on")
    assert on.knn_ids == off.knn_ids == serial.knn_ids
    for q, (r_on, r_off) in enumerate(zip(on.results, off.results)):
        assert r_on.visited_records <= r_off.visited_records, (workers, q)
    pages_on = on.io.sequential_reads + on.io.random_reads
    pages_off = off.io.sequential_reads + off.io.random_reads
    assert pages_on <= pages_off, workers
    assert on.io.bytes_read <= off.io.bytes_read, workers


def test_sharing_on_serial_replay_is_deterministic(tree_workload):
    index, batch, _ = tree_workload
    a = _replay(index, batch, 3, "on")
    b = _replay(index, batch, 3, "on")
    assert a.io == b.io
    assert a.simulated_io_ms == b.simulated_io_ms
    assert [r.visited_records for r in a.results] == [
        r.visited_records for r in b.results
    ]


def test_partition_cadence_matches_block_cadence_answers(tree_workload):
    index, batch, serial = tree_workload
    for cadence in ("block", "partition"):
        report = parallel_sims_query_batch(
            index,
            batch,
            index._prepare_sims_parallel,
            3,
            pool_kind="serial",
            bound_sharing="on",
            bound_cadence=cadence,
        )
        assert report.knn_ids == serial.knn_ids, cadence
        assert report.knn_distances == serial.knn_distances, cadence


# ----------------------------------------------------------------------
# The planner
# ----------------------------------------------------------------------
def test_fixed_scheduler_reproduces_pre_scheduler_plan(tree_workload):
    index, batch, _ = tree_workload
    plan = plan_query_batch(
        batch, index, query_workers=4, scheduler="fixed"
    )
    assert plan.scheduler == "fixed"
    assert plan.scan_workers == 4 and plan.workers == 4
    assert plan.pool_kind == "auto"  # byte-threshold choice stays with engine
    assert plan.min_fetch_records == 1
    assert plan.bound_sharing == "off"
    # Forcing sharing on is honored even under the fixed plan.
    forced = plan_query_batch(
        batch, index, query_workers=4, scheduler="fixed", bound_sharing="on"
    )
    assert forced.bound_sharing == "on"


def test_adaptive_plan_only_clamps_downward(tree_workload):
    index, batch, _ = tree_workload
    plan = plan_query_batch(batch, index, query_workers=6)
    assert 1 <= plan.scan_workers <= 6
    assert plan.workers == 6
    assert plan.bound_sharing == "on"  # auto -> on for exact batches
    assert 1 <= plan.min_fetch_records <= MAX_FETCH_FLOOR_RECORDS
    expected_floor = min(
        MAX_FETCH_FLOOR_RECORDS,
        int(DEFAULT_QUERY_COST.thread_task_us
            / DEFAULT_QUERY_COST.refine_record_us),
    )
    assert plan.min_fetch_records == max(1, expected_floor)
    # Determinism: the same inputs give the same plan.
    again = plan_query_batch(batch, index, query_workers=6)
    assert plan == again
    # workers=1 is always the serial engine.
    one = plan_query_batch(batch, index, query_workers=1)
    assert one.workers == 1 and one.scan_workers == 1


def test_adaptive_plan_for_approximate_batches(tree_workload):
    index, _, _ = tree_workload
    queries = query_workload("randomwalk", 6, length=48, seed=33)
    batch = QueryBatch(queries=queries, k=1, mode="approximate")
    plan = plan_query_batch(batch, index, query_workers=8)
    assert plan.mode == "approximate"
    assert plan.bound_sharing == "off"  # no exact heaps to feed a board
    assert plan.workers == 3  # one partition per ~2 queries
    assert plan.min_fetch_records == 1


def test_planner_validates_knobs(tree_workload):
    index, batch, _ = tree_workload
    with pytest.raises(ValueError, match="scheduler"):
        plan_query_batch(batch, index, scheduler="psychic")
    with pytest.raises(ValueError, match="bound_sharing"):
        plan_query_batch(batch, index, bound_sharing="maybe")
    with pytest.raises(ValueError, match="bound_cadence"):
        plan_query_batch(batch, index, bound_cadence="never")


def test_plan_attached_to_reports(tree_workload):
    index, batch, _ = tree_workload
    report = index.query_batch(batch, query_workers=2)
    assert report.plan is not None
    assert report.plan.scheduler == "adaptive"
    as_dict = report.plan.as_dict()
    assert as_dict["n_queries"] == batch.n_queries
    assert as_dict["bound_sharing"] == "on"
    serial_scan = SerialScan(index.disk, MEMORY)
    # The base per-query loop and the serial scan accept and record the
    # same knobs (sharing is ignored where there is nothing to prune).
    serial_scan.build(index.raw)
    got = serial_scan.query_batch(batch, query_workers=1)
    assert got.plan is not None and got.plan.mode == "exact"


# ----------------------------------------------------------------------
# Parallel approximate batches pin to the serial cache oracle
# ----------------------------------------------------------------------
@pytest.mark.parametrize("maker", [
    lambda disk: CoconutTree(disk, MEMORY, config=CONFIG, leaf_size=32),
    lambda disk: CoconutTrie(disk, MEMORY, config=CONFIG, leaf_size=32),
])
def test_parallel_approx_answers_match_serial(maker):
    data = make_dataset("randomwalk", 400, length=48, seed=41)
    queries = query_workload("randomwalk", 7, length=48, seed=42)
    disk = SimulatedDisk(page_size=2048)
    raw = RawSeriesFile.create(disk, data)
    index = maker(disk)
    index.build(raw)
    batch = QueryBatch(queries=queries, k=1, mode="approximate")
    serial = index.query_batch(batch)
    for workers in (2, 3, 7, 50):
        for pool_kind in ("thread", "serial"):
            got = index.query_batch(
                batch, query_workers=workers, query_pool_kind=pool_kind
            )
            assert got.knn_ids == serial.knn_ids, (workers, pool_kind)
            assert got.knn_distances == serial.knn_distances, (
                workers, pool_kind,
            )
