"""Tests for Coconut-LSM (the paper's future-work extension)."""

import numpy as np
import pytest

from repro.core import CoconutLSM, CoconutTree
from repro.series import euclidean_batch, random_walk
from repro.storage import RawSeriesFile, SimulatedDisk
from repro.summaries import SAXConfig

CONFIG = SAXConfig(series_length=64, word_length=8, cardinality=16)


def build_lsm(n=300, seed=0, memory=1 << 16, size_ratio=3):
    disk = SimulatedDisk(page_size=2048)
    data = random_walk(n, length=64, seed=seed)
    raw = RawSeriesFile.create(disk, data)
    index = CoconutLSM(
        disk, memory_bytes=memory, config=CONFIG, size_ratio=size_ratio
    )
    index.build(raw)
    return disk, index, data


def brute_force(query, data):
    return float(
        euclidean_batch(query.astype(np.float64), data.astype(np.float64)).min()
    )


def test_bulk_load_creates_single_run():
    _, index, _ = build_lsm(n=200)
    assert index.n_runs == 1


def test_runs_are_sorted():
    _, index, _ = build_lsm(n=200, seed=1)
    for run in index._runs:
        assert np.all(run.keys[:-1] <= run.keys[1:])


def test_exact_search_matches_brute_force_after_build():
    _, index, data = build_lsm(n=250, seed=2)
    for query in random_walk(8, length=64, seed=42):
        result = index.exact_search(query)
        assert result.distance == pytest.approx(brute_force(query, data), rel=1e-6)


def test_inserts_then_exact_search_sees_everything():
    _, index, data = build_lsm(n=128, seed=3, memory=64 * 24 * 2)
    batches = [random_walk(40, length=64, seed=s) for s in (4, 5, 6)]
    for batch in batches:
        index.insert_batch(batch)
    all_data = np.vstack([data] + batches)
    for query in random_walk(6, length=64, seed=43):
        result = index.exact_search(query)
        assert result.distance == pytest.approx(
            brute_force(query, all_data), rel=1e-6
        )


def test_query_on_freshly_inserted_series_finds_it():
    """Memtable contents must be visible before any flush."""
    _, index, _ = build_lsm(n=100, seed=7, memory=1 << 20)
    fresh = random_walk(5, length=64, seed=8)
    index.insert_batch(fresh)
    assert index._mem_records == 5  # still buffered
    result = index.exact_search(fresh[2])
    assert result.distance == pytest.approx(0.0, abs=1e-5)


def test_memtable_flushes_when_full():
    _, index, _ = build_lsm(n=64, seed=9, memory=32 * 24 * 2)
    for s in range(4):
        index.insert_batch(random_walk(20, length=64, seed=10 + s))
    assert index.n_flushes >= 1
    assert index._mem_records < 80


def test_tiering_compaction_bounds_run_count():
    _, index, _ = build_lsm(n=64, seed=11, memory=16 * 24 * 2, size_ratio=2)
    for s in range(12):
        index.insert_batch(random_walk(16, length=64, seed=20 + s))
    # With T=2 compaction, runs grow logarithmically, not linearly.
    assert index.n_merges >= 1
    assert index.n_runs < 12


def test_compaction_io_is_sequential():
    disk, index, _ = build_lsm(n=64, seed=12, memory=16 * 24 * 2, size_ratio=2)
    disk.reset_stats()
    for s in range(8):
        index.insert_batch(random_walk(16, length=64, seed=40 + s))
    stats = disk.stats
    assert stats.sequential_writes > stats.random_writes


def test_small_batch_inserts_cheaper_than_ctree_merges():
    """The future-work hypothesis: LSM absorbs trickles cheaply."""
    def total_insert_cost(index_cls):
        disk = SimulatedDisk(page_size=2048)
        data = random_walk(256, length=64, seed=13)
        raw = RawSeriesFile.create(disk, data)
        if index_cls is CoconutLSM:
            index = CoconutLSM(disk, memory_bytes=1 << 13, config=CONFIG)
        else:
            index = CoconutTree(
                disk, memory_bytes=1 << 13, config=CONFIG, leaf_size=32
            )
        index.build(raw)
        cost = 0.0
        for s in range(10):
            batch = random_walk(16, length=64, seed=50 + s)
            cost += index.insert_batch(batch).simulated_io_ms
        return cost

    assert total_insert_cost(CoconutLSM) < total_insert_cost(CoconutTree)


def test_approximate_search_probes_all_runs():
    _, index, data = build_lsm(n=128, seed=14, memory=32 * 24 * 2)
    for s in range(3):
        index.insert_batch(random_walk(32, length=64, seed=60 + s))
    query = random_walk(1, length=64, seed=70)[0]
    result = index.approximate_search(query)
    assert result.visited_leaves == index.n_runs
    assert result.answer_idx >= 0


def test_batched_approximate_shares_run_probes():
    """Approximate QueryBatch: answers == per-query loop, less I/O.

    The batch charges each probed (run, page window) once, so its
    total I/O never exceeds — and with queries landing in shared
    windows, undercuts — the summed per-query cost.
    """
    from repro.indexes.base import QueryBatch

    disk, index, _ = build_lsm(n=128, seed=16, memory=32 * 24 * 2)
    for s in range(3):
        index.insert_batch(random_walk(32, length=64, seed=90 + s))
    queries = random_walk(12, length=64, seed=91)
    singles = [index.approximate_search(query) for query in queries]
    per_query_ios = sum(result.io.total_ios for result in singles)
    report = index.query_batch(QueryBatch(queries, mode="approximate"))
    assert len(report.results) == len(queries)
    for single, batched in zip(singles, report.results):
        assert batched.answer_idx == single.answer_idx
        assert batched.distance == pytest.approx(single.distance)
        assert batched.visited_records == single.visited_records
        assert batched.visited_leaves == single.visited_leaves
    assert report.io.total_ios <= per_query_ios
    # Several queries share probe windows here: the batch must be
    # strictly cheaper on run reads, not just equal.
    assert report.io.total_ios < per_query_ios


def test_constructor_validation():
    disk = SimulatedDisk()
    with pytest.raises(ValueError):
        CoconutLSM(disk, memory_bytes=1024, size_ratio=1)
    with pytest.raises(ValueError):
        CoconutLSM(disk, memory_bytes=0)


def test_storage_accounts_all_runs():
    disk, index, _ = build_lsm(n=128, seed=15, memory=32 * 24 * 2)
    before = index.storage_bytes()
    for s in range(4):
        index.insert_batch(random_walk(32, length=64, seed=80 + s))
    assert index.storage_bytes() >= before
