"""Checksum sidecar + verified reads: the detection half of integrity.

Covers the contract ``docs/robustness.md`` documents:

* :class:`ChecksumMap` semantics — absent entries mean *expected all
  zeros* (the padded-read contract), short payloads hash zero-extended,
  entries are keyed by physical page id and survive arena extent
  coalescing and shard detach reconciliation;
* verified reads — :class:`BufferPool` and :class:`RawSeriesFile`
  raise :class:`CorruptionError` with page provenance instead of
  serving flipped bytes, on both the per-page and bulk read paths;
* recording placement — consumers record the *intended* payload after
  the device acks, so a :class:`FaultyDevice` write-time flip can
  never bless itself;
* the single-bit syndrome algebra behind in-place repair.
"""

import zlib

import numpy as np
import pytest

from repro.storage import (
    BufferPool,
    ChecksumMap,
    CorruptionError,
    FaultPlan,
    FaultyDevice,
    PageError,
    PagedFile,
    RawSeriesFile,
    ShardedDisk,
    SimulatedDisk,
    checksum_page,
    decay_bit,
    single_bit_syndromes,
)
from repro.storage.integrity import find_flipped_bit, zero_page_crc

PAGE = 512


def make_disk(store="arena"):
    return SimulatedDisk(page_size=PAGE, store=store, integrity=True)


# ----------------------------------------------------------------------
# ChecksumMap semantics
# ----------------------------------------------------------------------
@pytest.mark.parametrize("store", ["arena", "dict"])
def test_never_written_pages_verify_as_zeros_and_decay_is_caught(store):
    disk = make_disk(store)
    first = disk.allocate(4)
    for page in range(first, first + 4):
        assert disk.checksums.verify(page, disk.page_view(page))
        assert not disk.checksums.recorded(page)
    decay_bit(disk, first + 2, bit=13)
    for page in range(first, first + 4):
        ok = disk.checksums.verify(page, disk.page_view(page))
        assert ok == (page != first + 2)


def test_short_payload_hashes_zero_extended():
    disk = make_disk()
    file = PagedFile(disk, name="t")
    file.append_page(b"short")
    physical = file.physical_page(0)
    assert disk.checksums.recorded(physical)
    # The expectation equals a hash of the padded page the device
    # serves back — write-then-read round-trips verify.
    assert disk.checksums.verify(physical, disk.page_view(physical))
    assert disk.checksums.expected(physical) == checksum_page(b"short", PAGE)
    assert zero_page_crc(PAGE) == zlib.crc32(bytes(PAGE))


def test_record_run_covers_zero_filled_tail_pages():
    disk = make_disk()
    file = PagedFile(disk, name="t")
    blob = bytes(range(256)) * 3  # 1.5 pages; page 2 grown but untouched
    file.grow(3)
    file.write_stream(blob, at_page=0)
    for logical in range(3):
        physical = file.physical_page(logical)
        assert disk.checksums.verify(physical, disk.page_view(physical))


@pytest.mark.parametrize("store", ["arena", "dict"])
def test_checksums_survive_arena_coalescing_and_fragmentation(store):
    """Physical-id keying is immune to extent growth and interleaving.

    Interleaved grows force one file's extents apart (and extend the
    arena's backing bytearrays under existing pages); every previously
    recorded page must still verify afterwards.
    """
    disk = make_disk(store)
    a = PagedFile(disk, name="a")
    b = PagedFile(disk, name="b")
    rng = np.random.default_rng(7)
    payloads = {}
    for round_ in range(6):
        for file in (a, b):
            logical = file.grow(2)
            for i in range(2):
                data = rng.integers(0, 256, size=PAGE, dtype=np.uint8).tobytes()
                file.write(logical + i, data)
                payloads[file.physical_page(logical + i)] = data
    assert a.n_extents > 1  # the interleave really fragmented the files
    for physical, data in payloads.items():
        assert bytes(disk.page_view(physical)) == data
        assert disk.checksums.verify(physical, disk.page_view(physical))


def test_shard_records_reconcile_at_detach_and_abort_discards():
    disk = make_disk()
    out_first = disk.allocate(4)
    # -- commit path: child records merge into the parent ------------
    with ShardedDisk(disk, [(out_first, 4)]) as shards:
        shard = shards[0]
        assert shard.checksums is not None
        file = PagedFile.from_extent(shard, out_first, 4, name="s")
        file.write(0, b"alpha" * 10)
        file.write(1, b"beta" * 10)
        # Recorded privately; lookups fall through the parent chain.
        assert shard.checksums.recorded(out_first)
        assert not disk.checksums.recorded(out_first)
        assert shard.checksums.verify(out_first, shard.page_view(out_first))
    assert disk.checksums.recorded(out_first)
    for page in (out_first, out_first + 1):
        assert disk.checksums.verify(page, disk.page_view(page))
    # -- abort path: child records vanish with the child's pages -----
    more = disk.allocate(2)
    with pytest.raises(RuntimeError):
        with ShardedDisk(disk, [(more, 2)]) as shards:
            PagedFile.from_extent(shards[0], more, 2, name="x").write(0, b"doomed")
            raise RuntimeError("boom")
    assert not disk.checksums.recorded(more)
    assert disk.checksums.verify(more, disk.page_view(more))  # still zeros


def test_readonly_shard_verifies_against_parent_records():
    disk = make_disk()
    file = PagedFile(disk, name="t")
    file.append_page(b"committed")
    physical = file.physical_page(0)
    with ShardedDisk(disk, [(0, 0)], read_only=True) as shards:
        pool = BufferPool(shards[0], 4, verified_reads=True)
        assert bytes(pool.read(physical))[:9] == b"committed"


# ----------------------------------------------------------------------
# Verified reads
# ----------------------------------------------------------------------
@pytest.mark.parametrize("store", ["arena", "dict"])
def test_verified_pool_raises_with_page_provenance(store):
    disk = make_disk(store)
    file = PagedFile(disk, name="t")
    file.append_page(b"x" * PAGE)
    physical = file.physical_page(0)
    decay_bit(disk, physical, bit=2047)
    pool = BufferPool(disk, 4, verified_reads=True)
    with pytest.raises(CorruptionError) as exc:
        pool.read(physical)
    assert exc.value.page_id == physical
    assert exc.value.expected_crc != exc.value.actual_crc
    assert "BufferPool" in exc.value.source
    assert f"page {physical}" in str(exc.value)
    # The unverified pool serves the flipped bytes silently — the
    # contrast that makes verified_reads the contract, not a default.
    assert BufferPool(disk, 4).read(physical) is not None


def test_verified_pool_bulk_read_raises_and_clean_bulk_passes():
    disk = make_disk()
    file = PagedFile(disk, name="t")
    blob = bytes(range(256)) * ((PAGE * 3) // 256)
    file.grow(3)
    file.write_stream(blob, at_page=0)
    first = file.physical_page(0)
    with BufferPool(disk, 8, verified_reads=True) as pool:
        assert bytes(pool.read_run_bytes(first, 3)) == blob
    decay_bit(disk, first + 1, bit=0)
    with BufferPool(disk, 8, verified_reads=True) as pool:
        with pytest.raises(CorruptionError) as exc:
            pool.read_run_bytes(first, 3)
    assert exc.value.page_id == first + 1


def test_raw_seriesfile_verified_reads_refuse_flipped_records():
    disk = make_disk()
    rng = np.random.default_rng(3)
    data = rng.standard_normal((40, 16)).astype(np.float32)
    raw = RawSeriesFile.create(disk, data)
    raw.verified_reads = True
    assert np.array_equal(raw.get(7), data[7])
    bad_physical = raw.file.physical_page(raw._page_of(7))
    decay_bit(disk, bad_physical, bit=100)
    with pytest.raises(CorruptionError) as exc:
        raw.get(7)
    assert exc.value.page_id == bad_physical
    with pytest.raises(CorruptionError):
        raw.get_many(np.arange(len(data), dtype=np.int64))
    # Rows on other pages still serve.
    other = (raw._page_of(7) + 1) * raw.series_per_page
    assert np.array_equal(raw.get(other), data[other])


def test_verified_reads_without_sidecar_fail_loudly():
    disk = SimulatedDisk(page_size=PAGE)  # integrity not enabled
    first = disk.allocate(1)
    disk.write_page(first, b"x")
    pool = BufferPool(disk, 2, verified_reads=True)
    with pytest.raises(PageError, match="ChecksumMap"):
        pool.read(first)


def test_write_time_flip_is_detected_not_blessed():
    """The recording-placement property, end to end.

    A FaultyDevice flips the payload *in flight*; the consumer recorded
    the intended bytes above the wrapper, so the landed page fails
    verification — a device-level recording hook would have hashed the
    flipped bytes and blessed the corruption.
    """
    disk = make_disk()
    dev = FaultyDevice(disk, FaultPlan(seed=6, p_bitflip_write=1.0, max_faults=1))
    file = PagedFile(dev, name="t")
    file.append_page(b"\x00" * PAGE)  # acks despite the flip
    physical = file.physical_page(0)
    assert dev.n_flips_injected == 1
    assert not disk.checksums.verify(physical, disk.page_view(physical))
    with pytest.raises(CorruptionError):
        BufferPool(disk, 2, verified_reads=True).read(physical)


# ----------------------------------------------------------------------
# Single-bit syndrome algebra
# ----------------------------------------------------------------------
@pytest.mark.parametrize("page_size", [64, 512, 2048])
def test_syndromes_are_pairwise_distinct(page_size):
    table = single_bit_syndromes(page_size)
    assert len(table) == 8 * page_size  # no two bit positions collide


def test_find_flipped_bit_locates_any_single_flip():
    rng = np.random.default_rng(11)
    page = rng.integers(0, 256, size=PAGE, dtype=np.uint8)
    expected = zlib.crc32(page.tobytes())
    for bit in list(rng.integers(0, 8 * PAGE, size=64)) + [0, 8 * PAGE - 1]:
        bad = page.copy()
        bad[int(bit) >> 3] ^= 1 << (int(bit) & 7)
        assert find_flipped_bit(bad.tobytes(), expected, PAGE) == int(bit)
    assert find_flipped_bit(page.tobytes(), expected, PAGE) is None  # clean
    double = page.copy()
    double[0] ^= 1
    double[100] ^= 8
    assert find_flipped_bit(double.tobytes(), expected, PAGE) is None


def test_child_map_expectations_and_absorb():
    parent = ChecksumMap(PAGE)
    parent.record_page(3, b"parent")
    child = parent.child()
    assert child.expected(3) == checksum_page(b"parent", PAGE)
    assert child.expected(9) == zero_page_crc(PAGE)
    child.record_page(3, b"child")
    assert child.expected(3) == checksum_page(b"child", PAGE)
    assert parent.expected(3) == checksum_page(b"parent", PAGE)
    parent.absorb(child)
    assert parent.expected(3) == checksum_page(b"child", PAGE)
