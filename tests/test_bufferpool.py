"""Tests for the LRU buffer pool and its shard-scoped lifecycle."""

import pytest

from repro.storage import (
    BufferPool,
    PagedFile,
    PageError,
    ShardedDisk,
    SimulatedDisk,
)


def make_disk_with_pages(n):
    disk = SimulatedDisk()
    disk.allocate(n)
    for page in range(n):
        disk.write_page(page, bytes([page]))
    disk.reset_stats()
    disk.park_head()
    return disk


def test_cache_hit_avoids_disk_io():
    disk = make_disk_with_pages(4)
    pool = BufferPool(disk, capacity_pages=4)
    pool.read(0)
    before = disk.stats.total_reads
    pool.read(0)
    assert disk.stats.total_reads == before
    assert pool.hits == 1
    assert pool.misses == 1


def test_lru_eviction_order():
    disk = make_disk_with_pages(3)
    pool = BufferPool(disk, capacity_pages=2)
    pool.read(0)
    pool.read(1)
    pool.read(0)  # page 0 is now most recent
    pool.read(2)  # evicts page 1
    disk.reset_stats()
    pool.read(0)
    assert disk.stats.total_reads == 0  # still cached
    pool.read(1)
    assert disk.stats.total_reads == 1  # was evicted


def test_zero_capacity_disables_caching():
    disk = make_disk_with_pages(2)
    pool = BufferPool(disk, capacity_pages=0)
    pool.read(0)
    pool.read(0)
    assert pool.hits == 0
    assert disk.stats.total_reads == 2


def test_write_through_updates_cache_and_disk():
    disk = make_disk_with_pages(2)
    pool = BufferPool(disk, capacity_pages=2)
    pool.write(0, b"new")
    assert disk.stats.total_writes == 1
    disk.reset_stats()
    assert pool.read(0)[:3] == b"new"
    assert disk.stats.total_reads == 0  # served from cache
    assert disk.read_page(0)[:3] == b"new"  # durably on disk


def test_invalidate_single_and_all():
    disk = make_disk_with_pages(3)
    pool = BufferPool(disk, capacity_pages=3)
    for page in range(3):
        pool.read(page)
    pool.invalidate(1)
    assert pool.cached_pages == 2
    pool.invalidate()
    assert pool.cached_pages == 0


def test_negative_capacity_rejected():
    disk = make_disk_with_pages(1)
    with pytest.raises(ValueError):
        BufferPool(disk, capacity_pages=-1)


def test_hit_rate():
    disk = make_disk_with_pages(2)
    pool = BufferPool(disk, capacity_pages=2)
    assert pool.hit_rate == 0.0  # defined (not NaN/raise) before any access
    pool.read(0)
    pool.read(0)
    pool.read(0)
    assert pool.hit_rate == pytest.approx(2 / 3)


# --------------------------------------------- shard-scoped lifecycle
def test_detached_pool_rejects_io():
    pool = BufferPool(None, capacity_pages=2)
    assert not pool.attached
    with pytest.raises(PageError):
        pool.read(0)
    with pytest.raises(PageError):
        pool.write(0, b"x")
    with pytest.raises(PageError):
        pool.page_size
    with pytest.raises(PageError):
        pool.allocate(1)


def test_attach_and_detach_cycle_drops_cache():
    disk = make_disk_with_pages(3)
    pool = BufferPool(disk, capacity_pages=3)
    pool.read(0)
    pool.read(1)
    assert pool.cached_pages == 2
    pool.detach()
    assert pool.cached_pages == 0 and not pool.attached
    with pytest.raises(PageError):
        pool.read(0)
    pool.attach(disk)
    disk.reset_stats()
    pool.read(0)  # cold again: hits the disk, not a stale cache
    assert disk.stats.total_reads == 1


def test_pool_is_shard_scoped_under_the_session_lifecycle():
    """A pool re-bound between I/O domains never leaks cached pages.

    This is the isolation the sharded merge relies on: each worker's
    pool caches only what *its* shard read, a re-bind starts cold, and
    the shard underneath accounts every miss on its own counters.
    """
    disk = make_disk_with_pages(4)
    extent = disk.allocate(2)
    disk.reset_stats()
    with ShardedDisk(disk, [(extent, 1), (extent + 1, 1)]) as (a, b):
        pool_a = BufferPool(a, capacity_pages=4)
        pool_b = BufferPool(b, capacity_pages=4)
        assert pool_a.read(2)[:1] == bytes([2])  # parent snapshot via shard a
        assert pool_a.read(2)[:1] == bytes([2])  # now served by pool a's cache
        assert a.stats.total_reads == 1
        assert b.stats.total_reads == 0  # b's domain untouched
        assert pool_b.read(2)[:1] == bytes([2])  # b pays its own read
        assert b.stats.total_reads == 1
        # Re-binding a's pool to shard b starts from a cold cache.
        pool_a.attach(b)
        assert pool_a.cached_pages == 0
        pool_a.read(2)
        assert b.stats.total_reads == 2
        pool_a.detach()
        with pytest.raises(PageError):
            pool_a.read(2)
    # After the session the pool can serve the parent domain.
    pool = BufferPool(disk, capacity_pages=2)
    assert pool.read(2)[:1] == bytes([2])


def test_pool_as_device_for_paged_file_views():
    """PagedFile.attach(pool) routes file reads through the cache."""
    disk = SimulatedDisk()
    file = PagedFile(disk, name="data")
    file.write_stream(b"a" * disk.page_size + b"b" * disk.page_size)
    pool = BufferPool(disk, capacity_pages=4)
    view = file.attach(pool)
    assert view.read_stream(0, 2) == file.read_stream(0, 2)
    disk.reset_stats()
    view.read_stream(0, 2)  # cached: no disk I/O
    assert disk.stats.total_reads == 0
    assert pool.hits >= 2


# --------------------------------------------- context-manager lifecycle
def test_pool_context_manager_detaches_on_exit():
    disk = make_disk_with_pages(2)
    with BufferPool(disk, capacity_pages=2) as pool:
        pool.read(0)
        assert pool.attached
    assert not pool.attached
    assert pool.cached_pages == 0


def test_pool_context_manager_detaches_on_error():
    disk = make_disk_with_pages(2)
    with pytest.raises(RuntimeError):
        with BufferPool(disk, capacity_pages=2) as pool:
            pool.read(0)
            raise RuntimeError("worker died")
    assert not pool.attached
    assert pool.cached_pages == 0


def test_sharded_session_unfences_parent_on_error():
    """An exception inside a ``with ShardedDisk`` cannot leave the
    parent device fenced (the satellite contract for error paths)."""
    disk = make_disk_with_pages(2)
    extent = disk.allocate(2)
    with pytest.raises(RuntimeError):
        with ShardedDisk(disk, [(extent, 2)]) as (shard,):
            with BufferPool(shard, capacity_pages=2) as pool:
                pool.read(0)
                raise RuntimeError("partition failed")
    assert not disk.sharded
    assert not pool.attached
    disk.write_page(0, b"writable again")  # parent accepts I/O again
    assert disk.read_page(0)[:14] == b"writable again"


# --------------------------------------------- bytes-level bulk streaming
def test_bulk_read_matches_per_page_reads_exactly():
    """read_run_bytes: same bytes, hits, misses, LRU and disk counters
    as the equivalent per-page loop, for any pre-warmed cache state."""
    import numpy as np

    rng = np.random.default_rng(5)
    for trial in range(25):
        n_pages = int(rng.integers(4, 20))
        payload = bytes(rng.integers(0, 256, size=n_pages * 64, dtype=np.uint8))
        disks = []
        for _ in range(2):
            disk = SimulatedDisk(page_size=64)
            file = PagedFile(disk, n_pages=n_pages)
            file.write_stream(payload)
            disk.reset_stats()
            disk.park_head()
            disks.append((disk, file))
        (d1, f1), (d2, f2) = disks
        capacity = int(rng.integers(0, n_pages + 2))
        p1, p2 = BufferPool(d1, capacity), BufferPool(d2, capacity)
        warm = rng.choice(n_pages, size=int(rng.integers(0, n_pages)), replace=False)
        for w in warm:
            p1.read(int(w))
            p2.read(int(w))
        first = int(rng.integers(0, n_pages))
        count = int(rng.integers(1, n_pages - first + 1))
        bulk = p1.read_run_bytes(first, count)
        parts = []
        for page in range(first, first + count):
            parts.append(bytes(p2.read(page)))
        assert bulk == b"".join(parts)
        assert (p1.hits, p1.misses) == (p2.hits, p2.misses), trial
        assert list(p1._cache) == list(p2._cache), trial
        assert d1.stats == d2.stats, trial


def test_bulk_write_matches_per_page_writes_exactly():
    import numpy as np

    rng = np.random.default_rng(9)
    for trial in range(15):
        n_pages = int(rng.integers(1, 10))
        data = bytes(
            rng.integers(0, 256, size=int(rng.integers(1, n_pages * 64 + 1)), dtype=np.uint8)
        )
        used = max(1, -(-len(data) // 64))
        d1, d2 = SimulatedDisk(page_size=64), SimulatedDisk(page_size=64)
        d1.allocate(n_pages)
        d2.allocate(n_pages)
        p1, p2 = BufferPool(d1, 4), BufferPool(d2, 4)
        p1.write_run_bytes(0, data, used)
        for i in range(used):
            p2.write(i, data[i * 64 : (i + 1) * 64])
        assert d1.stats == d2.stats, trial
        assert d1.dump_pages() == d2.dump_pages(), trial
        assert list(p1._cache) == list(p2._cache), trial
