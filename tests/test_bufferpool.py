"""Tests for the LRU buffer pool."""

import pytest

from repro.storage import BufferPool, SimulatedDisk


def make_disk_with_pages(n):
    disk = SimulatedDisk()
    disk.allocate(n)
    for page in range(n):
        disk.write_page(page, bytes([page]))
    disk.reset_stats()
    disk.park_head()
    return disk


def test_cache_hit_avoids_disk_io():
    disk = make_disk_with_pages(4)
    pool = BufferPool(disk, capacity_pages=4)
    pool.read(0)
    before = disk.stats.total_reads
    pool.read(0)
    assert disk.stats.total_reads == before
    assert pool.hits == 1
    assert pool.misses == 1


def test_lru_eviction_order():
    disk = make_disk_with_pages(3)
    pool = BufferPool(disk, capacity_pages=2)
    pool.read(0)
    pool.read(1)
    pool.read(0)  # page 0 is now most recent
    pool.read(2)  # evicts page 1
    disk.reset_stats()
    pool.read(0)
    assert disk.stats.total_reads == 0  # still cached
    pool.read(1)
    assert disk.stats.total_reads == 1  # was evicted


def test_zero_capacity_disables_caching():
    disk = make_disk_with_pages(2)
    pool = BufferPool(disk, capacity_pages=0)
    pool.read(0)
    pool.read(0)
    assert pool.hits == 0
    assert disk.stats.total_reads == 2


def test_write_through_updates_cache_and_disk():
    disk = make_disk_with_pages(2)
    pool = BufferPool(disk, capacity_pages=2)
    pool.write(0, b"new")
    assert disk.stats.total_writes == 1
    disk.reset_stats()
    assert pool.read(0) == b"new"
    assert disk.stats.total_reads == 0  # served from cache
    assert disk.read_page(0) == b"new"  # durably on disk


def test_invalidate_single_and_all():
    disk = make_disk_with_pages(3)
    pool = BufferPool(disk, capacity_pages=3)
    for page in range(3):
        pool.read(page)
    pool.invalidate(1)
    assert pool.cached_pages == 2
    pool.invalidate()
    assert pool.cached_pages == 0


def test_negative_capacity_rejected():
    disk = make_disk_with_pages(1)
    with pytest.raises(ValueError):
        BufferPool(disk, capacity_pages=-1)


def test_hit_rate():
    disk = make_disk_with_pages(2)
    pool = BufferPool(disk, capacity_pages=2)
    assert pool.hit_rate == 0.0
    pool.read(0)
    pool.read(0)
    pool.read(0)
    assert pool.hit_rate == pytest.approx(2 / 3)
