"""Tests for the benchmark harness, workloads and reporting."""

import numpy as np
import pytest

from repro.bench import (
    INDEX_FACTORIES,
    DatasetSpec,
    default_config,
    format_table,
    make_environment,
    mixed_workload,
    run_build_sweep,
    run_query_experiment,
    run_update_workload,
)

TINY = DatasetSpec("randomwalk", n_series=300, length=64, seed=1)


# ------------------------------------------------------------- dataset
def test_dataset_spec_is_reproducible():
    a = TINY.generate()
    b = TINY.generate()
    np.testing.assert_array_equal(a, b)
    assert TINY.raw_bytes == 300 * 64 * 4


def test_dataset_scaling_preserves_everything_else():
    scaled = TINY.scaled(100)
    assert scaled.n_series == 100
    assert scaled.length == TINY.length
    assert scaled.name == TINY.name


def test_queries_differ_from_data():
    data = TINY.generate()
    queries = TINY.queries(5)
    assert queries.shape == (5, 64)
    assert not any(np.array_equal(q, row) for q in queries for row in data[:50])


# ------------------------------------------------------------ workload
def test_mixed_workload_event_stream():
    initial, events = mixed_workload(
        TINY, initial_fraction=0.5, batch_size=30, n_queries=6
    )
    events = list(events)
    inserts = [e for e in events if e.kind == "insert"]
    queries = [e for e in events if e.kind == "query"]
    assert len(initial) == 150
    assert sum(len(e.payload) for e in inserts) == 150
    assert len(queries) == 6
    # Queries are interleaved, not all bunched at one end.
    kinds = [e.kind for e in events]
    first_query = kinds.index("query")
    assert first_query < len(kinds) - 1


def test_mixed_workload_validation():
    with pytest.raises(ValueError):
        mixed_workload(TINY, initial_fraction=0.0, batch_size=10, n_queries=1)
    with pytest.raises(ValueError):
        mixed_workload(TINY, initial_fraction=0.5, batch_size=0, n_queries=1)


# ------------------------------------------------------------- harness
def test_default_config_adapts_to_length():
    assert default_config(128).word_length == 8
    assert default_config(8).word_length == 4


def test_all_factories_build_and_answer():
    """Every registered index builds on a tiny dataset and agrees with
    the serial-scan oracle on an exact query."""
    memory = TINY.raw_bytes
    oracle_env = make_environment("Serial", TINY, memory)
    oracle_env.index.build(oracle_env.raw)
    query = TINY.queries(1)[0]
    want = oracle_env.index.exact_search(query).distance
    for key in INDEX_FACTORIES:
        env = make_environment(key, TINY, memory)
        env.index.build(env.raw)
        got = env.index.exact_search(query)
        assert got.distance == pytest.approx(want, rel=1e-5), key


def test_run_build_sweep_row_schema():
    rows = run_build_sweep(["CTree"], TINY, [1.0, 0.1])
    assert len(rows) == 2
    for row in rows:
        assert row["index"] == "CTree"
        assert row["total_s"] >= row["sim_io_s"]
        assert row["n_leaves"] > 0
        assert 0 < row["leaf_fill"] <= 1.0


def test_run_query_experiment_modes():
    exact = run_query_experiment(["CTree"], TINY, 3, mode="exact")
    approx = run_query_experiment(["CTree"], TINY, 3, mode="approximate")
    assert exact[0]["avg_distance"] <= approx[0]["avg_distance"] + 1e-9
    assert exact[0]["avg_pruned"] > 0


def test_run_update_workload_accumulates_costs():
    rows = run_update_workload(
        ["CTree"], TINY, batch_sizes=[50], n_queries=2,
        memory_fraction=0.5,
    )
    row = rows[0]
    assert row["total_s"] == pytest.approx(
        row["build_s"] + row["insert_s"] + row["query_s"]
    )


# -------------------------------------------------------------- report
def test_format_table_alignment_and_values():
    rows = [
        {"name": "a", "value": 1.5, "count": 10},
        {"name": "bbb", "value": 1234.5678, "count": 2},
    ]
    text = format_table(rows)
    lines = text.splitlines()
    assert lines[0].startswith("name")
    assert "1,235" in text  # thousands formatting
    assert "1.500" in text


def test_format_table_empty():
    assert format_table([]) == "(no rows)"


def test_format_table_explicit_columns():
    rows = [{"a": 1, "b": 2}]
    text = format_table(rows, columns=["b"])
    assert "a" not in text.splitlines()[0]


def test_parallel_build_sweep_rows():
    from repro.bench import run_parallel_build_sweep

    rows = run_parallel_build_sweep("CTreeFull", TINY, [1, 2], memory_fraction=2.0)
    assert [row["workers"] for row in rows] == [1, 2]
    assert rows[0]["speedup"] == 1.0
    # Parallelism reorganizes CPU work only: structure and I/O match.
    assert rows[0]["n_leaves"] == rows[1]["n_leaves"]
    assert rows[0]["sim_io_s"] == pytest.approx(rows[1]["sim_io_s"])


def test_batch_query_experiment_agrees():
    from repro.bench import run_batch_query_experiment

    rows = run_batch_query_experiment(["CTree", "Serial"], TINY, n_queries=3, k=2)
    assert {row["index"] for row in rows} == {"CTree", "Serial"}
    assert all(row["answers_agree"] for row in rows)
    assert all(row["batched_s"] >= 0 for row in rows)


def test_make_environment_workers_threaded_through():
    env = make_environment("CTree", TINY, TINY.raw_bytes, workers=3)
    assert env.index.workers == 3
    env = make_environment("Serial", TINY, TINY.raw_bytes, workers=3)  # ignored
    assert not hasattr(env.index, "workers")
