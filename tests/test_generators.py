"""Tests for the dataset generators (the paper's three data sources)."""

import numpy as np
import pytest
from scipy import stats

from repro.series import (
    GENERATORS,
    astronomy,
    is_z_normalized,
    make_dataset,
    query_workload,
    random_walk,
    seismic,
)


@pytest.mark.parametrize("name", sorted(GENERATORS))
def test_generators_shape_dtype_normalization(name):
    data = make_dataset(name, 32, length=128, seed=7)
    assert data.shape == (32, 128)
    assert data.dtype == np.float32
    assert is_z_normalized(data, tolerance=1e-2)


@pytest.mark.parametrize("name", sorted(GENERATORS))
def test_generators_deterministic_given_seed(name):
    a = make_dataset(name, 8, length=64, seed=42)
    b = make_dataset(name, 8, length=64, seed=42)
    np.testing.assert_array_equal(a, b)
    c = make_dataset(name, 8, length=64, seed=43)
    assert not np.array_equal(a, c)


def test_unknown_dataset_rejected():
    with pytest.raises(ValueError):
        make_dataset("nope", 4)


def test_random_walk_is_a_walk():
    """Consecutive increments should be i.i.d.-ish, not the values."""
    data = random_walk(50, length=256, seed=0).astype(np.float64)
    values_autocorr = np.mean(
        [np.corrcoef(row[:-1], row[1:])[0, 1] for row in data]
    )
    assert values_autocorr > 0.9  # walks are strongly autocorrelated


def test_seismic_has_wave_packets():
    """Seismic series should have heavier local energy bursts."""
    data = seismic(40, length=256, seed=1).astype(np.float64)
    # Kurtosis of burst-like data exceeds the Gaussian baseline.
    walk = random_walk(40, length=256, seed=1).astype(np.float64)
    assert np.mean(stats.kurtosis(data, axis=1)) > np.mean(
        stats.kurtosis(walk, axis=1)
    )


def test_astronomy_is_skewed():
    """Fig. 7: astronomy values are slightly skewed, others near 0."""
    astro = astronomy(100, length=256, seed=2).astype(np.float64)
    walk = random_walk(100, length=256, seed=2).astype(np.float64)
    astro_skew = abs(stats.skew(astro.ravel()))
    walk_skew = abs(stats.skew(walk.ravel()))
    assert astro_skew > 0.2
    assert astro_skew > walk_skew


def test_query_workload_differs_from_dataset():
    data = make_dataset("randomwalk", 16, length=64, seed=5)
    queries = query_workload("randomwalk", 16, length=64, seed=5)
    assert queries.shape == (16, 64)
    assert not np.array_equal(data, queries)


@pytest.mark.parametrize("name", sorted(GENERATORS))
def test_query_workload_deterministic_given_seed(name):
    """Two runs with the same seed produce identical query workloads."""
    a = query_workload(name, 6, length=64, seed=9)
    b = query_workload(name, 6, length=64, seed=9)
    np.testing.assert_array_equal(a, b)


def test_query_stream_independent_of_data_stream():
    """Same seed, different streams: queries never equal the data."""
    data = make_dataset("randomwalk", 8, length=64, seed=3)
    queries = query_workload("randomwalk", 8, length=64, seed=3)
    assert not np.array_equal(data, queries)


def test_unseeded_workloads_are_not_secretly_identical():
    """Regression: seed=None used to alias seed 0 for query workloads."""
    a = query_workload("randomwalk", 4, length=32, seed=None)
    b = query_workload("randomwalk", 4, length=32, seed=None)
    assert not np.array_equal(a, b)
    assert not np.array_equal(a, make_dataset("randomwalk", 4, length=32, seed=0x5EED))
