"""Tests for sliding-window extraction."""

import numpy as np
import pytest

from repro.series import is_z_normalized, sliding_windows, window_count


def test_window_count_formula():
    assert window_count(100, 10, step=1) == 91
    assert window_count(100, 10, step=4) == 23
    assert window_count(9, 10) == 0


def test_windows_match_manual_slices():
    signal = np.arange(20, dtype=float)
    windows = sliding_windows(signal, 5, step=3, normalize=False)
    assert windows.shape == (6, 5)
    np.testing.assert_array_equal(windows[0], signal[0:5])
    np.testing.assert_array_equal(windows[1], signal[3:8])
    np.testing.assert_array_equal(windows[5], signal[15:20])


def test_windows_are_normalized_by_default():
    rng = np.random.default_rng(0)
    signal = rng.standard_normal(500) * 10 + 5
    windows = sliding_windows(signal, 64, step=16)
    assert is_z_normalized(windows, tolerance=1e-2)


def test_window_validation():
    with pytest.raises(ValueError):
        sliding_windows(np.zeros(10), 0)
    with pytest.raises(ValueError):
        sliding_windows(np.zeros(10), 4, step=0)
    with pytest.raises(ValueError):
        sliding_windows(np.zeros(3), 4)


def test_windows_are_writable_copies():
    signal = np.arange(12, dtype=float)
    windows = sliding_windows(signal, 4, normalize=False)
    windows[0, 0] = 99.0
    assert signal[0] == 0.0
