"""Tests for the STR-packed R-tree baseline."""

import numpy as np
import pytest

from repro.indexes import RTreeIndex, SerialScan
from repro.series import random_walk
from repro.storage import RawSeriesFile, SimulatedDisk
from repro.summaries import paa


def build(n=300, materialized=True, leaf_size=32, seed=0, dims=8):
    disk = SimulatedDisk(page_size=2048)
    data = random_walk(n, length=64, seed=seed)
    raw = RawSeriesFile.create(disk, data)
    index = RTreeIndex(
        disk,
        memory_bytes=1 << 20,
        n_dimensions=dims,
        leaf_size=leaf_size,
        materialized=materialized,
    )
    report = index.build(raw)
    return disk, index, data, report


def test_all_series_in_leaves():
    _, index, _, _ = build(n=277)
    offsets = []
    for leaf in index._leaves:
        offsets.extend(int(o) for o in index._read_leaf(leaf)["off"])
    assert sorted(offsets) == list(range(277))


def test_mbrs_contain_their_points():
    _, index, data, _ = build(n=300)
    points = paa(data.astype(np.float64), 8)
    for leaf in index._leaves:
        records = index._read_leaf(leaf)
        for row in records:
            assert np.all(row["p"] >= leaf.low - 1e-9)
            assert np.all(row["p"] <= leaf.high + 1e-9)


def test_str_sorts_once_per_level():
    """STR's repeated sorting is the O(N*D) cost the paper analyzes."""
    _, index, _, report = build(n=600, leaf_size=16)
    assert report.extra["sort_passes"] > 1


def test_leaf_fill_is_high_for_str():
    """STR packs leaves fully (it is a bulk loader)."""
    _, index, _, _ = build(n=512, leaf_size=32)
    _, fill = index.leaf_stats()
    assert fill > 0.9


@pytest.mark.parametrize("materialized", [True, False])
def test_exact_search_matches_serial_scan(materialized):
    disk, index, data, _ = build(n=300, materialized=materialized, seed=1)
    oracle = SerialScan(disk, memory_bytes=1024)
    oracle.build(index.raw)
    for query in random_walk(10, length=64, seed=42):
        got = index.exact_search(query)
        want = oracle.exact_search(query)
        assert got.distance == pytest.approx(want.distance, rel=1e-6)


def test_exact_search_prunes():
    _, index, _, _ = build(n=900, seed=2)
    query = random_walk(1, length=64, seed=50)[0]
    result = index.exact_search(query)
    assert result.pruned_fraction > 0.0


def test_approximate_search_single_leaf():
    _, index, _, _ = build(n=400, seed=3)
    query = random_walk(1, length=64, seed=51)[0]
    result = index.approximate_search(query)
    assert result.visited_leaves == 1
    assert 0 <= result.answer_idx < 400


def test_root_mbr_covers_everything():
    _, index, data, _ = build(n=200, seed=4)
    points = paa(data.astype(np.float64), 8)
    assert np.all(points >= index.root.low[None, :] - 1e-9)
    assert np.all(points <= index.root.high[None, :] + 1e-9)
