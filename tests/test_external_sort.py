"""Tests for external merge sort under a memory budget."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage import ExternalSorter, SimulatedDisk, sort_to_arrays


def make_records(n, key_bytes=8, payload="offset", seed=0):
    rng = np.random.default_rng(seed)
    raw = rng.integers(0, 256, size=(n, key_bytes), dtype=np.uint8)
    keys = raw.view(f"S{key_bytes}").ravel()
    if payload == "offset":
        values = np.arange(n, dtype=np.int64)
    else:
        values = rng.standard_normal((n, 8)).astype(np.float32)
    return keys, values


def test_in_memory_sort_no_io():
    disk = SimulatedDisk()
    keys, values = make_records(100)
    sorter = ExternalSorter(disk, memory_bytes=1 << 20)
    sorted_keys, sorted_values = sort_to_arrays(sorter, keys, values)
    assert not sorter.report.spilled
    assert disk.stats.total_ios == 0
    assert np.all(sorted_keys[:-1] <= sorted_keys[1:])
    # Payloads permuted consistently with keys.
    np.testing.assert_array_equal(keys[sorted_values], sorted_keys)


def test_spilled_sort_is_correct():
    disk = SimulatedDisk(page_size=512)
    keys, values = make_records(1000)
    record_bytes = 16  # 8 key + 8 payload
    sorter = ExternalSorter(disk, memory_bytes=record_bytes * 100)
    sorted_keys, sorted_values = sort_to_arrays(sorter, keys, values)
    assert sorter.report.spilled
    assert sorter.report.n_runs == 10
    assert np.all(sorted_keys[:-1] <= sorted_keys[1:])
    np.testing.assert_array_equal(keys[sorted_values], sorted_keys)
    assert len(sorted_keys) == 1000


def test_spilled_sort_io_is_mostly_sequential():
    """With page-spanning merge buffers, streaming dominates seeking."""
    disk = SimulatedDisk(page_size=512)
    keys, values = make_records(4000)
    sorter = ExternalSorter(disk, memory_bytes=16 * 1000)
    list(sorter.sort(keys, values))
    stats = disk.stats
    assert stats.sequential_writes > stats.random_writes
    assert stats.sequential_reads > stats.random_reads


def test_sort_is_stable_on_equal_keys():
    disk = SimulatedDisk()
    keys = np.array([b"b", b"a", b"a", b"b", b"a"], dtype="S1")
    values = np.arange(5, dtype=np.int64)
    sorter = ExternalSorter(disk, memory_bytes=1 << 20)
    _, sorted_values = sort_to_arrays(sorter, keys, values)
    np.testing.assert_array_equal(sorted_values, [1, 2, 4, 0, 3])


def test_matrix_payloads_roundtrip():
    disk = SimulatedDisk(page_size=256)
    keys, values = make_records(300, payload="matrix")
    sorter = ExternalSorter(disk, memory_bytes=(8 + 32) * 50)
    sorted_keys, sorted_values = sort_to_arrays(sorter, keys, values)
    assert sorter.report.spilled
    order = np.argsort(keys, kind="stable")
    np.testing.assert_array_equal(sorted_keys, keys[order])
    np.testing.assert_allclose(sorted_values, values[order])


def test_empty_input():
    disk = SimulatedDisk()
    sorter = ExternalSorter(disk, memory_bytes=1024)
    keys, values = make_records(0)
    chunks = list(sorter.sort(keys, values))
    assert chunks == []


def test_single_record():
    disk = SimulatedDisk()
    sorter = ExternalSorter(disk, memory_bytes=1024)
    keys = np.array([b"zz"], dtype="S2")
    values = np.array([7], dtype=np.int64)
    sorted_keys, sorted_values = sort_to_arrays(sorter, keys, values)
    assert bytes(sorted_keys[0]) == b"zz"
    assert sorted_values[0] == 7


def test_mismatched_lengths_rejected():
    disk = SimulatedDisk()
    sorter = ExternalSorter(disk, memory_bytes=1024)
    with pytest.raises(ValueError):
        list(sorter.sort(np.array([b"a"], dtype="S1"), np.arange(2)))


def test_bad_memory_budget_rejected():
    with pytest.raises(ValueError):
        ExternalSorter(SimulatedDisk(), memory_bytes=0)


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=400),
    memory_records=st.integers(min_value=2, max_value=64),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_property_sorted_output_matches_numpy(n, memory_records, seed):
    """External sort equals argsort for any budget and input size."""
    disk = SimulatedDisk(page_size=256)
    keys, values = make_records(n, seed=seed)
    sorter = ExternalSorter(disk, memory_bytes=16 * memory_records)
    sorted_keys, sorted_values = sort_to_arrays(sorter, keys, values)
    order = np.argsort(keys, kind="stable")
    np.testing.assert_array_equal(sorted_keys, keys[order])
    np.testing.assert_array_equal(sorted_values, values[order])


def test_zero_record_report_counts_no_runs():
    """Regression: an empty sort reports 0 runs, not a phantom one."""
    disk = SimulatedDisk()
    sorter = ExternalSorter(disk, memory_bytes=1024)
    keys, values = make_records(0)
    assert list(sorter.sort(keys, values)) == []
    assert sorter.report.n_runs == 0
    assert not sorter.report.spilled
    assert disk.stats.total_ios == 0


def test_spill_with_single_record_final_run():
    """Regression: a trailing 1-record run merges correctly."""
    disk = SimulatedDisk(page_size=256)
    keys, values = make_records(5)  # runs of 2, 2, and 1
    sorter = ExternalSorter(disk, memory_bytes=16 * 2)
    sorted_keys, sorted_values = sort_to_arrays(sorter, keys, values)
    assert sorter.report.spilled and sorter.report.n_runs == 3
    order = np.argsort(keys, kind="stable")
    np.testing.assert_array_equal(sorted_keys, keys[order])
    np.testing.assert_array_equal(sorted_values, values[order])


# ------------------------------------------------------ presorted runs
def test_sort_runs_empty_and_single():
    disk = SimulatedDisk()
    sorter = ExternalSorter(disk, memory_bytes=1024)
    assert list(sorter.sort_runs([])) == []
    assert sorter.report.n_runs == 0
    keys = np.array([b"zz"], dtype="S2")
    values = np.array([7], dtype=np.int64)
    chunks = list(sorter.sort_runs([(keys, values)]))
    assert len(chunks) == 1
    assert bytes(chunks[0][0][0]) == b"zz" and chunks[0][1][0] == 7
    # All-empty runs behave like no runs at all.
    assert list(sorter.sort_runs([(keys[:0], values[:0])])) == []


def test_sort_runs_rejects_mismatched_run():
    sorter = ExternalSorter(SimulatedDisk(), memory_bytes=1024)
    with pytest.raises(ValueError):
        list(sorter.sort_runs([(np.array([b"a"], dtype="S1"), np.arange(2))]))


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=0, max_value=300),
    chunk=st.integers(min_value=1, max_value=128),
    memory_records=st.integers(min_value=2, max_value=64),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_property_sort_runs_equals_sort(n, chunk, memory_records, seed):
    """Presorted chunk runs merge to exactly what sort() produces.

    Runs are contiguous input chunks, each stably presorted — the
    contract of the parallel summarization pipeline — covering the
    in-memory merge, the spilled merge, empty input and 1-record runs.
    """
    keys, values = make_records(n, seed=seed)
    runs = []
    for at in range(0, n, chunk):
        chunk_keys = keys[at : at + chunk]
        chunk_values = values[at : at + chunk]
        order = np.argsort(chunk_keys, kind="stable")
        runs.append((chunk_keys[order], chunk_values[order]))
    sorter = ExternalSorter(SimulatedDisk(page_size=256), 16 * memory_records)
    parts = list(sorter.sort_runs(runs))
    reference = ExternalSorter(SimulatedDisk(page_size=256), 16 * memory_records)
    want_keys, want_values = sort_to_arrays(reference, keys, values)
    if parts:
        got_keys = np.concatenate([k for k, _ in parts])
        got_values = np.concatenate([v for _, v in parts])
        np.testing.assert_array_equal(got_keys, want_keys)
        np.testing.assert_array_equal(got_values, want_values)
    else:
        assert n == 0
