"""Tests for the ADS baselines (ADSFull and adaptive ADS+)."""

import numpy as np
import pytest

from repro.indexes import ADSIndex, SerialScan
from repro.series import random_walk
from repro.storage import RawSeriesFile, SimulatedDisk
from repro.summaries import SAXConfig

CONFIG = SAXConfig(series_length=64, word_length=8, cardinality=16)


def build(n=300, plus=True, leaf_size=32, memory=1 << 20, seed=0):
    disk = SimulatedDisk(page_size=2048)
    data = random_walk(n, length=64, seed=seed)
    raw = RawSeriesFile.create(disk, data)
    index = ADSIndex(
        disk,
        memory_bytes=memory,
        config=CONFIG,
        leaf_size=leaf_size,
        plus=plus,
    )
    report = index.build(raw)
    return disk, index, data, report


def test_ads_plus_is_secondary():
    _, index, _, _ = build(plus=True)
    assert not index.is_materialized
    assert index.name == "ADS+"


def test_ads_full_is_materialized():
    _, index, _, _ = build(plus=False)
    assert index.is_materialized
    assert index.name == "ADSFull"


def test_ads_plus_builds_faster_than_full():
    """ADS+ skips the second (materializing) pass over the raw data."""
    _, _, _, plus_report = build(n=500, plus=True, seed=1)
    _, _, _, full_report = build(n=500, plus=False, seed=1)
    assert plus_report.simulated_io_ms < full_report.simulated_io_ms
    assert plus_report.index_bytes < full_report.index_bytes


@pytest.mark.parametrize("plus", [True, False])
def test_exact_search_matches_serial_scan(plus):
    disk, index, data, _ = build(n=300, plus=plus, seed=2)
    oracle = SerialScan(disk, memory_bytes=1024)
    oracle.build(index.raw)
    for query in random_walk(10, length=64, seed=42):
        got = index.exact_search(query)
        want = oracle.exact_search(query)
        assert got.distance == pytest.approx(want.distance, rel=1e-6)


def test_exact_search_prunes_records():
    _, index, _, _ = build(n=800, seed=3)
    query = random_walk(1, length=64, seed=50)[0]
    result = index.exact_search(query)
    assert result.visited_records < 800
    assert result.pruned_fraction > 0.0


def test_adaptive_refinement_happens_once_per_leaf():
    _, index, _, _ = build(n=600, plus=True, leaf_size=64, seed=4)
    query = random_walk(1, length=64, seed=51)[0]
    first = index.approximate_search(query)
    splits_after_first = index.adaptive_splits
    again = index.approximate_search(query)
    assert index.adaptive_splits == splits_after_first
    # Re-visiting a materialized leaf is cheaper.
    assert again.simulated_io_ms <= first.simulated_io_ms


def test_adaptive_split_reduces_visited_leaf_size():
    _, index, _, _ = build(n=600, plus=True, leaf_size=64, seed=5)
    query = random_walk(1, length=64, seed=52)[0]
    result = index.approximate_search(query)
    assert result.visited_records <= 64


def test_insert_batch_preserves_exactness():
    disk, index, data, _ = build(n=200, plus=True, seed=6)
    extra = random_walk(50, length=64, seed=53)
    index.insert_batch(extra)
    index.tree.flush_all()
    got = index.exact_search(extra[3])
    assert got.distance == pytest.approx(0.0, abs=1e-5)


def test_query_on_indexed_series_finds_zero_distance():
    _, index, data, _ = build(n=150, plus=False, seed=7)
    result = index.exact_search(data[99])
    assert result.distance == pytest.approx(0.0, abs=1e-5)
