"""Property tests for the sharded, concurrency-safe storage stack.

The contract of the sharded spilled merge (and of LSM compaction on
top of it) has two halves:

* **stream equivalence** — for *any* worker count, pool kind and
  splitter sample, the merged record stream (and for the sorter, the
  chunk shapes and ``SortReport``) is bit-identical to the fully
  serial merge;
* **accounting determinism** — the reconciled :class:`repro.storage.
  cost.DiskStats` of a pooled run are bit-identical to the *serial
  replay oracle*: the same per-shard plans executed inline, one
  partition after another (``pool_kind="serial"``).

Plus the lifecycle semantics of :class:`repro.storage.disk.DiskShard` /
:class:`repro.storage.disk.ShardedDisk` themselves: extent isolation,
snapshot reads, the parent fence, deterministic reconciliation in
partition order, and the deterministic head park on detach.
"""

import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import RawSeriesFile, SimulatedDisk, random_walk
from repro.core.lsm import CoconutLSM
from repro.parallel import sharded_spill_merge
from repro.storage import (
    DiskStats,
    ExternalSorter,
    PagedFile,
    PageError,
    ShardedDisk,
    merge_presorted,
)
from repro.summaries import SAXConfig


# --------------------------------------------------------------- shards
def make_disk(n_pages=16, page_size=64):
    disk = SimulatedDisk(page_size=page_size)
    disk.allocate(n_pages)
    for page in range(n_pages):
        disk.write_page(page, bytes([page]))
    return disk


def test_shard_owns_its_extent_and_head():
    disk = make_disk(8)
    extent = disk.allocate(4)
    disk.reset_stats()
    disk.park_head()
    with ShardedDisk(disk, [(extent, 2), (extent + 2, 2)]) as (a, b):
        a.write_page(extent, b"A")
        a.write_page(extent + 1, b"B")
        b.write_page(extent + 2, b"C")
        # Each shard classifies against its own head: one seek each.
        assert a.stats.random_writes == 1 and a.stats.sequential_writes == 1
        assert b.stats.random_writes == 1
        # Writes outside the writable extent are rejected.
        with pytest.raises(PageError):
            a.write_page(extent + 2, b"no")
        with pytest.raises(PageError):
            b.write_page(0, b"no")
        # Pre-session parent pages are readable (snapshot), own writes too.
        assert a.read_page(3)[:1] == bytes([3])
        assert a.read_page(extent)[:1] == b"A"
    # Reconciled into the parent after detach.
    assert disk.read_page(extent)[:1] == b"A"
    assert disk.read_page(extent + 2)[:1] == b"C"


def test_parent_is_fenced_while_sharded():
    disk = make_disk(4)
    extent = disk.allocate(2)
    session = ShardedDisk(disk, [(extent, 2)])
    assert disk.sharded
    with pytest.raises(PageError):
        disk.read_page(0)
    with pytest.raises(PageError):
        disk.write_page(0, b"x")
    with pytest.raises(PageError):
        disk.allocate(1)
    with pytest.raises(PageError):
        ShardedDisk(disk, [(extent, 1)])  # no nested sessions
    session.detach()
    assert not disk.sharded
    disk.read_page(0)  # usable again


def test_detached_shard_rejects_io():
    disk = make_disk(4)
    extent = disk.allocate(2)
    session = ShardedDisk(disk, [(extent, 2)])
    (shard,) = session.shards
    session.detach()
    assert not shard.attached
    with pytest.raises(PageError):
        shard.read_page(0)
    with pytest.raises(PageError):
        shard.write_page(extent, b"x")


def test_shard_snapshot_isolation_and_bounds():
    disk = make_disk(4)
    extent = disk.allocate(4)
    with ShardedDisk(disk, [(extent, 2), (extent + 2, 2)]) as (a, b):
        b.write_page(extent + 2, b"sibling")
        # A sibling's in-session write is invisible (and never-written
        # pages read as a full zero page, not as an error).
        assert bytes(a.read_page(extent + 2)) == bytes(64)
        with pytest.raises(PageError):
            a.read_page(extent + 10)  # beyond the snapshot watermark


def test_sharded_disk_rejects_bad_extents():
    disk = make_disk(4)
    extent = disk.allocate(4)
    with pytest.raises(PageError):
        ShardedDisk(disk, [(extent, 3), (extent + 2, 2)])  # overlap
    with pytest.raises(PageError):
        ShardedDisk(disk, [(extent + 2, 10)])  # beyond allocation
    with pytest.raises(ValueError):
        ShardedDisk(disk, [(-1, 2)])


def test_shard_allocate_carves_from_extent():
    disk = make_disk(2)
    extent = disk.allocate(3)
    with ShardedDisk(disk, [(extent, 3)]) as (shard,):
        assert shard.allocate(2) == extent
        assert shard.allocate(1) == extent + 2
        with pytest.raises(PageError):
            shard.allocate(1)  # exhausted


def test_detach_parks_head_deterministically():
    """Satellite fix: the first post-session access is always random.

    Whatever head positions the shards ended on — and regardless of the
    pool interleaving that produced them — detach parks the parent
    head, so ``stats_since`` deltas across a session boundary never
    depend on scheduling.
    """
    disk = make_disk(8)
    extent = disk.allocate(2)
    disk.reset_stats()
    with ShardedDisk(disk, [(extent, 2)]) as (shard,):
        shard.write_page(extent, b"x")  # shard head now at `extent`
    assert disk.head_position is None
    snapshot = disk.snapshot()
    disk.read_page(extent + 1)  # head-adjacent to the shard's last write
    delta = disk.stats_since(snapshot)
    assert delta.random_reads == 1 and delta.sequential_reads == 0


def test_detach_reconciles_stats_in_partition_order():
    disk = make_disk(2)
    extent = disk.allocate(4)
    disk.reset_stats()
    session = ShardedDisk(disk, [(extent, 2), (extent + 2, 2)])
    a, b = session.shards
    b.write_page(extent + 2, b"1")
    b.write_page(extent + 3, b"2")
    a.write_page(extent, b"3")
    expected = a.snapshot() + b.snapshot()
    merged = session.detach()
    assert merged == expected
    assert disk.stats == expected
    assert session.detach() == DiskStats()  # idempotent


# ---------------------------------------------- sharded merge vs serial
def make_sorted_runs(n, run_sizes, key_bytes=8, alphabet=256, seed=0):
    rng = np.random.default_rng(seed)
    raw = rng.integers(0, alphabet, size=(n, key_bytes), dtype=np.uint8)
    keys = raw.view(f"S{key_bytes}").ravel()
    payloads = np.arange(n, dtype=np.int64)
    runs, at = [], 0
    for size in run_sizes:
        size = min(size, n - at)
        order = np.argsort(keys[at : at + size], kind="stable")
        runs.append((keys[at : at + size][order], payloads[at : at + size][order]))
        at += size
    if at < n:
        order = np.argsort(keys[at:], kind="stable")
        runs.append((keys[at:][order], payloads[at:][order]))
    return [run for run in runs if len(run[0])]


def drive_sorter(runs, memory_bytes, workers=1, pool_kind="thread", page_size=256):
    disk = SimulatedDisk(page_size=page_size)
    sorter = ExternalSorter(
        disk, memory_bytes, merge_workers=workers, pool_kind=pool_kind
    )
    parts = list(sorter.sort_runs(runs))
    shapes = [len(k) for k, _ in parts]
    keys = np.concatenate([k for k, _ in parts]) if parts else np.empty(0)
    payloads = np.concatenate([p for _, p in parts]) if parts else np.empty(0)
    return keys, payloads, shapes, disk.stats, sorter.report


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=400),
    n_runs=st.integers(min_value=1, max_value=20),
    alphabet=st.sampled_from([2, 4, 256]),
    memory_records=st.integers(min_value=2, max_value=48),
    workers=st.integers(min_value=2, max_value=6),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_property_sharded_spilled_merge_equals_serial(
    n, n_runs, alphabet, memory_records, workers, seed
):
    """The full acceptance property, quantified over worker counts.

    Stream, chunk shapes and SortReport: parallel == serial sorter.
    DiskStats: threaded run == serial replay of the same sharded plan.
    Covers duplicate-heavy keys, single-run groups, cascades, and the
    degenerate splitter samples a tiny alphabet forces.
    """
    rng = np.random.default_rng(seed)
    sizes = rng.integers(0, max(1, 2 * n // n_runs + 1), size=n_runs)
    runs = make_sorted_runs(n, sizes.tolist(), alphabet=alphabet, seed=seed)
    if not runs:
        return
    memory = 16 * memory_records
    base = drive_sorter(runs, memory, workers=1)
    pooled = drive_sorter(runs, memory, workers=workers, pool_kind="thread")
    replay = drive_sorter(runs, memory, workers=workers, pool_kind="serial")
    np.testing.assert_array_equal(base[0], pooled[0])
    np.testing.assert_array_equal(base[1], pooled[1])
    assert base[2] == pooled[2]
    assert base[4] == pooled[4]
    np.testing.assert_array_equal(base[0], replay[0])
    assert base[2] == replay[2] and base[4] == replay[4]
    assert pooled[3] == replay[3]


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=300),
    n_runs=st.integers(min_value=1, max_value=8),
    alphabet=st.sampled_from([3, 256]),
    n_splitters=st.integers(min_value=0, max_value=10),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_property_any_splitter_sample_is_exact(
    n, n_runs, alphabet, n_splitters, seed
):
    """Adversarial splitters can unbalance partitions, never change them.

    Splitters are drawn at random (not from run boundaries), including
    keys absent from every run, duplicates of hot keys, and extremes —
    the merged stream and the on-disk bytes must equal the serial
    stable merge regardless, and thread vs inline execution must
    reconcile identical stats.
    """
    rng = np.random.default_rng(seed)
    sizes = rng.integers(0, max(1, 2 * n // n_runs + 1), size=n_runs)
    runs = make_sorted_runs(n, sizes.tolist(), alphabet=alphabet, seed=seed)
    if not runs:
        return
    raw = rng.integers(0, alphabet, size=(n_splitters, 8), dtype=np.uint8)
    splitters = np.unique(raw.view("S8").ravel())
    rec_dtype = np.dtype([("k", "S8"), ("v", "<i8")])

    def run_once(pool_kind):
        disk = SimulatedDisk(page_size=128)
        sources = []
        for keys, payloads in runs:
            block = np.empty(len(keys), dtype=rec_dtype)
            block["k"] = keys
            block["v"] = payloads
            file = PagedFile(disk, name=f"run-{len(sources)}")
            file.write_stream(block.tobytes())
            sources.append((file, len(keys), keys))
        result = sharded_spill_merge(
            disk,
            sources,
            rec_dtype,
            n_partitions=4,
            buffer_records=7,
            pool_kind=pool_kind,
            splitters=splitters,
            collect="records",
        )
        raw_bytes = result.file.read_stream(0, result.file.n_pages)
        n_bytes = result.n_records * rec_dtype.itemsize
        return result, raw_bytes[:n_bytes], disk

    pooled, pooled_bytes, pooled_disk = run_once("thread")
    replay, replay_bytes, replay_disk = run_once("serial")
    want_keys, want_payloads = merge_presorted(list(runs))
    np.testing.assert_array_equal(pooled.keys, want_keys)
    np.testing.assert_array_equal(pooled.payloads, want_payloads)
    # On-disk byte stream is the packed serial layout.
    expected = np.empty(len(want_keys), dtype=rec_dtype)
    expected["k"] = want_keys
    expected["v"] = want_payloads
    assert pooled_bytes == expected.tobytes()
    assert pooled_bytes == replay_bytes
    assert pooled_disk.stats == replay_disk.stats


def test_sharded_merge_single_source_and_tiny_pages():
    """One run, pages smaller than a record: fragments dominate."""
    keys = np.sort(np.arange(40).astype("S8"))
    payloads = np.arange(40, dtype=np.int64)
    rec_dtype = np.dtype([("k", "S8"), ("v", "<i8")])
    disk = SimulatedDisk(page_size=8)  # half a record per page
    block = np.empty(40, dtype=rec_dtype)
    block["k"] = keys
    block["v"] = payloads
    file = PagedFile(disk, name="run")
    file.write_stream(block.tobytes())
    result = sharded_spill_merge(
        disk,
        [(file, 40, keys)],
        rec_dtype,
        n_partitions=5,
        buffer_records=3,
        pool_kind="thread",
    )
    data = result.file.read_stream(0, result.file.n_pages)
    assert data[: 40 * 16] == block.tobytes()


def test_stream_run_file_yields_serial_chunk_shapes():
    """Reading a materialized run back reproduces the engines' chunks."""
    from repro.parallel import stream_run_file

    rec_dtype = np.dtype([("k", "S8"), ("v", "<i8")])
    keys = np.sort(np.arange(100).astype("S8"))
    payloads = np.arange(100, dtype=np.int64)
    disk = SimulatedDisk(page_size=128)
    block = np.empty(100, dtype=rec_dtype)
    block["k"] = keys
    block["v"] = payloads
    file = PagedFile(disk, name="run")
    file.write_stream(block.tobytes())
    chunks = list(stream_run_file(file, 100, rec_dtype, 30))
    assert [len(k) for k, _ in chunks] == [30, 30, 30, 10]
    np.testing.assert_array_equal(np.concatenate([k for k, _ in chunks]), keys)
    np.testing.assert_array_equal(
        np.concatenate([p for _, p in chunks]), payloads
    )


def test_sharded_merge_rejects_bad_input():
    disk = SimulatedDisk()
    rec_dtype = np.dtype([("k", "S8"), ("v", "<i8")])
    with pytest.raises(ValueError):
        sharded_spill_merge(disk, [], rec_dtype, n_partitions=2, buffer_records=4)
    file = PagedFile(disk, name="run")
    keys = np.array([b"a", b"b"], dtype="S8")
    with pytest.raises(ValueError):
        sharded_spill_merge(
            disk,
            [(file, 3, keys)],  # mirror length mismatch
            rec_dtype,
            n_partitions=2,
            buffer_records=4,
        )


# ----------------------------------------------------- index-level gate
CONFIG = SAXConfig(series_length=32, word_length=4, cardinality=16)
DATA = random_walk(700, length=32, seed=23)

#: Worker counts for the index-level equivalence gates.  CI's dedicated
#: multi-worker step overrides this (e.g. "4,8") to cover counts the
#: default run does not.
WORKER_COUNTS = [
    int(w)
    for w in os.environ.get("REPRO_EQUIVALENCE_WORKERS", "2,4").split(",")
]


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_spilled_tree_build_bit_identical_for_any_workers(workers):
    """A spilled CoconutTree build with workers=N equals the serial one."""
    from repro.core import CoconutTree

    def build(n_workers):
        disk = SimulatedDisk(page_size=2048)
        raw = RawSeriesFile.create(disk, DATA)
        index = CoconutTree(
            disk, memory_bytes=24 * 1024, config=CONFIG, leaf_size=40,
            materialized=True, workers=n_workers, chunk_series=96,
            pool_kind="thread",
        )
        report = index.build(raw)
        assert report.extra["sort_runs"] > 1
        return index, disk

    serial, _ = build(1)
    parallel, _ = build(workers)
    assert len(serial._leaves) == len(parallel._leaves)
    for leaf_s, leaf_p in zip(serial._leaves, parallel._leaves):
        assert (leaf_s.slot, leaf_s.count, leaf_s.first_key) == (
            leaf_p.slot, leaf_p.count, leaf_p.first_key,
        )
        assert (
            serial._read_leaf_records(leaf_s).tobytes()
            == parallel._read_leaf_records(leaf_p).tobytes()
        )


def build_lsm(**kwargs):
    disk = SimulatedDisk(page_size=2048)
    raw = RawSeriesFile.create(disk, DATA[:200])
    lsm = CoconutLSM(
        disk, memory_bytes=4096, config=CONFIG, size_ratio=2, **kwargs
    )
    lsm.build(raw)
    for i in range(8):
        lsm.insert_batch(random_walk(90, length=32, seed=300 + i))
    return disk, lsm


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_lsm_sharded_compaction_equals_serial_for_any_workers(workers):
    """Sharded compaction: content == serial, stats == serial replay."""
    disk_serial, serial = build_lsm()
    disk_pooled, pooled = build_lsm(workers=workers, pool_kind="thread")
    disk_replay, replay = build_lsm(workers=workers, pool_kind="serial")
    assert disk_pooled.stats == disk_replay.stats
    assert serial.n_merges == pooled.n_merges > 0
    assert len(serial._runs) == len(pooled._runs)
    for run_s, run_p in zip(serial._runs, pooled._runs):
        assert run_s.level == run_p.level
        np.testing.assert_array_equal(run_s.keys, run_p.keys)
        np.testing.assert_array_equal(run_s.offsets, run_p.offsets)


# ------------------------------------------------- read-only sessions
def test_read_only_session_reads_through_a_writing_fence():
    """The online service's serving contract, at the storage layer.

    A read-only session attached *before* a writing session keeps
    reading its pre-session pages while the writing session fences the
    parent — that window is exactly a flush/compaction commit, and it
    is why a serving snapshot pins its shard up front instead of
    opening sessions per batch.
    """
    disk = make_disk(8)
    reader = ShardedDisk(disk, [(0, 0)], names=["reader"], read_only=True)
    (shard,) = reader.shards
    before = [bytes(shard.read_page(p)) for p in range(8)]
    extent = disk.allocate(2)  # read-only leaves the parent live
    writer = ShardedDisk(disk, [(extent, 2)])
    try:
        assert disk.sharded  # the commit fence is up...
        with pytest.raises(PageError):
            disk.read_page(0)
        with pytest.raises(PageError):
            ShardedDisk(disk, [(0, 0)], read_only=True)  # no new sessions
        # ...yet the pre-attached reader still reads, bit-identically.
        assert [bytes(shard.read_page(p)) for p in range(8)] == before
    finally:
        writer.detach()
    # And again after the commit: pre-session pages are immutable.
    assert [bytes(shard.read_page(p)) for p in range(8)] == before


def test_read_only_session_watermark_pins_at_attach():
    disk = make_disk(4)
    reader = ShardedDisk(disk, [(0, 0)], read_only=True)
    (shard,) = reader.shards
    late = disk.allocate(1)
    disk.write_page(late, b"after")
    # Pages allocated after the session attached are beyond its
    # snapshot watermark — a stale reader cannot see in-flight state.
    with pytest.raises(PageError):
        shard.read_page(late)
    assert shard.read_page(0)[:1] == bytes([0])


def test_read_only_session_survives_lsm_flush_and_compaction():
    """Rows below a pinned watermark stay identical across commits.

    The raw file's *tail page* is legitimately rewritten as later
    appends fill it, so the invariant is at the row level: a raw view
    bound to a pre-attached read-only shard pins ``n_series`` and those
    rows read back bit-identically through any number of flushes and
    sharded compactions — the service snapshot's serving contract.
    """
    disk, lsm = build_lsm(workers=3, pool_kind="thread")
    reader = ShardedDisk(disk, [(0, 0)], names=["snapshot"], read_only=True)
    (shard,) = reader.shards
    raw_view = lsm.raw.view(shard)
    rows = np.arange(lsm.raw.n_series, dtype=np.int64)
    before = raw_view.get_many(rows).copy()
    merges = lsm.n_merges
    for i in range(8):
        lsm.insert_batch(random_walk(90, length=32, seed=900 + i))
    assert lsm.n_merges > merges  # sharded compactions really committed
    np.testing.assert_array_equal(raw_view.get_many(rows), before)
    assert len(raw_view) == len(rows)  # later appends stay invisible
