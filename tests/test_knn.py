"""Tests for k-nearest-neighbor search (core.knn)."""

import numpy as np
import pytest

from repro.core import CoconutTree
from repro.core.knn import _BoundedMaxHeap, sims_knn_scan
from repro.series import euclidean_batch, random_walk
from repro.storage import RawSeriesFile, SimulatedDisk
from repro.summaries import SAXConfig, sax_words

CONFIG = SAXConfig(series_length=64, word_length=8, cardinality=16)


def brute_force_knn(query, data, k):
    distances = euclidean_batch(query, data.astype(np.float64))
    order = np.argsort(distances, kind="stable")[:k]
    return list(order), [float(distances[i]) for i in order]


def build_index(n=400, seed=0, materialized=False):
    disk = SimulatedDisk(page_size=2048)
    data = random_walk(n, length=64, seed=seed)
    raw = RawSeriesFile.create(disk, data)
    index = CoconutTree(
        disk, memory_bytes=1 << 20, config=CONFIG, leaf_size=32,
        materialized=materialized,
    )
    index.build(raw)
    return index, data


# ---------------------------------------------------------------- heap
def test_heap_keeps_k_smallest():
    heap = _BoundedMaxHeap(3)
    for distance, identifier in [(5, 1), (2, 2), (9, 3), (1, 4), (3, 5)]:
        heap.offer(distance, identifier)
    items = heap.sorted_items()
    assert [i for _, i in items] == [4, 2, 5]


def test_heap_threshold_is_inf_until_full():
    heap = _BoundedMaxHeap(2)
    heap.offer(1.0, 1)
    assert heap.threshold == float("inf")
    heap.offer(2.0, 2)
    assert heap.threshold == 2.0


def test_heap_deduplicates_identifiers():
    heap = _BoundedMaxHeap(2)
    heap.offer(1.0, 7)
    heap.offer(0.5, 7)
    heap.offer(2.0, 8)
    items = heap.sorted_items()
    assert [i for _, i in items] == [7, 8]


def test_heap_rejects_bad_k():
    with pytest.raises(ValueError):
        _BoundedMaxHeap(0)


# ---------------------------------------------------------------- scan
def test_sims_knn_scan_matches_brute_force():
    rng = np.random.default_rng(0)
    data = random_walk(200, length=64, seed=1)
    words = sax_words(data, CONFIG)

    def fetch(positions):
        return data[positions].astype(np.float64), positions

    query = random_walk(1, length=64, seed=2)[0]
    for k in (1, 3, 10):
        outcome = sims_knn_scan(query, k, words, CONFIG, fetch)
        want_ids, want_dists = brute_force_knn(query, data, k)
        np.testing.assert_allclose(outcome.distances, want_dists, rtol=1e-6)
        assert set(outcome.answer_ids) == set(want_ids)


def test_knn_distances_sorted_ascending():
    data = random_walk(100, length=64, seed=3)
    words = sax_words(data, CONFIG)
    query = random_walk(1, length=64, seed=4)[0]
    outcome = sims_knn_scan(
        query, 5, words, CONFIG,
        lambda p: (data[p].astype(np.float64), p),
    )
    assert outcome.distances == sorted(outcome.distances)


# --------------------------------------------------------------- index
@pytest.mark.parametrize("materialized", [False, True])
def test_index_exact_knn_matches_brute_force(materialized):
    index, data = build_index(n=300, seed=5, materialized=materialized)
    query = random_walk(1, length=64, seed=6)[0]
    for k in (1, 5):
        outcome = index.exact_knn(query, k)
        want_ids, want_dists = brute_force_knn(query, data, k)
        np.testing.assert_allclose(outcome.distances, want_dists, rtol=1e-6)


def test_index_knn_k1_equals_exact_search():
    index, _ = build_index(n=250, seed=7)
    query = random_walk(1, length=64, seed=8)[0]
    knn = index.exact_knn(query, 1)
    exact = index.exact_search(query)
    assert knn.distances[0] == pytest.approx(exact.distance, rel=1e-9)
    assert knn.answer_ids[0] == exact.answer_idx


def test_index_knn_prunes_and_charges_io():
    index, _ = build_index(n=600, seed=9)
    query = random_walk(1, length=64, seed=10)[0]
    outcome = index.exact_knn(query, 3)
    assert outcome.pruned_fraction > 0.0
    assert outcome.simulated_io_ms > 0.0


def test_knn_with_k_exceeding_dataset():
    index, data = build_index(n=20, seed=11)
    query = random_walk(1, length=64, seed=12)[0]
    outcome = index.exact_knn(query, 50)
    assert len(outcome.answer_ids) == 20
    assert outcome.distances == sorted(outcome.distances)
