"""Tests for cost-model effects on whole-index behaviour."""

import pytest

from repro.core import CoconutTree
from repro.indexes import ADSIndex
from repro.series import random_walk
from repro.storage import (
    SSD_COST,
    UNIFORM_COST,
    CostModel,
    RawSeriesFile,
    SimulatedDisk,
)
from repro.summaries import SAXConfig

CONFIG = SAXConfig(series_length=64, word_length=8, cardinality=16)


def build_cost(index_kind, cost_model, memory=4096, n=600):
    disk = SimulatedDisk(page_size=2048, cost_model=cost_model)
    data = random_walk(n, length=64, seed=1)
    raw = RawSeriesFile.create(disk, data)
    disk.reset_stats()
    if index_kind == "ctree":
        index = CoconutTree(disk, memory, config=CONFIG, leaf_size=32)
    else:
        index = ADSIndex(disk, memory, config=CONFIG, leaf_size=32)
    report = index.build(raw)
    return report


def test_hdd_punishes_topdown_more_than_bulk_load():
    hdd_ads = build_cost("ads", CostModel()).simulated_io_ms
    hdd_ctree = build_cost("ctree", CostModel()).simulated_io_ms
    uni_ads = build_cost("ads", UNIFORM_COST).simulated_io_ms
    uni_ctree = build_cost("ctree", UNIFORM_COST).simulated_io_ms
    assert hdd_ads / hdd_ctree > uni_ads / uni_ctree


def test_ssd_narrows_but_preserves_the_gap():
    ssd_ads = build_cost("ads", SSD_COST).simulated_io_ms
    ssd_ctree = build_cost("ctree", SSD_COST).simulated_io_ms
    hdd_ads = build_cost("ads", CostModel()).simulated_io_ms
    hdd_ctree = build_cost("ctree", CostModel()).simulated_io_ms
    assert ssd_ads > ssd_ctree  # Coconut still wins on flash
    assert ssd_ads / ssd_ctree < hdd_ads / hdd_ctree


def test_same_access_counts_regardless_of_cost_model():
    """The cost model prices accesses; it must not change them."""
    hdd = build_cost("ctree", CostModel()).io
    uniform = build_cost("ctree", UNIFORM_COST).io
    assert hdd.total_ios == uniform.total_ios
    assert hdd.sequential_writes == uniform.sequential_writes
    assert hdd.random_reads == uniform.random_reads


def test_queries_priced_by_cost_model():
    disk_costly = SimulatedDisk(
        page_size=2048, cost_model=CostModel(random_read_ms=100.0)
    )
    data = random_walk(300, length=64, seed=2)
    raw = RawSeriesFile.create(disk_costly, data)
    index = CoconutTree(disk_costly, 1 << 20, config=CONFIG, leaf_size=32)
    index.build(raw)
    query = random_walk(1, length=64, seed=3)[0]
    expensive = index.exact_search(query)

    disk_cheap = SimulatedDisk(page_size=2048, cost_model=UNIFORM_COST)
    raw2 = RawSeriesFile.create(disk_cheap, data)
    index2 = CoconutTree(disk_cheap, 1 << 20, config=CONFIG, leaf_size=32)
    index2.build(raw2)
    cheap = index2.exact_search(query)

    assert expensive.distance == pytest.approx(cheap.distance, rel=1e-9)
    assert expensive.simulated_io_ms > cheap.simulated_io_ms
