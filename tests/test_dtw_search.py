"""Tests for DTW-compatible search (the paper's noted extension)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CoconutTree, dtw_exact_search, dtw_mindist_to_words, query_envelope
from repro.core.dtw_search import envelope_segment_bounds
from repro.series import dtw, random_walk, z_normalize
from repro.storage import RawSeriesFile, SimulatedDisk
from repro.summaries import SAXConfig, sax_words

CONFIG = SAXConfig(series_length=64, word_length=8, cardinality=16)
WINDOW = 4


def build_index(n=200, seed=0, materialized=False):
    disk = SimulatedDisk(page_size=2048)
    data = random_walk(n, length=64, seed=seed)
    raw = RawSeriesFile.create(disk, data)
    index = CoconutTree(
        disk, memory_bytes=1 << 20, config=CONFIG, leaf_size=32,
        materialized=materialized,
    )
    index.build(raw)
    return index, data


def brute_force_dtw(query, data, window):
    distances = [dtw(query, row.astype(np.float64), window=window) for row in data]
    best = int(np.argmin(distances))
    return best, float(distances[best])


def test_envelope_brackets_query():
    query = random_walk(1, length=64, seed=0)[0].astype(np.float64)
    upper, lower = query_envelope(query, WINDOW)
    assert np.all(upper >= query)
    assert np.all(lower <= query)


def test_envelope_widens_with_window():
    query = random_walk(1, length=64, seed=1)[0].astype(np.float64)
    u1, l1 = query_envelope(query, 2)
    u2, l2 = query_envelope(query, 8)
    assert np.all(u2 >= u1)
    assert np.all(l2 <= l1)


def test_envelope_zero_window_is_query():
    query = random_walk(1, length=64, seed=2)[0].astype(np.float64)
    upper, lower = query_envelope(query, 0)
    np.testing.assert_allclose(upper, query)
    np.testing.assert_allclose(lower, query)


def test_envelope_negative_window_rejected():
    with pytest.raises(ValueError):
        query_envelope(np.zeros(8), -1)


def test_segment_bounds_cover_envelope():
    query = random_walk(1, length=64, seed=3)[0].astype(np.float64)
    upper, lower = query_envelope(query, WINDOW)
    u_max, l_min = envelope_segment_bounds(upper, lower, CONFIG)
    assert len(u_max) == CONFIG.word_length
    assert np.all(u_max >= l_min)


def test_dtw_mindist_lower_bounds_dtw():
    data = random_walk(60, length=64, seed=4)
    query = random_walk(1, length=64, seed=5)[0].astype(np.float64)
    upper, lower = query_envelope(query, WINDOW)
    words = sax_words(data, CONFIG)
    bounds = dtw_mindist_to_words(upper, lower, words, CONFIG)
    for i in range(60):
        true = dtw(query, data[i].astype(np.float64), window=WINDOW)
        assert bounds[i] <= true + 1e-6


@pytest.mark.parametrize("materialized", [False, True])
def test_dtw_exact_search_matches_brute_force(materialized):
    index, data = build_index(n=150, seed=6, materialized=materialized)
    for seed in (40, 41, 42):
        query = random_walk(1, length=64, seed=seed)[0].astype(np.float64)
        result = dtw_exact_search(index, query, window=WINDOW)
        _, want = brute_force_dtw(query, data, WINDOW)
        assert result.distance == pytest.approx(want, rel=1e-6)


def test_dtw_search_finds_shifted_copy():
    """The point of DTW: a time-shifted copy should be the match."""
    disk = SimulatedDisk(page_size=2048)
    base = random_walk(80, length=64, seed=7)
    shifted = z_normalize(np.roll(base[13].astype(np.float64), 3))
    data = np.vstack([base, shifted[None, :]]).astype(np.float32)
    raw = RawSeriesFile.create(disk, data)
    index = CoconutTree(disk, memory_bytes=1 << 20, config=CONFIG, leaf_size=32)
    index.build(raw)
    query = z_normalize(base[13].astype(np.float64))
    result = dtw_exact_search(index, query, window=8)
    # The best DTW match is either the series itself or its shift.
    assert result.answer_idx in (13, 80)
    assert result.distance < 1.0


def test_dtw_search_refines_fewer_than_visited():
    index, _ = build_index(n=400, seed=8)
    query = random_walk(1, length=64, seed=9)[0].astype(np.float64)
    result = dtw_exact_search(index, query, window=WINDOW)
    assert result.refined_records <= result.visited_records
    assert result.pruned_fraction >= 0.0


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 2**16), window=st.sampled_from([1, 3, 6]))
def test_property_region_bound_below_dtw(seed, window):
    """The SAX-region DTW bound must never exceed true DTW."""
    rng = np.random.default_rng(seed)
    data = z_normalize(rng.standard_normal((6, 64)))
    query = z_normalize(rng.standard_normal(64))
    upper, lower = query_envelope(query.astype(np.float64), window)
    words = sax_words(data, CONFIG)
    bounds = dtw_mindist_to_words(upper, lower, words, CONFIG)
    for i in range(6):
        true = dtw(query.astype(np.float64), data[i].astype(np.float64),
                   window=window)
        assert bounds[i] <= true + 1e-6
