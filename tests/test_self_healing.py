"""Self-healing parallel pools: retry, degradation, exception safety.

Three contracts from ``docs/robustness.md``:

* **healing never changes the result** — answers, tie order and
  reconciled stats under injected worker faults are bit-identical to
  the serial oracle, whether a transient retry succeeds or the engine
  degrades to the serial plan;
* **a failed session never wedges the parent** — any exception inside
  a ``ShardedDisk`` session (injected fault or plain bug) aborts it:
  the parent is unfenced, writable, and saw none of the attempt;
* **pool infrastructure failures degrade loudly** — a process pool
  that cannot start or breaks mid-map falls back to threads with a
  logged warning, bit-identical results either way.

Also pins the PR 6 error paths end-to-end: out-of-bounds ``get_many``
raises before any I/O *through a shard session*, and a query/series
shape mismatch propagates through the parallel scan engine — both
leaving the parent device live.
"""

import logging

import numpy as np
import pytest

from repro.core.lsm import CoconutLSM
from repro.indexes.base import QueryBatch
from repro.indexes.serial import SerialScan
from repro.parallel.heal import run_self_healing
from repro.parallel.merge import _pool_map, parallel_merge_runs
from repro.parallel.query import (
    parallel_serial_scan_batch,
    parallel_sims_query_batch,
)
from repro.parallel.spill import sharded_spill_merge
from repro.storage import (
    DeviceCrash,
    FaultPlan,
    FaultyDevice,
    PermanentIOError,
    ShardedDisk,
    SimulatedDisk,
    TransientIOError,
)
from repro.storage.pager import PagedFile
from repro.storage.seriesfile import RawSeriesFile
from repro.summaries.sax import SAXConfig

LENGTH = 64
CONFIG = SAXConfig(series_length=LENGTH, word_length=8, cardinality=16)
PAGE = 2048

_rng = np.random.default_rng(99)
DATA = _rng.standard_normal((400, LENGTH)).astype(np.float32)
QUERIES = _rng.standard_normal((3, LENGTH))
BATCH = QueryBatch(queries=QUERIES, k=4)


def transient_wrap(seed, p=0.25):
    """Faults on attempt 0 only — a retry must heal."""

    def wrap(shard, part, attempt):
        plan = FaultPlan(
            seed=seed * 131 + part,
            p_transient_read=p if attempt == 0 else 0.0,
            p_transient_write=p if attempt == 0 else 0.0,
        )
        return FaultyDevice(shard, plan)

    return wrap


def permanent_wrap(shard, part, attempt):
    return FaultyDevice(shard, FaultPlan(seed=1, bad_pages=((0, 10**9),)))


def report_sig(rep):
    return (
        [list(ids) for ids in rep.knn_ids],
        [list(map(float, d)) for d in rep.knn_distances],
    )


# ----------------------------------------------------------------------
# run_self_healing policy
# ----------------------------------------------------------------------
def test_retries_transients_then_succeeds():
    calls = []

    def attempt(i):
        calls.append(i)
        if i < 2:
            raise TransientIOError("flaky")
        return "done"

    assert run_self_healing(attempt, retries=2, backoff_s=0.0) == "done"
    assert calls == [0, 1, 2]


def test_nontransient_goes_straight_to_fallback():
    calls = []

    def attempt(i):
        calls.append(i)
        raise PermanentIOError("dead sector")

    assert run_self_healing(attempt, fallback=lambda: "serial", backoff_s=0.0) == "serial"
    assert calls == [0]


def test_without_fallback_the_fault_propagates():
    with pytest.raises(DeviceCrash):
        run_self_healing(
            lambda i: (_ for _ in ()).throw(DeviceCrash("halt")),
            retries=1,
            backoff_s=0.0,
        )


def test_non_fault_exceptions_are_not_masked():
    with pytest.raises(ZeroDivisionError):
        run_self_healing(lambda i: 1 // 0, fallback=lambda: "never")


# ----------------------------------------------------------------------
# Parallel query engines under injected faults
# ----------------------------------------------------------------------
def make_lsm(store="arena"):
    disk = SimulatedDisk(page_size=PAGE, store=store)
    raw = RawSeriesFile(disk, LENGTH)
    raw.append_batch(DATA)
    ix = CoconutLSM(disk, 1 << 16, CONFIG)
    ix.build(raw)
    return disk, ix


def make_scan(store="arena"):
    disk = SimulatedDisk(page_size=PAGE, store=store)
    raw = RawSeriesFile(disk, LENGTH)
    raw.append_batch(DATA)
    ix = SerialScan(disk, 1 << 16)
    ix.build(raw)
    return disk, ix


def test_query_fetch_heals_transients_bit_identical():
    _, ix0 = make_lsm()
    oracle = report_sig(ix0.query_batch(BATCH, query_workers=1))
    for seed in range(4):
        _, ix = make_lsm()
        rep = parallel_sims_query_batch(
            ix, BATCH, ix._prepare_sims_parallel, 3, "thread",
            wrap_device=transient_wrap(seed),
        )
        assert report_sig(rep) == oracle


def test_query_fetch_degrades_to_serial_on_permanent_fault():
    _, ix0 = make_lsm()
    oracle = report_sig(ix0.query_batch(BATCH, query_workers=1))
    disk, ix = make_lsm()
    rep = parallel_sims_query_batch(
        ix, BATCH, ix._prepare_sims_parallel, 3, "thread",
        wrap_device=permanent_wrap,
    )
    assert report_sig(rep) == oracle
    disk.allocate(1)  # parent never left fenced


def test_scan_heals_and_degrades_with_identical_stats():
    _, ix0 = make_scan()
    oracle = parallel_serial_scan_batch(ix0, BATCH, 1)
    # clean inline replay = the stats oracle for the healed run
    _, ix1 = make_scan()
    clean = parallel_serial_scan_batch(ix1, BATCH, 3, "serial")
    _, ix2 = make_scan()
    healed = parallel_serial_scan_batch(
        ix2, BATCH, 3, "serial", wrap_device=transient_wrap(7)
    )
    assert report_sig(healed) == report_sig(clean) == report_sig(oracle)
    assert healed.io == clean.io  # aborted attempt reconciled nothing
    disk3, ix3 = make_scan()
    degraded = parallel_serial_scan_batch(
        ix3, BATCH, 3, "thread", wrap_device=permanent_wrap
    )
    assert report_sig(degraded) == report_sig(oracle)
    assert degraded.io == oracle.io  # the fallback IS the serial plan
    disk3.allocate(1)


# ----------------------------------------------------------------------
# Sharded spill merge + LSM compaction healing
# ----------------------------------------------------------------------
def lsm_content(ix) -> bytes:
    keys = [np.asarray(run.keys) for run in ix._runs]
    offs = [np.asarray(run.offsets) for run in ix._runs]
    keys += [np.atleast_1d(np.asarray(k)) for k in ix._mem_keys]
    offs += [np.atleast_1d(np.asarray(o)) for o in ix._mem_offsets]
    k, o = np.concatenate(keys), np.concatenate(offs)
    order = np.lexsort((o, k))
    return k[order].tobytes() + o[order].tobytes()


def build_compacting_lsm(workers, wrap=None):
    disk = SimulatedDisk(page_size=PAGE, store="arena")
    raw = RawSeriesFile(disk, LENGTH)
    raw.append_batch(DATA[:200])
    ix = CoconutLSM(disk, 1 << 10, CONFIG, workers=workers)
    ix.build(raw)
    if wrap is not None:
        ix._compact_wrap_device = wrap
    for lo in range(200, len(DATA), 50):
        ix.insert_batch(DATA[lo : lo + 50])
    return disk, ix


def test_sharded_compaction_retries_transients():
    _, serial = build_compacting_lsm(workers=1)
    _, healed = build_compacting_lsm(workers=3, wrap=transient_wrap(3, p=0.15))
    assert healed.n_merges > 0
    assert healed.n_degraded_compactions == 0
    assert lsm_content(healed) == lsm_content(serial)


def test_sharded_compaction_degrades_to_serial_merge():
    _, serial = build_compacting_lsm(workers=1)
    disk, degraded = build_compacting_lsm(workers=3, wrap=permanent_wrap)
    assert degraded.n_degraded_compactions > 0
    assert lsm_content(degraded) == lsm_content(serial)
    disk.allocate(1)  # parent writable after every aborted session


def test_spill_merge_fault_mid_merge_unfences_parent():
    disk = SimulatedDisk(page_size=PAGE, store="arena")
    rec_dtype = np.dtype([("k", "S8"), ("v", "<i8")])
    rng = np.random.default_rng(5)
    sources = []
    for _ in range(3):
        letters = rng.integers(65, 91, size=(300, 8), dtype=np.uint8)
        keys = np.sort(letters.view("S8").ravel())
        block = np.empty(len(keys), dtype=rec_dtype)
        block["k"] = keys
        block["v"] = np.arange(len(keys))
        file = PagedFile(disk, name="src")
        file.write_stream(block.tobytes(), at_page=0)
        sources.append((file, len(keys), block["k"].copy()))
    with pytest.raises(PermanentIOError):
        sharded_spill_merge(
            disk, sources, rec_dtype, 3, 64,
            wrap_device=permanent_wrap, heal_retries=1,
        )
    # the failed merge left the parent live and allocatable
    disk.allocate(1)
    disk.write_page(disk.allocate(1), b"still writable")
    # and a fault-free retry on the same disk succeeds outright
    result = sharded_spill_merge(disk, sources, rec_dtype, 3, 64, collect="keys")
    assert result.n_records == sum(n for _, n, _ in sources)
    assert bytes(np.sort(np.concatenate([s[2] for s in sources])).tobytes()) == result.keys.tobytes()


# ----------------------------------------------------------------------
# Pool-infrastructure degradation (process pool unavailable / broken)
# ----------------------------------------------------------------------
def test_make_executor_degrades_loudly(monkeypatch, caplog):
    from repro.parallel import merge as merge_mod

    def broken_pool(*args, **kwargs):
        raise NotImplementedError("no process support in this sandbox")

    monkeypatch.setattr(merge_mod, "ProcessPoolExecutor", broken_pool)
    with caplog.at_level(logging.WARNING, logger="repro.parallel"):
        executor = merge_mod._make_executor(2, "process")
    try:
        assert type(executor).__name__ == "ThreadPoolExecutor"
        assert any("process pool unavailable" in r.message for r in caplog.records)
    finally:
        executor.shutdown(wait=True)


def test_pool_map_retries_broken_executor_on_threads(monkeypatch, caplog):
    from concurrent.futures import BrokenExecutor

    from repro.parallel import merge as merge_mod

    class ExplodingPool:
        def map(self, fn, *cols):
            raise BrokenExecutor("worker killed")

        def shutdown(self, wait=True):
            pass

    monkeypatch.setattr(
        merge_mod, "_make_executor", lambda workers, kind: ExplodingPool()
    )
    with caplog.at_level(logging.WARNING, logger="repro.parallel"):
        out = merge_mod._pool_map(lambda x: x * x, [[1, 2, 3]], 2, "process")
    assert out == [1, 4, 9]
    assert any("broke mid-map" in r.message for r in caplog.records)


def test_parallel_merge_runs_unaffected_by_healing_path():
    rng = np.random.default_rng(1)
    runs = []
    for _ in range(4):
        letters = rng.integers(65, 91, size=(500, 8), dtype=np.uint8)
        keys = np.sort(letters.view("S8").ravel())
        runs.append((keys, np.arange(500, dtype=np.int64)))
    serial_k, serial_v = parallel_merge_runs(runs, workers=1)
    par_k, par_v = parallel_merge_runs(runs, workers=3, kind="thread")
    assert serial_k.tobytes() == par_k.tobytes()
    assert serial_v.tobytes() == par_v.tobytes()


# ----------------------------------------------------------------------
# PR 6 error paths, exercised through shard sessions and engines
# ----------------------------------------------------------------------
def test_get_many_oob_raises_before_io_through_shard_session():
    disk = SimulatedDisk(page_size=PAGE, store="arena")
    raw = RawSeriesFile(disk, LENGTH)
    raw.append_batch(DATA[:50])
    before = disk.stats
    session = ShardedDisk(disk, [(0, 0)], names=["probe"], read_only=True)
    with pytest.raises(IndexError):
        with session as shards:
            raw.view(shards[0]).get_many(np.array([0, 50], dtype=np.int64))
    assert disk.stats == before  # validation fired before any I/O
    disk.allocate(1)  # session aborted, parent live


def test_shape_mismatch_propagates_through_parallel_scan():
    disk, ix = make_scan()
    bad = QueryBatch(queries=_rng.standard_normal((2, LENGTH // 2)), k=2)
    with pytest.raises(ValueError):
        parallel_serial_scan_batch(ix, bad, 3, "thread")
    disk.allocate(1)  # no fence left behind


def test_shape_mismatch_is_not_healed_into_silence():
    # healing covers device faults only: a ValueError from user input
    # must surface even with a wrap_device seam active
    disk, ix = make_scan()
    bad = QueryBatch(queries=_rng.standard_normal((2, LENGTH // 2)), k=2)
    with pytest.raises(ValueError):
        parallel_serial_scan_batch(
            ix, bad, 3, "thread", wrap_device=transient_wrap(1, p=0.0)
        )
    disk.allocate(1)


# ----------------------------------------------------------------------
# RetryPolicy + HealReport (the service's healing surface)
# ----------------------------------------------------------------------
def test_retry_policy_delay_is_capped_doubling():
    from repro.parallel.heal import RetryPolicy

    policy = RetryPolicy(retries=5, backoff_s=0.01, backoff_cap_s=0.03)
    assert [policy.delay(i) for i in range(4)] == [0.01, 0.02, 0.03, 0.03]
    with pytest.raises(ValueError):
        RetryPolicy(retries=-1)
    with pytest.raises(ValueError):
        RetryPolicy(backoff_s=-0.1)


def test_explicit_policy_drives_attempt_budget():
    from repro.parallel.heal import RetryPolicy

    calls = []

    def attempt(i):
        calls.append(i)
        raise TransientIOError("always")

    with pytest.raises(TransientIOError):
        run_self_healing(
            attempt, policy=RetryPolicy(retries=3, backoff_s=0.0)
        )
    assert calls == [0, 1, 2, 3]


def test_legacy_kwargs_override_policy_fields():
    from repro.parallel.heal import RetryPolicy

    calls = []

    def attempt(i):
        calls.append(i)
        raise TransientIOError("always")

    with pytest.raises(TransientIOError):
        run_self_healing(
            attempt,
            retries=1,  # overrides the policy's 5
            policy=RetryPolicy(retries=5, backoff_s=0.0),
        )
    assert calls == [0, 1]


def test_heal_report_accumulates_across_calls():
    from repro.parallel.heal import HealReport, RetryPolicy

    report = HealReport()
    policy = RetryPolicy(retries=2, backoff_s=0.0)
    # One healed call: two transient faults then success.
    state = {"n": 0}

    def flaky(i):
        state["n"] += 1
        if state["n"] < 3:
            raise TransientIOError("flaky")
        return "ok"

    assert run_self_healing(flaky, policy=policy, report=report) == "ok"
    # One degraded call: a permanent fault straight to the fallback.
    def dead(i):
        raise PermanentIOError("dead")

    assert (
        run_self_healing(dead, fallback=lambda: "serial", policy=policy, report=report)
        == "serial"
    )
    assert report.n_calls == 2
    assert report.n_attempts == 4  # 3 flaky + 1 dead
    assert report.n_retries == 2
    assert report.n_transient_faults == 2
    assert report.n_fatal_faults == 1
    assert report.n_degraded == 1
    merged = HealReport()
    merged.merge(report)
    merged.merge(report)
    assert merged.n_attempts == 8
    assert merged.as_dict()["calls"] == 4


def test_spill_merge_reports_heal_attempts():
    from repro.parallel.heal import HealReport

    disk = SimulatedDisk(page_size=PAGE, store="arena")
    rec_dtype = np.dtype([("k", "S8"), ("v", "<i8")])
    rng = np.random.default_rng(21)
    sources = []
    for _ in range(2):
        letters = rng.integers(65, 91, size=(200, 8), dtype=np.uint8)
        keys = np.sort(letters.view("S8").ravel())
        block = np.empty(len(keys), dtype=rec_dtype)
        block["k"] = keys
        block["v"] = np.arange(len(keys))
        file = PagedFile(disk, name="src")
        file.write_stream(block.tobytes(), at_page=0)
        sources.append((file, len(keys), block["k"].copy()))
    report = HealReport()
    result = sharded_spill_merge(
        disk, sources, rec_dtype, 2, 64,
        wrap_device=transient_wrap(9, p=0.2), heal_report=report,
    )
    assert result.n_heal_attempts == report.n_attempts >= 1
    assert report.n_calls == 1
    # Even when the merge gives up, the attempts are still reported.
    report2 = HealReport()
    with pytest.raises(PermanentIOError):
        sharded_spill_merge(
            disk, sources, rec_dtype, 2, 64,
            wrap_device=permanent_wrap, heal_report=report2,
        )
    assert report2.n_fatal_faults == 1
    assert report2.n_degraded == 0  # no fallback at this layer
    disk.allocate(1)  # parent unfenced either way
