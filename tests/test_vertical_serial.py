"""Tests for the Vertical baseline and the serial-scan oracle."""

import numpy as np
import pytest

from repro.indexes import SerialScan, VerticalIndex
from repro.series import euclidean_batch, random_walk
from repro.storage import RawSeriesFile, SimulatedDisk


def build_vertical(n=300, seed=0, seed_level=4):
    disk = SimulatedDisk(page_size=2048)
    data = random_walk(n, length=64, seed=seed)
    raw = RawSeriesFile.create(disk, data)
    index = VerticalIndex(disk, memory_bytes=1 << 20, seed_level=seed_level)
    report = index.build(raw)
    return disk, index, data, report


def test_level_files_cover_all_coefficients():
    _, index, data, report = build_vertical(n=100)
    assert report.extra["levels"] == 7  # log2(64) + 1
    total_columns = sum(rb // 4 for rb in index._level_row_bytes)
    assert total_columns == 64


def test_build_makes_one_pass_per_level():
    disk, _, _, report = build_vertical(n=200)
    # At least `levels` sequential passes over the raw file happened.
    assert report.io.sequential_reads > 0
    assert report.simulated_io_ms > 0


def test_exact_search_matches_serial_scan():
    disk, index, data, _ = build_vertical(n=300, seed=1)
    oracle = SerialScan(disk, memory_bytes=1024)
    oracle.build(index.raw)
    for query in random_walk(10, length=64, seed=42):
        got = index.exact_search(query)
        want = oracle.exact_search(query)
        assert got.distance == pytest.approx(want.distance, rel=1e-5)


def test_stepwise_pruning_drops_candidates():
    _, index, _, _ = build_vertical(n=800, seed=2)
    query = random_walk(1, length=64, seed=50)[0]
    result = index.exact_search(query)
    assert result.pruned_fraction > 0.0


def test_approximate_search_reasonable():
    _, index, data, _ = build_vertical(n=300, seed=3)
    query = random_walk(1, length=64, seed=51)[0]
    result = index.approximate_search(query)
    true = euclidean_batch(query.astype(np.float64), data.astype(np.float64))
    assert result.distance >= true.min() - 1e-9
    # The stepwise seed should be in the better half of the dataset.
    assert result.distance <= np.median(true)


def test_vertical_index_size_close_to_data_size():
    """The full Haar transform is an invertible copy of the data."""
    disk, index, data, _ = build_vertical(n=256, seed=4)
    data_bytes = data.nbytes
    assert index.storage_bytes() == pytest.approx(data_bytes, rel=0.5)


def test_seed_level_validation():
    with pytest.raises(ValueError):
        VerticalIndex(SimulatedDisk(), memory_bytes=1024, seed_level=0)


# ---------------------------------------------------------------- serial
def test_serial_scan_is_ground_truth():
    disk = SimulatedDisk(page_size=2048)
    data = random_walk(200, length=64, seed=5)
    raw = RawSeriesFile.create(disk, data)
    oracle = SerialScan(disk, memory_bytes=1024)
    oracle.build(raw)
    query = random_walk(1, length=64, seed=52)[0]
    result = oracle.exact_search(query)
    true = euclidean_batch(query.astype(np.float64), data.astype(np.float64))
    assert result.distance == pytest.approx(float(true.min()))
    assert result.answer_idx == int(np.argmin(true))
    assert result.visited_records == 200


def test_serial_scan_io_is_sequential():
    disk = SimulatedDisk(page_size=2048)
    data = random_walk(400, length=64, seed=6)
    raw = RawSeriesFile.create(disk, data)
    oracle = SerialScan(disk, memory_bytes=1024)
    oracle.build(raw)
    disk.reset_stats()
    oracle.exact_search(random_walk(1, length=64, seed=53)[0])
    assert disk.stats.sequential_reads > disk.stats.random_reads
