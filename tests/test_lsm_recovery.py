"""Crash-consistent LSM recovery: the WAL + checksummed-run contract.

The property under test (``docs/robustness.md``): an index recovered
after a crash at *any* injected fault point is bit-identical — run and
memtable **content** (the lexsorted multiset of (key, offset) records)
and exact-search answers — to an oracle rebuilt from exactly the
acknowledged batches.  Randomized fault schedules exercise every
injected kind (transient, torn, bit flip, clean crash) on both page
stores; the raw series file sits on the bare device (the durable
source of truth the paper's LSM design assumes), while every run and
WAL page goes through the fault layer.
"""

import numpy as np
import pytest

from repro.core.lsm import CoconutLSM
from repro.storage import (
    CorruptionError,
    FaultError,
    FaultPlan,
    FaultyDevice,
    SimulatedDisk,
)
from repro.storage.seriesfile import RawSeriesFile
from repro.summaries.sax import SAXConfig

LENGTH = 64
CONFIG = SAXConfig(series_length=LENGTH, word_length=8, cardinality=16)
MEM = 1 << 10
PAGE = 2048
BATCH_ROWS = 25

_rng = np.random.default_rng(2024)
BASE = _rng.standard_normal((200, LENGTH)).astype(np.float32)
EXTRA = _rng.standard_normal((250, LENGTH)).astype(np.float32)
QUERIES = _rng.standard_normal((3, LENGTH))


def content(ix) -> bytes:
    """Lexsorted (key, offset) multiset across runs + memtable."""
    keys = [np.asarray(run.keys) for run in ix._runs]
    offs = [np.asarray(run.offsets) for run in ix._runs]
    keys += [np.atleast_1d(np.asarray(k)) for k in ix._mem_keys]
    offs += [np.atleast_1d(np.asarray(o)) for o in ix._mem_offsets]
    k = np.concatenate(keys) if keys else np.empty(0, dtype="S1")
    o = np.concatenate(offs) if offs else np.empty(0, dtype=np.int64)
    order = np.lexsort((o, k))
    return k[order].tobytes() + o[order].tobytes()


def fresh_raw(store):
    disk = SimulatedDisk(page_size=PAGE, store=store)
    raw = RawSeriesFile(disk, LENGTH)
    raw.append_batch(BASE)
    return disk, raw


def oracle_index(store, n_acked: int):
    """Fault-free rebuild from exactly the acknowledged rows."""
    disk, raw = fresh_raw(store)
    ox = CoconutLSM(disk, MEM, CONFIG, durability="wal")
    ox.build(raw)
    data = EXTRA[: n_acked - len(BASE)]
    for lo in range(0, len(data), BATCH_ROWS):
        ox.insert_batch(data[lo : lo + BATCH_ROWS])
    return ox


def assert_equivalent(ix, oracle):
    assert content(ix) == content(oracle)
    for q in QUERIES:
        a, b = ix.exact_search(q), oracle.exact_search(q)
        assert a.answer_idx == b.answer_idx
        assert a.distance == b.distance


@pytest.mark.parametrize("store", ["arena", "dict"])
def test_clean_durable_index_recovers_bit_identical(store):
    disk, raw = fresh_raw(store)
    ix = CoconutLSM(disk, MEM, CONFIG, durability="wal")
    ix.build(raw)
    for lo in range(0, len(EXTRA), BATCH_ROWS):
        ix.insert_batch(EXTRA[lo : lo + BATCH_ROWS])
    before = content(ix)
    rec = CoconutLSM.recover(disk, raw)
    assert content(rec) == before
    assert rec.n_rebuilt_runs == 0
    assert_equivalent(rec, ix)


@pytest.mark.parametrize("store", ["arena", "dict"])
@pytest.mark.parametrize("seed", range(12))
def test_crash_recovery_matches_acknowledged_oracle(store, seed):
    disk, raw = fresh_raw(store)
    plan = FaultPlan(
        seed=seed,
        p_transient_write=0.02,
        p_transient_read=0.01,
        p_torn_write=0.01,
        p_bitflip_write=0.02,
        p_crash_write=0.005,
        p_crash_read=0.002,
        max_faults=6,
    )
    dev = FaultyDevice(disk, plan)
    try:
        ix = CoconutLSM(dev, MEM, CONFIG, durability="wal")
        ix.build(raw)
        for lo in range(0, len(EXTRA), BATCH_ROWS):
            ix.insert_batch(EXTRA[lo : lo + BATCH_ROWS])
    except FaultError:
        pass  # crashed somewhere — the interesting case
    try:
        rec = CoconutLSM.recover(disk, raw)
    except CorruptionError:
        # Crash before the META frame committed: nothing durable was
        # ever acknowledged — the caller rebuilds from scratch.
        raw.truncate(len(BASE))
        rec = CoconutLSM(disk, MEM, CONFIG, durability="wal", wal_id=2)
        rec.build(raw)
    # Acknowledged rows = what survived the recovery truncation.
    assert raw.n_series >= len(BASE)
    assert (raw.n_series - len(BASE)) % BATCH_ROWS == 0
    assert_equivalent(rec, oracle_index(store, raw.n_series))


@pytest.mark.parametrize("store", ["arena", "dict"])
def test_bitflipped_run_is_rebuilt_from_raw(store):
    disk, raw = fresh_raw(store)
    dev = FaultyDevice(disk, None)
    ix = CoconutLSM(dev, MEM, CONFIG, durability="wal")
    ix.build(raw)
    for lo in range(0, 100, BATCH_ROWS):
        ix.insert_batch(EXTRA[lo : lo + BATCH_ROWS])
    # Corrupt one data byte of a committed run behind the checksum's
    # back, then recover: the crc mismatch must trigger a rebuild from
    # the raw file that reproduces the run bytes exactly.
    run = next(r for r in ix._runs if r.wal_lsn >= 0 and r.level < 10**6)
    page = run.file.physical_page(0)
    blob = bytearray(bytes(disk.page_view(page)))
    blob[0] ^= 0x40
    disk.write_page(page, bytes(blob))
    before = content(ix)
    rec = CoconutLSM.recover(disk, raw)
    assert rec.n_rebuilt_runs >= 1
    assert content(rec) == before
    assert_equivalent(rec, ix)


@pytest.mark.parametrize("store", ["arena", "dict"])
def test_recover_then_continue_then_recover_again(store):
    disk, raw = fresh_raw(store)
    plan = FaultPlan(seed=77, p_torn_write=0.02, max_faults=1)
    dev = FaultyDevice(disk, plan)
    crashed = False
    try:
        ix = CoconutLSM(dev, MEM, CONFIG, durability="wal")
        ix.build(raw)
        for lo in range(0, 150, BATCH_ROWS):
            ix.insert_batch(EXTRA[lo : lo + BATCH_ROWS])
    except FaultError:
        crashed = True
    rec = CoconutLSM.recover(disk, raw)
    marker = raw.n_series
    # The recovered index keeps working: append the remaining batches
    # fault-free, crash-free, and a second recovery replays everything.
    remaining = EXTRA[marker - len(BASE) :]
    for lo in range(0, len(remaining), BATCH_ROWS):
        rec.insert_batch(remaining[lo : lo + BATCH_ROWS])
    after = content(rec)
    rec2 = CoconutLSM.recover(disk, raw)
    assert content(rec2) == after
    assert_equivalent(rec2, oracle_index(store, len(BASE) + len(EXTRA)))
    assert crashed or True  # schedule may or may not fire; both are valid runs
