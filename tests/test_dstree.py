"""Tests for the DSTree baseline (adaptive segmentation tree)."""

import numpy as np
import pytest

from repro.indexes import DSTree, SerialScan
from repro.series import random_walk
from repro.storage import RawSeriesFile, SimulatedDisk


def build(n=300, leaf_size=32, memory=1 << 20, seed=0):
    disk = SimulatedDisk(page_size=2048)
    data = random_walk(n, length=64, seed=seed)
    raw = RawSeriesFile.create(disk, data)
    index = DSTree(disk, memory_bytes=memory, leaf_size=leaf_size)
    report = index.build(raw)
    return disk, index, data, report


def leaves_of(index):
    out = []
    stack = [index.root]
    while stack:
        node = stack.pop()
        if node.is_leaf:
            out.append(node)
        else:
            stack.extend(node.children)
    return out


def test_all_series_indexed_once():
    _, index, _, _ = build(n=250)
    offsets = []
    for leaf in leaves_of(index):
        offsets.extend(int(o) for o in index._leaf_records(leaf)["off"])
    assert sorted(offsets) == list(range(250))


def test_tree_splits_and_respects_leaf_size():
    _, index, _, report = build(n=500, leaf_size=16)
    assert report.extra["splits"] > 0
    for leaf in leaves_of(index):
        assert leaf.total <= 16 * 2  # overflow leaves are rare but legal


def test_vertical_splits_refine_segmentation():
    _, index, _, _ = build(n=600, leaf_size=16)
    depths = [len(leaf.boundaries) for leaf in leaves_of(index)]
    assert max(depths) > len(index.root.boundaries)


def test_synopsis_covers_members():
    _, index, data, _ = build(n=300, leaf_size=16)
    from repro.summaries import eapca

    for leaf in leaves_of(index):
        records = index._leaf_records(leaf)
        if len(records) == 0:
            continue
        means, stds = eapca(
            records["series"].astype(np.float64), leaf.boundaries
        )
        assert np.all(means >= leaf.mean_min - 1e-6)
        assert np.all(means <= leaf.mean_max + 1e-6)
        assert np.all(stds >= leaf.std_min - 1e-6)
        assert np.all(stds <= leaf.std_max + 1e-6)


def test_exact_search_matches_serial_scan():
    disk, index, data, _ = build(n=300, seed=1)
    oracle = SerialScan(disk, memory_bytes=1024)
    oracle.build(index.raw)
    for query in random_walk(10, length=64, seed=42):
        got = index.exact_search(query)
        want = oracle.exact_search(query)
        assert got.distance == pytest.approx(want.distance, rel=1e-6)


def test_exact_search_prunes():
    _, index, _, _ = build(n=800, seed=2)
    query = random_walk(1, length=64, seed=50)[0]
    result = index.exact_search(query)
    assert result.pruned_fraction > 0.0


def test_approximate_search_valid():
    _, index, data, _ = build(n=400, seed=3)
    query = random_walk(1, length=64, seed=51)[0]
    result = index.approximate_search(query)
    assert 0 <= result.answer_idx < 400
    assert np.isfinite(result.distance)


def test_construction_io_heavy_under_tight_memory():
    _, _, _, generous = build(n=400, memory=1 << 22, seed=4)
    _, _, _, tight = build(n=400, memory=8192, seed=4)
    assert tight.simulated_io_ms > generous.simulated_io_ms
