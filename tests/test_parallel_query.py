"""The parallel query engine's equivalence and determinism contract.

Three guarantees, each pinned here:

* **Answers** — ids, distances and tie order of the multi-worker
  batched engine are bit-identical to the serial batched engine (and
  therefore, transitively through the cross-index suite, to the
  brute-force oracle) for every index variant, worker count, pool kind
  and batch shape.
* **I/O determinism** — the reconciled ``DiskStats`` of a thread-pooled
  run are bit-identical to the serial replay of the same per-worker
  plans (``query_pool_kind="serial"``), the PR 3 contract extended to
  the query path.
* **Engine plumbing** — the ``MAX_MINDIST_CELLS`` sub-batch split
  (odd sizes, seed routing), the order-independent bounded heap, the
  ``choose_pool_kind`` threshold, and the candidate-union partitioning
  behave as documented.

Worker counts can be widened from CI via ``REPRO_QUERY_WORKERS``
(comma-separated), mirroring the sharded-storage suite.
"""

import os

import numpy as np
import pytest

from repro import QueryBatch, RawSeriesFile, SerialScan, SimulatedDisk, make_dataset
from repro.core import CoconutLSM, CoconutTree, CoconutTrie
from repro.core.knn import _BoundedMaxHeap
from repro.series import query_workload
from repro.summaries import SAXConfig

CONFIG = SAXConfig(series_length=48, word_length=8, cardinality=64)
N_SERIES = 600
N_QUERIES = 5
MEMORY = 1 << 20

WORKER_COUNTS = [
    int(w)
    for w in os.environ.get("REPRO_QUERY_WORKERS", "2,3").split(",")
]

INDEX_MAKERS = {
    "CTree": lambda disk: CoconutTree(disk, MEMORY, config=CONFIG, leaf_size=32),
    "CTreeFull": lambda disk: CoconutTree(
        disk, MEMORY, config=CONFIG, leaf_size=32, materialized=True
    ),
    "CTrie": lambda disk: CoconutTrie(disk, MEMORY, config=CONFIG, leaf_size=32),
    "CTrieFull": lambda disk: CoconutTrie(
        disk, MEMORY, config=CONFIG, leaf_size=32, materialized=True
    ),
    "LSM": lambda disk: CoconutLSM(disk, MEMORY, config=CONFIG),
    "Serial": lambda disk: SerialScan(disk, MEMORY),
}


@pytest.fixture(scope="module")
def workload():
    data = make_dataset("randomwalk", N_SERIES, length=48, seed=11)
    queries = query_workload("randomwalk", N_QUERIES, length=48, seed=13)
    disk = SimulatedDisk(page_size=2048)
    raw = RawSeriesFile.create(disk, data)
    return disk, raw, queries


def _built(name, workload):
    disk, raw, _ = workload
    index = INDEX_MAKERS[name](disk)
    index.build(raw)
    return index


# ----------------------------------------------------------------------
# Answer equivalence: parallel == serial batched, any workers/pool kind
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", sorted(INDEX_MAKERS))
@pytest.mark.parametrize("k", [1, 4])
def test_parallel_answers_bit_identical_for_any_workers(name, workload, k):
    _, _, queries = workload
    index = _built(name, workload)
    batch = QueryBatch(queries=queries, k=k)
    serial = index.query_batch(batch)
    for workers in WORKER_COUNTS + [N_SERIES + 7]:
        for pool_kind in ("thread", "serial"):
            got = index.query_batch(
                batch, query_workers=workers, query_pool_kind=pool_kind
            )
            assert got.knn_ids == serial.knn_ids, (name, k, workers, pool_kind)
            assert got.knn_distances == serial.knn_distances, (
                name, k, workers, pool_kind,
            )
            assert [r.answer_idx for r in got.results] == [
                r.answer_idx for r in serial.results
            ]


@pytest.mark.parametrize("name", ["CTree", "Serial"])
def test_parallel_answers_with_process_and_auto_pools(name, workload):
    """The lower-bound scan also parallelizes on process pools."""
    _, _, queries = workload
    index = _built(name, workload)
    batch = QueryBatch(queries=queries, k=2)
    serial = index.query_batch(batch)
    for pool_kind in ("process", "auto"):
        got = index.query_batch(
            batch, query_workers=2, query_pool_kind=pool_kind
        )
        assert got.knn_ids == serial.knn_ids, pool_kind
        assert got.knn_distances == serial.knn_distances, pool_kind


def test_parallel_answers_survive_duplicate_series(workload):
    """Exact ties: duplicated records keep answers worker-invariant."""
    disk = SimulatedDisk(page_size=2048)
    data = make_dataset("randomwalk", 200, length=48, seed=3)
    data = np.concatenate([data, data[:60], data[:20]])  # heavy duplicates
    raw = RawSeriesFile.create(disk, data)
    queries = np.concatenate([data[:2], query_workload("randomwalk", 2, length=48, seed=5)])
    for name in ("Serial", "CTree"):
        index = INDEX_MAKERS[name](disk)
        index.build(raw)
        batch = QueryBatch(queries=queries, k=5)
        serial = index.query_batch(batch)
        for workers in WORKER_COUNTS:
            got = index.query_batch(batch, query_workers=workers)
            assert got.knn_ids == serial.knn_ids, (name, workers)
            assert got.knn_distances == serial.knn_distances, (name, workers)


# ----------------------------------------------------------------------
# I/O determinism: pooled stats == serial replay of the same plans
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", sorted(INDEX_MAKERS))
def test_parallel_query_stats_match_serial_replay(name, workload):
    disk, _, queries = workload
    index = _built(name, workload)
    batch = QueryBatch(queries=queries, k=3)
    # The contract quantifies over identical starting states: warm the
    # summary cache (its one-off load is charged to whichever batch
    # runs first) and park the head before each run so the first
    # access of both runs classifies from the same position.
    index.query_batch(batch)
    # With bound sharing on, pooled I/O depends on publish interleaving
    # (answers do not) — the stats pin is quantified over sharing off.
    for workers in WORKER_COUNTS:
        disk.park_head()
        replay = index.query_batch(
            batch, query_workers=workers, query_pool_kind="serial",
            bound_sharing="off",
        )
        disk.park_head()
        pooled = index.query_batch(
            batch, query_workers=workers, query_pool_kind="thread",
            bound_sharing="off",
        )
        assert pooled.io == replay.io, (name, workers)
        assert pooled.simulated_io_ms == replay.simulated_io_ms


def test_parallel_query_leaves_parent_disk_consistent(workload):
    """After a parallel batch the parent device accepts ordinary I/O."""
    disk, _, queries = workload
    index = _built("CTree", workload)
    index.query_batch(QueryBatch(queries=queries, k=1), query_workers=2)
    assert not disk.sharded
    page = disk.allocate()
    disk.write_page(page, b"still-writable")
    assert disk.read_page(page)[:14] == b"still-writable"


def test_parallel_query_workers_one_is_the_serial_engine(workload):
    """query_workers=1 must route to the serial batched code path."""
    disk, _, queries = workload
    index = _built("CTree", workload)
    batch = QueryBatch(queries=queries, k=2)
    index.query_batch(batch)  # summary-load warmup
    disk.park_head()
    a = index.query_batch(batch)
    disk.park_head()
    b = index.query_batch(batch, query_workers=1)
    assert a.knn_ids == b.knn_ids
    assert a.io == b.io  # same plan, not just same answers


# ----------------------------------------------------------------------
# Satellite: MAX_MINDIST_CELLS sub-batch splitting
# ----------------------------------------------------------------------
@pytest.mark.parametrize("n_queries", [3, 5, 7])  # odd sizes split unevenly
def test_split_batches_pin_to_unsplit_answers(workload, monkeypatch, n_queries):
    from repro.parallel import batch as batch_module

    _, _, _ = workload
    queries = query_workload("randomwalk", n_queries, length=48, seed=29)
    index = _built("CTree", workload)
    batch = QueryBatch(queries=queries, k=3)
    whole = index.query_batch(batch)
    # Force every recursion level to split: cap just above one query row.
    monkeypatch.setattr(batch_module, "MAX_MINDIST_CELLS", N_SERIES + 1)
    split = index.query_batch(batch)
    assert split.knn_ids == whole.knn_ids
    assert split.knn_distances == whole.knn_distances
    # The parallel engine applies the same cap to its per-worker slices.
    parallel_split = index.query_batch(batch, query_workers=2)
    assert parallel_split.knn_ids == whole.knn_ids
    assert parallel_split.knn_distances == whole.knn_distances


def test_split_batches_route_seeds_with_their_queries(monkeypatch):
    """Seeds must follow their query through the recursion halves."""
    from repro.parallel import batch as batch_module
    from repro.parallel.batch import batched_exact_knn

    disk = SimulatedDisk(page_size=2048)
    data = make_dataset("randomwalk", 300, length=48, seed=17)
    raw = RawSeriesFile.create(disk, data)
    index = CoconutTree(disk, MEMORY, config=CONFIG, leaf_size=32)
    index.build(raw)
    queries = query_workload("randomwalk", 5, length=48, seed=19)
    words, fetch = index._prepare_sims()
    # Distinct, asymmetric seeds per query: if the split mis-routed
    # them, some query would start from the wrong bound and visit (or
    # prune) differently enough to change its heap.
    seeds = [
        [(float(i) * 0.25 + 0.5, i * 3)] for i in range(len(queries))
    ]
    whole = batched_exact_knn(queries, 2, words, index.config, fetch, seeds)
    monkeypatch.setattr(batch_module, "MAX_MINDIST_CELLS", 300 + 1)
    split = batched_exact_knn(queries, 2, words, index.config, fetch, seeds)
    assert [o.answer_ids for o in split] == [o.answer_ids for o in whole]
    assert [o.distances for o in split] == [o.distances for o in whole]


def test_split_preserves_seed_identity_in_answers(workload, monkeypatch):
    """A seeded id that belongs in the top-k survives the split path."""
    from repro.parallel import batch as batch_module
    from repro.parallel.batch import batched_exact_knn

    _, raw, _ = workload
    index = _built("CTree", workload)
    queries = np.asarray(
        [raw.get(7), raw.get(123), raw.get(256)], dtype=np.float64
    )
    words, fetch = index._prepare_sims()
    seeds = [[(0.0, 7)], [(0.0, 123)], [(0.0, 256)]]
    monkeypatch.setattr(batch_module, "MAX_MINDIST_CELLS", N_SERIES + 1)
    outcomes = batched_exact_knn(queries, 1, words, index.config, fetch, seeds)
    assert [o.answer_ids[0] for o in outcomes] == [7, 123, 256]
    assert [o.distances[0] for o in outcomes] == [0.0, 0.0, 0.0]


# ----------------------------------------------------------------------
# Satellite: choose_pool_kind threshold
# ----------------------------------------------------------------------
def test_choose_pool_kind_threshold_both_sides():
    from repro.parallel import (
        AUTO_POOL_THREAD_BYTES,
        choose_pool_kind,
        choose_pool_kind_for_bytes,
    )

    assert choose_pool_kind_for_bytes(AUTO_POOL_THREAD_BYTES) == "thread"
    assert choose_pool_kind_for_bytes(AUTO_POOL_THREAD_BYTES - 1) == "process"
    assert choose_pool_kind_for_bytes(0) == "process"
    # The parameter overrides the module default on both sides.
    assert choose_pool_kind_for_bytes(100, threshold_bytes=100) == "thread"
    assert choose_pool_kind_for_bytes(99, threshold_bytes=100) == "process"

    small = [(np.zeros(4, dtype="S8"), np.zeros(4, dtype=np.int64))]
    assert choose_pool_kind(small) == "process"
    assert choose_pool_kind(small, threshold_bytes=1) == "thread"
    big_keys = np.zeros(AUTO_POOL_THREAD_BYTES // 8, dtype="S8")
    big = [(big_keys, np.zeros(len(big_keys), dtype=np.int64))]
    assert choose_pool_kind(big) == "thread"


# ----------------------------------------------------------------------
# Engine internals
# ----------------------------------------------------------------------
def test_bounded_heap_is_offer_order_independent():
    """Retained set = k lex-smallest (distance, id), however offered."""
    import itertools

    pairs = [(5.0, 2), (5.0, 8), (3.0, 4), (5.0, 1), (7.0, 0), (3.0, 9)]
    reference = None
    for permutation in itertools.permutations(pairs):
        heap = _BoundedMaxHeap(3)
        for distance, identifier in permutation:
            heap.offer(distance, identifier)
        items = heap.sorted_items()
        if reference is None:
            reference = items
        assert items == reference
    assert reference == [(3.0, 4), (3.0, 9), (5.0, 1)]


def test_bounded_heap_merge_equals_union_offers():
    rng = np.random.default_rng(0)
    distances = rng.integers(0, 6, size=40).astype(float)
    ids = rng.permutation(40)
    pairs = list(zip(distances.tolist(), ids.tolist()))
    whole = _BoundedMaxHeap(5)
    for d, i in pairs:
        whole.offer(d, i)
    left, right = _BoundedMaxHeap(5), _BoundedMaxHeap(5)
    for d, i in pairs[:23]:
        left.offer(d, i)
    for d, i in pairs[23:]:
        right.offer(d, i)
    left.merge(right)
    assert left.sorted_items() == whole.sorted_items()


def test_partition_ranges_cover_and_order():
    from repro.parallel import partition_ranges

    for n, parts in [(0, 3), (1, 4), (10, 3), (7, 7), (5, 9)]:
        ranges = partition_ranges(n, parts)
        assert len(ranges) == parts
        flat = [i for lo, hi in ranges for i in range(lo, hi)]
        assert flat == list(range(n))


def test_parallel_lower_bound_scan_matches_serial(workload):
    from repro.parallel import parallel_lower_bound_scan
    from repro.summaries.paa import paa
    from repro.summaries.sax import mindist_paa_to_words

    _, _, queries = workload
    index = _built("CTree", workload)
    words, _ = index._prepare_sims()
    query_paa = paa(np.asarray(queries, dtype=np.float64), CONFIG.word_length)
    serial = np.stack(
        [mindist_paa_to_words(query_paa[i], words, CONFIG) for i in range(len(queries))]
    )
    thresholds = np.full(len(queries), np.inf)
    serial_union = np.nonzero((serial < thresholds[:, None]).any(axis=0))[0]
    for workers in [1, 2, 3, 5, len(words) + 3]:
        mindists, union = parallel_lower_bound_scan(
            query_paa, words, CONFIG, thresholds, workers, pool_kind="thread"
        )
        np.testing.assert_array_equal(mindists, serial)
        np.testing.assert_array_equal(union, serial_union)
        assert np.all(np.diff(union) > 0)  # ascending storage order


@pytest.mark.parametrize("name", ["CTree", "Serial"])
def test_parallel_query_rejects_unknown_pool_kind(name, workload):
    _, _, queries = workload
    index = _built(name, workload)
    with pytest.raises(ValueError):
        index.query_batch(
            QueryBatch(queries=queries, k=1),
            query_workers=2,
            query_pool_kind="fuzzy",
        )


def test_parallel_batch_on_approximate_mode_stays_equivalent(workload):
    """SerialScan serves approximate batches through the same pass."""
    _, _, queries = workload
    index = _built("Serial", workload)
    batch = QueryBatch(queries=queries, mode="approximate")
    serial = index.query_batch(batch)
    got = index.query_batch(batch, query_workers=2)
    assert [r.answer_idx for r in got.results] == [
        r.answer_idx for r in serial.results
    ]
