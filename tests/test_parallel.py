"""Tests for the parallel build pipeline (repro.parallel.summarize).

The load-bearing property: the chunked multi-worker pipeline is
*invisible* in the output.  For any chunk size, worker count and pool
kind — including degenerate shapes like n < workers and empty input —
keys are byte-identical to the serial path, the merged sorted order is
identical, and a parallel bulk-load produces a bit-identical leaf
level (same keys, same leaf boundaries, same payloads).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    CoconutTree,
    ParallelSummarizer,
    RawSeriesFile,
    SimulatedDisk,
    invsax_keys,
    parallel_invsax_keys,
    random_walk,
)
from repro.core import CoconutTrie
from repro.parallel import summarize_presorted_runs
from repro.storage import ExternalSorter, sort_to_arrays
from repro.summaries import SAXConfig

CONFIG = SAXConfig(series_length=32, word_length=4, cardinality=16)
DATA = random_walk(600, length=32, seed=11)


# ---------------------------------------------------------- summarize
@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(min_value=0, max_value=200),
    chunk_size=st.integers(min_value=1, max_value=300),
    workers=st.integers(min_value=1, max_value=8),
    kind=st.sampled_from(["serial", "thread"]),
)
def test_property_parallel_keys_byte_identical(n, chunk_size, workers, kind):
    """Any chunking/worker count: keys byte-identical to the serial path."""
    data = DATA[:n]
    keys = parallel_invsax_keys(
        data, CONFIG, workers=workers, chunk_size=chunk_size, kind=kind
    )
    expected = (
        invsax_keys(data, CONFIG)
        if n
        else np.empty(0, dtype=CONFIG.key_dtype)
    )
    np.testing.assert_array_equal(keys, expected)
    assert keys.dtype == CONFIG.key_dtype


def test_parallel_keys_process_pool():
    """The default process-pool path agrees with the serial path."""
    keys = parallel_invsax_keys(
        DATA, CONFIG, workers=2, chunk_size=100, kind="process"
    )
    np.testing.assert_array_equal(keys, invsax_keys(DATA, CONFIG))


def test_fewer_series_than_workers():
    keys = parallel_invsax_keys(
        DATA[:3], CONFIG, workers=8, chunk_size=1, kind="thread"
    )
    np.testing.assert_array_equal(keys, invsax_keys(DATA[:3], CONFIG))


def test_empty_input():
    keys = parallel_invsax_keys(DATA[:0], CONFIG, workers=4, kind="thread")
    assert keys.shape == (0,)
    assert keys.dtype == CONFIG.key_dtype


def test_summarizer_rejects_bad_arguments():
    with pytest.raises(ValueError):
        ParallelSummarizer(CONFIG, kind="gpu")
    with pytest.raises(ValueError):
        ParallelSummarizer(CONFIG, chunk_size=-1)


def test_workers_zero_means_all_cores():
    pool = ParallelSummarizer(CONFIG, workers=0)
    assert pool.workers >= 1


# ------------------------------------------------------- sorted runs
@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(min_value=0, max_value=250),
    chunk_size=st.integers(min_value=1, max_value=300),
    memory_records=st.integers(min_value=2, max_value=512),
)
def test_property_presorted_runs_match_serial_sort(n, chunk_size, memory_records):
    """summarize runs + sort_runs == summarize + sort, record for record."""
    data = DATA[:n]
    disk_a = SimulatedDisk(page_size=512)
    raw_a = RawSeriesFile.create(disk_a, data) if n else None
    disk_b = SimulatedDisk(page_size=512)
    memory = 24 * memory_records

    serial_keys = invsax_keys(data, CONFIG)
    offsets = np.arange(n, dtype=np.int64)
    pay = np.zeros(n, dtype=np.dtype([("off", "<i8")]))
    pay["off"] = offsets
    want_keys, want_pay = sort_to_arrays(
        ExternalSorter(disk_b, memory), serial_keys, pay
    )

    if n:
        runs = summarize_presorted_runs(
            raw_a, CONFIG, materialized=False,
            workers=3, chunk_size=chunk_size, kind="thread",
        )
    else:
        runs = []
    sorter = ExternalSorter(SimulatedDisk(page_size=512), memory)
    got_parts = list(sorter.sort_runs(runs))
    if got_parts:
        got_keys = np.concatenate([k for k, _ in got_parts])
        got_pay = np.concatenate([p for _, p in got_parts])
        np.testing.assert_array_equal(got_keys, want_keys)
        np.testing.assert_array_equal(got_pay["off"], want_pay["off"])
    else:
        assert n == 0


# ------------------------------------------------- bit-identical load
@pytest.mark.parametrize("materialized", [False, True])
def test_parallel_bulk_load_bit_identical_leaves(materialized):
    """workers=4 produces the same leaf level as serial, byte for byte.

    This is the acceptance gate of the parallel pipeline: same keys,
    same leaf boundaries, same payload order, for both the secondary
    and the materialized variant.
    """

    def build(workers):
        disk = SimulatedDisk(page_size=2048)
        raw = RawSeriesFile.create(disk, DATA)
        index = CoconutTree(
            disk, memory_bytes=8 * 1024, config=CONFIG, leaf_size=40,
            materialized=materialized, workers=workers, chunk_series=128,
            pool_kind="thread",
        )
        index.build(raw)
        return index

    serial, parallel = build(1), build(4)
    assert len(serial._leaves) == len(parallel._leaves)
    for leaf_s, leaf_p in zip(serial._leaves, parallel._leaves):
        assert leaf_s.slot == leaf_p.slot
        assert leaf_s.count == leaf_p.count
        assert leaf_s.first_key == leaf_p.first_key
        records_s = serial._read_leaf_records(leaf_s)
        records_p = parallel._read_leaf_records(leaf_p)
        assert records_s.tobytes() == records_p.tobytes()


def test_parallel_trie_build_matches_serial():
    """CoconutTrie's parallel build yields the same leaves and answers."""

    def build(workers):
        disk = SimulatedDisk(page_size=2048)
        raw = RawSeriesFile.create(disk, DATA)
        index = CoconutTrie(
            disk, memory_bytes=8 * 1024, config=CONFIG, leaf_size=40,
            workers=workers, chunk_series=100, pool_kind="thread",
        )
        index.build(raw)
        return index

    serial, parallel = build(1), build(3)
    assert len(serial._leaves) == len(parallel._leaves)
    for leaf_s, leaf_p in zip(serial._leaves, parallel._leaves):
        assert (leaf_s.first_key, leaf_s.count) == (
            leaf_p.first_key,
            leaf_p.count,
        )
    query = random_walk(1, length=32, seed=77)[0]
    result_s = serial.exact_search(query)
    result_p = parallel.exact_search(query)
    assert result_s.answer_idx == result_p.answer_idx
    assert result_s.distance == pytest.approx(result_p.distance)


def test_parallel_build_empty_raw_file():
    disk = SimulatedDisk()
    raw = RawSeriesFile(disk, length=32)
    index = CoconutTree(
        disk, memory_bytes=4096, config=CONFIG, workers=4, pool_kind="thread"
    )
    report = index.build(raw)
    assert report.n_series == 0
    assert index.leaf_stats() == (0, 0.0)


# ------------------------------------------- batched approximate search
@pytest.mark.parametrize("cls", [CoconutTree, CoconutTrie])
@pytest.mark.parametrize("materialized", [False, True])
def test_batched_approximate_matches_per_query(cls, materialized):
    """Leaf-sharing approximate batches answer exactly like the loop.

    Same answer index, distance, visited counts per query — only the
    I/O shrinks, because each distinct leaf is read once per batch.
    """
    from repro.indexes import QueryBatch

    disk = SimulatedDisk(page_size=2048)
    raw = RawSeriesFile.create(disk, DATA)
    index = cls(
        disk, memory_bytes=8 * 1024, config=CONFIG, leaf_size=40,
        materialized=materialized,
    )
    index.build(raw)
    queries = random_walk(25, length=32, seed=3)
    per_query = [index.approximate_search(query) for query in queries]
    per_query_io = sum(result.io.total_ios for result in per_query)
    report = index.query_batch(QueryBatch(queries=queries, mode="approximate"))
    assert len(report) == len(queries)
    for result, batched in zip(per_query, report.results):
        assert result.answer_idx == batched.answer_idx
        assert result.distance == pytest.approx(batched.distance, abs=1e-12)
        assert result.visited_records == batched.visited_records
        assert result.visited_leaves == batched.visited_leaves
    assert report.io.total_ios <= per_query_io
    # With 25 queries over a handful of leaves, sharing must show up.
    assert report.io.total_ios < per_query_io


def test_batched_approximate_single_query_and_knn_ids():
    from repro.indexes import QueryBatch

    disk = SimulatedDisk(page_size=2048)
    raw = RawSeriesFile.create(disk, DATA)
    index = CoconutTree(disk, memory_bytes=8 * 1024, config=CONFIG, leaf_size=40)
    index.build(raw)
    query = random_walk(1, length=32, seed=9)
    report = index.query_batch(QueryBatch(queries=query, mode="approximate"))
    want = index.approximate_search(query[0])
    assert report.results[0].answer_idx == want.answer_idx
    assert report.knn_ids == [[want.answer_idx]]
    assert report.knn_distances[0][0] == pytest.approx(want.distance)
