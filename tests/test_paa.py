"""Tests for PAA summarization and its lower bound."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.series import euclidean, z_normalize
from repro.summaries import paa, paa_lower_bound, reconstruct, segment_boundaries


def test_segment_boundaries_even():
    np.testing.assert_array_equal(
        segment_boundaries(8, 4), [0, 2, 4, 6, 8]
    )


def test_segment_boundaries_uneven():
    bounds = segment_boundaries(10, 4)
    assert bounds[0] == 0 and bounds[-1] == 10
    sizes = np.diff(bounds)
    assert sizes.max() - sizes.min() <= 1


def test_segment_boundaries_validation():
    with pytest.raises(ValueError):
        segment_boundaries(4, 0)
    with pytest.raises(ValueError):
        segment_boundaries(2, 4)


def test_paa_known_values():
    series = np.array([1.0, 1.0, 3.0, 3.0, 5.0, 5.0, 7.0, 7.0])
    np.testing.assert_allclose(paa(series, 4)[0], [1.0, 3.0, 5.0, 7.0])


def test_paa_whole_series_is_mean():
    rng = np.random.default_rng(0)
    data = rng.standard_normal((5, 32))
    np.testing.assert_allclose(paa(data, 1).ravel(), data.mean(axis=1))


def test_paa_full_resolution_is_identity():
    rng = np.random.default_rng(1)
    data = rng.standard_normal((3, 16))
    np.testing.assert_allclose(paa(data, 16), data)


def test_paa_lower_bound_holds():
    rng = np.random.default_rng(2)
    data = z_normalize(rng.standard_normal((20, 64)))
    query = z_normalize(rng.standard_normal(64))
    q_paa = paa(query, 8)[0]
    c_paa = paa(data, 8)
    bounds = paa_lower_bound(q_paa, c_paa, 64)
    for i in range(20):
        assert bounds[i] <= euclidean(query, data[i]) + 1e-9


def test_reconstruct_step_function():
    values = np.array([[2.0, -1.0]])
    out = reconstruct(values, 6)
    np.testing.assert_array_equal(out[0], [2.0, 2.0, 2.0, -1.0, -1.0, -1.0])


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(0, 2**16),
    n_segments=st.sampled_from([2, 4, 8, 16]),
    length=st.sampled_from([32, 48, 64]),
)
def test_property_paa_lower_bound(seed, n_segments, length):
    """PAA distance never exceeds true ED, for any segmentation."""
    rng = np.random.default_rng(seed)
    a = rng.standard_normal(length)
    b = rng.standard_normal(length)
    bound = paa_lower_bound(
        paa(a, n_segments)[0], paa(b, n_segments), length
    )[0]
    assert bound <= euclidean(a, b) + 1e-9
