"""Tests for generic z-order keys over arbitrary summarizations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Quantizer,
    deinterleave_codes,
    interleave_codes,
    zorder_keys_for_features,
)
from repro.series import euclidean, random_walk
from repro.summaries import dft_features


def test_quantizer_uses_all_levels_on_uniform_data():
    rng = np.random.default_rng(0)
    features = rng.uniform(0, 1, size=(4000, 3))
    quantizer = Quantizer(bits=2).fit(features)
    codes = quantizer.encode(features)
    counts = np.bincount(codes.ravel(), minlength=4)
    # Quantile breakpoints equalize usage (like SAX breakpoints).
    assert counts.min() > 0.8 * counts.max()


def test_quantizer_encode_before_fit_fails():
    with pytest.raises(RuntimeError):
        Quantizer(bits=4).encode(np.zeros((2, 2)))


def test_quantizer_bits_validation():
    with pytest.raises(ValueError):
        Quantizer(bits=0)
    with pytest.raises(ValueError):
        Quantizer(bits=17)


def test_interleave_codes_roundtrip():
    rng = np.random.default_rng(1)
    for dims, bits in ((2, 4), (5, 3), (16, 8), (7, 1)):
        codes = rng.integers(0, 1 << bits, size=(50, dims)).astype(np.uint16)
        keys = interleave_codes(codes, bits)
        np.testing.assert_array_equal(
            deinterleave_codes(keys, dims, bits), codes
        )


def test_interleave_rejects_out_of_range():
    with pytest.raises(ValueError):
        interleave_codes(np.array([[4]]), bits=2)


def test_zorder_sorting_groups_similar_dft_features():
    """The paper's compatibility claim: DFT features become sortable."""
    data = random_walk(500, length=128, seed=2).astype(np.float64)
    features = dft_features(data, 4)
    keys, _ = zorder_keys_for_features(features, bits=6)
    order = np.argsort(keys, kind="stable")

    def mean_neighbor_distance(permutation):
        return np.mean(
            [
                euclidean(data[permutation[i]], data[permutation[i + 1]])
                for i in range(0, len(permutation) - 1, 3)
            ]
        )

    assert mean_neighbor_distance(order) < mean_neighbor_distance(
        np.arange(len(data))
    )


def test_quantizer_reuse_for_queries():
    """Queries must be encoded with the fitted (dataset) quantizer."""
    rng = np.random.default_rng(3)
    features = rng.standard_normal((300, 4))
    keys, quantizer = zorder_keys_for_features(features, bits=5)
    query = rng.standard_normal((1, 4))
    query_keys, _ = zorder_keys_for_features(query, quantizer=quantizer)
    assert query_keys.dtype == keys.dtype


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(0, 2**16),
    dims=st.integers(1, 12),
    bits=st.integers(1, 8),
)
def test_property_roundtrip_any_geometry(seed, dims, bits):
    rng = np.random.default_rng(seed)
    codes = rng.integers(0, 1 << bits, size=(20, dims)).astype(np.uint16)
    keys = interleave_codes(codes, bits)
    np.testing.assert_array_equal(deinterleave_codes(keys, dims, bits), codes)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 2**16))
def test_property_key_order_matches_morton_order(seed):
    """Byte-key order equals numeric Morton-code order."""
    rng = np.random.default_rng(seed)
    codes = rng.integers(0, 16, size=(30, 2)).astype(np.uint16)
    keys = interleave_codes(codes, 4)

    def morton(x, y):
        value = 0
        for i in range(4):
            value |= ((x >> (3 - i)) & 1) << (7 - 2 * i)
            value |= ((y >> (3 - i)) & 1) << (6 - 2 * i)
        return value

    numeric = np.array([morton(int(x), int(y)) for x, y in codes])
    byte_order = np.argsort(keys, kind="stable")
    numeric_order = np.argsort(numeric, kind="stable")
    np.testing.assert_array_equal(numeric[byte_order], numeric[numeric_order])
