"""Property-based tests on Coconut index invariants (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CoconutTree, CoconutTrie
from repro.series import euclidean_batch, random_walk
from repro.storage import RawSeriesFile, SimulatedDisk
from repro.summaries import SAXConfig

CONFIG = SAXConfig(series_length=32, word_length=4, cardinality=16)


def make_world(n, seed, leaf_size, materialized=False, trie=False,
               fill_factor=1.0):
    disk = SimulatedDisk(page_size=1024)
    data = random_walk(n, length=32, seed=seed)
    raw = RawSeriesFile.create(disk, data)
    if trie:
        index = CoconutTrie(
            disk, memory_bytes=1 << 20, config=CONFIG, leaf_size=leaf_size,
            materialized=materialized,
        )
    else:
        index = CoconutTree(
            disk, memory_bytes=1 << 20, config=CONFIG, leaf_size=leaf_size,
            materialized=materialized, fill_factor=fill_factor,
        )
    index.build(raw)
    return index, data


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(1, 120),
    seed=st.integers(0, 2**16),
    leaf_size=st.integers(2, 40),
    trie=st.booleans(),
)
def test_property_every_record_indexed_once(n, seed, leaf_size, trie):
    index, _ = make_world(n, seed, leaf_size, trie=trie)
    offsets = []
    for leaf in index._leaves:
        offsets.extend(int(o) for o in index._read_leaf_records(leaf)["off"])
    assert sorted(offsets) == list(range(n))


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(5, 100),
    seed=st.integers(0, 2**16),
    leaf_size=st.integers(4, 32),
)
def test_property_exact_search_equals_brute_force(n, seed, leaf_size):
    index, data = make_world(n, seed, leaf_size)
    query = random_walk(1, length=32, seed=seed + 1)[0]
    result = index.exact_search(query)
    true = euclidean_batch(query.astype(np.float64), data.astype(np.float64))
    assert result.distance == pytest.approx(float(true.min()), rel=1e-6)


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(10, 80),
    seed=st.integers(0, 2**16),
    batch=st.integers(1, 40),
)
def test_property_insert_batch_preserves_exactness(n, seed, batch):
    index, data = make_world(n, seed, leaf_size=8)
    extra = random_walk(batch, length=32, seed=seed + 7)
    index.insert_batch(extra)
    all_data = np.vstack([data, extra])
    query = random_walk(1, length=32, seed=seed + 13)[0]
    result = index.exact_search(query)
    true = euclidean_batch(
        query.astype(np.float64), all_data.astype(np.float64)
    )
    assert result.distance == pytest.approx(float(true.min()), rel=1e-6)


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(20, 120),
    seed=st.integers(0, 2**16),
    fill=st.sampled_from([0.5, 0.75, 1.0]),
)
def test_property_fill_factor_bounds_leaf_occupancy(n, seed, fill):
    index, _ = make_world(n, seed, leaf_size=16, fill_factor=fill)
    target = index.target_leaf_records
    for leaf in index._leaves[:-1]:  # the last leaf may be a remainder
        assert leaf.count == target


@settings(max_examples=20, deadline=None)
@given(n=st.integers(5, 100), seed=st.integers(0, 2**16))
def test_property_leaf_keys_globally_sorted(n, seed):
    index, _ = make_world(n, seed, leaf_size=8)
    previous = b""
    for leaf in index._leaves:
        records = index._read_leaf_records(leaf)
        keys = [
            bytes(k).ljust(CONFIG.key_bytes, b"\x00") for k in records["k"]
        ]
        assert keys == sorted(keys)
        if keys:
            assert previous <= keys[0]
            previous = keys[-1]


@settings(max_examples=15, deadline=None)
@given(
    n=st.integers(10, 80),
    seed=st.integers(0, 2**16),
    radius=st.integers(1, 6),
)
def test_property_wider_radius_never_hurts_quality(n, seed, radius):
    index, _ = make_world(n, seed, leaf_size=8)
    query = random_walk(1, length=32, seed=seed + 3)[0]
    narrow = index.approximate_search(query, radius_leaves=radius)
    wide = index.approximate_search(query, radius_leaves=radius + 3)
    assert wide.distance <= narrow.distance + 1e-9


@settings(max_examples=15, deadline=None)
@given(n=st.integers(5, 60), seed=st.integers(0, 2**16))
def test_property_trie_leaves_are_prefix_regions(n, seed):
    index, _ = make_world(n, seed, leaf_size=6, trie=True)
    for leaf in index._leaves:
        records = index._read_leaf_records(leaf)
        if leaf.prefix_bits == 0 or len(records) == 0:
            continue
        shift = CONFIG.key_bits - leaf.prefix_bits
        prefixes = {
            int.from_bytes(
                bytes(k).ljust(CONFIG.key_bytes, b"\x00"), "big"
            )
            >> shift
            for k in records["k"]
        }
        assert len(prefixes) == 1
