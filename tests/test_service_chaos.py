"""Chaos property tests for the online index service.

Seeded schedules interleave ingest, queries, crashes and restarts over
a fault-injecting journal device, then check the service's three
operational invariants (``docs/service.md``) against brute-force
oracles:

* **durability** — after the final recovery, the raw file holds
  exactly a prefix of the ingest stream, whole batches only, and every
  batch the service *acknowledged* is inside that prefix, byte-for-byte
  (an ack can never be lost, a faulted retry can never duplicate);
* **exactness** — every served exact ticket is bit-identical to a
  fault-free oracle index built over precisely the first
  ``snapshot_series`` rows — the watermark the ticket itself reports;
  every served approximate ticket names an in-watermark row at its
  true distance;
* **conservation** — ``submitted == served + shed + rejected`` once
  quiescent, with a reason on every shed and rejected request: nothing
  is ever silently dropped.

The threaded variant runs the same checks with the server thread's
batch-window loop serving while a feeder thread ingests concurrently —
snapshots taken under the ingest lock mean every reported watermark is
a batch boundary.
"""

import threading

import numpy as np
import pytest

from repro.core.lsm import CoconutLSM
from repro.service import (
    CoconutService,
    ServiceConfig,
    ServiceUnavailable,
)
from repro.storage import (
    FaultError,
    FaultPlan,
    FaultyDevice,
    SimulatedDisk,
)
from repro.storage.seriesfile import RawSeriesFile
from repro.summaries.sax import SAXConfig

LENGTH = 64
CONFIG = SAXConfig(series_length=LENGTH, word_length=8, cardinality=16)
MEM = 1 << 10
PAGE = 2048
BATCH_ROWS = 20
N_BATCHES = 10

_rng = np.random.default_rng(777)
BASE = _rng.standard_normal((120, LENGTH)).astype(np.float32)
STREAM = _rng.standard_normal((N_BATCHES * BATCH_ROWS, LENGTH)).astype(np.float32)
ALL_ROWS = np.vstack([BASE, STREAM])
QUERIES = _rng.standard_normal((5, LENGTH))

_oracles: "dict[int, CoconutLSM]" = {}


def oracle_at(watermark: int) -> CoconutLSM:
    """Fault-free index over exactly the first ``watermark`` rows."""
    if watermark not in _oracles:
        disk = SimulatedDisk(page_size=PAGE, store="arena")
        raw = RawSeriesFile(disk, LENGTH)
        raw.append_batch(ALL_ROWS[:watermark])
        ix = CoconutLSM(disk, MEM, CONFIG)
        ix.build(raw)
        _oracles[watermark] = ix
    return _oracles[watermark]


def verify_ticket(query, ticket):
    """One served ticket against the brute-force oracle at its watermark."""
    assert ticket.status == "served"
    watermark = ticket.snapshot_series
    assert watermark is not None and watermark >= len(BASE)
    assert (watermark - len(BASE)) % BATCH_ROWS == 0
    if ticket.mode == "exact":
        exact = oracle_at(watermark).exact_knn(query, ticket.k)
        assert list(ticket.knn_ids) == list(exact.answer_ids)
        assert ticket.knn_distances == list(exact.distances)
    else:
        (idx,) = ticket.knn_ids
        assert 0 <= idx < watermark
        true_dist = float(
            np.sqrt(np.sum((query - ALL_ROWS[idx].astype(np.float64)) ** 2))
        )
        assert np.isclose(ticket.knn_distances[0], true_dist)


def verify_durability(svc, acked):
    """The raw file is a whole-batch stream prefix containing every ack."""
    raw = svc.raw
    n = raw.n_series
    assert n >= len(BASE)
    assert (n - len(BASE)) % BATCH_ROWS == 0
    for first, n_rows in acked:
        assert first + n_rows <= n
    stored = raw.get_many(np.arange(n, dtype=np.int64))
    assert np.array_equal(stored, ALL_ROWS[:n])


def verify_conservation(svc, tickets):
    stats = svc.stats_snapshot()
    terminal = (
        stats["served"]
        + sum(stats["shed"].values())
        + sum(stats["rejected"].values())
    )
    assert stats["submitted"] == terminal
    assert stats["queue_depth"] == 0
    for _, ticket in tickets:
        assert ticket.status in ("served", "shed")
        if ticket.status == "shed":
            assert ticket.shed_reason is not None


def fresh_service(config=None):
    disk = SimulatedDisk(page_size=PAGE, store="arena")
    raw = RawSeriesFile(disk, LENGTH)
    raw.append_batch(BASE)
    dev = FaultyDevice(disk, None)
    svc = CoconutService(
        disk, raw, MEM, sax_config=CONFIG, config=config, device=dev
    )
    svc.bootstrap()
    return dev, svc


# ----------------------------------------------------------------------
# Inline seeded chaos schedules
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(8))
def test_chaos_schedule_preserves_acks_and_answers(seed):
    rng = np.random.default_rng(seed)
    dev, svc = fresh_service(ServiceConfig(query_workers=1))
    # Arm faults only after bootstrap; raw appends hit the bare disk,
    # so the plan fires on WAL, flush and compaction traffic.
    dev.plan = FaultPlan(
        seed=seed,
        p_transient_write=0.04,
        p_transient_read=0.02,
        p_torn_write=0.02,
        p_crash_write=0.02,
        max_faults=8,
    )
    acked: "list[tuple[int, int]]" = []
    tickets: "list[tuple[np.ndarray, object]]" = []
    next_batch = 0
    for _ in range(60):
        op = rng.random()
        if op < 0.40 and next_batch < N_BATCHES:
            lo = next_batch * BATCH_ROWS
            try:
                # The client's stream offset makes the retry loop
                # exactly-once: a batch whose ack a crash ate (durable,
                # never heard) deduplicates instead of appending twice.
                receipt = svc.ingest(
                    STREAM[lo : lo + BATCH_ROWS],
                    expected_first=len(BASE) + lo,
                )
            except ServiceUnavailable:
                continue  # crashed or retries exhausted; retried later
            assert receipt.first_index == len(BASE) + lo
            acked.append((receipt.first_index, receipt.n_rows))
            next_batch += 1
        elif op < 0.75:
            q = QUERIES[rng.integers(len(QUERIES))]
            if rng.random() < 0.7:
                ticket = svc.submit(q, mode="exact", k=3)
            else:
                ticket = svc.submit(q, mode="approximate")
            tickets.append((q, ticket))
        elif op < 0.85:
            svc.serve_pending()
        elif op < 0.93 and svc.state == "crashed":
            try:
                svc.restart()
            except FaultError:
                pass  # recovery itself faulted; still crashed, try later
        elif svc.state == "ready" and rng.random() < 0.5:
            dev.halt()  # pull the plug at an arbitrary quiescent point
    # Quiesce: faults off, recover if needed, drain the queue.
    dev.plan = None
    dev.reopen()
    if svc.state == "crashed":
        svc.restart()
    svc.serve_pending()
    verify_conservation(svc, tickets)
    verify_durability(svc, acked)
    for q, ticket in tickets:
        if ticket.status == "served":
            verify_ticket(q, ticket)
    # The service is fully functional after the storm: finish the
    # stream and answer once more against the complete oracle.
    while next_batch < N_BATCHES:
        lo = next_batch * BATCH_ROWS
        receipt = svc.ingest(
            STREAM[lo : lo + BATCH_ROWS], expected_first=len(BASE) + lo
        )
        acked.append((receipt.first_index, receipt.n_rows))
        next_batch += 1
    assert svc.raw.n_series == len(ALL_ROWS)
    final = svc.query(QUERIES[0], mode="exact", k=3)
    verify_ticket(QUERIES[0], final)


# ----------------------------------------------------------------------
# Silent bit flips: the integrity plane keeps every answer exact
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(8))
def test_chaos_with_bitflips_never_serves_corrupt(seed):
    """Seeded schedules fire *silent* write flips on every page store
    the service touches — raw rides the faulty device here, so flips
    land on the source of truth itself.  With verified reads + the
    background scrubber armed, every served answer must still match
    the fault-free oracle: corrupt pages raise and heal (counted in
    the scrub stats), they are never served.
    """
    rng = np.random.default_rng(seed)
    disk = SimulatedDisk(page_size=PAGE, store="arena")
    dev = FaultyDevice(disk, None)
    raw = RawSeriesFile(dev, LENGTH)  # raw appends go through the flips
    raw.append_batch(BASE)
    svc = CoconutService(
        disk,
        raw,
        MEM,
        sax_config=CONFIG,
        config=ServiceConfig(
            query_workers=1,
            verified_reads=True,
            scrub_every_batches=2,
            scrub_pages_per_step=64,
        ),
        device=dev,
    )
    svc.bootstrap()
    dev.plan = FaultPlan(seed=seed, p_bitflip_write=0.04, max_faults=6)
    tickets: "list[tuple[np.ndarray, object]]" = []
    acked: "list[tuple[int, int]]" = []
    next_batch = 0
    for _ in range(60):
        op = rng.random()
        if op < 0.40 and next_batch < N_BATCHES:
            lo = next_batch * BATCH_ROWS
            try:
                receipt = svc.ingest(
                    STREAM[lo : lo + BATCH_ROWS],
                    expected_first=len(BASE) + lo,
                )
            except ServiceUnavailable:
                continue
            acked.append((receipt.first_index, receipt.n_rows))
            next_batch += 1
        elif op < 0.80:
            q = QUERIES[rng.integers(len(QUERIES))]
            mode = "exact" if rng.random() < 0.7 else "approximate"
            k = 3 if mode == "exact" else 1
            tickets.append((q, svc.submit(q, mode=mode, k=k)))
        elif op < 0.92:
            svc.serve_pending()
        elif svc.state == "crashed":
            # A flip on a WAL page failed the read-back ack barrier and
            # latched the crash; recovery scrub-heals the raw file.
            try:
                svc.restart()
            except FaultError:
                pass
    # Quiesce: flips off, recover if needed, repair everything, drain.
    dev.plan = None
    dev.reopen()
    if svc.state == "crashed":
        svc.restart()
    svc.scrub_now()
    svc.serve_pending()
    verify_conservation(svc, tickets)
    verify_durability(svc, acked)
    # The headline property: nothing served was ever corrupt.
    for q, ticket in tickets:
        if ticket.status == "served":
            verify_ticket(q, ticket)
    stats = svc.stats_snapshot()
    scrub = stats["scrub"]
    assert scrub["sweeps"] >= 1
    assert scrub["unrepairable_pages"] == 0  # single-bit flips all heal
    assert scrub["last_sweep_watermark"] == svc.raw.n_series
    assert svc._scrubber.unrepairable == set()
    # Post-storm the service is fully healthy: a verified final answer.
    final = svc.query(QUERIES[0], mode="exact", k=3)
    verify_ticket(QUERIES[0], final)


# ----------------------------------------------------------------------
# Threaded: server loop + concurrent feeder
# ----------------------------------------------------------------------
def test_threaded_ingest_and_serving_stay_exact():
    dev, svc = fresh_service(
        ServiceConfig(
            query_workers=2,
            batch_window_s=0.005,
            max_batch_queries=8,
            queue_capacity=128,
        )
    )
    dev.plan = FaultPlan(seed=3, p_transient_write=0.01, max_faults=4)
    svc.start()
    feeder_error: "list[Exception]" = []

    def feed():
        try:
            for i in range(N_BATCHES):
                lo = i * BATCH_ROWS
                while True:
                    try:
                        svc.ingest(
                            STREAM[lo : lo + BATCH_ROWS],
                            expected_first=len(BASE) + lo,
                        )
                        break
                    except ServiceUnavailable as err:
                        if err.reason == "ingest_retries_exhausted":
                            continue
                        raise
        except Exception as err:  # pragma: no cover - surfaced below
            feeder_error.append(err)

    feeder = threading.Thread(target=feed)
    feeder.start()
    tickets = []
    rng = np.random.default_rng(11)
    for i in range(40):
        q = QUERIES[rng.integers(len(QUERIES))]
        if rng.random() < 0.7:
            ticket = svc.submit(q, mode="exact", k=3)
        else:
            ticket = svc.submit(q, mode="approximate")
        tickets.append((q, ticket))
    feeder.join()
    assert not feeder_error, feeder_error
    for _, ticket in tickets:
        assert ticket.wait(timeout=30.0)
    svc.stop(drain=True)
    verify_conservation(svc, tickets)
    verify_durability(svc, [(len(BASE), N_BATCHES * BATCH_ROWS)])
    served = 0
    for q, ticket in tickets:
        if ticket.status == "served":
            verify_ticket(q, ticket)
            served += 1
    assert served == len(tickets)  # no deadlines were set: all served
