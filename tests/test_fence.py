"""Fence (zone-map) cut planning for spilled runs.

The load-bearing property: :func:`repro.storage.fence.
fenced_cut_positions` — planned from two keys per page plus
boundary-page reads — returns **identical** record positions to
:func:`repro.parallel.merge.run_cut_positions` on the run's full
in-memory key mirror, for any sorted run, record geometry and splitter
set.  On top of that, the fence-planned sharded sort cascade produces
the bit-identical merged stream the mirror-planned and fully-serial
sorts produce.
"""

import numpy as np
import pytest

from repro.parallel.merge import run_cut_positions, sample_splitters
from repro.storage import (
    ExternalSorter,
    PagedFile,
    SimulatedDisk,
    build_run_fence,
    fenced_cut_positions,
    page_record_starts,
    read_run_fence,
    write_run_fence,
)


def _spill(disk, keys, payload_cols, rec_dtype):
    """Write one sorted run file the way the sorter spills it."""
    block = np.empty(len(keys), dtype=rec_dtype)
    block["k"] = keys
    block["v"] = payload_cols
    file = PagedFile(disk, name="run")
    file.write_stream(block.tobytes())
    return file


def _sorted_keys(rng, n, width=8):
    raw = rng.integers(0, 256, size=(n, width), dtype=np.uint8)
    return np.sort(raw.view(f"S{width}").ravel())


# ------------------------------------------------- geometry + format
def test_page_record_starts_owns_every_record_once():
    starts = page_record_starts(n_records=10, itemsize=48, page_size=64)
    assert starts[0] == 0 and starts[-1] == 10
    assert np.all(np.diff(starts) >= 0)
    # 48-byte records on 64-byte pages straddle constantly; the ranges
    # still tile [0, 10) exactly.
    assert sum(int(b - a) for a, b in zip(starts, starts[1:])) == 10


def test_fence_footer_round_trips():
    rng = np.random.default_rng(0)
    rec_dtype = np.dtype([("k", "S8"), ("v", np.int64)])
    disk = SimulatedDisk(page_size=128)
    keys = _sorted_keys(rng, 300)
    file = _spill(disk, keys, np.arange(300), rec_dtype)
    record_pages = file.n_pages
    fence = write_run_fence(file, keys, rec_dtype.itemsize)
    assert file.n_pages > record_pages  # footer appended after records
    back = read_run_fence(file, len(keys), rec_dtype)
    np.testing.assert_array_equal(back.lo, fence.lo)
    np.testing.assert_array_equal(back.hi, fence.hi)
    assert back.n_record_pages == record_pages
    # The fence brackets the mirror per page.
    starts = fence.starts
    for i in range(fence.n_record_pages):
        if starts[i + 1] > starts[i]:
            assert fence.lo[i] == keys[starts[i]]
            assert fence.hi[i] == keys[starts[i + 1] - 1]


# ------------------------------------------------- cut equivalence
@pytest.mark.parametrize("page_size", [64, 128, 1024])
@pytest.mark.parametrize("payload_width", [1, 5])
def test_fenced_cuts_identical_to_mirror_cuts(page_size, payload_width):
    """The satellite's pin: fence cuts == mirror cuts, same splitters."""
    rec_dtype = np.dtype([("k", "S8"), ("v", np.float32, (payload_width,))])
    for seed in range(6):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(5, 800))
        # Heavy duplication stresses the side="left" tie rule.
        keys = _sorted_keys(rng, n, width=8)
        dup = rng.integers(0, n, size=n // 3)
        keys[dup] = keys[np.minimum(dup + 1, n - 1)]
        keys = np.sort(keys)
        disk = SimulatedDisk(page_size=page_size)
        file = _spill(
            disk, keys, rng.standard_normal((n, payload_width)), rec_dtype
        )
        fence = write_run_fence(file, keys, rec_dtype.itemsize)
        # Splitters both inside and outside the key range, including
        # exact key hits (the tie boundary).
        picks = keys[rng.integers(0, n, size=4)]
        outside = np.array([b"\x00" * 8, b"\xff" * 8], dtype="S8")
        splitters = np.unique(np.concatenate([picks, outside]))
        got = fenced_cut_positions(file, fence, splitters, rec_dtype)
        want = run_cut_positions(keys, splitters)
        np.testing.assert_array_equal(got, want), (seed, page_size)
        # And with sampled splitters (what the cascade actually uses).
        sampled = sample_splitters([fence.hi], 4)
        np.testing.assert_array_equal(
            fenced_cut_positions(file, fence, sampled, rec_dtype),
            run_cut_positions(keys, sampled),
        )


def test_fenced_cuts_charge_planning_io():
    rng = np.random.default_rng(3)
    rec_dtype = np.dtype([("k", "S8"), ("v", np.int64)])
    disk = SimulatedDisk(page_size=256)
    keys = _sorted_keys(rng, 1000)
    file = _spill(disk, keys, np.arange(1000), rec_dtype)
    fence = write_run_fence(file, keys, rec_dtype.itemsize)
    splitters = sample_splitters([fence.hi], 4)
    disk.reset_stats()
    fenced_cut_positions(file, fence, splitters, rec_dtype)
    reads = disk.stats.sequential_reads + disk.stats.random_reads
    assert 0 < reads <= 2 * len(splitters)  # boundary pages only


# ------------------------------------------------- end-to-end cascade
def test_fence_planned_sort_matches_mirror_and_serial():
    """Same merged stream from all three planners, cascade included."""
    rng = np.random.default_rng(17)
    n = 4000
    raw = rng.integers(0, 256, size=(n, 8), dtype=np.uint8)
    keys = raw.view("S8").ravel()
    payloads = rng.standard_normal((n, 4)).astype(np.float32)
    outputs = {}
    for label, kwargs in {
        "serial": dict(merge_workers=1),
        "mirror": dict(merge_workers=3, cut_planning="mirror"),
        "fence": dict(merge_workers=3, cut_planning="fence"),
    }.items():
        disk = SimulatedDisk(page_size=1024)
        sorter = ExternalSorter(disk, 4096 * 4, pool_kind="serial", **kwargs)
        parts = list(sorter.sort(keys, payloads))
        assert sorter.report.spilled
        outputs[label] = (
            np.concatenate([k for k, _ in parts]),
            np.concatenate([p for _, p in parts]),
        )
    for label in ("mirror", "fence"):
        np.testing.assert_array_equal(outputs[label][0], outputs["serial"][0])
        np.testing.assert_array_equal(outputs[label][1], outputs["serial"][1])


def test_fence_mode_drops_key_mirrors_between_passes():
    """Resident planning state is the zone map, not the key column."""
    rng = np.random.default_rng(23)
    n = 6000
    keys = rng.integers(0, 256, size=(n, 8), dtype=np.uint8).view("S8").ravel()
    payloads = np.arange(n, dtype=np.int64)
    disk = SimulatedDisk(page_size=512)
    # Tiny memory forces a cascade (fan-in 2), so intermediate merged
    # runs exist — in fence mode none may carry a key mirror.
    sorter = ExternalSorter(
        disk, 2048, merge_workers=2, pool_kind="serial", cut_planning="fence"
    )
    seen = {"runs": 0}
    original = sorter._plan_cuts

    def spy(group, rec_dtype):
        for run in group:
            assert run.keys is None
            assert run.fence is not None
        seen["runs"] += len(group)
        return original(group, rec_dtype)

    sorter._plan_cuts = spy
    parts = list(sorter.sort(keys, payloads))
    assert sorter.report.merge_passes > 1  # the cascade really ran
    assert seen["runs"] > 0
    merged = np.concatenate([k for k, _ in parts])
    np.testing.assert_array_equal(merged, np.sort(keys, kind="stable"))


def test_cut_planning_validation():
    disk = SimulatedDisk(page_size=512)
    with pytest.raises(ValueError, match="cut_planning"):
        ExternalSorter(disk, 4096, cut_planning="psychic")
    with pytest.raises(ValueError):
        build_run_fence(np.empty(0, dtype="S8"), 16, 512)
