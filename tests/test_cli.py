"""Tests for the command-line experiment runner."""

import pytest

from repro.bench.cli import build_parser, main


def test_parser_requires_a_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_build_command_prints_table(capsys):
    code = main(["build", "--group", "secondary", "--n", "300",
                 "--length", "64", "--memory", "1.0"])
    out = capsys.readouterr().out
    assert code == 0
    assert "construction sweep" in out
    assert "CTree" in out and "ADS+" in out


def test_query_command_exact(capsys):
    code = main(["query", "--n", "300", "--length", "64",
                 "--queries", "2", "--indexes", "CTree"])
    out = capsys.readouterr().out
    assert code == 0
    assert "exact query costs" in out
    assert "avg_pruned" in out


def test_space_command(capsys):
    code = main(["space", "--n", "300", "--length", "64"])
    out = capsys.readouterr().out
    assert code == 0
    assert "leaf_fill" in out


def test_updates_command(capsys):
    code = main(["updates", "--n", "400", "--length", "64",
                 "--batches", "100", "--queries", "1"])
    out = capsys.readouterr().out
    assert code == 0
    assert "mixed insert/query workload" in out


def test_dataset_choice_validated():
    with pytest.raises(SystemExit):
        main(["build", "--dataset", "nonsense"])


def test_build_command_accepts_workers(capsys):
    code = main(["build", "--group", "secondary", "--n", "300",
                 "--length", "64", "--memory", "1.0", "--workers", "2"])
    assert code == 0
    assert "construction sweep" in capsys.readouterr().out


def test_query_batch_command(capsys):
    code = main(["query", "--n", "300", "--length", "64", "--queries", "2",
                 "--indexes", "CTree", "--batch", "--k", "2"])
    out = capsys.readouterr().out
    assert code == 0
    assert "batched vs per-query" in out
    assert "answers_agree" in out


def test_parallel_command(capsys):
    code = main(["parallel", "--n", "400", "--length", "64",
                 "--workers", "1", "2"])
    out = capsys.readouterr().out
    assert code == 0
    assert "parallel build scaling" in out
    assert "speedup" in out


def test_merge_command(capsys):
    code = main(["merge", "--records", "4000", "--runs", "4",
                 "--workers", "2"])
    out = capsys.readouterr().out
    assert code == 0
    assert "k-way merge engines" in out
    assert "blockwise" in out and "parallel[2w]" in out
    assert "io_identical" in out


def test_arena_command(capsys):
    code = main(["arena", "--n", "2000", "--records", "6000",
                 "--runs", "4", "--workers", "1", "2"])
    out = capsys.readouterr().out
    assert code == 0
    assert "arena vs dict page store" in out
    assert "scan" in out and "fetch" in out and "merge[2w]" in out
    assert "io_identical" in out


def test_query_batch_knn_works_with_default_indexes(capsys):
    """Regression: --batch --k 2 crashed on ADS+ (no k-NN override)."""
    code = main(["query", "--n", "300", "--length", "64", "--queries", "2",
                 "--batch", "--k", "2"])
    out = capsys.readouterr().out
    assert code == 0
    assert "ADS+" in out and "True" in out


def test_query_batch_rejects_approximate_mode():
    """Regression: --mode was silently ignored when --batch was given."""
    with pytest.raises(SystemExit):
        main(["query", "--n", "300", "--length", "64",
              "--batch", "--mode", "approximate"])


def test_k_without_batch_rejected():
    """Regression: --k was silently ignored unless --batch was given."""
    with pytest.raises(SystemExit):
        main(["query", "--n", "300", "--length", "64", "--k", "5"])
