"""Experiment harness: uniform sweeps over indexes, memory and data.

Every benchmark under ``benchmarks/`` is a thin wrapper around one of
the ``run_*`` functions here, each of which regenerates the rows or
series of one paper figure.  Costs are reported as:

* ``sim_io_s`` — simulated I/O seconds in the disk access model (the
  quantity the paper's analysis is stated in),
* ``wall_s`` — Python CPU time (reported for transparency; absolute
  values are not comparable to the paper's C implementation),
* ``total_s`` — their sum, the closest analogue of the paper's y-axes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..core.coconut_tree import CoconutTree
from ..core.coconut_trie import CoconutTrie
from ..indexes.ads import ADSIndex
from ..indexes.base import SeriesIndex
from ..indexes.dstree import DSTree
from ..indexes.isax2 import ISAX2Index
from ..indexes.rtree import RTreeIndex
from ..indexes.serial import SerialScan
from ..indexes.vertical import VerticalIndex
from ..storage.disk import SimulatedDisk
from ..storage.seriesfile import RawSeriesFile
from ..summaries.sax import SAXConfig
from .workloads import DatasetSpec

#: Page size used by all experiments (bytes).
PAGE_SIZE = 8192

#: Default leaf capacity (records); the paper used 2000 at full scale.
LEAF_SIZE = 100


def default_config(length: int) -> SAXConfig:
    """The summarization shape used by all benchmark experiments.

    The library default is the paper's 16 segments x 256 cardinality.
    Benchmarks run at ~10^4 series instead of the paper's ~10^8, so we
    scale the word length down to 8 segments: the iSAX root fans out on
    one bit per segment (2^w children), and keeping w = 16 at small N
    would give every series its own root child, exaggerating the
    sparse-leaf effect far beyond the paper's reported ~10% fill.
    """
    word_length = 8 if length >= 16 else 4
    return SAXConfig(
        series_length=length, word_length=word_length, cardinality=256
    )


IndexFactory = Callable[[SimulatedDisk, int, int], SeriesIndex]


def _factories() -> dict[str, IndexFactory]:
    def ctree(disk, memory, length):
        return CoconutTree(
            disk, memory, config=default_config(length), leaf_size=LEAF_SIZE
        )

    def ctree_full(disk, memory, length):
        return CoconutTree(
            disk,
            memory,
            config=default_config(length),
            leaf_size=LEAF_SIZE,
            materialized=True,
        )

    def ctrie(disk, memory, length):
        return CoconutTrie(
            disk, memory, config=default_config(length), leaf_size=LEAF_SIZE
        )

    def ctrie_full(disk, memory, length):
        return CoconutTrie(
            disk,
            memory,
            config=default_config(length),
            leaf_size=LEAF_SIZE,
            materialized=True,
        )

    def ads_plus(disk, memory, length):
        return ADSIndex(
            disk, memory, config=default_config(length), leaf_size=LEAF_SIZE
        )

    def ads_full(disk, memory, length):
        return ADSIndex(
            disk,
            memory,
            config=default_config(length),
            leaf_size=LEAF_SIZE,
            plus=False,
        )

    def isax2(disk, memory, length):
        return ISAX2Index(
            disk, memory, config=default_config(length), leaf_size=LEAF_SIZE
        )

    def rtree(disk, memory, length):
        return RTreeIndex(
            disk, memory, n_dimensions=8, leaf_size=LEAF_SIZE,
            materialized=True,
        )

    def rtree_plus(disk, memory, length):
        return RTreeIndex(
            disk, memory, n_dimensions=8, leaf_size=LEAF_SIZE,
            materialized=False,
        )

    def dstree(disk, memory, length):
        return DSTree(disk, memory, leaf_size=LEAF_SIZE)

    def vertical(disk, memory, length):
        return VerticalIndex(disk, memory)

    def serial(disk, memory, length):
        return SerialScan(disk, memory)

    return {
        "CTree": ctree,
        "CTreeFull": ctree_full,
        "CTrie": ctrie,
        "CTrieFull": ctrie_full,
        "ADS+": ads_plus,
        "ADSFull": ads_full,
        "iSAX2.0": isax2,
        "R-tree": rtree,
        "R-tree+": rtree_plus,
        "DSTree": dstree,
        "Vertical": vertical,
        "Serial": serial,
    }


INDEX_FACTORIES = _factories()

#: The two groups the paper's figures sweep (Fig. 8a vs 8b etc.).
MATERIALIZED_GROUP = ["CTreeFull", "CTrieFull", "ADSFull", "R-tree", "Vertical", "DSTree"]
SECONDARY_GROUP = ["CTree", "CTrie", "ADS+", "R-tree+"]


@dataclass
class Environment:
    """A fresh disk + raw file + index, isolated per experiment cell."""

    disk: SimulatedDisk
    raw: RawSeriesFile
    index: SeriesIndex


def make_environment(
    index_key: str, spec: DatasetSpec, memory_bytes: int, workers: int = 1
) -> Environment:
    """Generate the dataset, write the raw file, construct the index.

    ``workers > 1`` enables the parallel bulk-loading pipeline on
    indexes that support it (the Coconut family); other indexes ignore
    it and build serially.
    """
    disk = SimulatedDisk(page_size=PAGE_SIZE)
    data = spec.generate()
    raw = RawSeriesFile.create(disk, data)
    disk.reset_stats()  # ingest of the raw file is not index cost
    index = INDEX_FACTORIES[index_key](disk, memory_bytes, spec.length)
    if workers > 1 and hasattr(index, "workers"):
        index.workers = int(workers)
    return Environment(disk=disk, raw=raw, index=index)


def _build_row(index_key: str, memory_bytes: int, spec: DatasetSpec,
               report) -> dict:
    return {
        "index": index_key,
        "memory_frac": round(memory_bytes / spec.raw_bytes, 4),
        "n_series": spec.n_series,
        "length": spec.length,
        "sim_io_s": report.simulated_io_ms / 1000.0,
        "wall_s": report.wall_s,
        "total_s": report.total_cost_s,
        "index_MB": report.index_bytes / 1e6,
        "n_leaves": report.n_leaves,
        "leaf_fill": report.avg_leaf_fill,
        "rand_io": report.io.random_reads + report.io.random_writes,
        "seq_io": report.io.sequential_reads + report.io.sequential_writes,
    }


def run_build_sweep(
    index_keys: list[str],
    spec: DatasetSpec,
    memory_fractions: list[float],
    workers: int = 1,
) -> list[dict]:
    """Construction cost vs. memory budget (Figs. 8a/8b)."""
    rows = []
    for fraction in memory_fractions:
        memory = max(4096, int(spec.raw_bytes * fraction))
        for key in index_keys:
            env = make_environment(key, spec, memory, workers=workers)
            report = env.index.build(env.raw)
            rows.append(_build_row(key, memory, spec, report))
    return rows


def run_parallel_build_sweep(
    index_key: str,
    spec: DatasetSpec,
    workers_list: list[int],
    memory_fraction: float = 1.0,
) -> list[dict]:
    """Build wall-clock vs. worker count (bench_parallel_scaling).

    The first entry of ``workers_list`` should be 1 so every other row
    reports its speedup against the serial build of the same dataset.
    Simulated I/O is reported too: when the sort fits in memory it is
    identical across worker counts (parallelism only reorganizes CPU
    work); a spilled sort writes the same records as slightly different
    run files, so its I/O may differ marginally.
    """
    rows = []
    memory = max(4096, int(spec.raw_bytes * memory_fraction))
    serial_wall = None
    for workers in workers_list:
        env = make_environment(index_key, spec, memory, workers=workers)
        report = env.index.build(env.raw)
        if serial_wall is None or workers <= 1:
            serial_wall = report.wall_s
        rows.append(
            {
                "index": index_key,
                "workers": workers,
                "n_series": spec.n_series,
                "wall_s": report.wall_s,
                "sim_io_s": report.simulated_io_ms / 1000.0,
                "speedup": serial_wall / report.wall_s if report.wall_s else 1.0,
                "n_leaves": report.n_leaves,
            }
        )
    return rows


def make_presorted_runs(
    n_records: int,
    n_runs: int,
    seed: int = 7,
    key_bytes: int = 8,
    dup_alphabet: int = 0,
    payload_dims: int = 0,
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Contiguous presorted (keys, payload) runs of random byte keys.

    ``dup_alphabet > 0`` draws key bytes from that many values, making
    duplicate-heavy keys (the tie-breaking stress case for merge
    stability).  ``payload_dims > 0`` carries a float32 matrix payload
    of that many columns per record (the materialized-index regime)
    instead of int64 offsets.  Runs follow the ``sort_runs`` contract:
    contiguous input chunks, each stably presorted.
    """
    rng = np.random.default_rng(seed)
    high = min(dup_alphabet, 256) if dup_alphabet > 0 else 256
    raw = rng.integers(0, high, size=(n_records, key_bytes), dtype=np.uint8)
    keys = raw.view(f"S{key_bytes}").ravel()
    if payload_dims > 0:
        payloads = rng.standard_normal((n_records, payload_dims)).astype(
            np.float32
        )
    else:
        payloads = np.arange(n_records, dtype=np.int64)
    runs = []
    bounds = np.linspace(0, n_records, n_runs + 1).astype(int)
    for lo, hi in zip(bounds[:-1], bounds[1:]):
        chunk_keys, chunk_payloads = keys[lo:hi], payloads[lo:hi]
        order = np.argsort(chunk_keys, kind="stable")
        runs.append((chunk_keys[order], chunk_payloads[order]))
    return runs


def _drive_merge(
    runs: list[tuple[np.ndarray, np.ndarray]],
    memory_bytes: int,
    engine: str = "blockwise",
    merge_workers: int = 1,
    pool_kind: str = "process",
):
    """One timed ExternalSorter.sort_runs pass on a fresh disk."""
    import time

    from ..storage.external_sort import ExternalSorter

    disk = SimulatedDisk(page_size=PAGE_SIZE)
    sorter = ExternalSorter(
        disk,
        memory_bytes,
        merge_engine=engine,
        merge_workers=merge_workers,
        pool_kind=pool_kind,
    )
    t0 = time.perf_counter()
    parts = list(sorter.sort_runs(runs))
    wall = time.perf_counter() - t0
    keys = np.concatenate([k for k, _ in parts])
    payloads = np.concatenate([p for _, p in parts])
    shapes = [len(k) for k, _ in parts]
    return keys, payloads, shapes, disk.stats, sorter.report, wall


def run_merge_engine_sweep(
    record_counts: list[int],
    run_counts: list[int],
    workers_list: list[int] | None = None,
    seed: int = 7,
    dup_alphabet: int = 0,
    memory_fraction: float = 1 / 6,
    pool_kind: str = "thread",
) -> list[dict]:
    """Merge-engine comparison: heapq oracle vs blockwise vs parallel.

    For every (records, runs) cell the same presorted runs are merged
    by the per-record ``heapq`` reference and the vectorized
    ``blockwise`` engine on identical disks with a memory budget of
    ``memory_fraction`` of the data, raising on any violation of
    byte-identical output streams, chunk shapes, ``SortReport`` or
    ``DiskStats``.  Cells small enough to fit the 1 KiB budget floor
    stay resident (both "engines" then share the in-memory merge path
    and the speedup is meaningless) — the ``spilled`` column reports
    which regime a row measured.  Worker counts beyond 1 additionally
    time the in-memory range-partitioned parallel merge (generous
    budget, since workers apply to the resident merge phase) against
    its own serial baseline; its speedup depends on idle cores — on a
    single-core host it honestly reports ~1x (threads) or the pool
    transfer overhead (processes) — while its output equivalence holds
    everywhere.
    """
    rows = []
    workers_list = [w for w in (workers_list or []) if w > 1]
    for n_records in record_counts:
        for n_runs in run_counts:
            runs = make_presorted_runs(
                n_records, n_runs, seed=seed, dup_alphabet=dup_alphabet
            )
            record_bytes = 8 + 8
            memory = max(
                1024, int(n_records * record_bytes * memory_fraction)
            )
            hk, hp, hs, hio, hrep, ht = _drive_merge(runs, memory, "heapq")
            bk, bp, bs, bio, brep, bt = _drive_merge(runs, memory, "blockwise")
            identical = bool(
                np.array_equal(hk, bk)
                and np.array_equal(hp, bp)
                and hs == bs
                and hrep == brep
            )
            if not identical or hio != bio:
                raise AssertionError(
                    f"merge-engine equivalence violation at {n_records} "
                    f"records / {n_runs} runs: identical={identical}, "
                    f"io_identical={hio == bio}"
                )
            rows.append(
                {
                    "records": n_records,
                    "runs": n_runs,
                    "engine": "blockwise",
                    "baseline": "heapq",
                    "spilled": hrep.spilled,
                    "heapq_s": ht,
                    "engine_s": bt,
                    "speedup": ht / bt if bt else float("inf"),
                    "identical": identical,
                    "io_identical": hio == bio,
                }
            )
            if not workers_list:
                continue
            inmem = n_records * record_bytes * 4
            sk, sp, _, _, _, st = _drive_merge(runs, inmem, "blockwise")
            for w in workers_list:
                wk, wp, _, wio, _, wt = _drive_merge(
                    runs, inmem, "blockwise",
                    merge_workers=w, pool_kind=pool_kind,
                )
                if not (np.array_equal(sk, wk) and np.array_equal(sp, wp)):
                    raise AssertionError(
                        f"parallel-merge equivalence violation at "
                        f"{n_records} records / {n_runs} runs / {w} workers"
                    )
                rows.append(
                    {
                        "records": n_records,
                        "runs": n_runs,
                        "engine": f"parallel[{w}w]",
                        "baseline": "in-memory serial",
                        "spilled": False,
                        "heapq_s": st,
                        "engine_s": wt,
                        "speedup": st / wt if wt else float("inf"),
                        "identical": bool(
                            np.array_equal(sk, wk) and np.array_equal(sp, wp)
                        ),
                        "io_identical": wio.total_ios == 0,
                    }
                )
    return rows


def run_spilled_merge_sweep(
    record_counts: list[int],
    run_counts: list[int],
    workers_list: list[int],
    seed: int = 7,
    dup_alphabet: int = 0,
    payload_dims: int = 16,
    memory_fraction: float = 1 / 8,
    pool_kind: str = "thread",
) -> list[dict]:
    """Sharded spilled-run merging vs. the serial external sort.

    Every cell forces the sort to spill (``memory_fraction`` of the
    data) and merges the same presorted runs three ways: the serial
    sorter (``merge_workers=1``), the sharded plan on a thread pool,
    and the sharded plan replayed inline (``pool_kind="serial"`` — the
    accounting oracle).  Each worker row *asserts* the contract before
    reporting a speedup:

    * merged stream, chunk shapes and ``SortReport`` bit-identical to
      the serial sorter;
    * reconciled ``DiskStats`` of the pooled run bit-identical to the
      serial replay.

    The gated ``merge_speedup`` times the merge cascade alone — the
    phase the sharded layer parallelizes; ``sort_runs`` spills the
    initial runs eagerly and merges lazily, so the two phases separate
    cleanly.  ``total_speedup`` includes the (identical, serial) spill
    phase.  Both need idle cores — honest ~1x on a single-core host —
    and payload mass (``payload_dims`` float32 columns per record, the
    materialized regime where the GIL-releasing NumPy merge work
    dominates).
    """
    import os

    rows = []
    workers_list = [w for w in workers_list if w > 1]
    record_bytes = 8 + (4 * payload_dims if payload_dims > 0 else 8)
    for n_records in record_counts:
        for n_runs in run_counts:
            runs = make_presorted_runs(
                n_records,
                n_runs,
                seed=seed,
                dup_alphabet=dup_alphabet,
                payload_dims=payload_dims,
            )
            memory = max(2048, int(n_records * record_bytes * memory_fraction))
            serial = _drive_spilled_merge(runs, memory)
            for w in workers_list:
                replay = _drive_spilled_merge(
                    runs, memory, merge_workers=w, pool_kind="serial"
                )
                pooled = _drive_spilled_merge(
                    runs, memory, merge_workers=w, pool_kind=pool_kind
                )
                stream_identical = bool(
                    np.array_equal(serial["keys"], pooled["keys"])
                    and np.array_equal(serial["payloads"], pooled["payloads"])
                    and serial["shapes"] == pooled["shapes"]
                    and serial["report"] == pooled["report"]
                    and np.array_equal(serial["keys"], replay["keys"])
                    and np.array_equal(serial["payloads"], replay["payloads"])
                    and serial["shapes"] == replay["shapes"]
                    and serial["report"] == replay["report"]
                )
                io_deterministic = pooled["stats"] == replay["stats"]
                if not stream_identical or not io_deterministic:
                    raise AssertionError(
                        f"sharded-merge equivalence violation at "
                        f"{n_records} records / {n_runs} runs / {w} "
                        f"workers: identical={stream_identical}, "
                        f"io_deterministic={io_deterministic}"
                    )
                total_s = serial["spill_s"] + serial["merge_s"]
                total_w = pooled["spill_s"] + pooled["merge_s"]
                rows.append(
                    {
                        "records": n_records,
                        "runs": n_runs,
                        "workers": w,
                        "spilled": serial["report"].spilled,
                        "merge_passes": serial["report"].merge_passes,
                        "cores": os.cpu_count() or 1,
                        "serial_merge_s": serial["merge_s"],
                        "parallel_merge_s": pooled["merge_s"],
                        "merge_speedup": (
                            serial["merge_s"] / pooled["merge_s"]
                            if pooled["merge_s"]
                            else float("inf")
                        ),
                        "total_speedup": (
                            total_s / total_w if total_w else float("inf")
                        ),
                        "identical": stream_identical,
                        "io_deterministic": io_deterministic,
                    }
                )
    return rows


def _drive_spilled_merge(
    runs: list[tuple[np.ndarray, np.ndarray]],
    memory_bytes: int,
    merge_workers: int = 1,
    pool_kind: str = "thread",
) -> dict:
    """One sort_runs pass with the spill and merge phases timed apart."""
    import time

    from ..storage.external_sort import ExternalSorter

    disk = SimulatedDisk(page_size=PAGE_SIZE)
    sorter = ExternalSorter(
        disk,
        memory_bytes,
        merge_workers=merge_workers,
        pool_kind=pool_kind,
    )
    t0 = time.perf_counter()
    # Eager: spill (and any cascade passes); lazy: the final merge
    # pass.  The default sweep cells run a single merge pass, so the
    # phase split is exact there.
    stream = sorter.sort_runs(runs)
    t1 = time.perf_counter()
    parts = list(stream)
    t2 = time.perf_counter()
    return {
        "keys": np.concatenate([k for k, _ in parts]),
        "payloads": np.concatenate([p for _, p in parts]),
        "shapes": [len(k) for k, _ in parts],
        "stats": disk.stats,
        "report": sorter.report,
        "spill_s": t1 - t0,
        "merge_s": t2 - t1,
    }


def _drive_arena_fetch(
    store: str, n_series: int, length: int, fetch_fraction: float, seed: int
) -> dict:
    """One timed scan + skip-sequential fetch pass on a fresh disk.

    Returns everything the sweep needs to assert the cross-store
    contract: the scanned and fetched records, the classified
    counters, the access trace and the final head position.
    """
    import time

    disk = SimulatedDisk(page_size=PAGE_SIZE, store=store, trace=True)
    rng = np.random.default_rng(seed)
    data = rng.standard_normal((n_series, length)).astype(np.float32)
    raw = RawSeriesFile.create(disk, data)
    n_fetch = max(1, int(n_series * fetch_fraction))
    idxs = np.sort(rng.choice(n_series, size=n_fetch, replace=False))
    disk.reset_stats()
    disk.park_head()
    t0 = time.perf_counter()
    blocks = [block for _, block in raw.scan()]
    t1 = time.perf_counter()
    fetched = raw.get_many(idxs)
    t2 = time.perf_counter()
    return {
        "scanned": np.concatenate(blocks),
        "fetched": fetched,
        "scan_s": t1 - t0,
        "fetch_s": t2 - t1,
        "stats": disk.stats,
        "trace": list(disk.trace),
        "head": disk.head_position,
    }


def _drive_arena_merge(
    store: str,
    runs: list[tuple[np.ndarray, np.ndarray]],
    memory_bytes: int,
    merge_workers: int,
) -> dict:
    """One timed spilled sort_runs pass on a fresh disk of ``store``."""
    import time

    from ..storage.external_sort import ExternalSorter

    disk = SimulatedDisk(page_size=PAGE_SIZE, store=store, trace=True)
    sorter = ExternalSorter(disk, memory_bytes, merge_workers=merge_workers)
    t0 = time.perf_counter()
    parts = list(sorter.sort_runs(runs))
    wall = time.perf_counter() - t0
    return {
        "keys": np.concatenate([k for k, _ in parts]),
        "payloads": np.concatenate([p for _, p in parts]),
        "shapes": [len(k) for k, _ in parts],
        "stats": disk.stats,
        "trace": list(disk.trace),
        "report": sorter.report,
        "wall_s": wall,
    }


def run_arena_sweep(
    n_series_list: list[int],
    length: int = 128,
    fetch_fraction: float = 0.3,
    record_counts: list[int] | None = None,
    run_counts: list[int] | None = None,
    workers_list: list[int] | None = None,
    seed: int = 7,
    memory_fraction: float = 1 / 8,
    payload_dims: int = 16,
) -> list[dict]:
    """Arena page store vs. the dict-store oracle, per workload cell.

    Every cell runs the same workload twice — once on the default
    contiguous-arena store and once on the per-page dict store the
    arena replaced — and *asserts* the tentpole contract before
    reporting a speedup: answers (scanned/fetched/merged records),
    classified :class:`DiskStats`, access traces and head positions
    must be bit-identical; only the copy profile and the wall clock
    may differ.

    Cells:

    * ``scan`` / ``fetch`` — a full :meth:`RawSeriesFile.scan` and a
      skip-sequential :meth:`RawSeriesFile.get_many` over
      ``fetch_fraction`` of the records (the SIMS exact-search fetch
      pattern).  These are the copy-bound paths the arena exists for:
      the dict store joins and pads every page on the way up, the
      arena hands out zero-copy views.
    * ``merge`` — a spilled ``sort_runs`` pass (``memory_fraction`` of
      the data, so the cascade streams through :class:`RunCursor`
      refills); ``workers_list`` entries > 1 additionally run the
      sharded cascade, exercising shard arenas and the splice-based
      detach on both stores.
    """
    import os

    rows = []
    cores = os.cpu_count() or 1
    for n_series in n_series_list:
        dict_run = _drive_arena_fetch(
            "dict", n_series, length, fetch_fraction, seed
        )
        arena_run = _drive_arena_fetch(
            "arena", n_series, length, fetch_fraction, seed
        )
        identical = bool(
            np.array_equal(dict_run["scanned"], arena_run["scanned"])
            and np.array_equal(dict_run["fetched"], arena_run["fetched"])
        )
        io_identical = (
            dict_run["stats"] == arena_run["stats"]
            and dict_run["trace"] == arena_run["trace"]
            and dict_run["head"] == arena_run["head"]
        )
        if not identical or not io_identical:
            raise AssertionError(
                f"arena-store equivalence violation at {n_series} series: "
                f"identical={identical}, io_identical={io_identical}"
            )
        for phase in ("scan", "fetch"):
            rows.append(
                {
                    "workload": phase,
                    "n_series": n_series,
                    "length": length,
                    "cores": cores,
                    "dict_s": dict_run[f"{phase}_s"],
                    "arena_s": arena_run[f"{phase}_s"],
                    "speedup": (
                        dict_run[f"{phase}_s"] / arena_run[f"{phase}_s"]
                        if arena_run[f"{phase}_s"]
                        else float("inf")
                    ),
                    "identical": identical,
                    "io_identical": io_identical,
                }
            )
    record_bytes = 8 + 4 * payload_dims
    for n_records in record_counts or []:
        for n_runs in run_counts or [8]:
            runs = make_presorted_runs(
                n_records, n_runs, seed=seed, payload_dims=payload_dims
            )
            memory = max(2048, int(n_records * record_bytes * memory_fraction))
            for workers in workers_list or [1]:
                dict_run = _drive_arena_merge("dict", runs, memory, workers)
                arena_run = _drive_arena_merge("arena", runs, memory, workers)
                identical = bool(
                    np.array_equal(dict_run["keys"], arena_run["keys"])
                    and np.array_equal(
                        dict_run["payloads"], arena_run["payloads"]
                    )
                    and dict_run["shapes"] == arena_run["shapes"]
                    and dict_run["report"] == arena_run["report"]
                )
                io_identical = (
                    dict_run["stats"] == arena_run["stats"]
                    and dict_run["trace"] == arena_run["trace"]
                )
                if not identical or not io_identical:
                    raise AssertionError(
                        f"arena-store merge equivalence violation at "
                        f"{n_records} records / {n_runs} runs / {workers} "
                        f"workers: identical={identical}, "
                        f"io_identical={io_identical}"
                    )
                rows.append(
                    {
                        "workload": f"merge[{workers}w]",
                        "records": n_records,
                        "runs": n_runs,
                        "cores": cores,
                        "spilled": dict_run["report"].spilled,
                        "dict_s": dict_run["wall_s"],
                        "arena_s": arena_run["wall_s"],
                        "speedup": (
                            dict_run["wall_s"] / arena_run["wall_s"]
                            if arena_run["wall_s"]
                            else float("inf")
                        ),
                        "identical": identical,
                        "io_identical": io_identical,
                    }
                )
    return rows


def _drive_fetch_pass(
    store: str,
    n_series: int,
    length: int,
    fetch_fraction: float,
    seed: int,
    use_loop: bool,
    page_size: int = PAGE_SIZE,
) -> dict:
    """One timed skip-sequential gather on a fresh traced disk.

    ``use_loop`` selects the retained loop-level oracle
    (:meth:`RawSeriesFile.get_many_loop`) instead of the vectorized
    gather; everything else — data, index array, page geometry — is
    identical, so the sweep can assert records, classified
    :class:`DiskStats`, access traces and head positions cell by cell.
    """
    import time

    disk = SimulatedDisk(page_size=page_size, store=store, trace=True)
    rng = np.random.default_rng(seed)
    data = rng.standard_normal((n_series, length)).astype(np.float32)
    raw = RawSeriesFile.create(disk, data)
    n_fetch = max(1, int(n_series * fetch_fraction))
    idxs = np.sort(rng.choice(n_series, size=n_fetch, replace=False))
    gather = raw.get_many_loop if use_loop else raw.get_many
    disk.reset_stats()
    disk.park_head()
    t0 = time.perf_counter()
    fetched = gather(idxs)
    wall = time.perf_counter() - t0
    return {
        "fetched": fetched,
        "wall_s": wall,
        "stats": disk.stats,
        "trace": list(disk.trace),
        "head": disk.head_position,
    }


def _drive_refine_pass(
    n_series: int, length: int, seed: int, use_loop: bool
) -> dict:
    """One timed refine pass: block kernel vs the scalar row loop.

    Mirrors the SIMS refine step: distances from one query to a
    fetched block under a realistic best-so-far (the workload's 1st
    percentile — tight enough to abandon most rows, the regime the
    kernel exists for).
    """
    import time

    from ..series.distance import (
        early_abandon_euclidean,
        early_abandon_euclidean_block,
    )

    rng = np.random.default_rng(seed)
    block = rng.standard_normal((n_series, length)).astype(np.float32)
    query = rng.standard_normal(length).astype(np.float32)
    sample = np.sqrt(
        np.sum(
            (block[:256].astype(np.float64) - query.astype(np.float64)) ** 2,
            axis=1,
        )
    )
    best_so_far = float(np.quantile(sample, 0.01))
    t0 = time.perf_counter()
    if use_loop:
        distances = np.array(
            [
                early_abandon_euclidean(query, block[i], best_so_far)
                for i in range(len(block))
            ]
        )
    else:
        distances = early_abandon_euclidean_block(query, block, best_so_far)
    wall = time.perf_counter() - t0
    return {"distances": distances, "wall_s": wall}


def run_fetch_sweep(
    n_series_list: list[int],
    length: int = 128,
    fetch_fraction: float = 0.3,
    seed: int = 7,
    repeats: int = 3,
) -> list[dict]:
    """Vectorized fetch/refine vs the loop-level oracle, per cell.

    Every ``gather`` cell runs the same skip-sequential workload twice
    per page store — once through the vectorized
    :meth:`RawSeriesFile.get_many`, once through the retained
    loop-level oracle :meth:`RawSeriesFile.get_many_loop` — and
    *asserts* the tentpole contract before reporting a speedup:
    fetched records, classified :class:`DiskStats` and head positions
    must be bit-identical between the two paths, and records, stats,
    access traces and head positions bit-identical across stores per
    path; only the wall clock may differ.  Every
    ``refine`` cell pins :func:`early_abandon_euclidean_block`
    bitwise against the scalar early-abandon loop applied row by row.

    Wall clocks take the best of ``repeats`` runs, so the reported
    speedups are noise floors, not averages.
    """
    import os

    rows = []
    cores = os.cpu_count() or 1
    for n_series in n_series_list:
        per_store: dict[str, dict] = {}
        for store in ("dict", "arena"):
            loop_run = min(
                (
                    _drive_fetch_pass(
                        store, n_series, length, fetch_fraction, seed, True
                    )
                    for _ in range(repeats)
                ),
                key=lambda run: run["wall_s"],
            )
            vector_run = min(
                (
                    _drive_fetch_pass(
                        store, n_series, length, fetch_fraction, seed, False
                    )
                    for _ in range(repeats)
                ),
                key=lambda run: run["wall_s"],
            )
            identical = bool(
                np.array_equal(loop_run["fetched"], vector_run["fetched"])
            )
            # Classified stats and head movement must match exactly;
            # the raw traces differ only in granularity (the gather
            # records one tuple per bulk run where the loop records
            # one per page), so they are pinned across *stores* below
            # instead, per access path.
            io_identical = (
                loop_run["stats"] == vector_run["stats"]
                and loop_run["head"] == vector_run["head"]
            )
            if not identical or not io_identical:
                raise AssertionError(
                    f"fetch equivalence violation at {n_series} series on "
                    f"the {store} store: identical={identical}, "
                    f"io_identical={io_identical}"
                )
            per_store[store] = {"loop": loop_run, "vector": vector_run}
            rows.append(
                {
                    "workload": "gather",
                    "store": store,
                    "n_series": n_series,
                    "length": length,
                    "cores": cores,
                    "loop_s": loop_run["wall_s"],
                    "vector_s": vector_run["wall_s"],
                    "speedup": (
                        loop_run["wall_s"] / vector_run["wall_s"]
                        if vector_run["wall_s"]
                        else float("inf")
                    ),
                    "identical": identical,
                    "io_identical": io_identical,
                }
            )
        for path in ("loop", "vector"):
            dict_run = per_store["dict"][path]
            arena_run = per_store["arena"][path]
            if not (
                np.array_equal(dict_run["fetched"], arena_run["fetched"])
                and dict_run["stats"] == arena_run["stats"]
                and dict_run["trace"] == arena_run["trace"]
                and dict_run["head"] == arena_run["head"]
            ):
                raise AssertionError(
                    f"cross-store {path}-gather divergence at "
                    f"{n_series} series"
                )
        loop_refine = min(
            (
                _drive_refine_pass(n_series, length, seed, True)
                for _ in range(repeats)
            ),
            key=lambda run: run["wall_s"],
        )
        vector_refine = min(
            (
                _drive_refine_pass(n_series, length, seed, False)
                for _ in range(repeats)
            ),
            key=lambda run: run["wall_s"],
        )
        identical = bool(
            np.array_equal(
                loop_refine["distances"].view(np.uint64),
                vector_refine["distances"].view(np.uint64),
            )
        )
        if not identical:
            raise AssertionError(
                f"refine kernel divergence at {n_series} series"
            )
        rows.append(
            {
                "workload": "refine",
                "store": "-",
                "n_series": n_series,
                "length": length,
                "cores": cores,
                "loop_s": loop_refine["wall_s"],
                "vector_s": vector_refine["wall_s"],
                "speedup": (
                    loop_refine["wall_s"] / vector_refine["wall_s"]
                    if vector_refine["wall_s"]
                    else float("inf")
                ),
                "identical": identical,
                "io_identical": True,
            }
        )
    return rows


def run_batch_query_experiment(
    index_keys: list[str],
    spec: DatasetSpec,
    n_queries: int,
    k: int = 1,
    memory_fraction: float = 0.25,
    query_workers: int = 1,
) -> list[dict]:
    """Batched vs. per-query exact search on the same index.

    Answers the same workload twice — once query-at-a-time, once as a
    single :class:`repro.indexes.QueryBatch` — and reports both costs
    plus whether the answers agree (they must; the equivalence suite
    asserts it, this row makes it visible in benchmark output).
    ``query_workers > 1`` answers the batch on the multi-worker engine
    (same answers, the speedup needs idle cores).
    """
    from ..indexes.base import QueryBatch

    queries = spec.queries(n_queries)
    memory = max(4096, int(spec.raw_bytes * memory_fraction))
    rows = []
    for key in index_keys:
        env = make_environment(key, spec, memory)
        env.index.build(env.raw)
        env.disk.reset_stats()
        # Per-query baseline for the same problem: exact_search at
        # k = 1, exact_knn otherwise (comparing a k-NN batch against
        # 1-NN queries would cross-compare two different workloads).
        if k == 1:
            per_query = [env.index.exact_search(q) for q in queries]
            per_best = [r.answer_idx for r in per_query]
        else:
            per_query = [env.index.exact_knn(q, k) for q in queries]
            per_best = [
                r.answer_ids[0] if r.answer_ids else -1 for r in per_query
            ]
        per_io_s = sum(r.simulated_io_ms for r in per_query) / 1e3
        per_wall = sum(r.wall_s for r in per_query)
        env.disk.reset_stats()
        batched = env.index.query_batch(
            QueryBatch(queries=queries, k=k), query_workers=query_workers
        )
        agree = all(
            best == b.answer_idx
            for best, b in zip(per_best, batched.results)
        )
        batched_s = batched.total_cost_s
        rows.append(
            {
                "index": key,
                "n_queries": n_queries,
                "k": k,
                "query_workers": query_workers,
                "per_query_s": per_io_s + per_wall,
                "batched_s": batched_s,
                "io_speedup": (
                    per_io_s / (batched.simulated_io_ms / 1e3)
                    if batched.simulated_io_ms
                    else float("inf")
                ),
                "total_speedup": (
                    (per_io_s + per_wall) / batched_s
                    if batched_s
                    else float("inf")
                ),
                "answers_agree": agree,
            }
        )
    return rows


def run_parallel_query_sweep(
    index_keys: list[str],
    spec: DatasetSpec,
    n_queries: int,
    workers_list: list[int],
    k: int = 1,
    memory_fraction: float = 0.25,
) -> list[dict]:
    """Multi-worker batched exact search vs. the serial batched engine.

    Every cell answers the same :class:`repro.indexes.QueryBatch`
    three ways — the serial batched engine (``query_workers=1``), the
    parallel engine on a pool, and the parallel plan replayed inline
    (``query_pool_kind="serial"``, the accounting oracle) — and
    *asserts* the contract before reporting a speedup:

    * answers (ids, distances, tie order) bit-identical to the serial
      batched engine;
    * :class:`DiskStats` of the pooled run bit-identical to the serial
      replay of the same per-worker plans.

    The reported speedup is batch wall time, the number the paper-level
    claim is about; it needs idle cores (honest ~1x on a single-core
    host) and is most pronounced on exact batches, whose lower-bound
    scan and record fetches dominate.
    """
    import os

    from ..indexes.base import QueryBatch

    queries = spec.queries(n_queries)
    memory = max(4096, int(spec.raw_bytes * memory_fraction))
    rows = []
    workers_list = [w for w in workers_list if w > 1]
    for key in index_keys:
        env = make_environment(key, spec, memory)
        env.index.build(env.raw)
        batch = QueryBatch(queries=queries, k=k)
        # Untimed warmup: the first batch on a fresh index pays the
        # one-off summary-column load.  Charging it to the serial
        # baseline (and to no parallel run) would inflate the reported
        # speedup with cache warmth instead of parallelism.
        env.index.query_batch(batch)
        env.disk.park_head()
        env.disk.reset_stats()
        serial = env.index.query_batch(batch)
        for w in workers_list:
            # Identical starting state for the replay-determinism
            # comparison: summaries are warm (the serial run above
            # loaded them) and the head is parked, so both runs'
            # first accesses classify from the same position.
            env.disk.park_head()
            env.disk.reset_stats()
            replay = env.index.query_batch(
                batch, query_workers=w, query_pool_kind="serial",
                bound_sharing="off",
            )
            env.disk.park_head()
            env.disk.reset_stats()
            pooled = env.index.query_batch(
                batch, query_workers=w, query_pool_kind="thread",
                bound_sharing="off",
            )
            identical = (
                pooled.knn_ids == serial.knn_ids
                and pooled.knn_distances == serial.knn_distances
                and replay.knn_ids == serial.knn_ids
                and replay.knn_distances == serial.knn_distances
            )
            io_deterministic = pooled.io == replay.io
            if not identical or not io_deterministic:
                raise AssertionError(
                    f"parallel-query equivalence violation on {key} at "
                    f"{w} workers: identical={identical}, "
                    f"io_deterministic={io_deterministic}"
                )
            rows.append(
                {
                    "index": key,
                    "workers": w,
                    "n_queries": n_queries,
                    "k": k,
                    "n_series": spec.n_series,
                    "cores": os.cpu_count() or 1,
                    "serial_batch_s": serial.wall_s,
                    "parallel_batch_s": pooled.wall_s,
                    "speedup": (
                        serial.wall_s / pooled.wall_s
                        if pooled.wall_s
                        else float("inf")
                    ),
                    "identical": identical,
                    "io_deterministic": io_deterministic,
                }
            )
    return rows


def run_sched_sweep(
    index_keys: list[str],
    spec: DatasetSpec,
    n_queries: int,
    workers_list: list[int],
    k: int = 8,
    memory_fraction: float = 0.25,
) -> list[dict]:
    """Adaptive scheduler (shared best-k bounds) vs. the fixed plan.

    Every cell answers the same batch five ways — serial, pooled
    ``scheduler="fixed"``, pooled adaptive (bound sharing on), and the
    inline serial replays with sharing on and off — and *asserts* the
    scheduler contract before reporting a speedup:

    * answers bit-identical to the serial batched engine under every
      scheduler, sharing mode and worker count;
    * pooled sharing-off ``DiskStats`` bit-identical to the serial
      replay oracle (the PR 4 pin, quantified over sharing off);
    * sharing-on replay visits no more pages or bytes than sharing-off
      at the same partition split (the monotone-visits bound).

    The reported speedup is adaptive wall time over fixed wall time;
    sharing only pays once idle cores let workers race, so expect ~1x
    on a single-core host.
    """
    import os

    from ..indexes.base import QueryBatch

    queries = spec.queries(n_queries)
    memory = max(4096, int(spec.raw_bytes * memory_fraction))
    rows = []
    workers_list = [w for w in workers_list if w > 1]
    for key in index_keys:
        env = make_environment(key, spec, memory)
        env.index.build(env.raw)
        batch = QueryBatch(queries=queries, k=k)
        env.index.query_batch(batch)  # untimed summary-column warmup
        env.disk.park_head()
        env.disk.reset_stats()
        serial = env.index.query_batch(batch)
        for w in workers_list:
            runs = {}
            for label, kwargs in {
                "replay_off": dict(
                    query_pool_kind="serial", bound_sharing="off"
                ),
                "replay_on": dict(
                    query_pool_kind="serial", bound_sharing="on"
                ),
                "pooled_off": dict(
                    query_pool_kind="thread", bound_sharing="off"
                ),
                "fixed": dict(query_pool_kind="thread", scheduler="fixed"),
                "adaptive": dict(
                    query_pool_kind="thread", bound_sharing="on"
                ),
            }.items():
                env.disk.park_head()
                env.disk.reset_stats()
                runs[label] = env.index.query_batch(
                    batch, query_workers=w, **kwargs
                )
            identical = all(
                run.knn_ids == serial.knn_ids
                and run.knn_distances == serial.knn_distances
                for run in runs.values()
            )
            io_deterministic = runs["pooled_off"].io == runs["replay_off"].io

            def _pages(report):
                return report.io.sequential_reads + report.io.random_reads

            pages_monotone = (
                _pages(runs["replay_on"]) <= _pages(runs["replay_off"])
                and runs["replay_on"].io.bytes_read
                <= runs["replay_off"].io.bytes_read
            )
            if not (identical and io_deterministic and pages_monotone):
                raise AssertionError(
                    f"scheduler equivalence violation on {key} at {w} "
                    f"workers: identical={identical}, "
                    f"io_deterministic={io_deterministic}, "
                    f"pages_monotone={pages_monotone}"
                )
            fixed_s = runs["fixed"].wall_s
            adaptive_s = runs["adaptive"].wall_s
            plan = getattr(runs["adaptive"], "plan", None)
            rows.append(
                {
                    "index": key,
                    "workers": w,
                    "n_queries": n_queries,
                    "k": k,
                    "n_series": spec.n_series,
                    "cores": os.cpu_count() or 1,
                    "fixed_batch_s": fixed_s,
                    "adaptive_batch_s": adaptive_s,
                    "speedup": (
                        fixed_s / adaptive_s if adaptive_s else float("inf")
                    ),
                    "pages_sharing_on": _pages(runs["replay_on"]),
                    "pages_sharing_off": _pages(runs["replay_off"]),
                    "identical": identical,
                    "io_deterministic": io_deterministic,
                    "pages_monotone": pages_monotone,
                    "plan": plan.as_dict() if plan is not None else None,
                }
            )
    return rows


def run_scaling_sweep(
    index_keys: list[str],
    spec: DatasetSpec,
    sizes: list[int],
    memory_bytes: int,
) -> list[dict]:
    """Construction cost vs. dataset size at fixed memory (Figs. 8d/8e)."""
    rows = []
    for n in sizes:
        scaled = spec.scaled(n)
        for key in index_keys:
            env = make_environment(key, scaled, memory_bytes)
            report = env.index.build(env.raw)
            rows.append(_build_row(key, memory_bytes, scaled, report))
    return rows


def run_length_sweep(
    index_keys: list[str],
    base: DatasetSpec,
    lengths: list[int],
    memory_fraction: float,
) -> list[dict]:
    """Construction cost vs. series length (Fig. 8f)."""
    rows = []
    for length in lengths:
        spec = DatasetSpec(base.name, base.n_series, length, base.seed)
        memory = max(4096, int(spec.raw_bytes * memory_fraction))
        for key in index_keys:
            env = make_environment(key, spec, memory)
            report = env.index.build(env.raw)
            rows.append(_build_row(key, memory, spec, report))
    return rows


def run_query_experiment(
    index_keys: list[str],
    spec: DatasetSpec,
    n_queries: int,
    memory_fraction: float = 0.25,
    mode: str = "exact",
) -> list[dict]:
    """Average query cost and quality per index (Figs. 9a-9f)."""
    queries = spec.queries(n_queries)
    rows = []
    memory = max(4096, int(spec.raw_bytes * memory_fraction))
    for key in index_keys:
        env = make_environment(key, spec, memory)
        env.index.build(env.raw)
        env.disk.reset_stats()
        results = []
        for query in queries:
            if mode == "exact":
                results.append(env.index.exact_search(query))
            else:
                results.append(env.index.approximate_search(query))
        rows.append(
            {
                "index": key,
                "n_series": spec.n_series,
                "mode": mode,
                "avg_sim_io_s": np.mean([r.simulated_io_ms for r in results]) / 1e3,
                "avg_wall_s": np.mean([r.wall_s for r in results]),
                "avg_total_s": np.mean([r.total_cost_s for r in results]),
                "avg_distance": np.mean([r.distance for r in results]),
                "avg_visited": np.mean([r.visited_records for r in results]),
                "avg_pruned": np.mean([r.pruned_fraction for r in results]),
            }
        )
    return rows


def run_complete_workload(
    index_keys: list[str],
    spec: DatasetSpec,
    n_queries: int,
    memory_fractions: list[float],
) -> list[dict]:
    """Construction followed by exact queries (Figs. 10b/10c)."""
    rows = []
    queries = spec.queries(n_queries)
    for fraction in memory_fractions:
        memory = max(4096, int(spec.raw_bytes * fraction))
        for key in index_keys:
            env = make_environment(key, spec, memory)
            build = env.index.build(env.raw)
            query_results = [env.index.exact_search(q) for q in queries]
            query_io = sum(r.simulated_io_ms for r in query_results) / 1e3
            query_wall = sum(r.wall_s for r in query_results)
            rows.append(
                {
                    "index": key,
                    "dataset": spec.name,
                    "memory_frac": round(fraction, 4),
                    "build_s": build.total_cost_s,
                    "query_s": query_io + query_wall,
                    "total_s": build.total_cost_s + query_io + query_wall,
                    "index_MB": build.index_bytes / 1e6,
                }
            )
    return rows


def run_update_workload(
    index_keys: list[str],
    spec: DatasetSpec,
    batch_sizes: list[int],
    n_queries: int = 20,
    initial_fraction: float = 0.5,
    memory_fraction: float = 0.002,
) -> list[dict]:
    """Interleaved inserts and exact queries vs. batch size (Fig. 10a)."""
    from .workloads import mixed_workload

    rows = []
    memory = max(4096, int(spec.raw_bytes * memory_fraction))
    for batch_size in batch_sizes:
        for key in index_keys:
            disk = SimulatedDisk(page_size=PAGE_SIZE)
            initial, events = mixed_workload(
                spec, initial_fraction, batch_size, n_queries
            )
            raw = RawSeriesFile.create(disk, initial)
            disk.reset_stats()
            index = INDEX_FACTORIES[key](disk, memory, spec.length)
            build = index.build(raw)
            insert_s = query_s = 0.0
            for event in events:
                if event.kind == "insert":
                    report = index.insert_batch(event.payload)
                    insert_s += report.total_cost_s
                else:
                    result = index.exact_search(event.payload)
                    query_s += result.total_cost_s
            rows.append(
                {
                    "index": key,
                    "batch_size": batch_size,
                    "build_s": build.total_cost_s,
                    "insert_s": insert_s,
                    "query_s": query_s,
                    "total_s": build.total_cost_s + insert_s + query_s,
                }
            )
    return rows


def _drive_fault_fetch_pass(
    store: str,
    n_series: int,
    length: int,
    fetch_fraction: float,
    seed: int,
    hooked: bool,
    page_size: int = PAGE_SIZE,
) -> dict:
    """One timed headline gather, bare or through a disabled fault hook.

    ``hooked=True`` routes every read through ``FaultyDevice(disk,
    plan=None)`` — the pure-forwarding wrapper a production deployment
    would leave in place — so the sweep can price the disabled
    injection seam on the exact skip-sequential fetch path the query
    engines use.
    """
    import time

    from ..storage.faults import FaultyDevice

    disk = SimulatedDisk(page_size=page_size, store=store)
    rng = np.random.default_rng(seed)
    data = rng.standard_normal((n_series, length)).astype(np.float32)
    raw = RawSeriesFile.create(disk, data)
    n_fetch = max(1, int(n_series * fetch_fraction))
    idxs = np.sort(rng.choice(n_series, size=n_fetch, replace=False))
    view = raw.view(FaultyDevice(disk, plan=None)) if hooked else raw
    disk.reset_stats()
    disk.park_head()
    t0 = time.perf_counter()
    fetched = view.get_many(idxs)
    wall = time.perf_counter() - t0
    return {
        "fetched": fetched,
        "wall_s": wall,
        "stats": disk.stats,
        "head": disk.head_position,
    }


def _drive_recovery_smoke(store: str, seed: int) -> dict:
    """One injected-crash + recovery cycle; asserts the oracle contract.

    A small durable LSM takes batches through a seeded fault schedule
    until something fires (or the workload ends), recovers from the
    device, and must answer exactly like a fault-free index rebuilt
    from the acknowledged rows.
    """
    import time

    from ..core.lsm import CoconutLSM
    from ..storage.faults import (
        CorruptionError,
        FaultError,
        FaultPlan,
        FaultyDevice,
    )

    length = 64
    config = SAXConfig(series_length=length, word_length=8, cardinality=16)
    rng = np.random.default_rng(seed)
    base = rng.standard_normal((150, length)).astype(np.float32)
    extra = rng.standard_normal((150, length)).astype(np.float32)
    queries = rng.standard_normal((3, length))

    def fresh(device_plan):
        disk = SimulatedDisk(page_size=2048, store=store)
        raw = RawSeriesFile(disk, length)
        raw.append_batch(base)
        device = disk if device_plan is None else FaultyDevice(disk, device_plan)
        return disk, raw, device

    plan = FaultPlan(
        seed=seed, p_transient_write=0.02, p_torn_write=0.01,
        p_bitflip_write=0.02, p_crash_write=0.01, max_faults=4,
    )
    disk, raw, device = fresh(plan)
    faults = 0
    t0 = time.perf_counter()
    try:
        ix = CoconutLSM(device, 1 << 10, config, durability="wal")
        ix.build(raw)
        for lo in range(0, len(extra), 25):
            ix.insert_batch(extra[lo : lo + 25])
    except FaultError:
        pass
    faults = device.faults_injected
    try:
        recovered = CoconutLSM.recover(disk, raw)
    except CorruptionError:
        raw.truncate(len(base))
        recovered = CoconutLSM(disk, 1 << 10, config, durability="wal", wal_id=2)
        recovered.build(raw)
    wall = time.perf_counter() - t0
    # Oracle: fault-free replay of exactly the acknowledged rows.
    disk2, raw2, _ = fresh(None)
    oracle = CoconutLSM(disk2, 1 << 10, config, durability="wal")
    oracle.build(raw2)
    acked = extra[: raw.n_series - len(base)]
    for lo in range(0, len(acked), 25):
        oracle.insert_batch(acked[lo : lo + 25])
    identical = True
    for q in queries:
        a, b = recovered.exact_search(q), oracle.exact_search(q)
        identical = identical and (
            a.answer_idx == b.answer_idx and a.distance == b.distance
        )
    if not identical:
        raise AssertionError(
            f"recovery divergence on the {store} store at seed {seed}"
        )
    return {
        "faults": faults,
        "acked_rows": int(raw.n_series),
        "rebuilt_runs": recovered.n_rebuilt_runs,
        "wall_s": wall,
        "identical": identical,
    }


def run_fault_overhead_sweep(
    n_series_list: list[int],
    length: int = 128,
    fetch_fraction: float = 0.3,
    seed: int = 7,
    repeats: int = 5,
    recovery_seeds: int = 4,
) -> list[dict]:
    """Price the disabled fault hook; smoke-test injected recovery.

    ``overhead`` cells run the headline skip-sequential gather twice
    per page store — bare device vs ``FaultyDevice(plan=None)`` — and
    assert fetched records, classified :class:`DiskStats` and head
    positions bit-identical before reporting the wall-clock ratio
    (best of ``repeats``; the <5% gate is armed by
    ``benchmarks/bench_faults.py`` at the headline scale only).
    ``recovery`` cells run seeded crash/recover cycles on both stores
    and assert the recovered index answers exactly like the
    acknowledged-rows oracle.
    """
    import os

    rows = []
    cores = os.cpu_count() or 1
    for n_series in n_series_list:
        for store in ("dict", "arena"):
            bare = min(
                (
                    _drive_fault_fetch_pass(
                        store, n_series, length, fetch_fraction, seed, False
                    )
                    for _ in range(repeats)
                ),
                key=lambda run: run["wall_s"],
            )
            hooked = min(
                (
                    _drive_fault_fetch_pass(
                        store, n_series, length, fetch_fraction, seed, True
                    )
                    for _ in range(repeats)
                ),
                key=lambda run: run["wall_s"],
            )
            identical = bool(
                np.array_equal(bare["fetched"], hooked["fetched"])
            )
            io_identical = (
                bare["stats"] == hooked["stats"]
                and bare["head"] == hooked["head"]
            )
            if not identical or not io_identical:
                raise AssertionError(
                    f"disabled fault hook changed the fetch at {n_series} "
                    f"series on the {store} store: identical={identical}, "
                    f"io_identical={io_identical}"
                )
            rows.append(
                {
                    "workload": "overhead",
                    "store": store,
                    "n_series": n_series,
                    "cores": cores,
                    "bare_s": bare["wall_s"],
                    "hooked_s": hooked["wall_s"],
                    "overhead": (
                        hooked["wall_s"] / bare["wall_s"]
                        if bare["wall_s"]
                        else 1.0
                    ),
                    "identical": identical,
                    "io_identical": io_identical,
                }
            )
    for store in ("dict", "arena"):
        for smoke_seed in range(recovery_seeds):
            smoke = _drive_recovery_smoke(store, seed + smoke_seed)
            rows.append(
                {
                    "workload": "recovery",
                    "store": store,
                    "n_series": smoke["acked_rows"],
                    "cores": cores,
                    "bare_s": 0.0,
                    "hooked_s": smoke["wall_s"],
                    "overhead": 1.0,
                    "identical": smoke["identical"],
                    "io_identical": True,
                    "faults": smoke["faults"],
                    "rebuilt_runs": smoke["rebuilt_runs"],
                }
            )
    return rows


def _drive_verified_fetch_pass(
    store: str,
    n_series: int,
    length: int,
    fetch_fraction: float,
    seed: int,
    verified: bool,
    page_size: int = PAGE_SIZE,
) -> dict:
    """One timed headline gather, unverified or with verified reads.

    Both passes run on an integrity-enabled disk (the sidecar is
    recorded either way); ``verified=True`` additionally hashes every
    page view against the sidecar on the way up — the cost the
    ``verified_reads`` deployment mode pays on the exact
    skip-sequential fetch path the query engines use.
    """
    import time

    disk = SimulatedDisk(page_size=page_size, store=store, integrity=True)
    rng = np.random.default_rng(seed)
    data = rng.standard_normal((n_series, length)).astype(np.float32)
    raw = RawSeriesFile.create(disk, data)
    raw.verified_reads = verified
    n_fetch = max(1, int(n_series * fetch_fraction))
    idxs = np.sort(rng.choice(n_series, size=n_fetch, replace=False))
    disk.reset_stats()
    disk.park_head()
    t0 = time.perf_counter()
    fetched = raw.get_many(idxs)
    wall = time.perf_counter() - t0
    return {
        "fetched": fetched,
        "wall_s": wall,
        "stats": disk.stats,
        "head": disk.head_position,
    }


def _drive_scrub_cell(store: str, seed: int) -> dict:
    """One seeded decay + sweep cycle; asserts detected == injected.

    Builds a small durable index on an integrity disk, injects seeded
    at-rest bit decay on pages the sweep covers (single-bit on raw —
    the algebraically repairable case — alternating single/multi-bit
    on run pages to force quarantine + rebuild), then sweeps and
    *asserts* the oracle contract: the sweep finds exactly the
    injected pages, repairs them all, and post-repair answers equal
    the pre-decay answers.
    """
    import time

    from ..core.lsm import CoconutLSM
    from ..storage.integrity import Scrubber, decay_bit

    length = 64
    config = SAXConfig(series_length=length, word_length=8, cardinality=16)
    rng = np.random.default_rng(seed)
    base = rng.standard_normal((150, length)).astype(np.float32)
    extra = rng.standard_normal((150, length)).astype(np.float32)
    queries = rng.standard_normal((3, length))

    disk = SimulatedDisk(page_size=2048, store=store, integrity=True)
    raw = RawSeriesFile(disk, length)
    raw.append_batch(base)
    ix = CoconutLSM(disk, 1 << 10, config, durability="wal")
    ix.build(raw)
    for lo in range(0, len(extra), 25):
        ix.insert_batch(extra[lo : lo + 25])
    expect = [
        (r.answer_idx, r.distance) for r in (ix.exact_search(q) for q in queries)
    ]
    scrubber = Scrubber(disk, lsm=ix, raw=raw)
    targets = [
        (kind, first + i)
        for kind, _, first, n_pages in scrubber._targets()
        for i in range(n_pages)
    ]
    picks = rng.choice(len(targets), size=min(10, len(targets)), replace=False)
    injected = set()
    for pick in picks:
        kind, page = targets[int(pick)]
        n_bits = 3 if kind == "run" and int(pick) % 2 else 1
        for bit in rng.choice(2048 * 8, size=n_bits, replace=False):
            decay_bit(disk, page, int(bit))
        injected.add(page)
    t0 = time.perf_counter()
    report = scrubber.sweep()
    wall = time.perf_counter() - t0
    detected = set(report.corrupt_pages)
    if detected != injected:
        raise AssertionError(
            f"scrub detection violation on the {store} store at seed "
            f"{seed}: injected {sorted(injected)}, detected "
            f"{sorted(detected)}"
        )
    if scrubber.unrepairable:
        raise AssertionError(
            f"scrub left {sorted(scrubber.unrepairable)} unrepaired on "
            f"the {store} store at seed {seed}"
        )
    after = [
        (r.answer_idx, r.distance) for r in (ix.exact_search(q) for q in queries)
    ]
    if after != expect:
        raise AssertionError(
            f"post-repair answers moved on the {store} store at seed {seed}"
        )
    return {
        "pages_scanned": report.pages_scanned,
        "injected": len(injected),
        "detected": len(detected),
        "repaired": len(report.repaired_pages),
        "rebuilt_runs": report.rebuilt_runs,
        "wall_s": wall,
        "identical": after == expect,
    }


def run_scrub_sweep(
    n_series_list: list[int],
    length: int = 128,
    fetch_fraction: float = 0.3,
    seed: int = 7,
    repeats: int = 5,
    scrub_seeds: int = 4,
) -> list[dict]:
    """Price verified reads; smoke-test seeded scrub + repair.

    ``overhead`` cells run the headline skip-sequential gather twice
    per page store — unverified vs ``verified_reads=True``, both on an
    integrity-recorded disk — and assert fetched records, classified
    :class:`DiskStats` and head positions bit-identical before
    reporting the wall-clock ratio (best of ``repeats``; the <=10%
    gate is armed by ``benchmarks/bench_scrub.py`` at the headline
    scale only).  ``scrub`` cells run seeded decay + sweep cycles on
    both stores; each asserts detected == injected, full repair and
    unmoved answers, and reports the sweep's page scan rate.
    """
    import os

    rows = []
    cores = os.cpu_count() or 1
    for n_series in n_series_list:
        for store in ("dict", "arena"):
            plain = min(
                (
                    _drive_verified_fetch_pass(
                        store, n_series, length, fetch_fraction, seed, False
                    )
                    for _ in range(repeats)
                ),
                key=lambda run: run["wall_s"],
            )
            verified = min(
                (
                    _drive_verified_fetch_pass(
                        store, n_series, length, fetch_fraction, seed, True
                    )
                    for _ in range(repeats)
                ),
                key=lambda run: run["wall_s"],
            )
            identical = bool(
                np.array_equal(plain["fetched"], verified["fetched"])
            )
            io_identical = (
                plain["stats"] == verified["stats"]
                and plain["head"] == verified["head"]
            )
            if not identical or not io_identical:
                raise AssertionError(
                    f"verified reads changed the fetch at {n_series} "
                    f"series on the {store} store: identical={identical}, "
                    f"io_identical={io_identical}"
                )
            rows.append(
                {
                    "workload": "overhead",
                    "store": store,
                    "n_series": n_series,
                    "cores": cores,
                    "plain_s": plain["wall_s"],
                    "verified_s": verified["wall_s"],
                    "overhead": (
                        verified["wall_s"] / plain["wall_s"]
                        if plain["wall_s"]
                        else 1.0
                    ),
                    "identical": identical,
                    "io_identical": io_identical,
                }
            )
    for store in ("dict", "arena"):
        for scrub_seed in range(scrub_seeds):
            cell = _drive_scrub_cell(store, seed + scrub_seed)
            rows.append(
                {
                    "workload": "scrub",
                    "store": store,
                    "n_series": cell["pages_scanned"],
                    "cores": cores,
                    "plain_s": 0.0,
                    "verified_s": cell["wall_s"],
                    "overhead": 1.0,
                    "identical": cell["identical"],
                    "io_identical": True,
                    "injected": cell["injected"],
                    "detected": cell["detected"],
                    "repaired": cell["repaired"],
                    "rebuilt_runs": cell["rebuilt_runs"],
                }
            )
    return rows


# ----------------------------------------------------------------------
# Online service: mixed read/write throughput with tail latency
# ----------------------------------------------------------------------
def run_serve_sweep(
    spec: DatasetSpec,
    n_queries: int = 64,
    workers_list: "list[int] | None" = None,
    batch_rows: int = 200,
    n_batches: int = 10,
    k: int = 3,
    approx_fraction: float = 0.3,
    timeout_s: "float | None" = None,
    seed: int = 7,
) -> list[dict]:
    """Sustained mixed ingest + query traffic through the service.

    Each cell boots a :class:`~repro.service.CoconutService` over the
    base dataset, starts the batch-window server thread, and runs a
    feeder thread ingesting ``n_batches`` batches of ``batch_rows``
    while the client submits ``n_queries`` queries (an
    ``approx_fraction`` mix of approximate 1-NN among exact k-NN).
    Reported per cell: sustained ingest and query throughput, the
    p50/p95/p99 end-to-end query latency from the service's own
    :class:`~repro.service.stats.ServiceStats` surface, and every
    robustness counter (shed, degraded, session conflicts).

    Every cell is also *checked*: each served exact ticket is verified
    bit-identical to a fault-free oracle index built over exactly the
    first ``snapshot_series`` rows the ticket reports, each served
    approximate ticket must name an in-watermark row, and the ticket
    accounting must conserve (``submitted == served + shed +
    rejected``).  A violation raises rather than reporting a number.
    """
    import threading
    import time as _time

    from ..core.lsm import CoconutLSM
    from ..service import CoconutService, ServiceConfig

    if workers_list is None:
        workers_list = [1, 2]
    config = default_config(spec.length)
    base = spec.generate()
    rng = np.random.default_rng(seed)
    stream = rng.standard_normal(
        (n_batches * batch_rows, spec.length)
    ).astype(np.float32)
    all_rows = np.vstack([base, stream])
    queries = spec.queries(n_queries).astype(np.float64)
    # Small enough that the ingest stream forces real flushes and
    # background compactions under the concurrent query traffic.
    memory = max(1 << 14, spec.raw_bytes // 64)
    oracles: dict[int, CoconutLSM] = {}

    def oracle_at(watermark: int) -> CoconutLSM:
        if watermark not in oracles:
            odisk = SimulatedDisk(page_size=PAGE_SIZE, store="arena")
            oraw = RawSeriesFile(odisk, spec.length)
            oraw.append_batch(all_rows[:watermark])
            index = CoconutLSM(odisk, memory, config)
            index.build(oraw)
            oracles[watermark] = index
        return oracles[watermark]

    rows = []
    cores = _os_cores()
    for workers in workers_list:
        disk = SimulatedDisk(page_size=PAGE_SIZE, store="arena")
        raw = RawSeriesFile(disk, spec.length)
        raw.append_batch(base)
        service = CoconutService(
            disk,
            raw,
            memory,
            sax_config=config,
            config=ServiceConfig(
                query_workers=workers,
                queue_capacity=max(64, n_queries),
                default_timeout_s=timeout_s,
            ),
        )
        service.bootstrap()
        service.start()
        feeder_error: list[Exception] = []

        def feed():
            try:
                for i in range(n_batches):
                    lo = i * batch_rows
                    service.ingest(
                        stream[lo : lo + batch_rows],
                        expected_first=len(base) + lo,
                    )
            except Exception as error:  # pragma: no cover - surfaced below
                feeder_error.append(error)

        t0 = _time.perf_counter()
        feeder = threading.Thread(target=feed)
        feeder.start()
        tickets = []
        mode_draws = rng.random(n_queries)
        for qi in range(n_queries):
            query = queries[qi]
            if mode_draws[qi] < approx_fraction:
                tickets.append(
                    (query, service.submit(query, mode="approximate"))
                )
            else:
                tickets.append((query, service.submit(query, k=k)))
        feeder.join()
        for _, ticket in tickets:
            ticket.wait(timeout=60.0)
        wall_s = _time.perf_counter() - t0
        service.stop(drain=True)
        if feeder_error:
            raise feeder_error[0]
        stats = service.stats_snapshot()
        terminal = (
            stats["served"]
            + sum(stats["shed"].values())
            + sum(stats["rejected"].values())
        )
        if stats["submitted"] != terminal:
            raise AssertionError(
                f"ticket accounting leak: submitted={stats['submitted']} "
                f"!= served+shed+rejected={terminal}"
            )
        n_exact = 0
        for query, ticket in tickets:
            if ticket.status != "served":
                continue
            watermark = ticket.snapshot_series
            if ticket.mode == "exact":
                n_exact += 1
                expected = oracle_at(watermark).exact_knn(query, ticket.k)
                if list(ticket.knn_ids) != list(expected.answer_ids) or (
                    ticket.knn_distances != list(expected.distances)
                ):
                    raise AssertionError(
                        f"served answer diverged from the oracle at "
                        f"watermark {watermark}: {ticket.knn_ids} vs "
                        f"{list(expected.answer_ids)}"
                    )
            else:
                (idx,) = ticket.knn_ids
                if not 0 <= idx < watermark:
                    raise AssertionError(
                        f"approximate answer {idx} outside snapshot "
                        f"watermark {watermark}"
                    )
        latency = stats["query_latency_s"]
        rows.append(
            {
                "workers": workers,
                "cores": cores,
                "n_series": int(raw.n_series),
                "n_queries": n_queries,
                "k": k,
                "wall_s": wall_s,
                "ingest_rows_per_s": (
                    stats["ingest_rows"] / wall_s if wall_s else 0.0
                ),
                "queries_per_s": stats["served"] / wall_s if wall_s else 0.0,
                "p50_ms": latency["p50"] * 1e3,
                "p95_ms": latency["p95"] * 1e3,
                "p99_ms": latency["p99"] * 1e3,
                "served": stats["served"],
                "shed": sum(stats["shed"].values()),
                "rejected": sum(stats["rejected"].values()),
                "degraded_batches": stats["degraded_batches"],
                "session_conflicts": stats["session_conflicts"],
                "flushes": stats["lsm"]["flushes"],
                "merges": stats["lsm"]["merges"],
                "exact_verified": n_exact,
                "identical": True,  # a divergence raises above
            }
        )
    return rows


def _os_cores() -> int:
    import os

    return os.cpu_count() or 1
