"""Plain-text reporting of experiment results in the paper's layout.

Each benchmark prints one table whose rows/series correspond to the
lines of the paper figure it regenerates, so EXPERIMENTS.md can record
paper-shape vs. measured-shape side by side.
"""

from __future__ import annotations

from typing import Iterable


def format_value(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def format_table(rows: Iterable[dict], columns: list[str] | None = None) -> str:
    """Render dict-rows as an aligned ASCII table."""
    rows = list(rows)
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    cells = [[format_value(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(line[i]) for line in cells))
        for i, col in enumerate(columns)
    ]
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    rule = "  ".join("-" * w for w in widths)
    body = "\n".join(
        "  ".join(line[i].ljust(widths[i]) for i in range(len(columns)))
        for line in cells
    )
    return f"{header}\n{rule}\n{body}"


def print_experiment(title: str, rows: Iterable[dict],
                     columns: list[str] | None = None) -> None:
    """Print one experiment block (title + table), benchmark-friendly."""
    print(f"\n=== {title} ===")
    print(format_table(rows, columns))
