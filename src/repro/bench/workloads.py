"""Workload generation for the evaluation experiments.

The paper's workloads are "random": query series drawn fresh from the
same source as the indexed data (Sec. 5), plus, for Fig. 10a, an
interleaved schedule of insert batches and exact queries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ..series.generators import make_dataset, query_workload


@dataclass(frozen=True)
class DatasetSpec:
    """A reproducible dataset: generator name, size, length, seed."""

    name: str = "randomwalk"
    n_series: int = 10_000
    length: int = 128
    seed: int = 7

    def generate(self) -> np.ndarray:
        return make_dataset(
            self.name, self.n_series, length=self.length, seed=self.seed
        )

    def queries(self, n_queries: int) -> np.ndarray:
        return query_workload(
            self.name, n_queries, length=self.length, seed=self.seed
        )

    @property
    def raw_bytes(self) -> int:
        return self.n_series * self.length * 4

    def scaled(self, n_series: int) -> "DatasetSpec":
        return DatasetSpec(self.name, n_series, self.length, self.seed)


@dataclass(frozen=True)
class UpdateEvent:
    """One step of the mixed workload: a batch insert or a query."""

    kind: str  # "insert" or "query"
    payload: np.ndarray


def mixed_workload(
    spec: DatasetSpec,
    initial_fraction: float,
    batch_size: int,
    n_queries: int,
) -> tuple[np.ndarray, Iterator[UpdateEvent]]:
    """The Fig. 10a schedule: initial bulk load, then batches + queries.

    Returns the initial data plus an iterator of events that
    interleaves insert batches with queries (2 queries per batch in
    the paper; here spread evenly so exactly ``n_queries`` run).
    """
    if not 0.0 < initial_fraction < 1.0:
        raise ValueError(
            f"initial_fraction must be in (0, 1), got {initial_fraction}"
        )
    if batch_size <= 0:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    data = spec.generate()
    n_initial = max(1, int(spec.n_series * initial_fraction))
    initial = data[:n_initial]
    rest = data[n_initial:]
    queries = spec.queries(n_queries)
    n_batches = max(1, -(-len(rest) // batch_size))
    queries_per_batch = n_queries / n_batches

    def events() -> Iterator[UpdateEvent]:
        issued = 0.0
        done = 0
        for b in range(n_batches):
            batch = rest[b * batch_size : (b + 1) * batch_size]
            if len(batch):
                yield UpdateEvent("insert", batch)
            issued += queries_per_batch
            while done < min(int(round(issued)), n_queries):
                yield UpdateEvent("query", queries[done])
                done += 1
        while done < n_queries:
            yield UpdateEvent("query", queries[done])
            done += 1

    return initial, events()
