"""Command-line experiment runner: ``python -m repro.bench``.

Runs one of the paper's experiments at an adjustable scale without
going through pytest — handy for exploring parameter regimes beyond
the calibrated benchmark defaults.

Examples::

    python -m repro.bench build --group secondary --n 20000
    python -m repro.bench build --group materialized --memory 1.0 0.1
    python -m repro.bench build --group secondary --workers 4
    python -m repro.bench query --mode exact --dataset seismic
    python -m repro.bench query --batch --k 5 --indexes CTree Serial
    python -m repro.bench query --batch --workers 4
    python -m repro.bench sched --workers 2 4 --k 8
    python -m repro.bench parallel --index CTreeFull --workers 1 2 4
    python -m repro.bench merge --records 200000 --runs 32 --workers 2 4
    python -m repro.bench spilled --records 200000 --runs 8 --workers 4
    python -m repro.bench arena --n 50000 --records 200000 --workers 1 2
    python -m repro.bench fetch --n 50000
    python -m repro.bench faults --n 50000 --repeats 5
    python -m repro.bench scrub --n 50000 --scrub-seeds 4
    python -m repro.bench space --n 15000
    python -m repro.bench updates --batches 100 1000

Choosing ``--workers``: worker processes pay a per-chunk transfer
cost, so parallel building pays off once the dataset has at least a
few tens of thousands of series; use one worker per physical core.
``--batch`` answers the whole query workload in one shared pass —
always at least as good as per-query on I/O, and most effective on
exact search where the summary scan dominates.  ``query --batch
--workers N`` additionally runs that shared pass on the multi-worker
engine (range-partitioned lower bounds, shard-parallel fetches) with
identical answers; the speedup needs idle cores.  ``sched`` compares
the adaptive scheduler (shared best-k bounds, cost-model planning)
against the fixed plan while asserting answers stay bit-identical.

Each subcommand is one :class:`_Command` row in :data:`COMMANDS` —
adding an experiment means adding one row, not editing the parser and
the dispatcher separately.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import Callable, Optional

from .harness import (
    MATERIALIZED_GROUP,
    SECONDARY_GROUP,
    run_arena_sweep,
    run_batch_query_experiment,
    run_build_sweep,
    run_fault_overhead_sweep,
    run_fetch_sweep,
    run_merge_engine_sweep,
    run_parallel_build_sweep,
    run_query_experiment,
    run_sched_sweep,
    run_scrub_sweep,
    run_serve_sweep,
    run_spilled_merge_sweep,
    run_update_workload,
)
from .report import print_experiment
from .workloads import DatasetSpec


@dataclass(frozen=True)
class _Command:
    """One ``python -m repro.bench <name>`` subcommand."""

    name: str
    help: str
    configure: Callable[[argparse.ArgumentParser], None]
    run: Callable[[argparse.Namespace, Optional[DatasetSpec]], None]
    #: Whether the command takes the shared dataset arguments (and so
    #: gets a :class:`DatasetSpec` built from them).
    needs_dataset: bool = True
    #: Optional cross-argument validation; call ``parser.error`` on
    #: bad combinations.
    validate: Optional[
        Callable[[argparse.ArgumentParser, argparse.Namespace], None]
    ] = None


def _add_dataset_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--dataset", default="randomwalk",
        choices=["randomwalk", "seismic", "astronomy"],
    )
    parser.add_argument("--n", type=int, default=10_000, help="series count")
    parser.add_argument("--length", type=int, default=128)
    parser.add_argument("--seed", type=int, default=7)


# ------------------------------------------------------------------ build
def _configure_build(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--group", default="secondary", choices=["secondary", "materialized"]
    )
    parser.add_argument(
        "--memory", type=float, nargs="+", default=[1.0, 0.05, 0.01],
        help="memory budgets as fractions of the dataset size",
    )
    parser.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for parallel bulk-loading (Coconut indexes)",
    )


def _run_build(args: argparse.Namespace, spec: DatasetSpec) -> None:
    group = SECONDARY_GROUP if args.group == "secondary" else MATERIALIZED_GROUP
    rows = run_build_sweep(group, spec, args.memory, workers=args.workers)
    print_experiment(f"construction sweep ({args.group})", rows)


# ------------------------------------------------------------------ query
def _configure_query(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--mode", default="exact", choices=["exact", "approximate"]
    )
    parser.add_argument("--queries", type=int, default=20)
    parser.add_argument(
        "--indexes", nargs="+",
        default=["CTree", "CTreeFull", "ADS+", "ADSFull"],
    )
    parser.add_argument(
        "--batch", action="store_true",
        help="answer the workload as one QueryBatch and compare with per-query",
    )
    parser.add_argument(
        "--k", type=int, default=1, help="neighbors per query (batch mode)"
    )
    parser.add_argument(
        "--workers", type=int, default=1,
        help="worker count for the multi-worker batched engine "
        "(requires --batch; answers stay identical, speedup needs cores)",
    )


def _validate_query(
    parser: argparse.ArgumentParser, args: argparse.Namespace
) -> None:
    if args.batch and args.mode != "exact":
        parser.error("--batch compares exact search only; drop --mode")
    if not args.batch and args.k != 1:
        parser.error("--k only applies to the batched experiment; add --batch")
    if not args.batch and args.workers != 1:
        parser.error("--workers parallelizes the batched engine; add --batch")


def _run_query(args: argparse.Namespace, spec: DatasetSpec) -> None:
    if args.batch:
        rows = run_batch_query_experiment(
            args.indexes, spec, args.queries, k=args.k,
            query_workers=args.workers,
        )
        print_experiment("batched vs per-query exact search", rows)
    else:
        rows = run_query_experiment(
            args.indexes, spec, args.queries, mode=args.mode
        )
        print_experiment(f"{args.mode} query costs", rows)


# ------------------------------------------------------------------ sched
def _configure_sched(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--queries", type=int, default=24)
    parser.add_argument(
        "--k", type=int, default=8,
        help="neighbors per query (k > 1 gives the shared board real "
        "thresholds to propagate)",
    )
    parser.add_argument(
        "--workers", type=int, nargs="+", default=[2, 4],
        help="worker counts to sweep (cells with 1 are skipped)",
    )
    parser.add_argument(
        "--indexes", nargs="+", default=["CTree", "CTreeFull"],
    )


def _run_sched(args: argparse.Namespace, spec: DatasetSpec) -> None:
    rows = run_sched_sweep(
        args.indexes, spec, args.queries, workers_list=args.workers, k=args.k
    )
    print_experiment(
        "adaptive scheduler vs fixed plan (shared best-k bounds)",
        rows,
        columns=[
            "index", "workers", "k", "cores", "fixed_batch_s",
            "adaptive_batch_s", "speedup", "pages_sharing_on",
            "pages_sharing_off", "identical", "io_deterministic",
        ],
    )


# --------------------------------------------------------------- parallel
def _configure_parallel(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--index", default="CTreeFull")
    parser.add_argument(
        "--workers", type=int, nargs="+", default=[1, 2, 4],
        help="worker counts to sweep (put 1 first for the baseline)",
    )


def _run_parallel(args: argparse.Namespace, spec: DatasetSpec) -> None:
    rows = run_parallel_build_sweep(args.index, spec, args.workers)
    print_experiment("parallel build scaling", rows)


# ------------------------------------------------------------------ merge
def _configure_merge(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--records", type=int, nargs="+", default=[200_000],
        help="total records per merge cell",
    )
    parser.add_argument(
        "--runs", type=int, nargs="+", default=[32],
        help="presorted run counts to merge",
    )
    parser.add_argument(
        "--workers", type=int, nargs="+", default=[],
        help="also time the parallel range-partitioned in-memory merge",
    )
    parser.add_argument(
        "--dup-alphabet", type=int, default=0,
        help="draw key bytes from this many values (duplicate-heavy keys)",
    )
    parser.add_argument("--seed", type=int, default=7)


def _run_merge(args: argparse.Namespace, spec: None) -> None:
    rows = run_merge_engine_sweep(
        args.records,
        args.runs,
        workers_list=args.workers,
        seed=args.seed,
        dup_alphabet=args.dup_alphabet,
    )
    print_experiment("k-way merge engines", rows)


# ---------------------------------------------------------------- spilled
def _configure_spilled(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--records", type=int, nargs="+", default=[200_000],
        help="total records per merge cell (budget forces a spill)",
    )
    parser.add_argument(
        "--runs", type=int, nargs="+", default=[8],
        help="presorted run counts to spill and merge",
    )
    parser.add_argument(
        "--workers", type=int, nargs="+", default=[2, 4],
        help="partition/worker counts for the sharded cascade",
    )
    parser.add_argument(
        "--payload-dims", type=int, default=16,
        help="float32 payload columns per record (0 = int64 offsets)",
    )
    parser.add_argument("--dup-alphabet", type=int, default=0)
    parser.add_argument("--seed", type=int, default=7)


def _run_spilled(args: argparse.Namespace, spec: None) -> None:
    rows = run_spilled_merge_sweep(
        args.records,
        args.runs,
        workers_list=args.workers,
        seed=args.seed,
        dup_alphabet=args.dup_alphabet,
        payload_dims=args.payload_dims,
    )
    print_experiment("sharded spilled-run merging", rows)


# ------------------------------------------------------------------ arena
def _configure_arena(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--n", type=int, nargs="+", default=[60_000],
        help="series counts for the scan/fetch cells",
    )
    parser.add_argument("--length", type=int, default=128)
    parser.add_argument(
        "--fetch-fraction", type=float, default=0.3,
        help="fraction of records the skip-sequential fetch visits",
    )
    parser.add_argument(
        "--records", type=int, nargs="+", default=[200_000],
        help="records per spilled-merge cell (empty budget forces a spill)",
    )
    parser.add_argument(
        "--runs", type=int, nargs="+", default=[8],
        help="presorted run counts for the merge cells",
    )
    parser.add_argument(
        "--workers", type=int, nargs="+", default=[1, 2],
        help="merge worker counts (>1 exercises shard arenas too)",
    )
    parser.add_argument("--seed", type=int, default=7)


def _run_arena(args: argparse.Namespace, spec: None) -> None:
    rows = run_arena_sweep(
        args.n,
        length=args.length,
        fetch_fraction=args.fetch_fraction,
        record_counts=args.records,
        run_counts=args.runs,
        workers_list=args.workers,
        seed=args.seed,
    )
    print_experiment(
        "arena vs dict page store",
        rows,
        columns=[
            "workload", "n_series", "records", "runs", "cores",
            "dict_s", "arena_s", "speedup", "identical", "io_identical",
        ],
    )


# ------------------------------------------------------------------ fetch
def _configure_fetch(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--n", type=int, nargs="+", default=[10_000, 50_000],
        help="series counts for the gather/refine cells",
    )
    parser.add_argument("--length", type=int, default=128)
    parser.add_argument(
        "--fetch-fraction", type=float, default=0.3,
        help="fraction of records the skip-sequential gather visits",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="timing repeats per cell (best-of)",
    )
    parser.add_argument("--seed", type=int, default=7)


def _run_fetch(args: argparse.Namespace, spec: None) -> None:
    rows = run_fetch_sweep(
        args.n,
        length=args.length,
        fetch_fraction=args.fetch_fraction,
        seed=args.seed,
        repeats=args.repeats,
    )
    print_experiment(
        "vectorized fetch vs loop oracle",
        rows,
        columns=[
            "workload", "store", "n_series", "cores",
            "loop_s", "vector_s", "speedup", "identical", "io_identical",
        ],
    )


# ----------------------------------------------------------------- faults
def _configure_faults(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--n", type=int, nargs="+", default=[50_000],
        help="series counts for the disabled-hook overhead cells",
    )
    parser.add_argument("--length", type=int, default=128)
    parser.add_argument(
        "--fetch-fraction", type=float, default=0.3,
        help="fraction of records the gather visits",
    )
    parser.add_argument(
        "--repeats", type=int, default=5,
        help="timing repeats per cell (best-of)",
    )
    parser.add_argument(
        "--recovery-seeds", type=int, default=4,
        help="seeded crash/recover schedules per page store",
    )
    parser.add_argument("--seed", type=int, default=7)


def _run_faults(args: argparse.Namespace, spec: None) -> None:
    rows = run_fault_overhead_sweep(
        args.n,
        length=args.length,
        fetch_fraction=args.fetch_fraction,
        seed=args.seed,
        repeats=args.repeats,
        recovery_seeds=args.recovery_seeds,
    )
    print_experiment(
        "fault layer: disabled-hook overhead + recovery smoke",
        rows,
        columns=[
            "workload", "store", "n_series", "cores",
            "bare_s", "hooked_s", "overhead", "identical", "io_identical",
        ],
    )


# ------------------------------------------------------------------ scrub
def _configure_scrub(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--n", type=int, nargs="+", default=[50_000],
        help="series counts for the verified-read overhead cells",
    )
    parser.add_argument("--length", type=int, default=128)
    parser.add_argument(
        "--fetch-fraction", type=float, default=0.3,
        help="fraction of records the gather visits",
    )
    parser.add_argument(
        "--repeats", type=int, default=5,
        help="timing repeats per cell (best-of)",
    )
    parser.add_argument(
        "--scrub-seeds", type=int, default=4,
        help="seeded decay + sweep schedules per page store",
    )
    parser.add_argument("--seed", type=int, default=7)


def _run_scrub(args: argparse.Namespace, spec: None) -> None:
    rows = run_scrub_sweep(
        args.n,
        length=args.length,
        fetch_fraction=args.fetch_fraction,
        seed=args.seed,
        repeats=args.repeats,
        scrub_seeds=args.scrub_seeds,
    )
    print_experiment(
        "integrity: verified-read overhead + scrub/repair smoke",
        rows,
        columns=[
            "workload", "store", "n_series", "cores",
            "plain_s", "verified_s", "overhead", "identical", "io_identical",
        ],
    )


# ------------------------------------------------------------------ space
def _run_space(args: argparse.Namespace, spec: DatasetSpec) -> None:
    rows = run_build_sweep(MATERIALIZED_GROUP + SECONDARY_GROUP, spec, [0.25])
    print_experiment(
        "space overhead",
        rows,
        columns=["index", "index_MB", "n_leaves", "leaf_fill"],
    )


# ---------------------------------------------------------------- updates
def _configure_updates(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--batches", type=int, nargs="+", default=[50, 500, 4000]
    )
    parser.add_argument("--queries", type=int, default=10)


def _run_updates(args: argparse.Namespace, spec: DatasetSpec) -> None:
    rows = run_update_workload(
        ["CTree", "ADS+"], spec, args.batches, n_queries=args.queries
    )
    print_experiment("mixed insert/query workload", rows)


def _configure_serve(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--queries", type=int, default=64)
    parser.add_argument("--workers", type=int, nargs="+", default=[1, 2])
    parser.add_argument("--batch-rows", type=int, default=200)
    parser.add_argument("--batches", type=int, default=10)
    parser.add_argument("--k", type=int, default=3)


def _run_serve(args: argparse.Namespace, spec: DatasetSpec) -> None:
    rows = run_serve_sweep(
        spec,
        n_queries=args.queries,
        workers_list=args.workers,
        batch_rows=args.batch_rows,
        n_batches=args.batches,
        k=args.k,
    )
    print_experiment(
        "online service: concurrent ingest + query serving",
        rows,
        columns=[
            "workers", "cores", "n_series", "ingest_rows_per_s",
            "queries_per_s", "p50_ms", "p99_ms", "served", "shed",
            "degraded_batches", "session_conflicts", "identical",
        ],
    )


#: The single registration table every subcommand lives in.
COMMANDS: tuple[_Command, ...] = (
    _Command("build", "construction vs memory sweep",
             _configure_build, _run_build),
    _Command("query", "query cost experiment",
             _configure_query, _run_query, validate=_validate_query),
    _Command("sched",
             "adaptive scheduler vs fixed plan (shared best-k bounds)",
             _configure_sched, _run_sched),
    _Command("parallel", "build speedup vs worker count",
             _configure_parallel, _run_parallel),
    _Command("merge", "k-way merge engine comparison (heapq vs blockwise)",
             _configure_merge, _run_merge, needs_dataset=False),
    _Command("spilled",
             "sharded parallel spilled-run merge vs the serial sorter",
             _configure_spilled, _run_spilled, needs_dataset=False),
    _Command("arena",
             "arena page store vs the dict-store oracle (zero-copy reads)",
             _configure_arena, _run_arena, needs_dataset=False),
    _Command("fetch",
             "vectorized gather/refine vs the loop-level fetch oracle",
             _configure_fetch, _run_fetch, needs_dataset=False),
    _Command("faults",
             "fault-layer overhead (hooks disabled) + crash-recovery smoke",
             _configure_faults, _run_faults, needs_dataset=False),
    _Command("scrub",
             "integrity: verified-read overhead + seeded scrub/repair smoke",
             _configure_scrub, _run_scrub, needs_dataset=False),
    _Command("space", "index size and fill factors",
             lambda parser: None, _run_space),
    _Command("updates", "mixed insert/query workload",
             _configure_updates, _run_updates),
    _Command("serve",
             "online service: concurrent ingest + query serving",
             _configure_serve, _run_serve),
)

_BY_NAME = {command.name: command for command in COMMANDS}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Run Coconut reproduction experiments from the shell.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    for command in COMMANDS:
        sub = subparsers.add_parser(command.name, help=command.help)
        if command.needs_dataset:
            _add_dataset_arguments(sub)
        command.configure(sub)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    command = _BY_NAME[args.command]
    if command.validate is not None:
        command.validate(parser, args)
    spec = (
        DatasetSpec(args.dataset, args.n, args.length, args.seed)
        if command.needs_dataset
        else None
    )
    command.run(args, spec)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    raise SystemExit(main())
