"""Command-line experiment runner: ``python -m repro.bench``.

Runs one of the paper's experiments at an adjustable scale without
going through pytest — handy for exploring parameter regimes beyond
the calibrated benchmark defaults.

Examples::

    python -m repro.bench build --group secondary --n 20000
    python -m repro.bench build --group materialized --memory 1.0 0.1
    python -m repro.bench query --mode exact --dataset seismic
    python -m repro.bench space --n 15000
    python -m repro.bench updates --batches 100 1000
"""

from __future__ import annotations

import argparse

from .harness import (
    MATERIALIZED_GROUP,
    SECONDARY_GROUP,
    run_build_sweep,
    run_query_experiment,
    run_update_workload,
)
from .report import print_experiment
from .workloads import DatasetSpec


def _add_dataset_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--dataset", default="randomwalk",
        choices=["randomwalk", "seismic", "astronomy"],
    )
    parser.add_argument("--n", type=int, default=10_000, help="series count")
    parser.add_argument("--length", type=int, default=128)
    parser.add_argument("--seed", type=int, default=7)


def _spec(args: argparse.Namespace) -> DatasetSpec:
    return DatasetSpec(args.dataset, args.n, args.length, args.seed)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Run Coconut reproduction experiments from the shell.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    build = commands.add_parser("build", help="construction vs memory sweep")
    _add_dataset_arguments(build)
    build.add_argument(
        "--group", default="secondary", choices=["secondary", "materialized"]
    )
    build.add_argument(
        "--memory", type=float, nargs="+", default=[1.0, 0.05, 0.01],
        help="memory budgets as fractions of the dataset size",
    )

    query = commands.add_parser("query", help="query cost experiment")
    _add_dataset_arguments(query)
    query.add_argument("--mode", default="exact", choices=["exact", "approximate"])
    query.add_argument("--queries", type=int, default=20)
    query.add_argument(
        "--indexes", nargs="+",
        default=["CTree", "CTreeFull", "ADS+", "ADSFull"],
    )

    space = commands.add_parser("space", help="index size and fill factors")
    _add_dataset_arguments(space)

    updates = commands.add_parser("updates", help="mixed insert/query workload")
    _add_dataset_arguments(updates)
    updates.add_argument("--batches", type=int, nargs="+", default=[50, 500, 4000])
    updates.add_argument("--queries", type=int, default=10)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    spec = _spec(args)
    if args.command == "build":
        group = (
            SECONDARY_GROUP if args.group == "secondary" else MATERIALIZED_GROUP
        )
        rows = run_build_sweep(group, spec, args.memory)
        print_experiment(f"construction sweep ({args.group})", rows)
    elif args.command == "query":
        rows = run_query_experiment(
            args.indexes, spec, args.queries, mode=args.mode
        )
        print_experiment(f"{args.mode} query costs", rows)
    elif args.command == "space":
        rows = run_build_sweep(
            MATERIALIZED_GROUP + SECONDARY_GROUP, spec, [0.25]
        )
        print_experiment(
            "space overhead",
            rows,
            columns=["index", "index_MB", "n_leaves", "leaf_fill"],
        )
    elif args.command == "updates":
        rows = run_update_workload(
            ["CTree", "ADS+"], spec, args.batches, n_queries=args.queries
        )
        print_experiment("mixed insert/query workload", rows)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    raise SystemExit(main())
