"""Command-line experiment runner: ``python -m repro.bench``.

Runs one of the paper's experiments at an adjustable scale without
going through pytest — handy for exploring parameter regimes beyond
the calibrated benchmark defaults.

Examples::

    python -m repro.bench build --group secondary --n 20000
    python -m repro.bench build --group materialized --memory 1.0 0.1
    python -m repro.bench build --group secondary --workers 4
    python -m repro.bench query --mode exact --dataset seismic
    python -m repro.bench query --batch --k 5 --indexes CTree Serial
    python -m repro.bench query --batch --workers 4
    python -m repro.bench parallel --index CTreeFull --workers 1 2 4
    python -m repro.bench merge --records 200000 --runs 32 --workers 2 4
    python -m repro.bench spilled --records 200000 --runs 8 --workers 4
    python -m repro.bench arena --n 50000 --records 200000 --workers 1 2
    python -m repro.bench fetch --n 50000
    python -m repro.bench faults --n 50000 --repeats 5
    python -m repro.bench space --n 15000
    python -m repro.bench updates --batches 100 1000

Choosing ``--workers``: worker processes pay a per-chunk transfer
cost, so parallel building pays off once the dataset has at least a
few tens of thousands of series; use one worker per physical core.
``--batch`` answers the whole query workload in one shared pass —
always at least as good as per-query on I/O, and most effective on
exact search where the summary scan dominates.  ``query --batch
--workers N`` additionally runs that shared pass on the multi-worker
engine (range-partitioned lower bounds, shard-parallel fetches) with
identical answers; the speedup needs idle cores.
"""

from __future__ import annotations

import argparse

from .harness import (
    MATERIALIZED_GROUP,
    SECONDARY_GROUP,
    run_arena_sweep,
    run_batch_query_experiment,
    run_build_sweep,
    run_fault_overhead_sweep,
    run_fetch_sweep,
    run_merge_engine_sweep,
    run_parallel_build_sweep,
    run_query_experiment,
    run_spilled_merge_sweep,
    run_update_workload,
)
from .report import print_experiment
from .workloads import DatasetSpec


def _add_dataset_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--dataset", default="randomwalk",
        choices=["randomwalk", "seismic", "astronomy"],
    )
    parser.add_argument("--n", type=int, default=10_000, help="series count")
    parser.add_argument("--length", type=int, default=128)
    parser.add_argument("--seed", type=int, default=7)


def _spec(args: argparse.Namespace) -> DatasetSpec:
    return DatasetSpec(args.dataset, args.n, args.length, args.seed)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Run Coconut reproduction experiments from the shell.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    build = commands.add_parser("build", help="construction vs memory sweep")
    _add_dataset_arguments(build)
    build.add_argument(
        "--group", default="secondary", choices=["secondary", "materialized"]
    )
    build.add_argument(
        "--memory", type=float, nargs="+", default=[1.0, 0.05, 0.01],
        help="memory budgets as fractions of the dataset size",
    )
    build.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for parallel bulk-loading (Coconut indexes)",
    )

    query = commands.add_parser("query", help="query cost experiment")
    _add_dataset_arguments(query)
    query.add_argument("--mode", default="exact", choices=["exact", "approximate"])
    query.add_argument("--queries", type=int, default=20)
    query.add_argument(
        "--indexes", nargs="+",
        default=["CTree", "CTreeFull", "ADS+", "ADSFull"],
    )
    query.add_argument(
        "--batch", action="store_true",
        help="answer the workload as one QueryBatch and compare with per-query",
    )
    query.add_argument(
        "--k", type=int, default=1, help="neighbors per query (batch mode)"
    )
    query.add_argument(
        "--workers", type=int, default=1,
        help="worker count for the multi-worker batched engine "
        "(requires --batch; answers stay identical, speedup needs cores)",
    )

    parallel = commands.add_parser(
        "parallel", help="build speedup vs worker count"
    )
    _add_dataset_arguments(parallel)
    parallel.add_argument("--index", default="CTreeFull")
    parallel.add_argument(
        "--workers", type=int, nargs="+", default=[1, 2, 4],
        help="worker counts to sweep (put 1 first for the baseline)",
    )

    merge = commands.add_parser(
        "merge", help="k-way merge engine comparison (heapq vs blockwise)"
    )
    merge.add_argument(
        "--records", type=int, nargs="+", default=[200_000],
        help="total records per merge cell",
    )
    merge.add_argument(
        "--runs", type=int, nargs="+", default=[32],
        help="presorted run counts to merge",
    )
    merge.add_argument(
        "--workers", type=int, nargs="+", default=[],
        help="also time the parallel range-partitioned in-memory merge",
    )
    merge.add_argument(
        "--dup-alphabet", type=int, default=0,
        help="draw key bytes from this many values (duplicate-heavy keys)",
    )
    merge.add_argument("--seed", type=int, default=7)

    spilled = commands.add_parser(
        "spilled",
        help="sharded parallel spilled-run merge vs the serial sorter",
    )
    spilled.add_argument(
        "--records", type=int, nargs="+", default=[200_000],
        help="total records per merge cell (budget forces a spill)",
    )
    spilled.add_argument(
        "--runs", type=int, nargs="+", default=[8],
        help="presorted run counts to spill and merge",
    )
    spilled.add_argument(
        "--workers", type=int, nargs="+", default=[2, 4],
        help="partition/worker counts for the sharded cascade",
    )
    spilled.add_argument(
        "--payload-dims", type=int, default=16,
        help="float32 payload columns per record (0 = int64 offsets)",
    )
    spilled.add_argument("--dup-alphabet", type=int, default=0)
    spilled.add_argument("--seed", type=int, default=7)

    arena = commands.add_parser(
        "arena",
        help="arena page store vs the dict-store oracle (zero-copy reads)",
    )
    arena.add_argument(
        "--n", type=int, nargs="+", default=[60_000],
        help="series counts for the scan/fetch cells",
    )
    arena.add_argument("--length", type=int, default=128)
    arena.add_argument(
        "--fetch-fraction", type=float, default=0.3,
        help="fraction of records the skip-sequential fetch visits",
    )
    arena.add_argument(
        "--records", type=int, nargs="+", default=[200_000],
        help="records per spilled-merge cell (empty budget forces a spill)",
    )
    arena.add_argument(
        "--runs", type=int, nargs="+", default=[8],
        help="presorted run counts for the merge cells",
    )
    arena.add_argument(
        "--workers", type=int, nargs="+", default=[1, 2],
        help="merge worker counts (>1 exercises shard arenas too)",
    )
    arena.add_argument("--seed", type=int, default=7)

    fetch = commands.add_parser(
        "fetch",
        help="vectorized gather/refine vs the loop-level fetch oracle",
    )
    fetch.add_argument(
        "--n", type=int, nargs="+", default=[10_000, 50_000],
        help="series counts for the gather/refine cells",
    )
    fetch.add_argument("--length", type=int, default=128)
    fetch.add_argument(
        "--fetch-fraction", type=float, default=0.3,
        help="fraction of records the skip-sequential gather visits",
    )
    fetch.add_argument(
        "--repeats", type=int, default=3,
        help="timing repeats per cell (best-of)",
    )
    fetch.add_argument("--seed", type=int, default=7)

    faults = commands.add_parser(
        "faults",
        help="fault-layer overhead (hooks disabled) + crash-recovery smoke",
    )
    faults.add_argument(
        "--n", type=int, nargs="+", default=[50_000],
        help="series counts for the disabled-hook overhead cells",
    )
    faults.add_argument("--length", type=int, default=128)
    faults.add_argument(
        "--fetch-fraction", type=float, default=0.3,
        help="fraction of records the gather visits",
    )
    faults.add_argument(
        "--repeats", type=int, default=5,
        help="timing repeats per cell (best-of)",
    )
    faults.add_argument(
        "--recovery-seeds", type=int, default=4,
        help="seeded crash/recover schedules per page store",
    )
    faults.add_argument("--seed", type=int, default=7)

    space = commands.add_parser("space", help="index size and fill factors")
    _add_dataset_arguments(space)

    updates = commands.add_parser("updates", help="mixed insert/query workload")
    _add_dataset_arguments(updates)
    updates.add_argument("--batches", type=int, nargs="+", default=[50, 500, 4000])
    updates.add_argument("--queries", type=int, default=10)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "query" and args.batch and args.mode != "exact":
        parser.error("--batch compares exact search only; drop --mode")
    if args.command == "query" and not args.batch and args.k != 1:
        parser.error("--k only applies to the batched experiment; add --batch")
    if args.command == "query" and not args.batch and args.workers != 1:
        parser.error("--workers parallelizes the batched engine; add --batch")
    spec = (
        _spec(args)
        if args.command not in ("merge", "spilled", "arena", "fetch", "faults")
        else None
    )
    if args.command == "build":
        group = (
            SECONDARY_GROUP if args.group == "secondary" else MATERIALIZED_GROUP
        )
        rows = run_build_sweep(group, spec, args.memory, workers=args.workers)
        print_experiment(f"construction sweep ({args.group})", rows)
    elif args.command == "query" and args.batch:
        rows = run_batch_query_experiment(
            args.indexes, spec, args.queries, k=args.k,
            query_workers=args.workers,
        )
        print_experiment("batched vs per-query exact search", rows)
    elif args.command == "query":
        rows = run_query_experiment(
            args.indexes, spec, args.queries, mode=args.mode
        )
        print_experiment(f"{args.mode} query costs", rows)
    elif args.command == "parallel":
        rows = run_parallel_build_sweep(args.index, spec, args.workers)
        print_experiment("parallel build scaling", rows)
    elif args.command == "merge":
        rows = run_merge_engine_sweep(
            args.records,
            args.runs,
            workers_list=args.workers,
            seed=args.seed,
            dup_alphabet=args.dup_alphabet,
        )
        print_experiment("k-way merge engines", rows)
    elif args.command == "spilled":
        rows = run_spilled_merge_sweep(
            args.records,
            args.runs,
            workers_list=args.workers,
            seed=args.seed,
            dup_alphabet=args.dup_alphabet,
            payload_dims=args.payload_dims,
        )
        print_experiment("sharded spilled-run merging", rows)
    elif args.command == "arena":
        rows = run_arena_sweep(
            args.n,
            length=args.length,
            fetch_fraction=args.fetch_fraction,
            record_counts=args.records,
            run_counts=args.runs,
            workers_list=args.workers,
            seed=args.seed,
        )
        print_experiment(
            "arena vs dict page store",
            rows,
            columns=[
                "workload", "n_series", "records", "runs", "cores",
                "dict_s", "arena_s", "speedup", "identical", "io_identical",
            ],
        )
    elif args.command == "fetch":
        rows = run_fetch_sweep(
            args.n,
            length=args.length,
            fetch_fraction=args.fetch_fraction,
            seed=args.seed,
            repeats=args.repeats,
        )
        print_experiment(
            "vectorized fetch vs loop oracle",
            rows,
            columns=[
                "workload", "store", "n_series", "cores",
                "loop_s", "vector_s", "speedup", "identical", "io_identical",
            ],
        )
    elif args.command == "faults":
        rows = run_fault_overhead_sweep(
            args.n,
            length=args.length,
            fetch_fraction=args.fetch_fraction,
            seed=args.seed,
            repeats=args.repeats,
            recovery_seeds=args.recovery_seeds,
        )
        print_experiment(
            "fault layer: disabled-hook overhead + recovery smoke",
            rows,
            columns=[
                "workload", "store", "n_series", "cores",
                "bare_s", "hooked_s", "overhead", "identical", "io_identical",
            ],
        )
    elif args.command == "space":
        rows = run_build_sweep(
            MATERIALIZED_GROUP + SECONDARY_GROUP, spec, [0.25]
        )
        print_experiment(
            "space overhead",
            rows,
            columns=["index", "index_MB", "n_leaves", "leaf_fill"],
        )
    elif args.command == "updates":
        rows = run_update_workload(
            ["CTree", "ADS+"], spec, args.batches, n_queries=args.queries
        )
        print_experiment("mixed insert/query workload", rows)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    raise SystemExit(main())
