"""Benchmark harness: workloads, experiment runners, table reports."""

from .harness import (
    INDEX_FACTORIES,
    LEAF_SIZE,
    MATERIALIZED_GROUP,
    PAGE_SIZE,
    SECONDARY_GROUP,
    Environment,
    default_config,
    make_environment,
    run_batch_query_experiment,
    run_build_sweep,
    run_complete_workload,
    run_length_sweep,
    run_parallel_build_sweep,
    run_query_experiment,
    run_scaling_sweep,
    run_update_workload,
)
from .report import format_table, print_experiment
from .workloads import DatasetSpec, UpdateEvent, mixed_workload

__all__ = [
    "DatasetSpec",
    "Environment",
    "INDEX_FACTORIES",
    "LEAF_SIZE",
    "MATERIALIZED_GROUP",
    "PAGE_SIZE",
    "SECONDARY_GROUP",
    "UpdateEvent",
    "default_config",
    "format_table",
    "make_environment",
    "mixed_workload",
    "print_experiment",
    "run_batch_query_experiment",
    "run_build_sweep",
    "run_complete_workload",
    "run_length_sweep",
    "run_parallel_build_sweep",
    "run_query_experiment",
    "run_scaling_sweep",
    "run_update_workload",
]
