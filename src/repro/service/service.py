"""The online index service: crash-safe ingest + query serving.

:class:`CoconutService` composes the repo's pieces into a server:

* **Ingest** streams ``insert_batch`` calls through a WAL-durable
  :class:`~repro.core.lsm.CoconutLSM` on the journal device (possibly a
  :class:`~repro.storage.faults.FaultyDevice`); background compaction
  runs on the sharded merge engine with the service's
  :class:`~repro.parallel.heal.RetryPolicy` and
  :class:`~repro.parallel.heal.HealReport` wired into its healing seam.
  A faulted insert is *recovered in place* — reopen the device, replay
  the manifest, truncate the raw file to the acknowledged watermark —
  before any retry, so a retried batch can never duplicate rows: either
  the faulted attempt's WAL frame verified (the rows survived; the
  retry is skipped and the batch acknowledged) or it did not (the rows
  were truncated away; the retry starts clean).

* **Queries** enter through a bounded
  :class:`~repro.service.admission.AdmissionQueue` with per-request
  deadlines, are coalesced into shared-SIMS batches by the batch-window
  scheduler (grouped by ``(mode, k)``, planned by
  :func:`~repro.parallel.sched.plan_query_batch` through the engines),
  and are served against :class:`~repro.service.snapshot.ServiceSnapshot`
  state over read-only :class:`~repro.storage.disk.ShardedDisk`
  sessions — readers never observe a half-flushed run, and answers are
  exact over the snapshot's raw watermark, which every served ticket
  reports.

* **Degradation** is graceful and counted: transient serve faults
  retry on fresh wrappers, other faults fall back to the serial engines
  on the snapshot's pre-attached read-only shard; a concurrent writing
  session (a compaction mid-commit) fences the parent disk, so the
  multi-worker path degrades onto that same shard — the one read path a
  commit window cannot block.  When the
  journal device crash-latches, ingest rejects with
  :data:`~repro.service.admission.REJECT_CRASHED` until ``restart()``,
  while queries keep serving the last good snapshot — reads own their
  device handle and do not route through the ingest journal.

Two serving modes share all of the above: ``serve_pending()`` pumps the
queue inline (deterministic tests drive it with a manual clock), and
``start()``/``stop()`` run the batch-window loop on a server thread
(the benchmark's mixed read/write traffic).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np

from ..core.lsm import CoconutLSM
from ..summaries.sax import SAXConfig
from ..indexes.base import BuildReport, QueryBatch
from ..parallel.heal import RetryPolicy
from ..parallel.sched import run_sims_query_batch
from ..storage.disk import PageError, SimulatedDisk
from ..storage.faults import (
    CorruptionError,
    DeviceCrash,
    FaultError,
    TransientIOError,
)
from ..storage.integrity import Scrubber, ScrubReport
from ..storage.seriesfile import RawSeriesFile
from .admission import (
    REJECT_CRASHED,
    REJECT_DEADLINE,
    REJECT_SHUTDOWN,
    SHED_DEVICE_FAULT,
    AdmissionError,
    AdmissionQueue,
    QueryTicket,
)
from .snapshot import SERVE_POOL_PAGES, ServiceSnapshot, serve_snapshot_batch
from .stats import ServiceStats

__all__ = [
    "ServiceConfig",
    "ServiceUnavailable",
    "IngestReceipt",
    "CoconutService",
]

_UNSET = object()


class ServiceUnavailable(RuntimeError):
    """The service cannot take this request; ``reason`` says why."""

    def __init__(self, reason: str, message: str):
        super().__init__(message)
        self.reason = reason


@dataclass(frozen=True)
class ServiceConfig:
    """Admission, batching, serving and healing knobs in one place."""

    #: Bounded admission queue capacity; full -> reject ``queue_full``.
    queue_capacity: int = 64
    #: Most queries coalesced into one serving batch.
    max_batch_queries: int = 16
    #: How long the server thread holds a batch window open for company.
    batch_window_s: float = 0.002
    #: Default per-request deadline (None = no deadline).
    default_timeout_s: "float | None" = None
    #: Shed a ticket this close to (or past) its deadline at serve time.
    deadline_margin_s: float = 0.0
    #: Worker count for the serving engines (1 = snapshot serial path).
    query_workers: int = 1
    query_pool_kind: str = "auto"
    scheduler: str = "adaptive"
    bound_sharing: str = "auto"
    #: Retry/backoff for ingest recovery and serve-session healing.
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    serve_pool_pages: int = SERVE_POOL_PAGES
    latency_capacity: int = 4096
    #: Hash every serve-path page against the disk's checksum sidecar
    #: (:mod:`repro.storage.integrity`); a corrupt page raises — and
    #: heals via scrub + serial retry — instead of being served.
    verified_reads: bool = False
    #: Background scrub cadence: one bounded :meth:`Scrubber.step`
    #: under the ingest lock after every N acknowledged ingest batches
    #: (0 disables background scrubbing; ``scrub_now()`` still works
    #: whenever integrity is armed).
    scrub_every_batches: int = 0
    #: Page budget per background scrub step — the longest serving can
    #: wait on the ingest lock for the sake of a sweep.
    scrub_pages_per_step: int = 256


@dataclass
class IngestReceipt:
    """Acknowledgement of one durable ingest batch."""

    first_index: int  # raw-file index of the batch's first row
    n_rows: int
    n_attempts: int = 1
    recovered: bool = False  # an in-place recovery ran before the ack
    deduplicated: bool = False  # the batch was already durable (lost ack)


class CoconutService:
    """Crash-safe concurrent ingest + query serving over one LSM.

    ``disk`` is the underlying :class:`SimulatedDisk`; ``device`` (the
    journal device the LSM writes through) defaults to it and may be a
    fault-injecting wrapper.  ``raw`` is the shared raw series file —
    the durable source of truth — conventionally on the bare disk, as
    in the recovery suite.  Call :meth:`bootstrap` once to bulk-load
    the WAL-backed LSM over the raw file's current rows before serving.
    """

    def __init__(
        self,
        disk: SimulatedDisk,
        raw: RawSeriesFile,
        memory_bytes: int,
        sax_config: "SAXConfig | None" = None,
        config: "ServiceConfig | None" = None,
        device=None,
        size_ratio: int = 4,
        lsm_workers: int = 1,
        lsm_pool_kind: str = "thread",
        wal_id: int = 1,
        clock=time.monotonic,
        wrap_serve_device=None,
    ):
        self.disk = disk
        self.device = device if device is not None else disk
        self.raw = raw
        self.memory_bytes = memory_bytes
        self.config = config or ServiceConfig()
        self.clock = clock
        self.wrap_serve_device = wrap_serve_device
        # Integrity must be armed before the LSM exists: the sidecar
        # blesses everything already on disk (the pre-loaded raw rows),
        # and every write from here on records through the consumers —
        # a map created any later would hold zero-page expectations for
        # pages the WAL or a flush already wrote.
        self._scrubber: "Scrubber | None" = None
        self._batches_since_scrub = 0
        if self.integrity_armed:
            if getattr(disk, "checksums", None) is None:
                disk.enable_integrity()
            if self.config.verified_reads:
                raw.verified_reads = True
        self._lsm_kwargs = dict(
            workers=lsm_workers,
            pool_kind=lsm_pool_kind,
        )
        self.stats = ServiceStats(self.config.latency_capacity)
        self.queue = AdmissionQueue(self.config.queue_capacity, clock)
        self._ingest_lock = threading.Lock()
        self._serve_lock = threading.Lock()
        self._state = "ready"  # "ready" | "crashed" | "stopped"
        self._snapshot: "ServiceSnapshot | None" = None
        self._snapshot_src: "CoconutLSM | None" = None
        self._stop_event = threading.Event()
        self._thread: "threading.Thread | None" = None
        self._lsm = CoconutLSM(
            self.device,
            memory_bytes,
            config=sax_config,
            size_ratio=size_ratio,
            durability="wal",
            wal_id=wal_id,
            **self._lsm_kwargs,
        )
        self._wire_lsm()

    def _wire_lsm(self) -> None:
        self._lsm._heal_policy = self.config.retry
        self._lsm._heal_report = self.stats.heal
        if self.integrity_armed:
            # Rebind the scrubber whenever the LSM is replaced
            # (recovery): its run targets and rebuild seam must point
            # at the live index.
            self._scrubber = Scrubber(
                self.disk,
                lsm=self._lsm,
                raw=self.raw,
                pages_per_step=self.config.scrub_pages_per_step,
            )

    @property
    def integrity_armed(self) -> bool:
        """Whether the integrity plane (sidecar + scrubber) is active."""
        return (
            self.config.verified_reads or self.config.scrub_every_batches > 0
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def bootstrap(self) -> BuildReport:
        """Bulk-load the WAL-backed LSM over the raw file's rows."""
        with self._ingest_lock:
            report = self._lsm.build(self.raw)
            self._refresh_snapshot_locked()
        return report

    def start(self) -> None:
        """Run the batch-window serving loop on a server thread."""
        if self._thread is not None:
            raise RuntimeError("service already started")
        if self._state == "stopped":
            raise RuntimeError("service is stopped")
        self._stop_event.clear()
        self._thread = threading.Thread(
            target=self._serve_loop, name="coconut-serve", daemon=True
        )
        self._thread.start()

    def stop(self, drain: bool = True) -> None:
        """Stop serving; new submissions reject with ``shutting_down``.

        ``drain=True`` lets queued tickets finish (the server thread
        keeps collecting until the queue is empty); ``drain=False``
        sheds them — with the reason reported on each ticket, never
        silently.
        """
        self._state = "stopped"
        if not drain:
            self._shed_queued(REJECT_SHUTDOWN)
        self._stop_event.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        # Anything still queued (inline mode, or a late racing admit):
        # shed with the reason reported on the ticket.
        self._shed_queued(REJECT_SHUTDOWN)

    def restart(self) -> None:
        """Power-cycle after a crash: reopen, recover, resume ingest.

        Every acknowledged insert survives: recovery truncates the raw
        file back to the acknowledged watermark and rebuilds runs and
        memtable from the manifest + raw rows (see ``docs/robustness.md``).
        """
        if self._state == "stopped":
            raise RuntimeError("service is stopped")
        with self._ingest_lock:
            self._recover_locked()
            self._state = "ready"
            self.stats.on_restart()

    @property
    def state(self) -> str:
        return self._state

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def ingest(
        self, data: np.ndarray, expected_first: "int | None" = None
    ) -> IngestReceipt:
        """Durably insert a batch; returns only after the WAL ack.

        Transient faults recover in place and retry per the configured
        :class:`RetryPolicy`; a crash (or exhausted retries) raises
        :class:`ServiceUnavailable` and latches the ``crashed`` state —
        queries keep serving the last good snapshot, ingest resumes
        after :meth:`restart`.

        ``expected_first`` is the client's stream offset — the raw-file
        index it expects this batch to land at.  It is what turns the
        at-least-once retry loop into exactly-once: when a crash eats
        the *acknowledgement* of a batch whose WAL frame had already
        verified (the batch is durable, the client just never heard),
        the post-restart retry arrives with an ``expected_first`` below
        the recovered watermark and is deduplicated instead of appended
        twice.  An offset past the watermark is a client-side gap and
        raises ``ValueError``.
        """
        data = np.asarray(data, dtype=np.float32)
        if self._state != "ready":
            self.stats.on_ingest_rejected()
            raise ServiceUnavailable(
                REJECT_CRASHED if self._state == "crashed" else REJECT_SHUTDOWN,
                f"service is {self._state}; ingest unavailable",
            )
        t0 = self.clock()
        policy = self.config.retry
        with self._ingest_lock:
            before = self.raw.n_series
            if expected_first is not None and expected_first != before:
                if expected_first > before:
                    raise ValueError(
                        f"ingest gap: client offset {expected_first} is past "
                        f"the durable watermark {before}"
                    )
                # Whole batches are atomic under recovery truncation, so
                # a re-sent batch is either entirely durable or not at all.
                if expected_first + len(data) > before:
                    raise ValueError(
                        f"ingest overlap: batch [{expected_first}, "
                        f"{expected_first + len(data)}) straddles the "
                        f"durable watermark {before}"
                    )
                return IngestReceipt(
                    first_index=expected_first,
                    n_rows=len(data),
                    n_attempts=0,
                    deduplicated=True,
                )
            recovered = False
            attempts = 0
            last: "Exception | None" = None
            for index in range(policy.retries + 1):
                attempts += 1
                try:
                    self._lsm.insert_batch(data)
                except TransientIOError as error:
                    last = error
                    self.stats.on_ingest_retry()
                    recovered = True
                    try:
                        self._recover_locked()
                    except FaultError as fatal:
                        self._enter_crashed_locked()
                        raise ServiceUnavailable(
                            REJECT_CRASHED, f"recovery failed: {fatal}"
                        ) from fatal
                    if self.raw.n_series > before:
                        # The faulted attempt's WAL frame had verified
                        # before the fault hit (e.g. during the flush):
                        # the batch is durable, so acknowledge it rather
                        # than re-inserting a duplicate.
                        break
                    if index < policy.retries:
                        time.sleep(policy.delay(index))
                    continue
                except FaultError as error:
                    self._enter_crashed_locked()
                    raise ServiceUnavailable(
                        REJECT_CRASHED, f"ingest fault: {error}"
                    ) from error
                break
            else:
                # Transient retries exhausted; state was recovered to the
                # acknowledged watermark, so the service stays available
                # and only this batch is refused.
                self.stats.on_ingest_rejected()
                raise ServiceUnavailable(
                    "ingest_retries_exhausted",
                    f"ingest failed after {policy.retries + 1} attempts: {last}",
                )
            self._refresh_snapshot_locked()
            self._maybe_scrub_locked()
        self.stats.on_ingest(len(data), self.clock() - t0)
        return IngestReceipt(
            first_index=before,
            n_rows=len(data),
            n_attempts=attempts,
            recovered=recovered,
        )

    # ------------------------------------------------------------------
    # Scrubbing
    # ------------------------------------------------------------------
    def scrub_now(self) -> ScrubReport:
        """Run one full integrity sweep now; repairs land in stats."""
        if self._scrubber is None:
            raise PageError(
                "scrubbing requires integrity (set verified_reads or "
                "scrub_every_batches on ServiceConfig)"
            )
        with self._ingest_lock:
            return self._scrub_locked(full=True)

    def _maybe_scrub_locked(self) -> None:
        every = self.config.scrub_every_batches
        if self._scrubber is None or every <= 0:
            return
        self._batches_since_scrub += 1
        if self._batches_since_scrub < every:
            return
        self._batches_since_scrub = 0
        self._scrub_locked(full=False)

    def _scrub_locked(self, full: bool) -> ScrubReport:
        """One bounded step (or a whole sweep) under the ingest lock.

        Read-only serving sessions are never stalled: scrub reads ride
        the diagnostics plane, and holding the ingest lock only keeps
        flushes and compactions from moving the targets mid-scan.
        """
        scrubber = self._scrubber
        report = scrubber.sweep() if full else scrubber.step()
        self.stats.on_scrub(
            report, self.raw.n_series, len(scrubber.unrepairable)
        )
        if (
            report.repaired_pages or report.rebuilt_runs
        ) and self._state == "ready":
            # Serve the repaired content from the next batch on.  In
            # the crashed state the last good snapshot stays as-is (a
            # broken index must never be re-snapshotted); its shard
            # reads the repaired pages in place regardless.
            self._refresh_snapshot_locked()
        return report

    def _enter_crashed_locked(self) -> None:
        self._state = "crashed"
        self.stats.on_ingest_rejected()
        self.stats.on_crash()

    def _recover_locked(self) -> None:
        """Reopen the device and recover the LSM (under the ingest lock).

        Recovery itself reads through the journal device, so it heals
        the same way ingest does: reopen + retry on transient or crash
        faults, up to the policy's attempt budget.
        """
        policy = self.config.retry
        last: "FaultError | None" = None
        for index in range(policy.retries + 1):
            if hasattr(self.device, "reopen"):
                self.device.reopen()
            try:
                self._lsm = CoconutLSM.recover(
                    self.device, self.raw, **self._lsm_kwargs
                )
                break
            except (TransientIOError, DeviceCrash) as error:
                last = error
                if index < policy.retries:
                    time.sleep(policy.delay(index))
            except CorruptionError as error:
                if self._scrubber is None:
                    raise
                last = error
                # A verified raw read refused flipped bytes mid-replay,
                # which would otherwise fail recovery on every attempt.
                # Replay truncates the raw file *before* reading it, so
                # a raw-only sweep now covers exactly the acknowledged
                # rows: heal what it can (single-bit decay) and retry.
                pre = Scrubber(
                    self.disk,
                    raw=self.raw,
                    pages_per_step=self.config.scrub_pages_per_step,
                )
                report = pre.sweep()
                self.stats.on_scrub(
                    report, self.raw.n_series, len(pre.unrepairable)
                )
        else:
            raise last
        self._wire_lsm()
        self.stats.on_recovery()
        if self._scrubber is not None:
            # Recovery rewrote runs and truncated raw; re-verify the
            # whole live surface so the sweep watermark is honest.
            self._scrub_locked(full=True)
        self._refresh_snapshot_locked()

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def _refresh_snapshot_locked(self) -> None:
        self._snapshot = ServiceSnapshot(self._lsm, self.disk)
        self._snapshot_src = self._lsm

    def current_snapshot(self) -> ServiceSnapshot:
        """The freshest consistent snapshot the service can serve from.

        In the ``crashed`` state the last good snapshot is returned
        as-is (the broken index must not be re-snapshotted); otherwise
        the cache is refreshed under the ingest lock whenever the LSM's
        ``state_version`` moved.
        """
        if self._state == "crashed":
            snapshot = self._snapshot
            if snapshot is None:
                raise ServiceUnavailable(
                    REJECT_CRASHED, "crashed before any snapshot was taken"
                )
            return snapshot
        with self._ingest_lock:
            if (
                self._snapshot is None
                or self._snapshot_src is not self._lsm
                or self._snapshot.state_version != self._lsm.state_version
            ):
                self._refresh_snapshot_locked()
            return self._snapshot

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def submit(
        self,
        query: np.ndarray,
        mode: str = "exact",
        k: int = 1,
        timeout_s=_UNSET,
    ) -> QueryTicket:
        """Admit one query; returns its ticket (or raises AdmissionError).

        The ticket completes when a serving batch picks it up —
        inline via :meth:`serve_pending` or on the server thread — and
        reports either answers (exact over the snapshot watermark it
        carries) or a shed reason.
        """
        # Malformed requests are bugs, not load: fail loudly before
        # touching admission accounting.
        if mode not in ("exact", "approximate"):
            raise ValueError(f"mode must be exact|approximate, got {mode!r}")
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        if mode == "approximate" and k != 1:
            raise ValueError("approximate requests answer 1-NN only")
        query = np.asarray(query, dtype=np.float64).ravel()
        now = self.clock()
        if self._state == "stopped":
            self.stats.on_rejected(REJECT_SHUTDOWN)
            raise AdmissionError(REJECT_SHUTDOWN, "service is stopped")
        timeout = (
            self.config.default_timeout_s if timeout_s is _UNSET else timeout_s
        )
        deadline = None if timeout is None else now + timeout
        if deadline is not None and deadline <= now:
            self.stats.on_rejected(REJECT_DEADLINE)
            raise AdmissionError(REJECT_DEADLINE, "deadline expired on arrival")
        ticket = QueryTicket(query, mode, k, now, deadline)
        try:
            self.queue.admit(ticket)
        except AdmissionError as error:
            self.stats.on_rejected(error.reason)
            raise
        self.stats.on_submitted()
        return ticket

    def query(
        self, query: np.ndarray, mode: str = "exact", k: int = 1, timeout_s=_UNSET
    ) -> QueryTicket:
        """Submit + wait convenience: inline when no server thread runs."""
        ticket = self.submit(query, mode=mode, k=k, timeout_s=timeout_s)
        if self._thread is None:
            self.serve_pending()
        else:
            ticket.wait()
        return ticket

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def serve_pending(self, max_batches: "int | None" = None) -> int:
        """Inline pump: drain and serve queued tickets on this thread."""
        n_batches = 0
        while max_batches is None or n_batches < max_batches:
            tickets = self.queue.drain(self.config.max_batch_queries)
            if not tickets:
                break
            self._serve_once(tickets)
            n_batches += 1
        return n_batches

    def _serve_loop(self) -> None:
        while True:
            tickets = self.queue.collect(
                self.config.max_batch_queries,
                self.config.batch_window_s,
                self._stop_event,
            )
            if tickets:
                self._serve_once(tickets)
            elif self._stop_event.is_set():
                return

    def _serve_once(self, tickets: "list[QueryTicket]") -> None:
        with self._serve_lock:
            now = self.clock()
            ready: "list[QueryTicket]" = []
            for ticket in tickets:
                if ticket.expired(now, self.config.deadline_margin_s):
                    ticket._shed(REJECT_DEADLINE, now)
                    self.stats.on_shed(REJECT_DEADLINE)
                else:
                    ready.append(ticket)
            if not ready:
                return
            try:
                snapshot = self.current_snapshot()
            except ServiceUnavailable:
                now = self.clock()
                for ticket in ready:
                    ticket._shed(SHED_DEVICE_FAULT, now)
                    self.stats.on_shed(SHED_DEVICE_FAULT)
                return
            # Coalesce by (mode, k): each group is one shared-SIMS (or
            # shared-window) batch over the same snapshot.
            groups: "dict[tuple[str, int], list[QueryTicket]]" = {}
            for ticket in ready:
                groups.setdefault((ticket.mode, ticket.k), []).append(ticket)
            for (mode, k), group in groups.items():
                batch = QueryBatch(
                    np.stack([t.query for t in group]), k=k, mode=mode
                )
                try:
                    ids, distances, degraded, conflict = self._serve_batch(
                        snapshot, batch
                    )
                    served_watermark = snapshot.n_series
                except CorruptionError:
                    # A verified read refused to serve flipped bytes.
                    # Heal — scrub + repair under the ingest lock — and
                    # retry once on the serial engine over the repaired
                    # snapshot; counted, never silent.
                    healed = self._heal_corruption(batch)
                    if healed is None:
                        now = self.clock()
                        for ticket in group:
                            ticket._shed(SHED_DEVICE_FAULT, now)
                            self.stats.on_shed(SHED_DEVICE_FAULT)
                        continue
                    ids, distances, served_watermark = healed
                    degraded, conflict = True, False
                except FaultError:
                    # Serving faulted beyond every fallback: report it
                    # on each ticket rather than dropping or crashing
                    # the serve loop.
                    now = self.clock()
                    for ticket in group:
                        ticket._shed(SHED_DEVICE_FAULT, now)
                        self.stats.on_shed(SHED_DEVICE_FAULT)
                    continue
                now = self.clock()
                for i, ticket in enumerate(group):
                    ticket._serve(
                        ids[i], distances[i], served_watermark, now, degraded
                    )
                    self.stats.on_served(ticket.latency_s, degraded)
                self.stats.on_batch(degraded, conflict)

    def _serve_batch(self, snapshot: ServiceSnapshot, batch: QueryBatch):
        """Serve one coalesced batch; returns (ids, distances, degraded, conflict)."""
        workers = self.config.query_workers
        if workers is None or workers > 1:
            view = snapshot.frozen_view()
            try:
                report = run_sims_query_batch(
                    view,
                    batch,
                    query_workers=workers,
                    query_pool_kind=self.config.query_pool_kind,
                    scheduler=self.config.scheduler,
                    bound_sharing=self.config.bound_sharing,
                    wrap_device=self.wrap_serve_device,
                    heal_report=self.stats.heal,
                )
                return report.knn_ids, report.knn_distances, False, False
            except FaultError:
                raise
            except PageError:
                # A writing session (a compaction mid-commit) fences the
                # parent: degrade to the serial pass on the snapshot's
                # pre-attached read-only shard, which keeps reading the
                # snapshot's committed pages through the fence.
                ids, distances = _serial_answers(snapshot, batch)
                return ids, distances, True, True
        ids, distances, degraded = serve_snapshot_batch(
            snapshot,
            batch,
            wrap_device=self.wrap_serve_device,
            policy=self.config.retry,
            heal_report=self.stats.heal,
            pool_pages=self.config.serve_pool_pages,
            verified_reads=self.config.verified_reads,
        )
        return ids, distances, degraded, False

    def _heal_corruption(self, batch: QueryBatch):
        """Serve-path corruption heal: scrub, repair, one serial retry.

        Returns ``(ids, distances, watermark)`` answered over the
        repaired snapshot, or ``None`` when the damage is unrepairable
        (raw multi-bit decay) — the retry's verified reads refuse
        again, the tickets are shed with the reason reported, and the
        pages stay quarantined.
        """
        if self._scrubber is None:
            return None
        with self._ingest_lock:
            self._scrub_locked(full=True)
        self.stats.on_corruption_heal()
        try:
            snapshot = self.current_snapshot()
            ids, distances = _serial_answers(snapshot, batch)
        except (ServiceUnavailable, FaultError):
            return None
        return ids, distances, snapshot.n_series

    def _shed_queued(self, reason: str) -> None:
        now = self.clock()
        for ticket in self.queue.drain_all():
            ticket._shed(reason, now)
            self.stats.on_shed(reason)

    # ------------------------------------------------------------------
    # Health surface
    # ------------------------------------------------------------------
    def stats_snapshot(self) -> dict:
        """The :class:`ServiceStats` export + queue depth + LSM counters."""
        return self.stats.snapshot(
            queue_depth=self.queue.depth, lsm=self._lsm
        )


def _serial_answers(snapshot: ServiceSnapshot, batch: QueryBatch):
    """The degraded serial pass on the snapshot's read-only shard."""
    from .snapshot import _answer_on

    return _answer_on(snapshot.frozen_view(), batch, snapshot.shard)
