"""Snapshot-isolated serving state for the online service.

A :class:`ServiceSnapshot` freezes the queryable state of a
:class:`~repro.core.lsm.CoconutLSM` at one instant: the run list, the
memtable's summary arrays, and the raw file's row watermark.  All three
are cheap shallow copies, and they stay valid forever:

* runs are immutable once committed — compaction *replaces* entries in
  the LSM's own list, it never mutates a ``_Run`` or frees its pages
  (the simulated disk is append-only), so a snapshot's run files remain
  readable even after compaction has superseded them;
* memtable batches are appended as whole immutable arrays and the
  lists are cleared (not mutated element-wise) on flush, so a copied
  list keeps its arrays alive untouched;
* the raw watermark is pinned by :meth:`RawSeriesFile.view`, which
  copies ``n_series`` at creation — rows appended later are invisible
  to the view's bounds checks and scans.

``frozen_view`` rebases everything onto the *underlying* simulated
disk, not the LSM's (possibly fault-wrapped) journal device: the read
path owns its device handle, so queries keep serving the last snapshot
even while the ingest device sits crash-latched awaiting ``restart()``.

Each snapshot also carries a long-lived zero-extent **read-only**
:class:`~repro.storage.disk.ShardedDisk` session, created at snapshot
time (under the service's ingest lock, when no writing session can be
attached).  Read-only sessions never fence the parent, and — the
crucial half — their reads keep working *while* a writing session (a
compaction mid-commit) fences it: the shard reads pages committed
before the session directly, which is exactly the snapshot's content.
That session is what makes serving immune to the flush/compaction
commit window; the boundary is pinned by the sharded-storage tests.

Serve-time faults are injected through the service's
``wrap_serve_device`` seam and healed by
:func:`repro.parallel.heal.run_self_healing` — transients retry with a
fresh wrapper and buffer pool, anything else degrades to a serial pass
on the unwrapped snapshot shard, answers bit-identical either way.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from ..core.lsm import CoconutLSM
from ..parallel.batch import batched_exact_knn
from ..parallel.heal import RetryPolicy, run_self_healing
from ..storage.bufferpool import BufferPool
from ..storage.disk import ShardedDisk

__all__ = ["SERVE_POOL_PAGES", "ServiceSnapshot", "serve_snapshot_batch"]

#: Buffer-pool pages per serving attempt (matches the query engines).
SERVE_POOL_PAGES = 64


class ServiceSnapshot:
    """An immutable view of the LSM's queryable state at one version.

    Must be constructed while no writing session is attached to
    ``base_disk`` (the service constructs snapshots under its ingest
    lock, which also serializes flush/compaction).
    """

    def __init__(self, lsm: CoconutLSM, base_disk):
        self.base_disk = base_disk
        self.config = lsm.config
        self.memory_bytes = lsm.memory_bytes
        self.size_ratio = lsm.size_ratio
        self.state_version = lsm.state_version
        self.n_series = lsm.raw.n_series
        # Rebase run I/O and the raw view onto the underlying disk so
        # serving never routes through the ingest journal's device.
        self._runs = [
            replace(run, file=run.file.attach(base_disk)) for run in lsm._runs
        ]
        self._mem_keys = list(lsm._mem_keys)
        self._mem_offsets = list(lsm._mem_offsets)
        self._mem_records = lsm._mem_records
        self._raw = lsm.raw.view(base_disk)  # pins n_series
        # The fence-proof read path: a floating read-only session whose
        # shard reads the snapshot's (pre-session) pages even while a
        # writing session fences the parent.
        self._session = ShardedDisk(
            base_disk,
            [(0, 0)],
            names=[f"serve-v{self.state_version}"],
            read_only=True,
        )
        self.shard = self._session.shards[0]

    def frozen_view(self, device=None) -> CoconutLSM:
        """A read-only ``CoconutLSM`` facade over the frozen state.

        Quacks like a built LSM for every query entry point (the
        per-query searches, ``_prepare_sims*``, the batched engines,
        ``plan_query_batch``), but shares no mutable state with the
        live index: updating methods are unreachable because the
        service never calls them on a view.  ``device`` rebinds the
        facade's own reads (default: the parent disk).
        """
        view = CoconutLSM.__new__(CoconutLSM)
        view.disk = device if device is not None else self.base_disk
        view.memory_bytes = self.memory_bytes
        view.config = self.config
        view.size_ratio = self.size_ratio
        view.workers = 1
        view.pool_kind = "thread"
        view.merge_engine = "vectorized"
        view.durability = None
        view.wal_id = 0
        view._wal = None
        view._runs = self._runs
        view._mem_keys = self._mem_keys
        view._mem_offsets = self._mem_offsets
        view._mem_lsns = []
        view._mem_records = self._mem_records
        view.n_flushes = 0
        view.n_merges = 0
        view.n_rebuilt_runs = 0
        view.n_degraded_compactions = 0
        view.state_version = self.state_version
        view._heal_policy = None
        view._heal_report = None
        view.raw = self._raw
        view.built = True
        return view


def _answer_on(view: CoconutLSM, batch, device):
    """Answer ``batch`` on the frozen view with all reads on ``device``.

    Mirrors the serial batched engines exactly: approximate batches are
    the shared-window probe pass; exact batches seed each query with
    its approximate answer and run the shared SIMS kNN scan.  Returns
    ``(ids, distances)`` — per query, ascending ``(distance, id)``.
    """
    queries = np.atleast_2d(np.asarray(batch.queries, dtype=np.float64))
    order, ctx = view._approx_visit_order(queries)
    pairs = view._approx_answer_subset(queries, ctx, order, device=device)
    if batch.mode == "approximate":
        results = [None] * len(queries)
        for qi, result in pairs:
            results[qi] = result
        ids = [
            [r.answer_idx] if r is not None and r.answer_idx >= 0 else []
            for r in results
        ]
        distances = [
            [r.distance] if r is not None and r.answer_idx >= 0 else []
            for r in results
        ]
        return ids, distances
    seeds: "list[list[tuple[float, int]]]" = [[] for _ in range(len(queries))]
    for qi, result in pairs:
        seeds[qi] = [(result.distance, result.answer_idx)]
    words, make_fetch = view._prepare_sims_parallel()
    outcomes = batched_exact_knn(
        queries, batch.k, words, view.config, make_fetch(device), seeds
    )
    return (
        [list(outcome.answer_ids) for outcome in outcomes],
        [list(outcome.distances) for outcome in outcomes],
    )


def serve_snapshot_batch(
    snapshot: ServiceSnapshot,
    batch,
    wrap_device=None,
    policy: "RetryPolicy | None" = None,
    heal_report=None,
    pool_pages: int = SERVE_POOL_PAGES,
    verified_reads: bool = False,
):
    """Serve one coalesced batch against a snapshot, self-healing.

    Each attempt routes the snapshot shard through
    ``wrap_device(shard, 0, attempt)`` when the fault seam is armed and
    streams reads through a fresh private buffer pool.  Transient
    faults retry on a fresh wrapper; any other fault degrades to the
    same serial pass on the unwrapped shard.  Read-only shards have
    nothing to roll back, so a faulted attempt leaves no trace.

    ``verified_reads`` arms the attempt pools' checksum verification
    (:mod:`repro.storage.integrity`): a run page flipped at rest raises
    :class:`~repro.storage.faults.CorruptionError` out of the whole
    call — past the serial fallback, which reads the same pages — so
    the service can scrub-repair and retry rather than serve from a
    corrupt page.

    Returns ``(ids, distances, degraded)``.
    """
    view = snapshot.frozen_view()

    def attempt(attempt_index: int):
        device = (
            snapshot.shard
            if wrap_device is None
            else wrap_device(snapshot.shard, 0, attempt_index)
        )
        with BufferPool(device, pool_pages, verified_reads=verified_reads) as pool:
            return _answer_on(view, batch, pool)

    outcome = run_self_healing(
        attempt,
        fallback=lambda: None,
        policy=policy,
        label="service batch",
        report=heal_report,
    )
    if outcome is not None:
        ids, distances = outcome
        return ids, distances, False
    ids, distances = _answer_on(view, batch, snapshot.shard)
    return ids, distances, True
