"""Online index service: crash-safe concurrent ingest + query serving.

The "millions of users" composition of the repo's pieces
(`docs/service.md`): a WAL-durable :class:`~repro.core.lsm.CoconutLSM`
ingest path with in-place crash recovery, a bounded admission queue
with per-request deadlines and load shedding, a batch-window scheduler
coalescing concurrent queries into shared-SIMS batches, and
snapshot-isolated serving over read-only
:class:`~repro.storage.disk.ShardedDisk` sessions — with self-healing
retries, graceful degradation to the serial engines, and a
:class:`~repro.service.stats.ServiceStats` health surface.
"""

from .admission import (
    REJECT_CRASHED,
    REJECT_DEADLINE,
    REJECT_QUEUE_FULL,
    REJECT_SHUTDOWN,
    SHED_DEVICE_FAULT,
    AdmissionError,
    AdmissionQueue,
    QueryTicket,
)
from .service import (
    CoconutService,
    IngestReceipt,
    ServiceConfig,
    ServiceUnavailable,
)
from .snapshot import SERVE_POOL_PAGES, ServiceSnapshot, serve_snapshot_batch
from .stats import LatencyWindow, ServiceStats

__all__ = [
    "REJECT_CRASHED",
    "REJECT_DEADLINE",
    "REJECT_QUEUE_FULL",
    "REJECT_SHUTDOWN",
    "SERVE_POOL_PAGES",
    "SHED_DEVICE_FAULT",
    "AdmissionError",
    "AdmissionQueue",
    "CoconutService",
    "IngestReceipt",
    "LatencyWindow",
    "QueryTicket",
    "ServiceConfig",
    "ServiceSnapshot",
    "ServiceStats",
    "ServiceUnavailable",
    "serve_snapshot_batch",
]
