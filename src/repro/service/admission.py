"""Bounded admission control for the online index service.

Every query enters :class:`CoconutService` through one
:class:`AdmissionQueue`.  The queue is the service's only buffer and it
is *bounded*: when it is full, new requests are rejected immediately
with :data:`REJECT_QUEUE_FULL` — backpressure surfaces at the edge
instead of hiding in an unbounded list that converts overload into
latency and memory growth.

A request is a :class:`QueryTicket`.  Tickets move through exactly one
of three terminal states, and every one of them is *reported* — a
ticket is never silently dropped:

* ``"served"`` — answered against a snapshot; carries the answers, the
  snapshot watermark they are exact over, and the end-to-end latency;
* ``"shed"`` — admitted but dropped before completion (deadline
  expired while queued, service shutdown, device fault with no
  fallback); carries the reason;
* ``"rejected"`` — never admitted (queue full, service crashed or
  stopped, dead-on-arrival deadline); :meth:`AdmissionQueue.admit`
  raises :class:`AdmissionError` so the caller learns synchronously.

Deadlines are absolute clock readings (the service's injected
monotonic clock), so inline test schedules can drive them with a
manual clock and assert shedding deterministically.
"""

from __future__ import annotations

import threading
from collections import deque

import numpy as np

__all__ = [
    "REJECT_QUEUE_FULL",
    "REJECT_DEADLINE",
    "REJECT_SHUTDOWN",
    "REJECT_CRASHED",
    "SHED_DEVICE_FAULT",
    "AdmissionError",
    "QueryTicket",
    "AdmissionQueue",
]

#: The bounded queue is at capacity; retry later or slow down.
REJECT_QUEUE_FULL = "queue_full"
#: The request's deadline passed (at admission or while queued).
REJECT_DEADLINE = "deadline_expired"
#: The service is stopping (or stopped) and drains no new work.
REJECT_SHUTDOWN = "shutting_down"
#: The storage device is crash-latched; call ``restart()`` first.
REJECT_CRASHED = "device_crashed"
#: Serving faulted and every fallback faulted too (shed, not rejected).
SHED_DEVICE_FAULT = "device_fault"


class AdmissionError(RuntimeError):
    """A request was rejected at the door, with a machine-readable reason."""

    def __init__(self, reason: str, message: str):
        super().__init__(message)
        self.reason = reason


class QueryTicket:
    """One admitted (or rejected) query request and its outcome.

    The submitting thread holds the ticket; the serving side completes
    it exactly once via :meth:`_serve` or :meth:`_shed` and sets the
    event that :meth:`wait` blocks on.  Answers are exact over the
    snapshot watermark ``snapshot_series`` — the first ``snapshot_series``
    rows of the raw file as of admission to a serving batch.
    """

    __slots__ = (
        "query", "mode", "k", "submitted_s", "deadline_s",
        "status", "shed_reason", "knn_ids", "knn_distances",
        "snapshot_series", "latency_s", "degraded", "_done",
    )

    def __init__(
        self,
        query: np.ndarray,
        mode: str,
        k: int,
        submitted_s: float,
        deadline_s: "float | None",
    ):
        self.query = query
        self.mode = mode
        self.k = k
        self.submitted_s = submitted_s
        self.deadline_s = deadline_s
        self.status = "queued"
        self.shed_reason: "str | None" = None
        self.knn_ids: "list[int] | None" = None
        self.knn_distances: "list[float] | None" = None
        self.snapshot_series: "int | None" = None
        self.latency_s: "float | None" = None
        self.degraded = False
        self._done = threading.Event()

    # -- completion (serving side) --------------------------------------
    def _serve(
        self,
        ids: "list[int]",
        distances: "list[float]",
        snapshot_series: int,
        now_s: float,
        degraded: bool = False,
    ) -> None:
        self.knn_ids = ids
        self.knn_distances = distances
        self.snapshot_series = snapshot_series
        self.latency_s = now_s - self.submitted_s
        self.degraded = degraded
        self.status = "served"
        self._done.set()

    def _shed(self, reason: str, now_s: float) -> None:
        self.shed_reason = reason
        self.latency_s = now_s - self.submitted_s
        self.status = "shed"
        self._done.set()

    # -- consumption (submitting side) ----------------------------------
    @property
    def done(self) -> bool:
        return self._done.is_set()

    def wait(self, timeout: "float | None" = None) -> bool:
        """Block until the ticket is served or shed; True when done."""
        return self._done.wait(timeout)

    def expired(self, now_s: float, margin_s: float = 0.0) -> bool:
        return self.deadline_s is not None and self.deadline_s - margin_s <= now_s

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"QueryTicket(mode={self.mode!r}, k={self.k}, "
            f"status={self.status!r}, shed={self.shed_reason!r})"
        )


class AdmissionQueue:
    """The service's single bounded FIFO of admitted tickets.

    ``admit`` either enqueues or raises :class:`AdmissionError` — there
    is no blocking producer path, so a flooded service pushes back in
    O(1) instead of stacking waiters.  ``collect`` is the batch-window
    consumer: it blocks for the first ticket, then keeps the window
    open up to ``window_s`` (never past the earliest deadline among the
    collected tickets) while more arrive, and returns at most
    ``max_batch`` tickets in arrival order.
    """

    def __init__(self, capacity: int, clock):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._clock = clock
        self._items: "deque[QueryTicket]" = deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)

    @property
    def depth(self) -> int:
        with self._lock:
            return len(self._items)

    def admit(self, ticket: QueryTicket) -> None:
        with self._not_empty:
            if len(self._items) >= self.capacity:
                raise AdmissionError(
                    REJECT_QUEUE_FULL,
                    f"admission queue full ({self.capacity} tickets)",
                )
            self._items.append(ticket)
            self._not_empty.notify()

    def drain(self, max_batch: "int | None" = None) -> "list[QueryTicket]":
        """Pop up to ``max_batch`` tickets without waiting (inline mode)."""
        with self._lock:
            n = len(self._items) if max_batch is None else min(
                max_batch, len(self._items)
            )
            return [self._items.popleft() for _ in range(n)]

    def drain_all(self) -> "list[QueryTicket]":
        return self.drain(None)

    def collect(
        self,
        max_batch: int,
        window_s: float,
        stop_event: threading.Event,
        poll_s: float = 0.02,
    ) -> "list[QueryTicket]":
        """Blocking batch-window collect for the server thread.

        Returns an empty list when ``stop_event`` is set and nothing is
        queued (the loop's exit signal).  The window closes early at
        the earliest deadline among the waiting tickets, so a tight
        deadline is never burned waiting for co-batchable company.
        """
        with self._not_empty:
            while not self._items:
                if stop_event.is_set():
                    return []
                self._not_empty.wait(poll_s)
            close_s = self._clock() + window_s
            while len(self._items) < max_batch and not stop_event.is_set():
                deadline = min(
                    (
                        t.deadline_s
                        for t in self._items
                        if t.deadline_s is not None
                    ),
                    default=None,
                )
                limit_s = close_s if deadline is None else min(close_s, deadline)
                remaining = limit_s - self._clock()
                if remaining <= 0:
                    break
                self._not_empty.wait(min(remaining, poll_s))
            n = min(max_batch, len(self._items))
            return [self._items.popleft() for _ in range(n)]
