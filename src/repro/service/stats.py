"""The service's health surface: counters, gauges, latency percentiles.

:class:`ServiceStats` is the one object an operator (or the chaos
test's accounting assertions) reads to understand what the service did:
how much was admitted, served, shed and rejected — *by reason* — how
often ingest retried or recovered, how often serving degraded to the
serial engines, and where the latency tail sits.  Every terminal
outcome a :class:`~repro.service.admission.QueryTicket` can reach has a
counter here; the conservation law

``submitted == served + shed + sum(rejected.values()) + in flight``

is asserted by the chaos suite, which is what "never silently dropped"
means operationally.

Latency percentiles are nearest-rank over a bounded ring of recent
samples — a sliding window, not a lifetime average, because tail
latency under load is a *current* property.
"""

from __future__ import annotations

import threading
from collections import Counter

import numpy as np

from ..parallel.heal import HealReport

__all__ = ["LatencyWindow", "ServiceStats"]


class LatencyWindow:
    """Bounded ring of latency samples with nearest-rank percentiles."""

    def __init__(self, capacity: int = 4096):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self._samples = np.zeros(capacity, dtype=np.float64)
        self._capacity = capacity
        self._count = 0  # total ever recorded; ring index = count % capacity

    def record(self, latency_s: float) -> None:
        self._samples[self._count % self._capacity] = latency_s
        self._count += 1

    def __len__(self) -> int:
        return min(self._count, self._capacity)

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile (q in [0, 100]) over the window; 0 when empty."""
        n = len(self)
        if n == 0:
            return 0.0
        window = np.sort(self._samples[:n])
        rank = min(n - 1, max(0, int(np.ceil(q / 100.0 * n)) - 1))
        return float(window[rank])


class ServiceStats:
    """Thread-safe counters + latency windows; snapshot() is the export.

    Increment methods take the lock per event; ``snapshot`` copies
    everything under the lock so an exported dict is internally
    consistent even mid-traffic.
    """

    def __init__(self, latency_capacity: int = 4096):
        self._lock = threading.Lock()
        # Query life cycle.
        self.n_submitted = 0
        self.n_admitted = 0
        self.n_served = 0
        self.n_batches = 0
        self.n_degraded_batches = 0
        self.n_session_conflicts = 0
        self.shed = Counter()
        self.rejected = Counter()
        # Ingest life cycle.
        self.n_ingest_batches = 0
        self.n_ingest_rows = 0
        self.n_ingest_retries = 0
        self.n_ingest_rejected = 0
        # Crash / recovery life cycle.
        self.n_recoveries = 0
        self.n_restarts = 0
        self.n_crashes = 0
        # Integrity life cycle: scrub activity and serve-path heals.
        self.n_scrub_steps = 0
        self.n_scrub_sweeps = 0
        self.n_pages_scrubbed = 0
        self.n_corrupt_pages = 0
        self.n_pages_repaired = 0
        self.n_runs_quarantined = 0
        self.n_runs_rebuilt = 0
        self.n_unrepairable_pages = 0  # gauge: currently quarantined
        self.n_corruption_heals = 0
        # Raw-row watermark the last *completed* sweep verified (-1
        # before any sweep finishes).
        self.last_sweep_watermark = -1
        # Healing activity across every seam the service drives.
        self.heal = HealReport()
        self.query_latency = LatencyWindow(latency_capacity)
        self.ingest_latency = LatencyWindow(latency_capacity)

    # -- query events ----------------------------------------------------
    def on_submitted(self) -> None:
        with self._lock:
            self.n_submitted += 1
            self.n_admitted += 1

    def on_rejected(self, reason: str) -> None:
        with self._lock:
            self.n_submitted += 1
            self.rejected[reason] += 1

    def on_served(self, latency_s: float, degraded: bool) -> None:
        with self._lock:
            self.n_served += 1
            self.query_latency.record(latency_s)
            if degraded:
                self.n_degraded_batches += 1

    def on_batch(self, degraded: bool, session_conflict: bool = False) -> None:
        with self._lock:
            self.n_batches += 1
            if session_conflict:
                self.n_session_conflicts += 1

    def on_shed(self, reason: str) -> None:
        with self._lock:
            self.shed[reason] += 1

    # -- ingest / recovery events ---------------------------------------
    def on_ingest(self, n_rows: int, latency_s: float) -> None:
        with self._lock:
            self.n_ingest_batches += 1
            self.n_ingest_rows += n_rows
            self.ingest_latency.record(latency_s)

    def on_ingest_retry(self) -> None:
        with self._lock:
            self.n_ingest_retries += 1

    def on_ingest_rejected(self) -> None:
        with self._lock:
            self.n_ingest_rejected += 1

    def on_recovery(self) -> None:
        with self._lock:
            self.n_recoveries += 1

    def on_restart(self) -> None:
        with self._lock:
            self.n_restarts += 1

    def on_crash(self) -> None:
        with self._lock:
            self.n_crashes += 1

    # -- integrity events ------------------------------------------------
    def on_scrub(self, report, watermark: int, unrepairable: int) -> None:
        """Fold one scrub step (or whole sweep) into the surface.

        ``watermark`` is the raw-row count the scrub ran against; it
        becomes the last-sweep watermark only when ``report.complete``
        — a partial step proves nothing about pages it never reached.
        ``unrepairable`` is the scrubber's current quarantine size (a
        gauge, not a delta: a page repaired later leaves it again).
        """
        with self._lock:
            self.n_scrub_steps += 1
            self.n_pages_scrubbed += report.pages_scanned
            self.n_corrupt_pages += len(report.corrupt_pages)
            self.n_pages_repaired += len(report.repaired_pages)
            self.n_runs_quarantined += len(report.quarantined_runs)
            self.n_runs_rebuilt += report.rebuilt_runs
            self.n_unrepairable_pages = unrepairable
            if report.complete:
                self.n_scrub_sweeps += 1
                self.last_sweep_watermark = watermark

    def on_corruption_heal(self) -> None:
        with self._lock:
            self.n_corruption_heals += 1

    # -- export ----------------------------------------------------------
    def snapshot(self, queue_depth: int = 0, lsm=None) -> dict:
        """One consistent dict of the whole surface (JSON-serializable)."""
        with self._lock:
            out = {
                "queue_depth": queue_depth,
                "submitted": self.n_submitted,
                "admitted": self.n_admitted,
                "served": self.n_served,
                "batches": self.n_batches,
                "degraded_batches": self.n_degraded_batches,
                "session_conflicts": self.n_session_conflicts,
                "shed": dict(self.shed),
                "rejected": dict(self.rejected),
                "ingest_batches": self.n_ingest_batches,
                "ingest_rows": self.n_ingest_rows,
                "ingest_retries": self.n_ingest_retries,
                "ingest_rejected": self.n_ingest_rejected,
                "recoveries": self.n_recoveries,
                "restarts": self.n_restarts,
                "crashes": self.n_crashes,
                "heal": self.heal.as_dict(),
                "scrub": {
                    "steps": self.n_scrub_steps,
                    "sweeps": self.n_scrub_sweeps,
                    "pages_scanned": self.n_pages_scrubbed,
                    "corrupt_pages": self.n_corrupt_pages,
                    "pages_repaired": self.n_pages_repaired,
                    "runs_quarantined": self.n_runs_quarantined,
                    "runs_rebuilt": self.n_runs_rebuilt,
                    "unrepairable_pages": self.n_unrepairable_pages,
                    "corruption_heals": self.n_corruption_heals,
                    "last_sweep_watermark": self.last_sweep_watermark,
                },
                "query_latency_s": {
                    "p50": self.query_latency.percentile(50),
                    "p95": self.query_latency.percentile(95),
                    "p99": self.query_latency.percentile(99),
                    "samples": len(self.query_latency),
                },
                "ingest_latency_s": {
                    "p50": self.ingest_latency.percentile(50),
                    "p95": self.ingest_latency.percentile(95),
                    "p99": self.ingest_latency.percentile(99),
                    "samples": len(self.ingest_latency),
                },
            }
        if lsm is not None:
            out["lsm"] = {
                "runs": lsm.n_runs,
                "flushes": lsm.n_flushes,
                "merges": lsm.n_merges,
                "rebuilt_runs": lsm.n_rebuilt_runs,
                "degraded_compactions": lsm.n_degraded_compactions,
                "state_version": lsm.state_version,
            }
        return out
