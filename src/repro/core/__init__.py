"""The paper's contribution: sortable summarizations and Coconut indexes."""

from .coconut_tree import CoconutTree
from .coconut_trie import CoconutTrie
from .dtw_search import (
    DTWSearchResult,
    dtw_exact_search,
    dtw_mindist_to_words,
    query_envelope,
)
from .invsax import (
    deinterleave_keys,
    int_to_key,
    interleave_words,
    invsax_keys,
    key_bytes,
    key_to_int,
    query_key,
    sortable_summary_size,
)
from .knn import KNNOutcome, sims_knn_scan
from .lsm import CoconutLSM
from .sims import SIMSOutcome, sims_scan
from .zorder import (
    Quantizer,
    deinterleave_codes,
    interleave_codes,
    zorder_keys_for_features,
)

__all__ = [
    "CoconutLSM",
    "CoconutTree",
    "CoconutTrie",
    "DTWSearchResult",
    "KNNOutcome",
    "Quantizer",
    "SIMSOutcome",
    "deinterleave_codes",
    "dtw_exact_search",
    "dtw_mindist_to_words",
    "interleave_codes",
    "query_envelope",
    "sims_knn_scan",
    "zorder_keys_for_features",
    "deinterleave_keys",
    "int_to_key",
    "interleave_words",
    "invsax_keys",
    "key_bytes",
    "key_to_int",
    "query_key",
    "sims_scan",
    "sortable_summary_size",
]
