"""Coconut-Tree: bottom-up bulk-loaded, balanced data series index.

The paper's flagship index (Algorithm 3).  Series are summarized to
sortable invSAX keys, externally sorted, and the leaf level is written
in one sequential pass — the UB-tree bulk-loading recipe.  Because
splitting is by rank (median) rather than by shared prefix, every leaf
is packed to the configured fill factor, the tree is balanced, and the
whole leaf level is physically contiguous: queries read neighboring
leaves with streaming I/O instead of seeks.

Two variants, as in the paper:

* ``materialized=False`` — Coconut-Tree (CTree): leaves store (key,
  offset) pairs pointing into the raw file (a secondary index).
* ``materialized=True`` — Coconut-Tree-Full (CTreeFull): leaves store
  the series themselves alongside the keys.

Approximate search (Algorithm 4) visits the leaf where the query's key
would reside plus a configurable radius of physically adjacent leaves.
Exact search (Algorithm 5, CoconutTreeSIMS) scans in-memory
summarizations aligned to the on-disk order and fetches unpruned
records skip-sequentially.

Batch insertion merges sorted batches into the leaf level (Fig. 10a):
large batches amortize to near-bulk-load cost, tiny batches degrade
toward per-leaf random I/O — the crossover the paper reports.

Parallel bulk-loading (``workers > 1``): the summarization scan fans
page-aligned chunks out to a worker pool
(:class:`repro.parallel.ParallelSummarizer`); each worker returns the
chunk's invSAX keys presorted, and the presorted runs feed
:meth:`repro.storage.ExternalSorter.sort_runs` — the partition phase of
the external sort runs on all cores.  The same worker count drives the
merge phase: resident runs are range-partitioned and merged on a pool
(:mod:`repro.parallel.merge`), and *spilled* runs now merge the same
way on the sharded storage layer (:mod:`repro.parallel.spill`) — each
cascade group's key range is partitioned and every partition streams
its slices of the run files through a private
:class:`repro.storage.disk.DiskShard`, so ``workers=N`` parallelizes
partition, resident merge and the file-backed cascade alike
(``merge_engine="heapq"`` selects the per-record oracle).  The
resulting leaf level is bit-identical (same keys, same leaf
boundaries, same payload order) to the serial build for every worker
count, chunk size and merge engine.
Batched queries (:meth:`query_batch`) share one SIMS summary scan and
every fetched page across the whole batch via
:func:`repro.parallel.batched_exact_knn`; batched approximate queries
share leaf reads via :func:`repro.parallel.approx_query_batch`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..indexes.base import BuildReport, Measurement, QueryResult, SeriesIndex
from ..series.distance import early_abandon_euclidean_block
from ..storage.disk import SimulatedDisk
from ..storage.external_sort import ExternalSorter
from ..storage.pager import PagedFile
from ..storage.seriesfile import RawSeriesFile
from ..summaries.sax import SAXConfig, sax_words
from .invsax import deinterleave_keys, interleave_words, query_key
from .sims import sims_scan


@dataclass
class _Leaf:
    """Directory entry for one leaf, kept in key order."""

    slot: int  # physical leaf slot in the leaf file
    count: int
    first_key: bytes


def _record_dtype(config: SAXConfig, length: int, materialized: bool) -> np.dtype:
    fields = [("k", config.key_dtype), ("off", "<i8")]
    if materialized:
        fields.append(("series", "<f4", (length,)))
    return np.dtype(fields)


def payload_dtype(length: int, materialized: bool) -> np.dtype:
    """Rows carried through the external sort: offset [+ the series].

    One definition shared by the serial scan, the parallel presorted
    runs and leaf merging — the layouts must match byte for byte for
    the parallel build to be bit-identical to the serial one.
    """
    if materialized:
        return np.dtype([("off", "<i8"), ("series", "<f4", (length,))])
    return np.dtype([("off", "<i8")])


class CoconutTree(SeriesIndex):
    """Balanced bulk-loaded index over sortable summarizations."""

    def __init__(
        self,
        disk: SimulatedDisk,
        memory_bytes: int,
        config: SAXConfig | None = None,
        leaf_size: int = 100,
        fill_factor: float = 1.0,
        materialized: bool = False,
        default_radius: int = 1,
        fanout: int = 32,
        workers: int = 1,
        chunk_series: int | None = None,
        pool_kind: str = "process",
        merge_engine: str = "blockwise",
    ):
        super().__init__(disk, memory_bytes)
        if not 0.5 <= fill_factor <= 1.0:
            raise ValueError(
                f"fill_factor must be in [0.5, 1.0], got {fill_factor}"
            )
        if leaf_size <= 0:
            raise ValueError(f"leaf_size must be positive, got {leaf_size}")
        self.config = config or SAXConfig()
        self.leaf_size = leaf_size
        self.fill_factor = fill_factor
        self.is_materialized = materialized
        self.default_radius = max(1, default_radius)
        self.fanout = max(2, fanout)
        self.workers = max(1, int(workers))
        self.chunk_series = chunk_series
        self.pool_kind = pool_kind
        self.merge_engine = merge_engine
        self.name = "Coconut-Tree-Full" if materialized else "Coconut-Tree"
        self._leaves: list[_Leaf] = []
        self._first_keys: np.ndarray | None = None
        self._leaf_words: list[np.ndarray] = []
        self._leaf_offsets: list[np.ndarray] = []
        self._summaries_loaded = False
        self._summaries_dirty = False
        self._flat_words: np.ndarray | None = None
        self._flat_offsets: np.ndarray | None = None
        self._flat_leaf_of: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    @property
    def record_dtype(self) -> np.dtype:
        raw = self._require_built() if self.built else self.raw
        length = raw.length if raw is not None else self.config.series_length
        return _record_dtype(self.config, length, self.is_materialized)

    @property
    def pages_per_leaf(self) -> int:
        return max(
            1,
            -(-self.leaf_size * self.record_dtype.itemsize // self.disk.page_size),
        )

    @property
    def target_leaf_records(self) -> int:
        return max(1, int(self.leaf_size * self.fill_factor))

    @property
    def height(self) -> int:
        """Levels above the leaves of the (balanced) directory."""
        n = max(1, len(self._leaves))
        return max(1, math.ceil(math.log(n, self.fanout))) if n > 1 else 1

    # ------------------------------------------------------------------
    # Construction (Algorithm 3)
    # ------------------------------------------------------------------
    def build(self, raw: RawSeriesFile) -> BuildReport:
        self.raw = raw
        with Measurement(self.disk) as measure:
            rec = _record_dtype(self.config, raw.length, self.is_materialized)
            # The sorter keeps its own merge pool ("auto": threads for
            # large payloads, which release the GIL; processes for tiny
            # ones): summarization ships compute-heavy chunks to
            # processes, but merging runs is bandwidth-bound and the
            # sharded spilled cascade shares the simulated device.
            sorter = ExternalSorter(
                self.disk,
                self.memory_bytes,
                merge_engine=self.merge_engine,
                merge_workers=self.workers,
            )
            if self.workers > 1:
                runs = self._summarize_runs(raw)
            else:
                keys, payloads = self._summarize_scan(raw)
            n_leaves_estimate = max(
                1, -(-raw.n_series // self.target_leaf_records)
            )
            self._leaf_file = PagedFile(self.disk, name=f"{self.name}-leaves")
            self._leaf_file.grow(n_leaves_estimate * self.pages_per_leaf)
            self._sidecar = PagedFile(self.disk, name=f"{self.name}-summaries")
            self._record_itemsize = rec.itemsize
            sorted_stream = (
                sorter.sort_runs(runs)
                if self.workers > 1
                else sorter.sort(keys, payloads)
            )
            self._bulk_load(sorted_stream, rec)
            self._rebuild_directory()
            self._write_sidecar()
        self.built = True
        n_leaves, fill = self.leaf_stats()
        return BuildReport(
            index_name=self.name,
            n_series=raw.n_series,
            wall_s=measure.wall_s,
            io=measure.io,
            simulated_io_ms=measure.simulated_io_ms,
            index_bytes=self.storage_bytes(),
            n_leaves=n_leaves,
            avg_leaf_fill=fill,
            extra={"sort_runs": sorter.report.n_runs, "height": self.height},
        )

    def _summarize_scan(
        self, raw: RawSeriesFile
    ) -> tuple[np.ndarray, np.ndarray]:
        """Pass over the raw file: sortable keys plus record payloads."""
        key_parts: list[np.ndarray] = []
        payload_parts: list[np.ndarray] = []
        pay_dtype = payload_dtype(raw.length, self.is_materialized)
        for start, block in raw.scan():
            words = sax_words(block, self.config)
            key_parts.append(interleave_words(words, self.config))
            payload = np.zeros(len(block), dtype=pay_dtype)
            payload["off"] = np.arange(start, start + len(block))
            if self.is_materialized:
                payload["series"] = block
            payload_parts.append(payload)
        if not key_parts:
            return (
                np.empty(0, dtype=self.config.key_dtype),
                np.empty(0, dtype=pay_dtype),
            )
        return np.concatenate(key_parts), np.concatenate(payload_parts)

    def _summarize_runs(
        self, raw: RawSeriesFile
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        """Parallel variant of :meth:`_summarize_scan`: presorted runs."""
        from ..parallel.summarize import summarize_presorted_runs

        return summarize_presorted_runs(
            raw,
            self.config,
            self.is_materialized,
            workers=self.workers,
            chunk_size=self.chunk_series,
            kind=self.pool_kind,
        )

    def _bulk_load(self, sorted_chunks, rec: np.dtype) -> None:
        """Fill leaves to the target fill factor from the sorted stream."""
        target = self.target_leaf_records
        pending_keys: list[np.ndarray] = []
        pending_payloads: list[np.ndarray] = []
        pending = 0
        for keys, payloads in sorted_chunks:
            pending_keys.append(keys)
            pending_payloads.append(payloads)
            pending += len(keys)
            while pending >= target:
                keys_cat = np.concatenate(pending_keys)
                pay_cat = np.concatenate(pending_payloads)
                self._emit_leaf(keys_cat[:target], pay_cat[:target], rec)
                pending_keys = [keys_cat[target:]]
                pending_payloads = [pay_cat[target:]]
                pending -= target
        if pending:
            self._emit_leaf(
                np.concatenate(pending_keys),
                np.concatenate(pending_payloads),
                rec,
            )

    def _emit_leaf(
        self, keys: np.ndarray, payloads: np.ndarray, rec: np.dtype
    ) -> None:
        slot = len(self._leaves)
        needed = (slot + 1) * self.pages_per_leaf
        if needed > self._leaf_file.n_pages:
            self._leaf_file.grow(needed - self._leaf_file.n_pages)
        records = np.zeros(len(keys), dtype=rec)
        records["k"] = keys
        records["off"] = payloads["off"]
        if self.is_materialized:
            records["series"] = payloads["series"]
        self._write_leaf_records(slot, records)
        first = bytes(keys[0]).ljust(self.config.key_bytes, b"\x00")
        self._leaves.append(_Leaf(slot=slot, count=len(keys), first_key=first))
        words = deinterleave_keys(keys, self.config)
        self._leaf_words.append(words)
        self._leaf_offsets.append(payloads["off"].astype(np.int64))

    def _write_leaf_records(self, slot: int, records: np.ndarray) -> None:
        self._leaf_file.write_stream(
            records.tobytes(), at_page=slot * self.pages_per_leaf
        )

    def _read_leaf_records(self, leaf: _Leaf, leaf_file=None) -> np.ndarray:
        file = self._leaf_file if leaf_file is None else leaf_file
        n_pages = max(
            1, -(-leaf.count * self._record_itemsize // self.disk.page_size)
        )
        data = file.read_stream(leaf.slot * self.pages_per_leaf, n_pages)
        return np.frombuffer(
            data[: leaf.count * self._record_itemsize], dtype=self.record_dtype
        )

    def _rebuild_directory(self) -> None:
        self._first_keys = np.array(
            [leaf.first_key for leaf in self._leaves],
            dtype=self.config.key_dtype,
        )

    def _write_sidecar(self) -> None:
        """Persist the summary column (keys + offsets, leaf-aligned).

        SIMS loads this file on first use; it is orders of magnitude
        smaller than the data, which is what makes the in-memory
        summary scan of Algorithm 5 feasible.
        """
        if not self._leaves:
            return
        dtype = np.dtype([("k", self.config.key_dtype), ("off", "<i8")])
        rows = np.zeros(sum(l.count for l in self._leaves), dtype=dtype)
        at = 0
        for i, leaf in enumerate(self._leaves):
            rows["k"][at : at + leaf.count] = interleave_words(
                self._leaf_words[i], self.config
            )
            rows["off"][at : at + leaf.count] = self._leaf_offsets[i]
            at += leaf.count
        self._sidecar = PagedFile(self.disk, name=f"{self.name}-summaries")
        self._sidecar.write_stream(rows.tobytes())
        self._summaries_loaded = False

    # ------------------------------------------------------------------
    # Search (Algorithms 4 and 5)
    # ------------------------------------------------------------------
    def _locate_leaf(self, key: bytes) -> int:
        probe = np.array([key], dtype=self.config.key_dtype)
        position = int(np.searchsorted(self._first_keys, probe, side="right")[0])
        return max(0, position - 1)

    def approximate_search(
        self, query: np.ndarray, radius_leaves: int | None = None
    ) -> QueryResult:
        """Algorithm 4: inspect the query's would-be position ± a radius.

        The target leaf (plus ``radius_leaves - 1`` physically adjacent
        leaves, which are sequential on disk) is read.  A materialized
        index evaluates everything it just read — the series are right
        there.  A secondary index additionally has to visit the raw
        file, so it fetches only the records closest in z-order to the
        query's insertion point, about one raw-file page per radius
        step ("usually a disk page", Sec. 4.3).
        """
        query = self._query_array(query)
        radius = radius_leaves or self.default_radius
        with Measurement(self.disk) as measure:
            key = query_key(query, self.config)
            target = self._locate_leaf(key)
            lo = max(0, target - (radius - 1) // 2)
            hi = min(len(self._leaves), lo + radius)
            lo = max(0, hi - radius)
            identifiers, distances = self._scan_radius(query, key, lo, hi, radius)
            if len(identifiers):
                j = int(np.argmin(distances))
                best_idx, best_dist = int(identifiers[j]), float(distances[j])
            else:
                best_idx, best_dist = -1, float("inf")
        return QueryResult(
            answer_idx=best_idx,
            distance=best_dist,
            visited_records=len(identifiers),
            visited_leaves=hi - lo,
            io=measure.io,
            simulated_io_ms=measure.simulated_io_ms,
            wall_s=measure.wall_s,
        )

    def _scan_radius(
        self,
        query: np.ndarray,
        key: bytes,
        lo: int,
        hi: int,
        radius: int,
        read_leaf=None,
        raw=None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Distances to the radius candidates: (identifiers, distances).

        ``read_leaf`` overrides the leaf reader — the batched
        approximate path passes a caching reader so queries landing in
        the same leaves share each read.  ``raw`` overrides the raw
        series file the secondary variant fetches from (the parallel
        approximate path passes a view bound to a worker's device).
        """
        read_leaf = read_leaf or self._read_leaf_records
        raw = raw if raw is not None else self.raw
        records_parts = [
            read_leaf(self._leaves[i]) for i in range(lo, hi)
        ]
        records_parts = [r for r in records_parts if len(r)]
        if not records_parts:
            return np.empty(0, dtype=np.int64), np.empty(0)
        records = (
            records_parts[0]
            if len(records_parts) == 1
            else np.concatenate(records_parts)
        )
        if self.is_materialized:
            series = records["series"].astype(np.float64)
            identifiers = records["off"].astype(np.int64)
        else:
            window = max(4, raw.series_per_page) * radius
            probe = np.array([key], dtype=self.config.key_dtype)
            position = int(np.searchsorted(records["k"], probe[0]))
            start = max(0, min(position - window // 2, len(records) - window))
            subset = records[start : start + window]
            series = raw.get_many(subset["off"])
            identifiers = subset["off"].astype(np.int64)
        # No running bound at the approximate probe: the inf bound
        # short-circuits the fused kernel to the plain batch distance.
        return identifiers, early_abandon_euclidean_block(
            query, series, float("inf")
        )

    def _ensure_summaries(self) -> None:
        """Load (or refresh) the in-memory summary arrays, charging I/O."""
        if self._summaries_dirty:
            self._write_sidecar()
            self._summaries_dirty = False
        if self._summaries_loaded and self._flat_words is not None:
            return
        if self._sidecar.n_pages:
            # One sequential pass over the summary column.
            self._sidecar.read_stream(0, self._sidecar.n_pages)
        if self._leaf_words:
            self._flat_words = np.concatenate(self._leaf_words)
            self._flat_offsets = np.concatenate(self._leaf_offsets)
            self._flat_leaf_of = np.repeat(
                np.arange(len(self._leaves)),
                [leaf.count for leaf in self._leaves],
            )
        else:
            self._flat_words = np.empty(
                (0, self.config.word_length), dtype=np.uint16
            )
            self._flat_offsets = np.empty(0, dtype=np.int64)
            self._flat_leaf_of = np.empty(0, dtype=np.int64)
        self._summaries_loaded = True

    def exact_search(
        self, query: np.ndarray, radius_leaves: int | None = None
    ) -> QueryResult:
        query = self._query_array(query)
        with Measurement(self.disk) as measure:
            words, fetch = self._prepare_sims()
            seed = self.approximate_search(query, radius_leaves)
            outcome = sims_scan(
                query,
                words,
                self.config,
                fetch,
                initial_bsf=seed.distance,
                initial_answer=seed.answer_idx,
            )
        return QueryResult(
            answer_idx=outcome.answer_id,
            distance=outcome.distance,
            visited_records=outcome.visited_records + seed.visited_records,
            visited_leaves=seed.visited_leaves,
            io=measure.io,
            simulated_io_ms=measure.simulated_io_ms,
            wall_s=measure.wall_s,
            pruned_fraction=outcome.pruned_fraction,
        )

    def exact_knn(
        self, query: np.ndarray, k: int, radius_leaves: int | None = None
    ):
        """Exact k nearest neighbors (SIMS generalized; see core.knn).

        Returns a :class:`repro.core.knn.KNNOutcome` plus I/O stats via
        the ``io``/``simulated_io_ms`` attributes attached to it.
        """
        from .knn import sims_knn_scan

        query = self._query_array(query)
        radius = radius_leaves or self.default_radius
        with Measurement(self.disk) as measure:
            words, fetch = self._prepare_sims()
            key = query_key(query, self.config)
            target = self._locate_leaf(key)
            lo = max(0, target - (radius - 1) // 2)
            hi = min(len(self._leaves), lo + radius)
            lo = max(0, hi - radius)
            identifiers, distances = self._scan_radius(query, key, lo, hi, radius)
            seeds = list(zip(distances.tolist(), identifiers.tolist()))
            outcome = sims_knn_scan(
                query, k, words, self.config, fetch,
                seed_distances=seeds,
            )
        outcome.visited_records += len(identifiers)
        outcome.io = measure.io
        outcome.simulated_io_ms = measure.simulated_io_ms
        outcome.wall_s = measure.wall_s
        return outcome

    def query_batch(
        self, batch, query_workers=1, query_pool_kind="auto",
        scheduler="adaptive", bound_sharing="auto",
    ):
        """Batched queries sharing work across the batch (repro.parallel).

        Exact batches share one SIMS pass: the summary column is loaded
        once and every fetched record block serves all queries that
        still need it.  Approximate batches share leaf reads: queries
        are answered in ascending target-leaf order against a per-batch
        leaf cache, so a leaf several queries land in is read once.
        Either way, answers are identical to issuing the queries one at
        a time.

        ``query_workers > 1`` (or ``None``/``0`` for all cores) runs
        the batch on the multi-worker engines: exact batches
        range-partition the lower-bound scan and stream record fetches
        through per-worker read-only shards, approximate batches
        range-partition the leaf visit order — answers (ids,
        distances, tie order) stay bit-identical to the serial batched
        engines.  ``query_pool_kind="serial"`` replays the parallel
        plan inline (the I/O-determinism oracle, with
        ``bound_sharing="off"``).  Planning, ``scheduler`` and
        ``bound_sharing`` are documented on
        :func:`repro.parallel.sched.run_sims_query_batch` and
        :meth:`repro.indexes.base.SeriesIndex.query_batch`.
        """
        from ..parallel.sched import run_sims_query_batch

        return run_sims_query_batch(
            self,
            batch,
            query_workers=query_workers,
            query_pool_kind=query_pool_kind,
            scheduler=scheduler,
            bound_sharing=bound_sharing,
        )

    def _approx_visit_order(self, queries: np.ndarray):
        """The batch's shared visit order: ascending target leaf.

        Returns ``(order, ctx)`` — query indices sorted stably by
        target leaf (so shared reads walk the leaf file forward, and
        any contiguous slice of the order visits a contiguous leaf
        range) plus the per-query keys/targets reused by
        :meth:`_approx_answer_subset`.
        """
        keys = [query_key(query, self.config) for query in queries]
        targets = np.array(
            [self._locate_leaf(key) for key in keys], dtype=np.int64
        )
        order = np.argsort(targets, kind="stable").astype(np.int64)
        return order, (keys, targets)

    def _approx_answer_subset(
        self, queries: np.ndarray, ctx, order: np.ndarray, device=None
    ):
        """Answer the queries in ``order`` with a fresh leaf cache.

        ``device=None`` reads on the parent device — one subset over
        the full order is exactly the serial batched pass.  A worker's
        device (a shard-scoped buffer pool) binds every leaf and
        raw-file read to that worker's private I/O domain.  Returns
        ``(query_index, QueryResult)`` pairs; a query's answer never
        depends on the cache (only its I/O charging does), which pins
        the partitioned path to the serial per-batch cache oracle.
        """
        keys, targets = ctx
        radius = self.default_radius
        cache: dict[int, np.ndarray] = {}
        leaf_file = (
            None if device is None else self._leaf_file.attach(device)
        )
        raw = self.raw if device is None else self.raw.view(device)

        def read_leaf(leaf: _Leaf) -> np.ndarray:
            records = cache.get(leaf.slot)
            if records is None:
                records = self._read_leaf_records(leaf, leaf_file=leaf_file)
                cache[leaf.slot] = records
            return records

        pairs = []
        for qi in order:
            qi = int(qi)
            target = int(targets[qi])
            lo = max(0, target - (radius - 1) // 2)
            hi = min(len(self._leaves), lo + radius)
            lo = max(0, hi - radius)
            identifiers, distances = self._scan_radius(
                queries[qi], keys[qi], lo, hi, radius,
                read_leaf=read_leaf, raw=raw,
            )
            if len(identifiers):
                j = int(np.argmin(distances))
                best_idx, best_dist = int(identifiers[j]), float(distances[j])
            else:
                best_idx, best_dist = -1, float("inf")
            pairs.append(
                (
                    qi,
                    QueryResult(
                        answer_idx=best_idx,
                        distance=best_dist,
                        visited_records=len(identifiers),
                        visited_leaves=hi - lo,
                    ),
                )
            )
        return pairs

    def _approximate_batch(self, queries: np.ndarray) -> list[QueryResult]:
        """Per-query approximate answers with a shared leaf cache.

        Mirrors :meth:`approximate_search` exactly (same leaf window,
        same candidates, same answer); only the leaf reads are
        deduplicated, and the visit order is ascending by target leaf
        so the shared reads walk the leaf file forward.
        """
        order, ctx = self._approx_visit_order(queries)
        results: list[QueryResult | None] = [None] * len(queries)
        for qi, result in self._approx_answer_subset(queries, ctx, order):
            results[qi] = result
        return results

    def _prepare_sims(self):
        """(words, fetch) of the loaded summary column, for the engines."""
        self._ensure_summaries()
        fetch = (
            self._fetch_from_leaves
            if self.is_materialized
            else self._fetch_from_raw
        )
        return self._flat_words, fetch

    def _prepare_sims_parallel(self):
        """(words, make_fetch) for the multi-worker engine.

        ``make_fetch(device)`` binds the index's fetch to a worker's
        private device (a shard-scoped buffer pool); ``make_fetch(None)``
        is the ordinary parent-device fetch.
        """
        self._ensure_summaries()
        return self._flat_words, self._make_sims_fetch

    def _make_sims_fetch(self, device=None):
        from ..parallel.query import make_sims_fetch

        return make_sims_fetch(self, device)

    def _fetch_from_raw(
        self, positions: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        offsets = self._flat_offsets[positions]
        return self.raw.get_many(offsets), offsets

    def _fetch_from_leaves(
        self, positions: np.ndarray, leaf_file=None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Read the leaves containing ``positions``, forward-only."""
        leaf_ids = self._flat_leaf_of[positions]
        series = np.empty((len(positions), self.raw.length), dtype=np.float64)
        offsets = np.empty(len(positions), dtype=np.int64)
        starts = np.concatenate(
            [[0], np.cumsum([leaf.count for leaf in self._leaves])]
        )
        for leaf_id in np.unique(leaf_ids):
            records = self._read_leaf_records(
                self._leaves[int(leaf_id)], leaf_file=leaf_file
            )
            mask = leaf_ids == leaf_id
            local = positions[mask] - starts[int(leaf_id)]
            series[mask] = records["series"][local]
            offsets[mask] = records["off"][local]
        return series, offsets

    # ------------------------------------------------------------------
    # Updates (Fig. 10a)
    # ------------------------------------------------------------------
    def insert_batch(self, data: np.ndarray) -> BuildReport:
        raw = self._require_built()
        data = np.asarray(data, dtype=np.float32)
        with Measurement(self.disk) as measure:
            first_idx = raw.append_batch(data)
            words = sax_words(data, self.config)
            keys = interleave_words(words, self.config)
            order = np.argsort(keys, kind="stable")
            keys = keys[order]
            offsets = (first_idx + order).astype(np.int64)
            series = data[order] if self.is_materialized else None
            self._merge_into_leaves(keys, offsets, series)
            self._rebuild_directory()
            self._summaries_dirty = True
            self._summaries_loaded = False
        n_leaves, fill = self.leaf_stats()
        return BuildReport(
            index_name=self.name,
            n_series=len(data),
            wall_s=measure.wall_s,
            io=measure.io,
            simulated_io_ms=measure.simulated_io_ms,
            index_bytes=self.storage_bytes(),
            n_leaves=n_leaves,
            avg_leaf_fill=fill,
        )

    def _merge_into_leaves(
        self,
        keys: np.ndarray,
        offsets: np.ndarray,
        series: np.ndarray | None,
    ) -> None:
        rec = self.record_dtype
        if not self._leaves:
            payloads = np.zeros(
                len(keys), dtype=payload_dtype(self.raw.length, self.is_materialized)
            )
            payloads["off"] = offsets
            if self.is_materialized:
                payloads["series"] = series
            self._bulk_load(iter([(keys, payloads)]), rec)
            return
        probes = keys.astype(self.config.key_dtype)
        targets = np.maximum(
            np.searchsorted(self._first_keys, probes, side="right") - 1, 0
        )
        new_leaves: list[_Leaf] = []
        new_words: list[np.ndarray] = []
        new_offsets: list[np.ndarray] = []
        for i, leaf in enumerate(self._leaves):
            mask = targets == i
            if not mask.any():
                new_leaves.append(leaf)
                new_words.append(self._leaf_words[i])
                new_offsets.append(self._leaf_offsets[i])
                continue
            existing = self._read_leaf_records(leaf)
            merged = np.zeros(leaf.count + int(mask.sum()), dtype=rec)
            merged[: leaf.count] = existing
            merged["k"][leaf.count :] = keys[mask]
            merged["off"][leaf.count :] = offsets[mask]
            if self.is_materialized:
                merged["series"][leaf.count :] = series[mask]
            merged = merged[np.argsort(merged["k"], kind="stable")]
            # In-memory summaries must mirror the on-disk record order.
            merged_words = deinterleave_keys(merged["k"], self.config)
            self._split_and_store(
                leaf, merged, merged_words, new_leaves, new_words, new_offsets
            )
        self._leaves = new_leaves
        self._leaf_words = new_words
        self._leaf_offsets = new_offsets

    def _split_and_store(
        self,
        leaf: _Leaf,
        merged: np.ndarray,
        merged_words: np.ndarray,
        new_leaves: list[_Leaf],
        new_words: list[np.ndarray],
        new_offsets: list[np.ndarray],
    ) -> None:
        """Write a merged leaf back, median-splitting while oversized."""
        if len(merged) <= self.leaf_size:
            self._write_leaf_records(leaf.slot, merged)
            first = bytes(merged["k"][0]).ljust(self.config.key_bytes, b"\x00")
            new_leaves.append(_Leaf(leaf.slot, len(merged), first))
            new_words.append(merged_words)
            new_offsets.append(merged["off"].astype(np.int64))
            return
        # Median split (Sec. 3.2): divide into the fewest leaves that
        # fit, each at least half full — never a full leaf plus a
        # near-empty remainder.
        n_chunks = -(-len(merged) // self.leaf_size)
        base = len(merged) // n_chunks
        remainder = len(merged) % n_chunks
        chunks = []
        at = 0
        for j in range(n_chunks):
            size = base + (1 if j < remainder else 0)
            chunks.append((merged[at : at + size], merged_words[at : at + size]))
            at += size
        for j, (chunk, chunk_words) in enumerate(chunks):
            if j == 0:
                slot = leaf.slot
            else:
                slot = self._leaf_file.n_pages // self.pages_per_leaf
                self._leaf_file.grow(self.pages_per_leaf)
            self._write_leaf_records(slot, chunk)
            first = bytes(chunk["k"][0]).ljust(self.config.key_bytes, b"\x00")
            new_leaves.append(_Leaf(slot, len(chunk), first))
            new_words.append(chunk_words)
            new_offsets.append(chunk["off"].astype(np.int64))

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def storage_bytes(self) -> int:
        leaf_bytes = self._leaf_file.size_bytes if self._leaves else 0
        sidecar = self._sidecar.size_bytes if self._leaves else 0
        return leaf_bytes + sidecar

    def leaf_stats(self) -> tuple[int, float]:
        if not self._leaves:
            return 0, 0.0
        fills = [leaf.count / self.leaf_size for leaf in self._leaves]
        return len(self._leaves), float(np.mean(fills))
