"""Skip-sequential scan of in-memory summarizations (SIMS).

The exact-search engine shared by the Coconut indexes (Algorithm 5,
CoconutTreeSIMS) and the ADS baseline (the original SIMS).  The
summarizations of the whole collection are held in memory, a vectorized
pass computes a lower bound for every record, and only records whose
bound beats the best-so-far answer are fetched from disk — in storage
order, so the disk head only moves forward (skip-sequential access).

The caller provides the summary array (aligned with its on-disk record
order) and a fetch callback; this module owns the pruning loop, which
re-filters after every fetched block because the best-so-far keeps
shrinking as real distances come in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..series.distance import early_abandon_euclidean_block
from ..summaries.paa import paa
from ..summaries.sax import SAXConfig, mindist_paa_to_words

#: fetch(positions ascending) -> (series matrix, identifier per row)
FetchFn = Callable[[np.ndarray], tuple[np.ndarray, np.ndarray]]

#: Records refined per skip-sequential fetch block.  Shared by every
#: SIMS-style engine (single-query, batched, parallel) so thresholds
#: are re-consulted on the same cadence everywhere, and used by the
#: query scheduler as the ceiling on its fetch-partition floor (a
#: partition never needs to be larger than one refine block).
SIMS_BLOCK_RECORDS = 4096


@dataclass
class SIMSOutcome:
    answer_id: int
    distance: float
    visited_records: int
    pruned_fraction: float


def sims_scan(
    query: np.ndarray,
    words: np.ndarray,
    config: SAXConfig,
    fetch: FetchFn,
    initial_bsf: float = float("inf"),
    initial_answer: int = -1,
    block_records: int = SIMS_BLOCK_RECORDS,
) -> SIMSOutcome:
    """Exact nearest neighbor via lower-bound scan + skip-sequential fetch.

    Parameters
    ----------
    query:
        Raw (z-normalized) query series.
    words:
        (N, word_length) full-cardinality SAX words, in the same order
        as the records are laid out on disk.
    fetch:
        Callback that reads raw series for ascending positions and
        returns (series rows, identifier per row).  It is responsible
        for charging I/O to the simulated disk.
    initial_bsf / initial_answer:
        Best-so-far seeded by a preceding approximate search; the
        better the seed, the more records are pruned (paper Fig. 9d-f).
    """
    query = np.asarray(query, dtype=np.float64).ravel()
    query_paa = paa(query, config.word_length)[0]
    mindists = mindist_paa_to_words(query_paa, words, config)
    bsf = float(initial_bsf)
    answer = int(initial_answer)
    candidates = np.nonzero(mindists < bsf)[0]
    visited = 0
    for start in range(0, len(candidates), block_records):
        block = candidates[start : start + block_records]
        # bsf may have shrunk since the candidate list was computed.
        block = block[mindists[block] < bsf]
        if len(block) == 0:
            continue
        series, identifiers = fetch(block)
        # Fused refine: rows abandoned against the current bsf come
        # back ``inf``, but an abandoned row provably has distance
        # > bsf, so it could never have won the argmin update below —
        # answers and bsf evolution are bit-identical to the full
        # euclidean_batch pass.
        distances = early_abandon_euclidean_block(query, series, bsf)
        visited += len(block)
        best = int(np.argmin(distances))
        if distances[best] < bsf:
            bsf = float(distances[best])
            answer = int(identifiers[best])
    n = len(words)
    pruned = 1.0 - (visited / n) if n else 0.0
    return SIMSOutcome(
        answer_id=answer,
        distance=bsf,
        visited_records=visited,
        pruned_fraction=pruned,
    )
