"""invSAX: the sortable data series summarization (paper Sec. 4.1).

The paper's first contribution.  A SAX word lays its segments out one
after the other, so lexicographic order compares segment 0 at full
precision before even looking at segment 1 — sorting scatters similar
series (paper Fig. 2).  invSAX interleaves the bits instead: all the
most significant bits across segments come first, then all the
second-most-significant, and so on (Algorithm 1).  The resulting key
is the series' position on a z-order space-filling curve through the
summary space (Fig. 4), so sorting keeps similar series next to each
other — which is what enables external-sort bulk-loading and
median-based splitting.

Keys are fixed-width big-endian byte strings.  NumPy compares ``S<k>``
arrays lexicographically (trailing NUL bytes compare equal to absent
bytes, which only affects ties between equal keys), so sorting,
searching and merging operate on vectorized byte keys even for the
default 16 segments x 8 bits = 128-bit keys.

The transform is a bijection on full-cardinality words: nothing is
lost, so pruning power is identical to SAX (the paper's key argument
for why sortability is free).
"""

from __future__ import annotations

import numpy as np

from ..summaries.paa import paa
from ..summaries.sax import SAXConfig, sax_words


def interleave_words(words: np.ndarray, config: SAXConfig) -> np.ndarray:
    """Bit-interleave SAX words into z-order keys (Algorithm 1).

    For each bit significance level ``i`` (most significant first) and
    each segment ``j`` in series order, output bit ``i`` of segment
    ``j``.  Returns an (N,) array of dtype ``S{key_bytes}``.
    """
    words = np.asarray(words, dtype=np.uint32)
    if words.size == 0:
        # Zero records interleave to zero keys regardless of the shape
        # the empty array arrived in (chunked pipelines legitimately
        # produce empty chunks).
        return np.empty(0, dtype=config.key_dtype)
    words = np.atleast_2d(words)
    n, w = words.shape
    if w != config.word_length:
        raise ValueError(
            f"expected {config.word_length} segments, got {w}"
        )
    if words.max(initial=0) >= config.cardinality:
        raise ValueError(
            f"symbol out of range for cardinality {config.cardinality}"
        )
    bits = config.bits_per_symbol
    out = np.zeros((n, config.key_bytes), dtype=np.uint8)
    for i in range(bits):
        level = ((words >> (bits - 1 - i)) & 1).astype(np.uint8)
        for j in range(w):
            position = i * w + j
            out[:, position >> 3] |= level[:, j] << (7 - (position & 7))
    return out.reshape(n * config.key_bytes).view(config.key_dtype)


def deinterleave_keys(keys: np.ndarray, config: SAXConfig) -> np.ndarray:
    """Invert :func:`interleave_words`: keys back to SAX words.

    The inverse direction of the paper's observation that switching
    between sortable and original form is "easy and efficient", which
    is why pruning power is preserved.
    """
    keys = np.ascontiguousarray(keys, dtype=config.key_dtype)
    n = keys.shape[0]
    raw = keys.view(np.uint8).reshape(n, config.key_bytes)
    bits = config.bits_per_symbol
    w = config.word_length
    words = np.zeros((n, w), dtype=np.uint16)
    for i in range(bits):
        for j in range(w):
            position = i * w + j
            bit = (raw[:, position >> 3] >> (7 - (position & 7))) & 1
            words[:, j] |= bit.astype(np.uint16) << (bits - 1 - i)
    return words


def invsax_keys(batch: np.ndarray, config: SAXConfig) -> np.ndarray:
    """Summarize raw series straight to sortable keys."""
    return interleave_words(sax_words(batch, config), config)


def query_key(query: np.ndarray, config: SAXConfig) -> bytes:
    """The z-order key of one query series, as plain bytes."""
    return key_bytes(invsax_keys(np.asarray(query)[None, :], config)[0], config)


def key_bytes(key, config: SAXConfig) -> bytes:
    """Fixed-width bytes of a key (NumPy strips trailing NULs)."""
    return bytes(key).ljust(config.key_bytes, b"\x00")


def key_to_int(key, config: SAXConfig) -> int:
    """Numeric value of a key (big-endian); useful for tests/debugging."""
    return int.from_bytes(key_bytes(key, config), "big")


def int_to_key(value: int, config: SAXConfig) -> bytes:
    """Inverse of :func:`key_to_int`."""
    return value.to_bytes(config.key_bytes, "big")


def sortable_summary_size(config: SAXConfig) -> int:
    """Bytes per sortable summarization (same information as SAX)."""
    return config.key_bytes


def paa_of(batch: np.ndarray, config: SAXConfig) -> np.ndarray:
    """PAA values under the index configuration (query-side helper)."""
    return paa(np.asarray(batch, dtype=np.float64), config.word_length)
