"""Coconut-LSM: log-structured updates over sortable summarizations.

The paper's conclusion names this as future work: "we would also like
to explore how ideas from LSM trees could be used to enable ...
efficient updates".  Sortability is exactly what an LSM-tree needs —
runs are sorted files, and merging sorted runs is sequential I/O — so
the extension is natural:

* inserts accumulate in an in-memory buffer (the memtable);
* a full buffer is sorted and flushed as a *run* — a contiguous,
  sorted (key, offset) file — into level 0;
* when a level accumulates ``size_ratio`` runs they are merged into
  one run of the next level (tiering compaction), so every record is
  rewritten O(log_T(N/M)) times, always sequentially;
* queries see the union of the memtable and all runs: approximate
  search probes each run around the query key; exact search runs the
  SIMS scan over the concatenated in-memory summaries.

Compaction merging
------------------
Compaction inputs are already sorted, so merging them is a pure merge,
not a sort.  The default ``merge_engine="vectorized"`` merges the runs
pairwise with NumPy searchsorted scatters
(:func:`repro.storage.merge.merge_presorted`); with ``workers > 1``
compaction runs on the sharded storage layer
(:func:`repro.parallel.spill.sharded_spill_merge`): the key space is
range-partitioned, each partition reads its record slices of the input
run files through a private :class:`repro.storage.disk.DiskShard` and
writes a disjoint extent of the output run, and the shards are
reconciled deterministically in partition order.  All paths — the
serial merge, the sharded merge for any worker count or splitter
sample, and the retained ``merge_engine="argsort"`` oracle, a stable
argsort of the concatenation — produce bit-identical runs: the merge
is stable over runs listed in ``self._runs`` order, so ties resolve by
(run order, position), which is exactly what the argsort of the
concatenation yields.  Worker count can therefore never change what
lands on disk, only how fast the merge happens; the sharded plan's
DiskStats are pinned to its serial replay (``pool_kind="serial"``).

Compare with :class:`repro.core.coconut_tree.CoconutTree.insert_batch`,
which merges batches straight into the leaf level (cheap for big
batches, expensive for trickles) — the trade-off the Fig. 10a
experiment measures and `bench_ablation_lsm_updates.py` revisits.
"""

from __future__ import annotations

import logging
import zlib
from dataclasses import dataclass

import numpy as np

from ..indexes.base import BuildReport, Measurement, QueryResult, SeriesIndex
from ..series.distance import early_abandon_euclidean_block
from ..storage.disk import SimulatedDisk
from ..storage.faults import CorruptionError, FaultError
from ..storage.merge import merge_presorted
from ..storage.pager import PagedFile
from ..storage.seriesfile import RawSeriesFile
from ..summaries.sax import SAXConfig, sax_words
from .invsax import deinterleave_keys, interleave_words, query_key
from .sims import sims_scan
from .wal import (
    RunMeta,
    WriteAheadLog,
    parse_run_footer,
    replay_manifest,
    run_footer,
    scavenge_frames,
)

logger = logging.getLogger("repro.core.lsm")

#: Compaction merge strategies (the argsort oracle re-sorts instead of
#: merging; it is kept for equivalence testing).
LSM_MERGE_ENGINES = ("vectorized", "argsort")

#: Durability modes: ``None`` keeps the original volatile behaviour;
#: ``"wal"`` adds checksummed run footers + the write-ahead manifest
#: (see :mod:`repro.core.wal` and ``docs/robustness.md``).
LSM_DURABILITY_MODES = (None, "wal")


@dataclass
class _Run:
    """One sorted, contiguous run of (key, offset) records.

    ``data_pages`` is the page count of the record region — equal to
    ``file.n_pages`` for volatile runs, one less for durable runs,
    whose final page is the checksummed footer.  Durable runs also
    carry their manifest identity: the ``RUN_ADD``/``COMPACT`` LSN
    that committed them and the contiguous raw-offset range
    ``[off_lo, off_hi)`` they summarize (what lets recovery rebuild a
    corrupt run from the raw file alone).
    """

    file: PagedFile
    keys: np.ndarray  # in-memory summary mirror (S<k>), sorted
    offsets: np.ndarray
    level: int
    data_pages: int = 0
    wal_lsn: int = -1
    off_lo: int = 0
    off_hi: int = 0

    @property
    def n_records(self) -> int:
        return len(self.keys)


class CoconutLSM(SeriesIndex):
    """Write-optimized Coconut variant (secondary index only)."""

    is_materialized = False
    name = "Coconut-LSM"

    def __init__(
        self,
        disk: SimulatedDisk,
        memory_bytes: int,
        config: SAXConfig | None = None,
        size_ratio: int = 4,
        workers: int = 1,
        pool_kind: str = "thread",
        merge_engine: str = "vectorized",
        durability: "str | None" = None,
        wal_id: int = 1,
    ):
        super().__init__(disk, memory_bytes)
        if size_ratio < 2:
            raise ValueError(f"size_ratio must be >= 2, got {size_ratio}")
        if merge_engine not in LSM_MERGE_ENGINES:
            raise ValueError(
                f"merge_engine must be one of {LSM_MERGE_ENGINES}, "
                f"got {merge_engine!r}"
            )
        if durability not in LSM_DURABILITY_MODES:
            raise ValueError(
                f"durability must be one of {LSM_DURABILITY_MODES}, "
                f"got {durability!r}"
            )
        self.config = config or SAXConfig()
        self.size_ratio = size_ratio
        self.workers = max(1, int(workers))
        self.pool_kind = pool_kind
        self.merge_engine = merge_engine
        self.durability = durability
        self.wal_id = int(wal_id)
        self._wal: WriteAheadLog | None = None
        self._runs: list[_Run] = []
        self._mem_keys: list[np.ndarray] = []
        self._mem_offsets: list[np.ndarray] = []
        self._mem_lsns: list[int] = []
        self._mem_records = 0
        self.n_flushes = 0
        self.n_merges = 0
        self.n_rebuilt_runs = 0
        self.n_degraded_compactions = 0
        # Monotone counter bumped whenever the queryable state (runs,
        # memtable, raw watermark) changes; snapshot caches key on it.
        self.state_version = 0
        # Healing seams for compaction, set by long-lived owners (the
        # online service): an explicit RetryPolicy and a HealReport
        # accumulating sharded-compaction attempt counts.
        self._heal_policy = None
        self._heal_report = None

    # ------------------------------------------------------------------
    @property
    def _record_bytes(self) -> int:
        return self.config.key_bytes + 8

    @property
    def _buffer_capacity(self) -> int:
        return max(16, self.memory_bytes // (2 * self._record_bytes))

    @property
    def n_runs(self) -> int:
        return len(self._runs)

    # ------------------------------------------------------------------
    # Construction and updates
    # ------------------------------------------------------------------
    def build(self, raw: RawSeriesFile) -> BuildReport:
        """Bulk load: one sorted bottom-level run (same as CTree's sort)."""
        self.raw = raw
        with Measurement(self.disk) as measure:
            if self.durability == "wal":
                self._wal = WriteAheadLog(self.disk, wal_id=self.wal_id)
                self._wal.append_meta(
                    raw.n_series,
                    self.memory_bytes,
                    self.size_ratio,
                    self.config.series_length,
                    self.config.word_length,
                    self.config.cardinality,
                )
            self._bulk_load(raw)
        self.built = True
        self.state_version += 1
        return BuildReport(
            index_name=self.name,
            n_series=raw.n_series,
            wall_s=measure.wall_s,
            io=measure.io,
            simulated_io_ms=measure.simulated_io_ms,
            index_bytes=self.storage_bytes(),
            n_leaves=self.n_runs,
            avg_leaf_fill=1.0,
        )

    def _bulk_load(self, raw: RawSeriesFile) -> None:
        """Sort the whole raw file into the bottom-level run."""
        if not raw.n_series:
            return
        keys_parts, offset_parts = [], []
        for start, block in raw.scan():
            words = sax_words(block, self.config)
            keys_parts.append(interleave_words(words, self.config))
            offset_parts.append(
                np.arange(start, start + len(block), dtype=np.int64)
            )
        keys = np.concatenate(keys_parts)
        offsets = np.concatenate(offset_parts)
        order = np.argsort(keys, kind="stable")
        self._write_run(
            keys[order],
            offsets[order],
            level=10**6,
            manifest=("run", 0, raw.n_series, -1),
        )

    def insert_batch(self, data: np.ndarray) -> BuildReport:
        raw = self._require_built()
        data = np.asarray(data, dtype=np.float32)
        with Measurement(self.disk) as measure:
            first = raw.append_batch(data)
            words = sax_words(data, self.config)
            keys = interleave_words(words, self.config)
            if self._wal is not None:
                # The commit point: raw rows are fully on the device
                # (the append above), so once this frame verifies, the
                # batch is acknowledged and recovery can always rebuild
                # its keys from the raw file.  A fault before or during
                # the append leaves the batch unacknowledged — recovery
                # truncates the raw file back to the acked watermark.
                lsn = self._wal.append_batch(first, first + len(data))
                self._mem_lsns.append(lsn)
            self._mem_keys.append(keys)
            self._mem_offsets.append(
                np.arange(first, first + len(data), dtype=np.int64)
            )
            self._mem_records += len(data)
            self.state_version += 1
            if self._mem_records >= self._buffer_capacity:
                self._flush_memtable()
        return BuildReport(
            index_name=self.name,
            n_series=len(data),
            wall_s=measure.wall_s,
            io=measure.io,
            simulated_io_ms=measure.simulated_io_ms,
            index_bytes=self.storage_bytes(),
            n_leaves=self.n_runs,
            avg_leaf_fill=1.0,
        )

    def _flush_memtable(self) -> None:
        if not self._mem_records:
            return
        keys = np.concatenate(self._mem_keys)
        offsets = np.concatenate(self._mem_offsets)
        order = np.argsort(keys, kind="stable")
        manifest = None
        if self._wal is not None:
            # Memtable batches are consecutive raw ranges in insertion
            # order, so the flushed run covers one contiguous range and
            # its RUN_ADD retires every absorbed BATCH frame at once.
            manifest = (
                "run",
                int(self._mem_offsets[0][0]),
                int(self._mem_offsets[-1][-1]) + 1,
                self._mem_lsns[-1] if self._mem_lsns else -1,
            )
        self._write_run(keys[order], offsets[order], level=0, manifest=manifest)
        self._mem_keys.clear()
        self._mem_offsets.clear()
        self._mem_lsns.clear()
        self._mem_records = 0
        self.n_flushes += 1
        self._maybe_compact()

    def _pack_records(self, keys: np.ndarray, offsets: np.ndarray) -> bytes:
        dtype = np.dtype([("k", self.config.key_dtype), ("off", "<i8")])
        rows = np.zeros(len(keys), dtype=dtype)
        rows["k"] = keys
        rows["off"] = offsets
        return rows.tobytes()

    def run_meta_of(self, run: _Run) -> "RunMeta | None":
        """Manifest-shaped description of a live durable run.

        This is the scrub seam: :class:`~repro.storage.integrity.
        Scrubber` hands the result straight to :meth:`_rebuild_run` to
        regenerate a decayed run extent from the raw file, exactly as
        crash recovery would.  The CRC is recomputed from the in-memory
        key/offset mirrors — the same arrays every query answer already
        trusts — so a rebuild is accepted only if it reproduces what
        queries have been serving.  Returns ``None`` for volatile runs,
        which cover no raw range and cannot be rebuilt from it.
        """
        if run.off_hi <= run.off_lo:
            return None
        return RunMeta(
            level=run.level,
            first_page=run.file.physical_page(0),
            n_pages=run.file.n_pages,
            n_records=run.n_records,
            crc=zlib.crc32(self._pack_records(run.keys, run.offsets)),
            off_lo=run.off_lo,
            off_hi=run.off_hi,
            covers_lsn=run.wal_lsn,
        )

    def _commit_run(self, run: _Run, payload: bytes, manifest) -> None:
        """Footer + manifest frame for a fully-written durable run.

        Called only after ``run.file`` holds the complete record
        payload: the footer page is appended (torn-write detector),
        then the ``RUN_ADD``/``COMPACT`` frame commits the run — the
        atomic manifest swap.  A crash anywhere before the frame
        verifies leaves the previous manifest state intact.
        """
        kind, off_lo, off_hi, extra = manifest
        crc = zlib.crc32(payload)
        run.file.grow(1)
        run.file.write(run.data_pages, run_footer(run.n_records, crc))
        if run.file.n_extents != 1:
            raise CorruptionError(
                f"durable run {run.file.name!r} is not physically contiguous"
            )
        meta = RunMeta(
            level=run.level,
            first_page=run.file.physical_page(0),
            n_pages=run.file.n_pages,
            n_records=run.n_records,
            crc=crc,
            off_lo=off_lo,
            off_hi=off_hi,
            covers_lsn=extra if kind == "run" else -1,
        )
        if kind == "run":
            run.wal_lsn = self._wal.append_run(meta)
        else:
            run.wal_lsn = self._wal.append_compact(meta, replaced=extra)
        run.off_lo, run.off_hi = off_lo, off_hi

    def _write_run(
        self, keys: np.ndarray, offsets: np.ndarray, level: int, manifest=None
    ) -> None:
        payload = self._pack_records(keys, offsets)
        file = PagedFile(self.disk, name=f"lsm-L{level}-run")
        data_pages = file.write_stream(payload)
        run = _Run(
            file=file, keys=keys, offsets=offsets, level=level, data_pages=data_pages
        )
        if self._wal is not None and manifest is not None:
            self._commit_run(run, payload, manifest)
        self._runs.append(run)

    def _maybe_compact(self) -> None:
        """Tiering: merge a level once it holds ``size_ratio`` runs."""
        while True:
            levels: dict[int, list[_Run]] = {}
            for run in self._runs:
                levels.setdefault(run.level, []).append(run)
            overflow = [
                level
                for level, runs in levels.items()
                if level < 10**6 and len(runs) >= self.size_ratio
            ]
            if not overflow:
                return
            level = min(overflow)
            group = levels[level]
            if (
                self.workers > 1
                and len(group) > 1
                and self.merge_engine != "argsort"
            ):
                try:
                    self._sharded_compact(group, level)
                except FaultError as error:
                    # Self-healing: a device fault inside the sharded
                    # session aborted it (parent unfenced, nothing
                    # reconciled), so the serial merge on the parent
                    # replays the compaction from scratch.
                    logger.warning(
                        "sharded compaction failed (%s); degrading to the "
                        "serial merge",
                        error,
                    )
                    self.n_degraded_compactions += 1
                    self._serial_compact(group, level)
            else:
                self._serial_compact(group, level)
            self.n_merges += 1

    def _serial_compact(self, group: "list[_Run]", level: int) -> None:
        # Serial merge: read every input run (sequential), write one
        # output run (sequential) at the next level.
        for run in group:
            run.file.read_stream(0, run.data_pages)
            self._runs.remove(run)
        keys, offsets = self._merge_group(group)
        manifest = None
        if self._wal is not None:
            manifest = (
                "compact",
                min(run.off_lo for run in group),
                max(run.off_hi for run in group),
                [run.wal_lsn for run in group],
            )
        self._write_run(keys, offsets, level=level + 1, manifest=manifest)

    def _sharded_compact(self, group: "list[_Run]", level: int) -> None:
        """Compaction on the sharded storage layer (``workers > 1``).

        Each key-range partition reads its slices of the input run
        files through its own shard and writes a disjoint extent of
        the next level's run; the merged record stream — and the run
        mirrors collected from the partitions — are bit-identical to
        the serial merge for any worker count or splitter sample.
        ``pool_kind="serial"`` executes the same plan inline (the
        serial replay oracle for the reconciled DiskStats).
        """
        from ..parallel.spill import sharded_spill_merge

        # Same binary layout as the run files; the merge engines expect
        # the ("k", "v") field vocabulary.
        dtype = np.dtype([("k", self.config.key_dtype), ("v", "<i8")])
        # Serial buffer geometry per partition; see ExternalSorter.
        buffer_records = max(1, self._buffer_capacity // (len(group) + 1))
        result = sharded_spill_merge(
            self.disk,
            [(run.file, run.n_records, run.keys) for run in group],
            dtype,
            n_partitions=self.workers,
            buffer_records=buffer_records,
            pool_kind=self.pool_kind,
            collect="records",
            out_name=f"lsm-L{level + 1}-run",
            wrap_device=getattr(self, "_compact_wrap_device", None),
            heal_policy=self._heal_policy,
            heal_report=self._heal_report,
        )
        new_run = _Run(
            file=result.file,
            keys=result.keys,
            offsets=result.payloads,
            level=level + 1,
            data_pages=result.file.n_pages,
        )
        if self._wal is not None:
            # The shards wrote the records; the coordinator appends the
            # footer and commits the swap on the (detached) parent.
            payload = self._pack_records(new_run.keys, new_run.offsets)
            manifest = (
                "compact",
                min(run.off_lo for run in group),
                max(run.off_hi for run in group),
                [run.wal_lsn for run in group],
            )
            self._commit_run(new_run, payload, manifest)
        for run in group:
            self._runs.remove(run)
        self._runs.append(new_run)

    def _merge_group(
        self, group: "list[_Run]"
    ) -> "tuple[np.ndarray, np.ndarray]":
        """Stable merge of a compaction group's sorted components.

        Components are merged in ``self._runs`` order; every strategy
        (argsort oracle, vectorized pairwise, sharded parallel) is
        bit-identical — see the module docstring.
        """
        runs = [(run.keys, run.offsets) for run in group]
        if self.merge_engine == "argsort":
            keys = np.concatenate([k for k, _ in runs])
            offsets = np.concatenate([o for _, o in runs])
            order = np.argsort(keys, kind="stable")
            return keys[order], offsets[order]
        return merge_presorted(runs)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _probe_run(
        self, run: _Run, key: bytes, window: int, read_window=None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Offsets near the query key in one run, charging its I/O.

        ``read_window`` overrides how the probed page range is read —
        the batched approximate path passes a caching reader so queries
        probing the same page window of the same run share one read.
        """
        probe = np.array([key], dtype=self.config.key_dtype)
        position = int(np.searchsorted(run.keys, probe[0]))
        start = max(0, min(position - window // 2, run.n_records - window))
        stop = min(run.n_records, start + window)
        if stop <= start:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        # Charge the page range of the probed records.
        rec = self._record_bytes
        first_page = start * rec // self.disk.page_size
        last_page = min(
            run.data_pages - 1, max(first_page, (stop * rec) // self.disk.page_size)
        )
        if read_window is None:
            run.file.read_stream(first_page, last_page - first_page + 1)
        else:
            read_window(run, first_page, last_page - first_page + 1)
        return run.offsets[start:stop], np.arange(start, stop)

    def _approximate_one(
        self, query: np.ndarray, read_window=None, raw=None
    ) -> tuple[int, float, int]:
        """One approximate probe: (answer_idx, distance, visited).

        Shared between :meth:`approximate_search` and the batched
        paths; only ``read_window`` (how run page windows are charged)
        and ``raw`` (which device the record fetch lands on) vary, so
        per-query answers are identical by construction.
        """
        raw = raw if raw is not None else self.raw
        key = query_key(query, self.config)
        window = max(4, raw.series_per_page)
        offset_parts = []
        for run in self._runs:
            offsets, _ = self._probe_run(run, key, window, read_window)
            offset_parts.append(offsets)
        if self._mem_records:
            mem_keys = np.concatenate(self._mem_keys)
            mem_offsets = np.concatenate(self._mem_offsets)
            order = np.argsort(mem_keys, kind="stable")
            probe = np.array([key], dtype=self.config.key_dtype)
            position = int(np.searchsorted(mem_keys[order], probe[0]))
            start = max(0, position - window // 2)
            offset_parts.append(mem_offsets[order][start : start + window])
        best_idx, best_dist, visited = -1, float("inf"), 0
        if offset_parts:
            offsets = np.unique(np.concatenate(offset_parts))
            if len(offsets):
                series = raw.get_many(offsets)
                distances = early_abandon_euclidean_block(
                    query, series, float("inf")
                )
                visited = len(offsets)
                j = int(np.argmin(distances))
                best_idx, best_dist = int(offsets[j]), float(distances[j])
        return best_idx, best_dist, visited

    def approximate_search(self, query: np.ndarray) -> QueryResult:
        """Probe every run (and the memtable) around the query key."""
        query = self._query_array(query)
        with Measurement(self.disk) as measure:
            best_idx, best_dist, visited = self._approximate_one(query)
        return QueryResult(
            answer_idx=best_idx,
            distance=best_dist,
            visited_records=visited,
            visited_leaves=self.n_runs,
            io=measure.io,
            simulated_io_ms=measure.simulated_io_ms,
            wall_s=measure.wall_s,
        )

    def _approx_visit_order(self, queries: np.ndarray):
        """Visit order for batched probes: batch order, no context.

        Every query probes every run around its own key, so there is
        no cross-query sort to exploit — the shared resource is the
        window cache, which :meth:`_approx_answer_subset` keeps per
        subset.  Batch order makes the serial path trivially identical
        to the per-query loop.
        """
        return np.arange(len(queries), dtype=np.int64), None

    def _approx_answer_subset(
        self, queries: np.ndarray, ctx, order: np.ndarray, device=None
    ):
        """Answer the queries in ``order`` with a fresh window cache.

        ``device=None`` probes run files and fetches records on the
        parent device — one subset spanning the batch is exactly the
        serial batched pass.  A worker's device binds each run file
        and the raw series file to its private I/O domain.  The window
        cache only dedupes the I/O charge of a probed page range;
        answers are a pure function of the query.
        """
        seen: set[tuple[int, int, int]] = set()
        raw = self.raw if device is None else self.raw.view(device)
        files: dict[int, object] = {}

        def read_window(run: _Run, first_page: int, n_pages: int) -> None:
            cache_key = (id(run), first_page, n_pages)
            if cache_key in seen:
                return
            seen.add(cache_key)
            if device is None:
                file = run.file
            else:
                file = files.get(id(run))
                if file is None:
                    file = run.file.attach(device)
                    files[id(run)] = file
            file.read_stream(first_page, n_pages)

        pairs = []
        for qi in order:
            qi = int(qi)
            best_idx, best_dist, visited = self._approximate_one(
                queries[qi], read_window, raw=raw
            )
            pairs.append(
                (
                    qi,
                    QueryResult(
                        answer_idx=best_idx,
                        distance=best_dist,
                        visited_records=visited,
                        visited_leaves=self.n_runs,
                    ),
                )
            )
        return pairs

    def _approximate_batch(self, queries: np.ndarray) -> list[QueryResult]:
        """Per-query approximate answers sharing run-probe page windows.

        Mirrors :meth:`approximate_search` exactly (same probes, same
        candidates, same answers); the only change is that the page
        window a probe touches — keyed on (run, first page, length) —
        is charged once per batch instead of once per query, the run
        analogue of the leaf-cache trick the tree indexes use.
        """
        order, ctx = self._approx_visit_order(queries)
        results: list[QueryResult | None] = [None] * len(queries)
        for qi, result in self._approx_answer_subset(queries, ctx, order):
            results[qi] = result
        return results

    def _all_summaries(self) -> tuple[np.ndarray, np.ndarray]:
        """Concatenated (words, offsets) of all runs plus the memtable."""
        key_parts = [run.keys for run in self._runs] + self._mem_keys
        offset_parts = [run.offsets for run in self._runs] + self._mem_offsets
        if key_parts:
            all_keys = np.concatenate(key_parts)
            all_offsets = np.concatenate(offset_parts)
        else:
            all_keys = np.empty(0, dtype=self.config.key_dtype)
            all_offsets = np.empty(0, dtype=np.int64)
        return deinterleave_keys(all_keys, self.config), all_offsets

    def exact_search(self, query: np.ndarray) -> QueryResult:
        """SIMS over the union of all runs plus the memtable."""
        query = self._query_array(query)
        with Measurement(self.disk) as measure:
            seed = self.approximate_search(query)
            words, all_offsets = self._all_summaries()

            def fetch(positions: np.ndarray):
                offsets = all_offsets[positions]
                return self.raw.get_many(offsets), offsets

            outcome = sims_scan(
                query,
                words,
                self.config,
                fetch,
                initial_bsf=seed.distance,
                initial_answer=seed.answer_idx,
            )
        return QueryResult(
            answer_idx=outcome.answer_id,
            distance=outcome.distance,
            visited_records=outcome.visited_records + seed.visited_records,
            visited_leaves=self.n_runs,
            io=measure.io,
            simulated_io_ms=measure.simulated_io_ms,
            wall_s=measure.wall_s,
            pruned_fraction=outcome.pruned_fraction,
        )

    def exact_knn(self, query: np.ndarray, k: int):
        """Exact k nearest neighbors via the SIMS kNN scan (core.knn)."""
        from .knn import seeded_sims_knn

        return seeded_sims_knn(self, query, k, self._prepare_sims)

    def query_batch(
        self, batch, query_workers=1, query_pool_kind="auto",
        scheduler="adaptive", bound_sharing="auto",
    ):
        """Batched queries sharing work across the batch.

        Exact batches share one SIMS pass over the union of runs;
        approximate batches share run-probe page windows (a window
        several queries land in is read once).  Answers are identical
        to issuing the queries one at a time.  ``query_workers > 1``
        runs exact batches on the multi-worker engine
        (:mod:`repro.parallel.query`) and approximate batches on the
        partitioned visit-order engine, answers bit-identical to the
        serial batched engines; ``query_pool_kind="serial"`` replays
        the plan inline.  Planning, ``scheduler`` and ``bound_sharing``
        are documented on
        :func:`repro.parallel.sched.run_sims_query_batch`.
        """
        from ..parallel.sched import run_sims_query_batch

        return run_sims_query_batch(
            self,
            batch,
            query_workers=query_workers,
            query_pool_kind=query_pool_kind,
            scheduler=scheduler,
            bound_sharing=bound_sharing,
        )

    def _prepare_sims(self):
        """(words, fetch) over the union of runs, for the shared engines."""
        words, all_offsets = self._all_summaries()

        def fetch(positions: np.ndarray):
            offsets = all_offsets[positions]
            return self.raw.get_many(offsets), offsets

        return words, fetch

    def _prepare_sims_parallel(self):
        """(words, make_fetch) for the multi-worker engine."""
        words, all_offsets = self._all_summaries()

        def make_fetch(device=None):
            raw = self.raw if device is None else self.raw.view(device)

            def fetch(positions: np.ndarray):
                offsets = all_offsets[positions]
                return raw.get_many(offsets), offsets

            return fetch

        return words, make_fetch

    # ------------------------------------------------------------------
    # Crash recovery
    # ------------------------------------------------------------------
    @classmethod
    def recover(
        cls,
        disk: SimulatedDisk,
        raw: RawSeriesFile,
        wal_id: "int | None" = None,
        workers: int = 1,
        pool_kind: str = "thread",
        merge_engine: str = "vectorized",
    ) -> "CoconutLSM":
        """Rebuild a durable index from the device after a crash.

        Scavenges the write-ahead manifest (no anchors; every allocated
        page is scanned for valid frames), replays the contiguous LSN
        prefix, truncates the raw file to the acknowledged watermark,
        verifies every live run against its checksum — rebuilding any
        corrupt run from the raw file, the durable source of truth —
        and re-derives the memtable from the uncovered ``BATCH``
        frames.  The result is bit-identical in content and answers to
        an index rebuilt from the acknowledged batches alone; see
        ``docs/robustness.md`` for the exact contract.
        """
        frames = scavenge_frames(disk, wal_id=wal_id)
        state = replay_manifest(frames)
        config = SAXConfig(
            series_length=state.series_length,
            word_length=state.word_length,
            cardinality=state.cardinality,
        )
        index = cls(
            disk,
            state.memory_bytes,
            config=config,
            size_ratio=state.size_ratio,
            workers=workers,
            pool_kind=pool_kind,
            merge_engine=merge_engine,
            durability="wal",
            wal_id=state.wal_id,
        )
        index.raw = raw
        raw.truncate(min(raw.n_series, state.watermark))
        if raw.n_series != state.watermark:
            raise CorruptionError(
                f"raw file holds {raw.n_series} series but the manifest "
                f"acknowledged {state.watermark}"
            )
        # The recovered log continues the old one: same wal_id, next
        # LSN past everything scavenged, a fresh frame file.  Replay is
        # idempotent, so frames from both files compose on the next
        # recovery.
        index._wal = WriteAheadLog(
            disk, wal_id=state.wal_id, start_lsn=state.max_lsn + 1
        )
        for lsn in sorted(state.runs):
            meta = state.runs[lsn]
            file = PagedFile.from_extent(
                disk, meta.first_page, meta.n_pages, name=f"lsm-L{meta.level}-run"
            )
            loaded = index._load_run(file, meta)
            if loaded is None:
                loaded = index._rebuild_run(file, meta)
                index.n_rebuilt_runs += 1
            keys, offsets = loaded
            index._runs.append(
                _Run(
                    file=file,
                    keys=keys,
                    offsets=offsets,
                    level=meta.level,
                    data_pages=meta.data_pages,
                    wal_lsn=lsn,
                    off_lo=meta.off_lo,
                    off_hi=meta.off_hi,
                )
            )
        if state.n_build and not any(
            meta.off_lo == 0 for meta in state.runs.values()
        ):
            # The crash hit the bulk build after its META frame but
            # before the bottom-level run committed (the bottom run is
            # never compacted, so a committed one always survives as
            # the off_lo == 0 entry).  Nothing else can have committed
            # yet; redo the bulk load from the raw file.
            index._bulk_load(raw)
        for lsn, off_lo, off_hi in state.batches:
            offsets = np.arange(off_lo, off_hi, dtype=np.int64)
            data = raw.get_many(offsets)
            keys = interleave_words(sax_words(data, config), config)
            index._mem_keys.append(keys)
            index._mem_offsets.append(offsets)
            index._mem_lsns.append(lsn)
            index._mem_records += len(offsets)
        index.built = True
        return index

    def _load_run(self, file: PagedFile, meta: RunMeta):
        """Checksum-verified ``(keys, offsets)`` of a run, else ``None``."""
        footer = parse_run_footer(file.read(meta.data_pages))
        if footer is None or footer != (meta.n_records, meta.crc):
            return None
        blob = bytes(file.read_stream(0, meta.data_pages)) if meta.data_pages else b""
        payload = blob[: meta.n_records * self._record_bytes]
        if zlib.crc32(payload) != meta.crc:
            return None
        dtype = np.dtype([("k", self.config.key_dtype), ("off", "<i8")])
        rows = np.frombuffer(payload, dtype=dtype, count=meta.n_records)
        return rows["k"].copy(), rows["off"].astype(np.int64)

    def _rebuild_run(self, file: PagedFile, meta: RunMeta):
        """Rewrite a corrupt run from the raw file (bit-flip recovery).

        Every run summarizes one contiguous raw range, and within equal
        keys records land in ascending offset order (runs are stable
        sorts/merges of consecutive ranges), so recomputing the keys
        for ``[off_lo, off_hi)`` and stable-sorting reproduces the run
        byte for byte — verified against the manifest checksum before
        the rewrite is accepted.
        """
        offsets = np.arange(meta.off_lo, meta.off_hi, dtype=np.int64)
        if len(offsets) != meta.n_records:
            raise CorruptionError(
                f"run at page {meta.first_page} covers {len(offsets)} records "
                f"but the manifest recorded {meta.n_records}"
            )
        data = self.raw.get_many(offsets)
        keys = interleave_words(sax_words(data, self.config), self.config)
        order = np.argsort(keys, kind="stable")
        keys, offsets = keys[order], offsets[order]
        payload = self._pack_records(keys, offsets)
        if zlib.crc32(payload) != meta.crc:
            raise CorruptionError(
                f"run at page {meta.first_page} cannot be rebuilt: the raw "
                "file no longer matches the manifest checksum"
            )
        file.write_stream(payload)
        file.write(meta.data_pages, run_footer(meta.n_records, meta.crc))
        return keys, offsets

    # ------------------------------------------------------------------
    def storage_bytes(self) -> int:
        return sum(run.file.size_bytes for run in self._runs)

    def leaf_stats(self) -> tuple[int, float]:
        return self.n_runs, 1.0
