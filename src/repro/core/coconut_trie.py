"""Coconut-Trie: bottom-up bulk-loaded, prefix-split data series index.

The paper's first design point (Algorithm 2): like the state of the
art, nodes are identified by iSAX prefixes, but the index is built
bottom-up from the externally sorted invSAX order, so the leaf level
is contiguous on disk.

The paper builds the trie with ``insertBottomUp`` (one node per
distinct word, masking least significant bits until a shared parent
prefix emerges) followed by ``CompactSubtree`` (merging sibling leaves
into their parent while they fit).  Because the paper masks bits in
interleaved significance order, every node's mask is a *prefix of the
z-order key*, and the fully compacted tree is exactly the set of
maximal key-prefix regions holding at most ``leaf_size`` records.  We
construct that set directly by recursive prefix partitioning of the
sorted key array — same resulting tree, one pass, no intermediate
single-record nodes.

Prefix splitting cannot balance data across children, so leaves are
sparsely filled (the space amplification of Sec. 3.2) — visible here
as low average fill factor and more leaf pages than Coconut-Tree for
the same data.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..indexes.base import BuildReport, Measurement, QueryResult, SeriesIndex
from ..series.distance import early_abandon_euclidean_block
from ..storage.disk import SimulatedDisk
from ..storage.external_sort import ExternalSorter, sort_to_arrays
from ..storage.pager import PagedFile
from ..storage.seriesfile import RawSeriesFile
from ..summaries.sax import SAXConfig, sax_words
from .coconut_tree import _record_dtype, payload_dtype
from .invsax import deinterleave_keys, interleave_words, query_key
from .sims import sims_scan


@dataclass
class _TrieLeaf:
    """A maximal prefix region holding at most ``leaf_size`` records."""

    prefix_bits: int
    first_key: bytes
    count: int
    start_page: int
    n_pages: int
    position: int  # rank of the leaf's first record in sorted order


class CoconutTrie(SeriesIndex):
    """Contiguous, prefix-split index over sortable summarizations."""

    def __init__(
        self,
        disk: SimulatedDisk,
        memory_bytes: int,
        config: SAXConfig | None = None,
        leaf_size: int = 100,
        materialized: bool = False,
        workers: int = 1,
        chunk_series: int | None = None,
        pool_kind: str = "process",
        merge_engine: str = "blockwise",
    ):
        super().__init__(disk, memory_bytes)
        if leaf_size <= 0:
            raise ValueError(f"leaf_size must be positive, got {leaf_size}")
        self.config = config or SAXConfig()
        self.leaf_size = leaf_size
        self.is_materialized = materialized
        self.workers = max(1, int(workers))
        self.chunk_series = chunk_series
        self.pool_kind = pool_kind
        self.merge_engine = merge_engine
        self.name = "Coconut-Trie-Full" if materialized else "Coconut-Trie"
        self._leaves: list[_TrieLeaf] = []
        self._first_keys: np.ndarray | None = None
        self._flat_words: np.ndarray | None = None
        self._flat_offsets: np.ndarray | None = None
        self._summaries_loaded = False
        self.n_internal_nodes = 0
        self.max_depth = 0

    # ------------------------------------------------------------------
    # Construction (Algorithm 2)
    # ------------------------------------------------------------------
    def build(self, raw: RawSeriesFile) -> BuildReport:
        self.raw = raw
        with Measurement(self.disk) as measure:
            # The sorter keeps its own merge pool; ``workers`` also
            # drives the sharded spilled cascade — see CoconutTree.build.
            sorter = ExternalSorter(
                self.disk,
                self.memory_bytes,
                merge_engine=self.merge_engine,
                merge_workers=self.workers,
            )
            if self.workers > 1:
                from ..parallel.summarize import summarize_presorted_runs

                runs = summarize_presorted_runs(
                    raw,
                    self.config,
                    self.is_materialized,
                    workers=self.workers,
                    chunk_size=self.chunk_series,
                    kind=self.pool_kind,
                )
                keys, payloads = self._collect_stream(
                    sorter.sort_runs(runs), raw.length
                )
            else:
                keys, payloads = self._summarize_scan(raw)
                keys, payloads = sort_to_arrays(sorter, keys, payloads)
            rec = _record_dtype(self.config, raw.length, self.is_materialized)
            self._record_itemsize = rec.itemsize
            self._leaf_file = PagedFile(self.disk, name=f"{self.name}-leaves")
            self._sidecar = PagedFile(self.disk, name=f"{self.name}-summaries")
            if len(keys):
                raw_keys = keys.view(np.uint8).reshape(
                    len(keys), self.config.key_bytes
                )
                self._partition(keys, raw_keys, payloads, rec, 0, len(keys), 0)
            self._first_keys = np.array(
                [leaf.first_key for leaf in self._leaves],
                dtype=self.config.key_dtype,
            )
            self._flat_words = deinterleave_keys(keys, self.config)
            self._flat_offsets = payloads["off"].astype(np.int64)
            self._write_sidecar(keys, payloads)
        self.built = True
        n_leaves, fill = self.leaf_stats()
        return BuildReport(
            index_name=self.name,
            n_series=raw.n_series,
            wall_s=measure.wall_s,
            io=measure.io,
            simulated_io_ms=measure.simulated_io_ms,
            index_bytes=self.storage_bytes(),
            n_leaves=n_leaves,
            avg_leaf_fill=fill,
            extra={
                "internal_nodes": self.n_internal_nodes,
                "max_depth": self.max_depth,
            },
        )

    def _summarize_scan(
        self, raw: RawSeriesFile
    ) -> tuple[np.ndarray, np.ndarray]:
        pay_dtype = payload_dtype(raw.length, self.is_materialized)
        key_parts, payload_parts = [], []
        for start, block in raw.scan():
            words = sax_words(block, self.config)
            key_parts.append(interleave_words(words, self.config))
            payload = np.zeros(len(block), dtype=pay_dtype)
            payload["off"] = np.arange(start, start + len(block))
            if self.is_materialized:
                payload["series"] = block
            payload_parts.append(payload)
        if not key_parts:
            return (
                np.empty(0, dtype=self.config.key_dtype),
                np.empty(0, dtype=pay_dtype),
            )
        return np.concatenate(key_parts), np.concatenate(payload_parts)

    def _collect_stream(
        self, stream, length: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Concatenate a sorted (keys, payloads) chunk stream."""
        key_parts, payload_parts = [], []
        for chunk_keys, chunk_payloads in stream:
            key_parts.append(chunk_keys)
            payload_parts.append(chunk_payloads)
        if not key_parts:
            return (
                np.empty(0, dtype=self.config.key_dtype),
                np.empty(0, dtype=payload_dtype(length, self.is_materialized)),
            )
        return np.concatenate(key_parts), np.concatenate(payload_parts)

    def _partition(
        self,
        keys: np.ndarray,
        raw_keys: np.ndarray,
        payloads: np.ndarray,
        rec: np.dtype,
        lo: int,
        hi: int,
        bit: int,
    ) -> None:
        """Recursively split [lo, hi) at ``bit`` until regions fit.

        Equivalent to insertBottomUp + CompactSubtree on the sorted
        stream: each emitted leaf is a maximal prefix region with at
        most ``leaf_size`` records (or an exhausted-prefix region).
        """
        count = hi - lo
        if count == 0:
            return
        if count <= self.leaf_size or bit >= self.config.key_bits:
            self._emit_leaf(keys, payloads, rec, lo, hi, bit)
            return
        self.n_internal_nodes += 1
        self.max_depth = max(self.max_depth, bit + 1)
        column = (raw_keys[lo:hi, bit >> 3] >> (7 - (bit & 7))) & 1
        boundary = lo + int(np.searchsorted(column, 1, side="left"))
        self._partition(keys, raw_keys, payloads, rec, lo, boundary, bit + 1)
        self._partition(keys, raw_keys, payloads, rec, boundary, hi, bit + 1)

    def _emit_leaf(
        self,
        keys: np.ndarray,
        payloads: np.ndarray,
        rec: np.dtype,
        lo: int,
        hi: int,
        bit: int,
    ) -> None:
        records = np.zeros(hi - lo, dtype=rec)
        records["k"] = keys[lo:hi]
        records["off"] = payloads["off"][lo:hi]
        if self.is_materialized:
            records["series"] = payloads["series"][lo:hi]
        start_page = self._leaf_file.n_pages
        n_pages = self._leaf_file.write_stream(
            records.tobytes(), at_page=start_page
        )
        first = bytes(keys[lo]).ljust(self.config.key_bytes, b"\x00")
        self._leaves.append(
            _TrieLeaf(
                prefix_bits=bit,
                first_key=first,
                count=hi - lo,
                start_page=start_page,
                n_pages=n_pages,
                position=lo,
            )
        )

    def _write_sidecar(self, keys: np.ndarray, payloads: np.ndarray) -> None:
        if not len(keys):
            return
        dtype = np.dtype([("k", self.config.key_dtype), ("off", "<i8")])
        rows = np.zeros(len(keys), dtype=dtype)
        rows["k"] = keys
        rows["off"] = payloads["off"]
        self._sidecar.write_stream(rows.tobytes())
        self._summaries_loaded = False

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def _read_leaf_records(self, leaf: _TrieLeaf, leaf_file=None) -> np.ndarray:
        file = self._leaf_file if leaf_file is None else leaf_file
        data = file.read_stream(leaf.start_page, leaf.n_pages)
        return np.frombuffer(
            data[: leaf.count * self._record_itemsize],
            dtype=_record_dtype(
                self.config, self.raw.length, self.is_materialized
            ),
        )

    def _locate_leaf(self, key: bytes) -> int:
        probe = np.array([key], dtype=self.config.key_dtype)
        position = int(np.searchsorted(self._first_keys, probe, side="right")[0])
        return max(0, position - 1)

    def approximate_search(self, query: np.ndarray) -> QueryResult:
        """Visit the single most promising leaf (iSAX-style, Sec. 4.2).

        A materialized leaf evaluates everything it holds; a secondary
        leaf fetches about one raw-file page of records around the
        query's in-leaf position (as in Coconut-Tree's Algorithm 4).
        """
        query = self._query_array(query)
        with Measurement(self.disk) as measure:
            best_idx, best_dist, visited = -1, float("inf"), 0
            if self._leaves:
                key = query_key(query, self.config)
                leaf = self._leaves[self._locate_leaf(key)]
                records = self._read_leaf_records(leaf)
                if self.is_materialized:
                    series = records["series"].astype(np.float64)
                else:
                    window = max(4, self.raw.series_per_page)
                    probe = np.array([key], dtype=self.config.key_dtype)
                    position = int(np.searchsorted(records["k"], probe[0]))
                    start = max(
                        0, min(position - window // 2, len(records) - window)
                    )
                    records = records[start : start + window]
                    series = self.raw.get_many(records["off"])
                distances = early_abandon_euclidean_block(
                    query, series, float("inf")
                )
                visited = len(records)
                j = int(np.argmin(distances))
                best_idx, best_dist = int(records["off"][j]), float(distances[j])
        return QueryResult(
            answer_idx=best_idx,
            distance=best_dist,
            visited_records=visited,
            visited_leaves=1 if visited else 0,
            io=measure.io,
            simulated_io_ms=measure.simulated_io_ms,
            wall_s=measure.wall_s,
        )

    def exact_search(self, query: np.ndarray) -> QueryResult:
        """SIMS over the sorted summaries (same engine as Coconut-Tree)."""
        query = self._query_array(query)
        with Measurement(self.disk) as measure:
            words, fetch = self._prepare_sims()
            seed = self.approximate_search(query)
            outcome = sims_scan(
                query,
                words,
                self.config,
                fetch,
                initial_bsf=seed.distance,
                initial_answer=seed.answer_idx,
            )
        return QueryResult(
            answer_idx=outcome.answer_id,
            distance=outcome.distance,
            visited_records=outcome.visited_records + seed.visited_records,
            visited_leaves=seed.visited_leaves,
            io=measure.io,
            simulated_io_ms=measure.simulated_io_ms,
            wall_s=measure.wall_s,
            pruned_fraction=outcome.pruned_fraction,
        )

    def exact_knn(self, query: np.ndarray, k: int):
        """Exact k nearest neighbors via the SIMS kNN scan (core.knn)."""
        from .knn import seeded_sims_knn

        return seeded_sims_knn(self, query, k, self._prepare_sims)

    def query_batch(
        self, batch, query_workers=1, query_pool_kind="auto",
        scheduler="adaptive", bound_sharing="auto",
    ):
        """Batched queries sharing work across the batch (repro.parallel).

        Exact batches share one SIMS pass; approximate batches share
        leaf reads — each distinct target leaf is read once for all the
        queries that land in it.  Answers are identical to the
        per-query loop either way.  ``query_workers > 1`` runs exact
        batches on the multi-worker engine (:mod:`repro.parallel.query`)
        and approximate batches on the partitioned visit-order engine,
        answers bit-identical to the serial batched engines;
        ``query_pool_kind="serial"`` replays the plan inline.
        Planning, ``scheduler`` and ``bound_sharing`` are documented on
        :func:`repro.parallel.sched.run_sims_query_batch`.
        """
        from ..parallel.sched import run_sims_query_batch

        return run_sims_query_batch(
            self,
            batch,
            query_workers=query_workers,
            query_pool_kind=query_pool_kind,
            scheduler=scheduler,
            bound_sharing=bound_sharing,
        )

    def _approx_visit_order(self, queries: np.ndarray):
        """Visit order (ascending target leaf) + per-query keys/targets."""
        if not self._leaves:
            return np.empty(0, dtype=np.int64), ([], np.empty(0, np.int64))
        keys = [query_key(query, self.config) for query in queries]
        targets = np.array(
            [self._locate_leaf(key) for key in keys], dtype=np.int64
        )
        order = np.argsort(targets, kind="stable").astype(np.int64)
        return order, (keys, targets)

    def _approx_answer_subset(
        self, queries: np.ndarray, ctx, order: np.ndarray, device=None
    ):
        """Answer the queries in ``order`` with a fresh leaf cache.

        Same contract as ``CoconutTree._approx_answer_subset``: reads
        bound to ``device`` (parent device when ``None``), answers a
        pure function of the query — the cache only dedupes I/O.
        """
        keys, targets = ctx
        cache: dict[int, np.ndarray] = {}
        leaf_file = (
            None if device is None else self._leaf_file.attach(device)
        )
        raw = self.raw if device is None else self.raw.view(device)

        def read_leaf(index: int) -> np.ndarray:
            records = cache.get(index)
            if records is None:
                records = self._read_leaf_records(
                    self._leaves[index], leaf_file=leaf_file
                )
                cache[index] = records
            return records

        pairs = []
        for qi in order:
            qi = int(qi)
            records = read_leaf(int(targets[qi]))
            if self.is_materialized:
                series = records["series"].astype(np.float64)
            else:
                window = max(4, raw.series_per_page)
                probe = np.array([keys[qi]], dtype=self.config.key_dtype)
                position = int(np.searchsorted(records["k"], probe[0]))
                start = max(
                    0, min(position - window // 2, len(records) - window)
                )
                records = records[start : start + window]
                series = raw.get_many(records["off"])
            distances = early_abandon_euclidean_block(
                queries[qi], series, float("inf")
            )
            j = int(np.argmin(distances))
            pairs.append(
                (
                    qi,
                    QueryResult(
                        answer_idx=int(records["off"][j]),
                        distance=float(distances[j]),
                        visited_records=len(records),
                        visited_leaves=1,
                    ),
                )
            )
        return pairs

    def _approximate_batch(self, queries: np.ndarray) -> list[QueryResult]:
        """Per-query approximate answers with a shared leaf cache.

        Mirrors :meth:`approximate_search` exactly; queries are visited
        in ascending leaf order and each distinct leaf is read once per
        batch.
        """
        if not self._leaves:
            return [QueryResult() for _ in queries]
        order, ctx = self._approx_visit_order(queries)
        results: list[QueryResult | None] = [None] * len(queries)
        for qi, result in self._approx_answer_subset(queries, ctx, order):
            results[qi] = result
        return results

    def _prepare_sims(self):
        """(words, fetch) of the summary column, for the shared engines."""
        self._ensure_summaries()
        fetch = (
            self._fetch_from_leaves
            if self.is_materialized
            else self._fetch_from_raw
        )
        return self._flat_words, fetch

    def _prepare_sims_parallel(self):
        """(words, make_fetch) for the multi-worker engine."""
        self._ensure_summaries()
        return self._flat_words, self._make_sims_fetch

    def _make_sims_fetch(self, device=None):
        from ..parallel.query import make_sims_fetch

        return make_sims_fetch(self, device)

    def _ensure_summaries(self) -> None:
        if self._summaries_loaded:
            return
        if self._sidecar.n_pages:
            self._sidecar.read_stream(0, self._sidecar.n_pages)
        self._summaries_loaded = True

    def _fetch_from_raw(
        self, positions: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        offsets = self._flat_offsets[positions]
        return self.raw.get_many(offsets), offsets

    def _fetch_from_leaves(
        self, positions: np.ndarray, leaf_file=None
    ) -> tuple[np.ndarray, np.ndarray]:
        starts = np.array([leaf.position for leaf in self._leaves])
        leaf_ids = np.searchsorted(starts, positions, side="right") - 1
        series = np.empty((len(positions), self.raw.length), dtype=np.float64)
        offsets = np.empty(len(positions), dtype=np.int64)
        for leaf_id in np.unique(leaf_ids):
            leaf = self._leaves[int(leaf_id)]
            records = self._read_leaf_records(leaf, leaf_file=leaf_file)
            mask = leaf_ids == leaf_id
            local = positions[mask] - leaf.position
            series[mask] = records["series"][local]
            offsets[mask] = records["off"][local]
        return series, offsets

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def storage_bytes(self) -> int:
        if not self._leaves:
            return 0
        return self._leaf_file.size_bytes + self._sidecar.size_bytes

    def leaf_stats(self) -> tuple[int, float]:
        if not self._leaves:
            return 0, 0.0
        fills = [leaf.count / self.leaf_size for leaf in self._leaves]
        return len(self._leaves), float(np.mean(fills))
