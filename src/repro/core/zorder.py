"""Generic z-order keys for arbitrary vector summarizations.

The paper claims (Sec. 2) that Coconut's infrastructure "can be used
in conjunction with any summarization that represents a sequence as a
multi-dimensional point" — DFT, wavelets, PLA, SVD features and so on.
This module delivers that claim: quantize any float feature matrix
dimension-wise (by empirical quantiles, mirroring how SAX breakpoints
equalize symbol usage) and interleave the resulting code bits into
sortable byte-string keys, exactly as invSAX does for SAX words.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class Quantizer:
    """Per-dimension quantile quantizer fitted on a feature sample."""

    bits: int
    boundaries: np.ndarray = field(default_factory=lambda: np.empty(0))

    def __post_init__(self) -> None:
        if not 1 <= self.bits <= 16:
            raise ValueError(f"bits must be in [1, 16], got {self.bits}")

    @property
    def levels(self) -> int:
        return 1 << self.bits

    def fit(self, features: np.ndarray) -> "Quantizer":
        """Learn per-dimension breakpoints from a (N, D) sample."""
        features = np.atleast_2d(np.asarray(features, dtype=np.float64))
        quantiles = np.linspace(0.0, 1.0, self.levels + 1)[1:-1]
        self.boundaries = np.quantile(features, quantiles, axis=0)  # (levels-1, D)
        return self

    def encode(self, features: np.ndarray) -> np.ndarray:
        """Quantize features to (N, D) integer codes."""
        if self.boundaries.size == 0:
            raise RuntimeError("call fit() before encode()")
        features = np.atleast_2d(np.asarray(features, dtype=np.float64))
        codes = np.empty(features.shape, dtype=np.uint16)
        for d in range(features.shape[1]):
            codes[:, d] = np.searchsorted(
                self.boundaries[:, d], features[:, d], side="left"
            )
        return codes


def interleave_codes(codes: np.ndarray, bits: int) -> np.ndarray:
    """Bit-interleave integer codes into big-endian byte-string keys.

    The generic core of Algorithm 1: for each significance level (MSB
    first) and each dimension in order, emit one bit.  Returns an (N,)
    array of dtype ``S{ceil(D * bits / 8)}``.
    """
    codes = np.atleast_2d(np.asarray(codes, dtype=np.uint32))
    n, d = codes.shape
    if codes.max(initial=0) >= (1 << bits):
        raise ValueError(f"code out of range for {bits} bits")
    key_bytes = -(-d * bits // 8)
    out = np.zeros((n, key_bytes), dtype=np.uint8)
    for i in range(bits):
        level = ((codes >> (bits - 1 - i)) & 1).astype(np.uint8)
        for j in range(d):
            position = i * d + j
            out[:, position >> 3] |= level[:, j] << (7 - (position & 7))
    return out.reshape(n * key_bytes).view(f"S{key_bytes}")


def deinterleave_codes(keys: np.ndarray, n_dimensions: int, bits: int) -> np.ndarray:
    """Invert :func:`interleave_codes`."""
    key_bytes = -(-n_dimensions * bits // 8)
    keys = np.ascontiguousarray(keys, dtype=f"S{key_bytes}")
    raw = keys.view(np.uint8).reshape(len(keys), key_bytes)
    codes = np.zeros((len(keys), n_dimensions), dtype=np.uint16)
    for i in range(bits):
        for j in range(n_dimensions):
            position = i * n_dimensions + j
            bit = (raw[:, position >> 3] >> (7 - (position & 7))) & 1
            codes[:, j] |= bit.astype(np.uint16) << (bits - 1 - i)
    return codes


def zorder_keys_for_features(
    features: np.ndarray, bits: int = 8, quantizer: Quantizer | None = None
) -> tuple[np.ndarray, Quantizer]:
    """One-call helper: fit (or reuse) a quantizer and produce keys."""
    if quantizer is None:
        quantizer = Quantizer(bits=bits).fit(features)
    codes = quantizer.encode(features)
    return interleave_codes(codes, quantizer.bits), quantizer
