"""DTW-compatible similarity search over Coconut indexes.

The paper (Sec. 2) notes that data series indexes use ED but "simple
modifications can be applied to make them compatible with DTW".  This
module implements that modification for Coconut, following the
envelope construction of Keogh's LB_Keogh lineage:

1. Build the query's Sakoe-Chiba envelope (U, L).
2. Per SAX segment, take ``Umax`` (the max of U) and ``Lmin`` (the min
   of L).  For any candidate whose segment *mean* falls in the SAX
   region [lo, hi], convexity of ``x -> max(0, x - a)**2`` gives

       DTW(Q, C)^2 >= LB_Keogh(Q, C)^2
                   >= sum_s len_s * (max(0, lo_s - Umax_s)^2
                                     + max(0, Lmin_s - hi_s)^2)

   so the SAX words alone yield a valid DTW lower bound.
3. Scan summaries with this bound (SIMS-style), refine survivors with
   the point-wise LB_Keogh, and compute constrained DTW only for what
   remains.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..series.distance import dtw, lb_keogh
from ..summaries.sax import SAXConfig, symbol_bounds
from ..summaries.paa import segment_boundaries


def query_envelope(query: np.ndarray, window: int) -> tuple[np.ndarray, np.ndarray]:
    """The Sakoe-Chiba envelope (upper, lower) of a query series."""
    query = np.asarray(query, dtype=np.float64).ravel()
    if window < 0:
        raise ValueError(f"window must be >= 0, got {window}")
    n = len(query)
    upper = np.empty(n)
    lower = np.empty(n)
    for i in range(n):
        lo = max(0, i - window)
        hi = min(n, i + window + 1)
        upper[i] = query[lo:hi].max()
        lower[i] = query[lo:hi].min()
    return upper, lower


def envelope_segment_bounds(
    upper: np.ndarray, lower: np.ndarray, config: SAXConfig
) -> tuple[np.ndarray, np.ndarray]:
    """Per-SAX-segment (Umax, Lmin) of the envelope."""
    bounds = segment_boundaries(len(upper), config.word_length)
    u_max = np.maximum.reduceat(upper, bounds[:-1])
    l_min = np.minimum.reduceat(lower, bounds[:-1])
    return u_max, l_min


def dtw_mindist_to_words(
    upper: np.ndarray,
    lower: np.ndarray,
    words: np.ndarray,
    config: SAXConfig,
) -> np.ndarray:
    """Vectorized DTW lower bound from a query envelope to SAX words."""
    u_max, l_min = envelope_segment_bounds(upper, lower, config)
    region_lo, region_hi = symbol_bounds(np.atleast_2d(words), config.cardinality)
    above = np.where(region_lo > u_max[None, :], region_lo - u_max[None, :], 0.0)
    below = np.where(region_hi < l_min[None, :], l_min[None, :] - region_hi, 0.0)
    gap = above + below
    return np.sqrt(config.segment_size * np.sum(gap * gap, axis=1))


@dataclass
class DTWSearchResult:
    answer_idx: int
    distance: float
    visited_records: int
    refined_records: int
    pruned_fraction: float


def dtw_exact_search(
    index,
    query: np.ndarray,
    window: int,
    block_records: int = 2048,
) -> DTWSearchResult:
    """Exact 1-NN under constrained DTW over a Coconut index.

    ``index`` is a built CoconutTree (or CoconutTrie); the scan reuses
    its in-memory summaries and fetch path, so I/O is charged to the
    same simulated disk.
    """
    query = np.asarray(query, dtype=np.float64).ravel()
    index._ensure_summaries()
    words = index._flat_words
    upper, lower = query_envelope(query, window)
    bounds = dtw_mindist_to_words(upper, lower, words, index.config)

    # Seed: DTW distance to the best ED approximate answer.
    seed = index.approximate_search(query)
    bsf = float("inf")
    answer = -1
    if seed.answer_idx >= 0:
        candidate = index.raw.get(seed.answer_idx).astype(np.float64)
        bsf = dtw(query, candidate, window=window)
        answer = seed.answer_idx

    fetch = (
        index._fetch_from_leaves
        if index.is_materialized
        else index._fetch_from_raw
    )
    order = np.nonzero(bounds < bsf)[0]
    visited = refined = 0
    for start in range(0, len(order), block_records):
        block = order[start : start + block_records]
        block = block[bounds[block] < bsf]
        if len(block) == 0:
            continue
        series, identifiers = fetch(block)
        visited += len(block)
        for row, identifier in zip(series, identifiers):
            row = row.astype(np.float64)
            if lb_keogh(query, row, window) >= bsf:
                continue
            refined += 1
            distance = dtw(query, row, window=window)
            if distance < bsf:
                bsf = distance
                answer = int(identifier)
    n = len(words)
    return DTWSearchResult(
        answer_idx=answer,
        distance=bsf,
        visited_records=visited,
        refined_records=refined,
        pruned_fraction=1.0 - visited / n if n else 0.0,
    )
