"""k-nearest-neighbor search over Coconut indexes.

The paper defines similarity search as 1-NN (Definition 2) but the
data mining tasks it motivates (classification, clustering, deviation
detection) consume k nearest neighbors; this module generalizes the
SIMS engine accordingly.  The scan keeps a bounded max-heap of the k
best answers and prunes against the k-th best distance — with k = 1 it
degenerates to Algorithm 5 exactly.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from ..series.distance import early_abandon_euclidean_block
from ..summaries.paa import paa
from ..summaries.sax import SAXConfig, mindist_paa_to_words
from .sims import SIMS_BLOCK_RECORDS, FetchFn


@dataclass
class KNNOutcome:
    """k answers in ascending distance order (plus I/O, when measured)."""

    answer_ids: list[int]
    distances: list[float]
    visited_records: int
    pruned_fraction: float
    io: object | None = None
    simulated_io_ms: float = 0.0
    wall_s: float = 0.0

    @property
    def total_cost_s(self) -> float:
        return self.simulated_io_ms / 1000.0 + self.wall_s


class _BoundedMaxHeap:
    """Keeps the k lexicographically smallest (distance, id) pairs.

    The retained set is a pure function of the *multiset* of offered
    pairs — k smallest under ``(distance, identifier)`` order, one
    entry per identifier — never of the order they were offered in.
    That order-independence is what lets the parallel query engine
    merge per-worker heaps into exactly the heap a serial pass over
    the union would have produced, ties included: offers commute, so
    partitioning the offer stream across workers cannot change the
    outcome.
    """

    def __init__(self, k: int):
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        self.k = k
        # (-distance, -identifier): heap[0] is the lex-largest retained
        # pair, the one a better offer evicts first.
        self._heap: list[tuple[float, int]] = []
        self._ids: set[int] = set()

    def offer(self, distance: float, identifier: int) -> None:
        if identifier in self._ids:
            return
        if len(self._heap) < self.k:
            heapq.heappush(self._heap, (-distance, -identifier))
            self._ids.add(identifier)
        elif (-distance, -identifier) > self._heap[0]:
            evicted = heapq.heapreplace(self._heap, (-distance, -identifier))
            self._ids.discard(-evicted[1])
            self._ids.add(identifier)

    def merge(self, other: "_BoundedMaxHeap") -> None:
        """Offer every pair another heap retained (coordinator merge)."""
        for distance, identifier in other.items():
            self.offer(distance, identifier)

    def items(self) -> list[tuple[float, int]]:
        """Retained (distance, id) pairs in arbitrary order."""
        return [(-d, -i) for d, i in self._heap]

    @property
    def threshold(self) -> float:
        """The pruning bound: k-th best distance (inf until k found)."""
        if len(self._heap) < self.k:
            return float("inf")
        return -self._heap[0][0]

    def sorted_items(self) -> list[tuple[float, int]]:
        return sorted((-d, -i) for d, i in self._heap)


def seeded_sims_knn(index, query: np.ndarray, k: int, prepare) -> KNNOutcome:
    """Shared exact-kNN wrapper for SIMS-backed indexes.

    Runs the approximate search as a pruning seed, then the kNN scan
    over whatever summaries/fetch the index's ``prepare`` callback
    yields — all inside one measurement so I/O (including any summary
    load ``prepare`` performs) is charged to the query.
    """
    from ..indexes.base import Measurement  # deferred: base imports core

    query = index._query_array(query)
    with Measurement(index.disk) as measure:
        words, fetch = prepare()
        seed = index.approximate_search(query)
        seeds = (
            [(seed.distance, seed.answer_idx)] if seed.answer_idx >= 0 else []
        )
        outcome = sims_knn_scan(
            query, k, words, index.config, fetch, seed_distances=seeds
        )
    outcome.visited_records += seed.visited_records
    outcome.io = measure.io
    outcome.simulated_io_ms = measure.simulated_io_ms
    outcome.wall_s = measure.wall_s
    return outcome


def sims_knn_scan(
    query: np.ndarray,
    k: int,
    words: np.ndarray,
    config: SAXConfig,
    fetch: FetchFn,
    seed_distances: list[tuple[float, int]] | None = None,
    block_records: int = SIMS_BLOCK_RECORDS,
) -> KNNOutcome:
    """Exact k-NN via the skip-sequential summary scan.

    ``seed_distances`` are (distance, id) pairs from an approximate
    pass; they tighten the pruning bound from the start.
    """
    query = np.asarray(query, dtype=np.float64).ravel()
    heap = _BoundedMaxHeap(k)
    for distance, identifier in seed_distances or []:
        heap.offer(float(distance), int(identifier))
    query_paa = paa(query, config.word_length)[0]
    mindists = mindist_paa_to_words(query_paa, words, config)
    candidates = np.nonzero(mindists < heap.threshold)[0]
    visited = 0
    for start in range(0, len(candidates), block_records):
        block = candidates[start : start + block_records]
        block = block[mindists[block] < heap.threshold]
        if len(block) == 0:
            continue
        series, identifiers = fetch(block)
        # Fused refine against the k-th best distance.  Abandoned rows
        # come back ``inf`` — but an abandoned row has distance
        # strictly above the block-start threshold, so its offer was
        # doomed anyway (thresholds only shrink within a block): the
        # heap evolves bit-identically to the full euclidean_batch
        # pass.  While the heap is not yet full the threshold is inf
        # and the kernel short-circuits to the plain batch distance.
        distances = early_abandon_euclidean_block(
            query, series, heap.threshold
        )
        visited += len(block)
        for distance, identifier in zip(distances, identifiers):
            heap.offer(float(distance), int(identifier))
    items = heap.sorted_items()
    n = len(words)
    return KNNOutcome(
        answer_ids=[i for _, i in items],
        distances=[d for d, _ in items],
        visited_records=visited,
        pruned_fraction=1.0 - (visited / n) if n else 0.0,
    )
