"""Write-ahead manifest for :class:`repro.core.lsm.CoconutLSM`.

The log is the LSM's single source of durable truth.  Every frame is
a self-describing, CRC-protected record written as one physically
contiguous page run, so recovery needs **no anchor block**: it
*scavenges* the device — scans every allocated page for valid frame
headers — and replays the surviving frames in LSN order.  Three
invariants make this sound:

* frames are appended strictly in LSN order and each append is
  read-back verified before the operation it commits is acknowledged,
  so the valid-frame set is always an LSN prefix (a torn frame is the
  lost tail, and :func:`replay_manifest` truncates at the first gap);
* a frame commits an operation only *after* the data it references is
  fully on the device (run data and footer before ``RUN_ADD`` /
  ``COMPACT``; raw-file rows before ``BATCH``), so every committed
  reference is resolvable;
* compaction writes its output to fresh pages and retires the inputs
  in one ``COMPACT`` frame — the atomic manifest swap: either the
  frame landed (new run live, inputs retired) or it did not (inputs
  still live, orphan output pages are simply never referenced).

Frame types
-----------
``META``      wal creation: build watermark + index geometry
``BATCH``     one acknowledged ``insert_batch`` (raw offset range)
``RUN_ADD``   a flushed or bulk-built run (+ memtable coverage LSN)
``COMPACT``   a compaction: new run meta + the retired runs' LSNs
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field

from ..storage.faults import CorruptionError
from ..storage.pager import PagedFile

__all__ = [
    "FRAME_META",
    "FRAME_BATCH",
    "FRAME_RUN_ADD",
    "FRAME_COMPACT",
    "Frame",
    "RunMeta",
    "ManifestState",
    "WriteAheadLog",
    "run_footer",
    "parse_run_footer",
    "scavenge_frames",
    "replay_manifest",
]

WAL_MAGIC = b"RLSMWAL1"
RUN_MAGIC = b"RLSMRUN1"

FRAME_META = 0
FRAME_BATCH = 1
FRAME_RUN_ADD = 2
FRAME_COMPACT = 3

# magic, wal_id, lsn, frame type, payload length, crc32
_HEADER = struct.Struct("<8sQQBI")
_CRC = struct.Struct("<I")
HEADER_BYTES = _HEADER.size + _CRC.size

_META = struct.Struct("<qqqqqq")  # n_build, memory_bytes, size_ratio, geometry
_BATCH = struct.Struct("<qq")  # off_lo, off_hi
_RUN = struct.Struct("<qqqqIqqq")  # level, first_page, n_pages, n_records,
#                                    crc, off_lo, off_hi, covers_lsn
_COUNT = struct.Struct("<q")
_FOOTER = struct.Struct("<8sqI")  # magic, n_records, crc

#: Upper bound a scavenged header's payload length must respect; real
#: frames are tiny, so this rejects magic-lookalike data cheaply.
MAX_PAYLOAD_BYTES = 1 << 20


# ----------------------------------------------------------------------
# Run footers (the checksummed frame at the tail of every durable run)
# ----------------------------------------------------------------------
def run_footer(n_records: int, crc: int) -> bytes:
    return _FOOTER.pack(RUN_MAGIC, n_records, crc)


def parse_run_footer(page) -> "tuple[int, int] | None":
    """``(n_records, crc)`` of a footer page, or ``None`` if invalid."""
    blob = bytes(page[: _FOOTER.size])
    if len(blob) < _FOOTER.size:
        return None
    magic, n_records, crc = _FOOTER.unpack(blob)
    if magic != RUN_MAGIC or n_records < 0:
        return None
    return n_records, crc


# ----------------------------------------------------------------------
# Frames
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Frame:
    wal_id: int
    lsn: int
    frame_type: int
    payload: bytes


@dataclass(frozen=True)
class RunMeta:
    """Durable description of one run file (data pages + footer page)."""

    level: int
    first_page: int
    n_pages: int  # total, footer included
    n_records: int
    crc: int  # crc32 of the packed record payload
    off_lo: int
    off_hi: int
    covers_lsn: int = -1  # flushes: highest BATCH lsn absorbed

    @property
    def data_pages(self) -> int:
        return self.n_pages - 1

    def pack(self) -> bytes:
        return _RUN.pack(
            self.level,
            self.first_page,
            self.n_pages,
            self.n_records,
            self.crc,
            self.off_lo,
            self.off_hi,
            self.covers_lsn,
        )

    @classmethod
    def unpack(cls, blob: bytes) -> "RunMeta":
        return cls(*_RUN.unpack(blob[: _RUN.size]))


def _frame_bytes(wal_id: int, lsn: int, frame_type: int, payload: bytes) -> bytes:
    header = _HEADER.pack(WAL_MAGIC, wal_id, lsn, frame_type, len(payload))
    crc = zlib.crc32(payload, zlib.crc32(header))
    return header + _CRC.pack(crc) + payload


class WriteAheadLog:
    """Append-only, read-back-verified frame log on one device."""

    def __init__(self, device, wal_id: int = 1, start_lsn: int = 0, name: str = "lsm-wal"):
        if device.page_size < HEADER_BYTES:
            raise ValueError(
                f"page_size {device.page_size} cannot hold a WAL frame header"
            )
        self.device = device
        self.wal_id = int(wal_id)
        self.next_lsn = int(start_lsn)
        self.file = PagedFile(device, name=name)

    def _append(self, frame_type: int, payload: bytes) -> int:
        lsn = self.next_lsn
        frame = _frame_bytes(self.wal_id, lsn, frame_type, payload)
        at = self.file.n_pages
        n_pages = self.file.write_stream(frame, at_page=at)
        # Read-back verification is the ack barrier: a silently
        # corrupted (bit-flipped) frame must fail the commit *now* —
        # otherwise the operation would be acknowledged while the log
        # cannot replay it.
        back = bytes(self.file.read_stream(at, n_pages))[: len(frame)]
        if back != frame:
            # Locate the first divergent byte so the error carries page
            # provenance (which physical page the flip landed on), the
            # same contract as a verified-read CorruptionError.
            bad_byte = next(
                i for i, (a, b) in enumerate(zip(frame, back)) if a != b
            )
            physical = self.file.physical_page(
                at + bad_byte // self.device.page_size
            )
            error = CorruptionError(
                f"WAL frame lsn={lsn} failed read-back verification "
                f"(first divergence at frame byte {bad_byte}, physical "
                f"page {physical})"
            )
            error.page_id = physical
            error.source = f"WriteAheadLog({self.file.name!r})"
            raise error
        self.next_lsn = lsn + 1
        return lsn

    # -- typed appends ---------------------------------------------------
    def append_meta(
        self,
        n_build: int,
        memory_bytes: int,
        size_ratio: int,
        series_length: int,
        word_length: int,
        cardinality: int,
    ) -> int:
        return self._append(
            FRAME_META,
            _META.pack(
                n_build, memory_bytes, size_ratio, series_length, word_length, cardinality
            ),
        )

    def append_batch(self, off_lo: int, off_hi: int) -> int:
        return self._append(FRAME_BATCH, _BATCH.pack(off_lo, off_hi))

    def append_run(self, meta: RunMeta) -> int:
        return self._append(FRAME_RUN_ADD, meta.pack())

    def append_compact(self, meta: RunMeta, replaced: "list[int]") -> int:
        payload = meta.pack() + _COUNT.pack(len(replaced))
        payload += b"".join(_COUNT.pack(lsn) for lsn in replaced)
        return self._append(FRAME_COMPACT, payload)


# ----------------------------------------------------------------------
# Scavenge + replay
# ----------------------------------------------------------------------
def scavenge_frames(device, wal_id: "int | None" = None) -> "list[Frame]":
    """Every valid WAL frame on the device, in LSN order.

    Anchor-free: scans all allocated pages for frame headers (magic +
    payload-length sanity + CRC over header and payload), so recovery
    works from the device alone — no in-memory file table survives a
    crash.  ``page_view`` is used throughout: scavenging is offline
    diagnostics-level access and charges no simulated I/O.
    """
    page_size = device.page_size
    n_pages = device.pages_allocated
    by_id: "dict[int, dict[int, Frame]]" = {}
    page = 0
    while page < n_pages:
        head = bytes(device.page_view(page)[:HEADER_BYTES])
        if head[:8] != WAL_MAGIC or len(head) < HEADER_BYTES:
            page += 1
            continue
        magic, frame_wal, lsn, frame_type, payload_len = _HEADER.unpack(
            head[: _HEADER.size]
        )
        (crc,) = _CRC.unpack(head[_HEADER.size : HEADER_BYTES])
        total = HEADER_BYTES + payload_len
        frame_pages = -(-total // page_size)
        if payload_len > MAX_PAYLOAD_BYTES or page + frame_pages > n_pages:
            page += 1
            continue
        blob = bytes(device.page_view(page)) if frame_pages == 1 else b"".join(
            bytes(device.page_view(p)) for p in range(page, page + frame_pages)
        )
        payload = blob[HEADER_BYTES:total]
        expect = zlib.crc32(payload, zlib.crc32(blob[: _HEADER.size]))
        if expect != crc:
            page += 1
            continue
        frame = Frame(frame_wal, lsn, frame_type, payload)
        by_id.setdefault(frame_wal, {})[lsn] = frame
        page += frame_pages
    if wal_id is None:
        if not by_id:
            raise CorruptionError("no WAL frames found on device")
        if len(by_id) > 1:
            raise CorruptionError(
                f"multiple WAL ids on device ({sorted(by_id)}); pass wal_id"
            )
        (_, frames_by_lsn), = by_id.items()
    else:
        frames_by_lsn = by_id.get(wal_id, {})
        if not frames_by_lsn:
            raise CorruptionError(f"no WAL frames for wal_id={wal_id}")
    return [frames_by_lsn[lsn] for lsn in sorted(frames_by_lsn)]


@dataclass
class ManifestState:
    """The committed LSM state a frame prefix describes."""

    wal_id: int = 0
    max_lsn: int = -1
    n_build: int = 0
    memory_bytes: int = 0
    size_ratio: int = 4
    series_length: int = 0
    word_length: int = 0
    cardinality: int = 0
    runs: "dict[int, RunMeta]" = field(default_factory=dict)  # add-lsn -> meta
    batches: "list[tuple[int, int, int]]" = field(default_factory=list)

    @property
    def watermark(self) -> int:
        """Highest acknowledged raw offset (the truncation point)."""
        mark = self.n_build
        for meta in self.runs.values():
            mark = max(mark, meta.off_hi)
        for _, _, off_hi in self.batches:
            mark = max(mark, off_hi)
        return mark


def replay_manifest(frames: "list[Frame]") -> ManifestState:
    """Fold a scavenged frame list into committed state.

    Frames replay in LSN order starting from 0; the first gap ends the
    replay (appends are strictly ordered and verified, so everything
    past a gap was never acknowledged).
    """
    state = ManifestState()
    expected = 0
    for frame in frames:
        if frame.lsn != expected:
            break
        expected += 1
        state.max_lsn = frame.lsn
        state.wal_id = frame.wal_id
        if frame.frame_type == FRAME_META:
            (
                state.n_build,
                state.memory_bytes,
                state.size_ratio,
                state.series_length,
                state.word_length,
                state.cardinality,
            ) = _META.unpack(frame.payload[: _META.size])
        elif frame.frame_type == FRAME_BATCH:
            off_lo, off_hi = _BATCH.unpack(frame.payload[: _BATCH.size])
            state.batches.append((frame.lsn, off_lo, off_hi))
        elif frame.frame_type == FRAME_RUN_ADD:
            meta = RunMeta.unpack(frame.payload)
            state.runs[frame.lsn] = meta
            if meta.covers_lsn >= 0:
                state.batches = [
                    b for b in state.batches if b[0] > meta.covers_lsn
                ]
        elif frame.frame_type == FRAME_COMPACT:
            meta = RunMeta.unpack(frame.payload)
            at = _RUN.size
            (count,) = _COUNT.unpack(frame.payload[at : at + _COUNT.size])
            at += _COUNT.size
            for _ in range(count):
                (retired,) = _COUNT.unpack(frame.payload[at : at + _COUNT.size])
                at += _COUNT.size
                state.runs.pop(retired, None)
            state.runs[frame.lsn] = meta
        else:  # pragma: no cover - future frame types
            raise CorruptionError(f"unknown WAL frame type {frame.frame_type}")
    if state.max_lsn < 0:
        raise CorruptionError("WAL replay found no contiguous frame prefix")
    return state
