"""Block-wise k-way merge engines over sorted runs.

The merge phase of the external sort (and of LSM compaction) consumes
sorted runs and must produce the *stable* merge: records ordered by
(key, run index, position within run).  The classic implementation —
and the reference oracle kept here as :func:`heapq_merge_stream` — is a
per-record ``heapq`` loop: pop the smallest head, emit one record, push
the run's next head.  That is O(n log k) comparisons but pays Python
interpreter cost per *record*, which makes it the last scalar hot path
of bulk loading.

:func:`blockwise_merge_stream` replaces it with a vectorized engine
that works a block at a time:

* each run is read through a :class:`RunCursor` holding one multi-page
  block (the same buffered reader the heapq loop uses, so the page
  reads are the same);
* a small loser tree (:class:`LoserTree`) over the block *tail* keys
  finds the **safe horizon** L — the smallest last-buffered key among
  runs that still have unread data.  Every buffered record with key
  below L is already in memory together with everything that can
  precede it, so the whole set can be emitted now;
* each block contributes its longest safe prefix in one
  ``np.searchsorted`` gallop (ties at L resolve by run index: runs at
  or before the horizon run may include equal keys, later runs must
  wait), and the union of prefixes is ordered with one stable argsort
  — equivalent to merging, since concatenation order is run order.

Galloping only the *winning head's* block against the runner-up head —
the textbook tournament merge — degenerates to one record per round
when keys interleave tightly across runs; galloping every block
against the global horizon keeps the per-round work proportional to a
whole block regardless of interleaving.

Equivalence contract
--------------------
Both engines produce byte-identical output streams in identical chunk
shapes *and* byte-identical simulated-I/O traces.  The second half is
the subtle one: the heapq loop refills a run's buffer at the instant
its block's last record is popped, interleaving refill reads with
output-chunk writes.  The blockwise engine therefore replays refills
at the exact output-stream positions where the reference would have
triggered them (a refill event sorts *before* the chunk write that
contains its record), so the page-access sequence — and with it every
sequential/random classification of :class:`repro.storage.disk.
SimulatedDisk` — is reproduced exactly.  The equivalence suite asserts
both halves property-style.
"""

from __future__ import annotations

import heapq
from typing import Iterator

import numpy as np

from .pager import PagedFile

#: Chunk pair yielded by every merge stream: (keys, payloads).
MergeChunk = "tuple[np.ndarray, np.ndarray]"


class RunCursor:
    """Buffered reader over one sorted run stored as a byte stream.

    Exposes two consumption styles over the same buffer and the same
    page-read pattern: per-record :meth:`pop` (auto-refilling, used by
    the heapq reference) and block-level :meth:`take` (explicitly
    refilled by the blockwise engine so refill reads can be replayed at
    the reference engine's stream positions).
    """

    def __init__(
        self,
        file: PagedFile,
        n_records: int,
        rec_dtype: np.dtype,
        buffer_records: int,
        start_record: int = 0,
    ):
        self.file = file
        self.n_records = n_records
        self.rec_dtype = rec_dtype
        self.buffer_records = max(1, buffer_records)
        # ``start_record`` opens the cursor on a record *slice* of the
        # run: reading starts at the page containing the slice's first
        # byte and the lead-in bytes of that page are discarded.  The
        # sharded spilled merge uses this to hand each partition worker
        # its disjoint key range of a shared run file.
        start_byte = start_record * rec_dtype.itemsize
        self._next_page = start_byte // file.disk.page_size
        self._skip_bytes = start_byte - self._next_page * file.disk.page_size
        self._records_out = 0
        self._remainder = b""
        self._chunk: np.ndarray | None = None
        self._pos = 0
        self._refill()

    # ------------------------------------------------------- record API
    @property
    def exhausted(self) -> bool:
        return self._chunk is None or self._pos >= len(self._chunk)

    def peek_key(self) -> bytes:
        return bytes(self._chunk["k"][self._pos])

    def pop(self) -> np.void:
        rec = self._chunk[self._pos]
        self._pos += 1
        if self._pos >= len(self._chunk):
            self._refill()
        return rec

    # -------------------------------------------------------- block API
    def buffered(self) -> int:
        """Records currently in the buffer and not yet consumed."""
        return 0 if self._chunk is None else len(self._chunk) - self._pos

    def has_pending(self) -> bool:
        """Whether unread records remain beyond the buffered block."""
        return self._records_out < self.n_records

    def block_keys(self) -> np.ndarray:
        """Keys of the un-consumed part of the buffered block."""
        return self._chunk["k"][self._pos :]

    def tail_key(self) -> bytes:
        """Last buffered key — the run's contribution to the horizon."""
        return bytes(self._chunk["k"][-1])

    def take(self, n: int) -> np.ndarray:
        """Consume ``n`` records without refilling (view, not a copy)."""
        view = self._chunk[self._pos : self._pos + n]
        self._pos += n
        return view

    def take_all(self) -> np.ndarray:
        return self.take(self.buffered())

    def refill(self) -> None:
        """Load the next block; only valid once the buffer is drained."""
        self._refill()

    # ------------------------------------------------------------------
    def _refill(self) -> None:
        left = self.n_records - self._records_out
        if left <= 0:
            self._chunk = None
            return
        want = min(self.buffer_records, left)
        itemsize = self.rec_dtype.itemsize
        need_bytes = want * itemsize + self._skip_bytes - len(self._remainder)
        page_size = self.file.disk.page_size
        n_pages = max(0, -(-need_bytes // page_size))
        n_pages = min(n_pages, self.file.n_pages - self._next_page)
        if n_pages > 0:
            fresh = self.file.read_stream(self._next_page, n_pages)
            self._next_page += n_pages
            # Remainder bytes only exist when records straddle the read
            # boundary; a record-aligned stream (the common geometry)
            # consumes the device's zero-copy view directly.
            data = (
                b"".join((self._remainder, fresh))
                if len(self._remainder)
                else fresh
            )
        else:
            data = self._remainder
        if self._skip_bytes:
            data = data[self._skip_bytes :]
            self._skip_bytes = 0
        n_complete = min(len(data) // itemsize, left)
        if n_complete == 0:
            self._chunk = None
            return
        self._chunk = np.frombuffer(
            data[: n_complete * itemsize], dtype=self.rec_dtype
        )
        self._remainder = data[n_complete * itemsize :]
        self._records_out += n_complete
        self._pos = 0


class LoserTree:
    """Tournament tree over (key, run index) with O(log k) updates.

    Leaves hold the current comparison key of each run (``None`` means
    the run poses no constraint); ``winner`` is the index of the run
    with the smallest (key, index) pair.  Used by the blockwise engine
    to maintain the safe horizon across block refills without an O(k)
    rescan per round.
    """

    def __init__(self, keys: list):
        self.k = max(1, len(keys))
        size = 1
        while size < self.k:
            size <<= 1
        self.size = size
        self.keys = list(keys) + [None] * (size - len(keys))
        # node[1] is the root winner; node[size + i] is leaf i.
        self.node = [0] * size + list(range(size))
        for i in range(size - 1, 0, -1):
            self.node[i] = self._better(self.node[2 * i], self.node[2 * i + 1])

    def _better(self, a: int, b: int) -> int:
        ka, kb = self.keys[a], self.keys[b]
        if kb is None:
            return a
        if ka is None:
            return b
        if ka != kb:
            return a if ka < kb else b
        return a if a < b else b

    @property
    def winner(self) -> int:
        return self.node[1]

    def key(self, i: int) -> bytes | None:
        return self.keys[i]

    def update(self, i: int, key: bytes | None) -> None:
        """Replace run ``i``'s key and replay its path to the root."""
        self.keys[i] = key
        n = (self.size + i) >> 1
        while n >= 1:
            self.node[n] = self._better(self.node[2 * n], self.node[2 * n + 1])
            n >>= 1


class _ChunkEmitter:
    """Accumulate records and yield fixed-size (keys, payloads) chunks.

    Chunk shapes must match the heapq reference exactly (full
    ``out_records`` chunks, then one partial), because downstream
    writers interleave page writes with the cursors' page reads and the
    equivalence contract covers the full I/O trace.
    """

    def __init__(self, rec_dtype: np.dtype, out_records: int):
        self.buf = np.empty(max(1, out_records), dtype=rec_dtype)
        self.filled = 0

    def push(self, records: np.ndarray) -> Iterator[MergeChunk]:
        cap = len(self.buf)
        at = 0
        while at < len(records):
            n = min(len(records) - at, cap - self.filled)
            self.buf[self.filled : self.filled + n] = records[at : at + n]
            self.filled += n
            at += n
            if self.filled == cap:
                yield self.buf["k"].copy(), self.buf["v"].copy()
                self.filled = 0

    def flush(self) -> Iterator[MergeChunk]:
        if self.filled:
            yield (
                self.buf["k"][: self.filled].copy(),
                self.buf["v"][: self.filled].copy(),
            )
            self.filled = 0


def _open_cursors(
    runs: "list[tuple]", rec_dtype: np.dtype, buffer_records: int
) -> "list[RunCursor]":
    """Cursors over ``(file, count)`` pairs or ``(file, count, start)``
    triples — the latter open record slices of shared run files."""
    cursors = []
    for run in runs:
        file, count = run[0], run[1]
        start = run[2] if len(run) > 2 else 0
        cursors.append(
            RunCursor(file, count, rec_dtype, buffer_records, start_record=start)
        )
    return cursors


def heapq_merge_stream(
    runs: "list[tuple[PagedFile, int]]",
    rec_dtype: np.dtype,
    buffer_records: int,
) -> Iterator[MergeChunk]:
    """Reference per-record merge (the oracle the engines are pinned to)."""
    buffer_records = max(1, buffer_records)
    cursors = _open_cursors(runs, rec_dtype, buffer_records)
    heap = [
        (cursor.peek_key(), i)
        for i, cursor in enumerate(cursors)
        if not cursor.exhausted
    ]
    heapq.heapify(heap)
    out = np.empty(buffer_records, dtype=rec_dtype)
    filled = 0
    while heap:
        _, i = heapq.heappop(heap)
        out[filled] = cursors[i].pop()
        filled += 1
        if not cursors[i].exhausted:
            heapq.heappush(heap, (cursors[i].peek_key(), i))
        if filled == buffer_records:
            yield out["k"].copy(), out["v"].copy()
            filled = 0
    if filled:
        yield out["k"][:filled].copy(), out["v"][:filled].copy()


def blockwise_merge_stream(
    runs: "list[tuple[PagedFile, int]]",
    rec_dtype: np.dtype,
    buffer_records: int,
) -> Iterator[MergeChunk]:
    """Vectorized block-wise merge, bit-identical to the heapq oracle.

    Per round: find the safe horizon L (smallest block-tail key among
    runs with unread data, via the loser tree), gallop every block's
    safe prefix with one ``searchsorted`` each, order the union with a
    stable argsort (concatenation order is run order, so ties resolve
    exactly as the reference does), and emit — replaying each refill at
    the precise output position where the reference would have issued
    its read.  Only the horizon run can drain its block in a round, so
    every round makes at least one block of progress.
    """
    buffer_records = max(1, buffer_records)
    cursors = _open_cursors(runs, rec_dtype, buffer_records)
    emitter = _ChunkEmitter(rec_dtype, buffer_records)
    tree = LoserTree(
        [c.tail_key() if c.buffered() and c.has_pending() else None for c in cursors]
    )

    def gather(parts: "list[np.ndarray]") -> np.ndarray:
        """Concatenate record slices without per-call field promotion."""
        block = np.empty(sum(len(p) for p in parts), dtype=rec_dtype)
        at = 0
        for part in parts:
            block[at : at + len(part)] = part
            at += len(part)
        return block

    while True:
        active = [i for i, c in enumerate(cursors) if c.buffered()]
        if not active:
            yield from emitter.flush()
            return
        m = tree.winner
        limit = tree.key(m)
        if limit is None:
            # Every remaining record is buffered: one final stable merge.
            block = gather([cursors[i].take_all() for i in active])
            order = np.argsort(block["k"], kind="stable")
            yield from emitter.push(block[order])
            yield from emitter.flush()
            return
        parts: list[np.ndarray] = []
        for i in active:
            if i == m:
                # The horizon run's block ends exactly at L: take it all.
                n_take = cursors[i].buffered()
            else:
                # Runs before the horizon run may emit keys equal to L
                # (all their later records exceed L, and they win the
                # tie on run index); runs after it must hold equal keys
                # back until the horizon run's Ls are exhausted.
                side = "right" if i < m else "left"
                n_take = int(
                    cursors[i].block_keys().searchsorted(limit, side=side)
                )
            if n_take:
                parts.append(cursors[i].take(n_take))
        block = gather(parts)
        order = np.argsort(block["k"], kind="stable")
        merged = block[order]
        # Run m is the only run that can drain its block while holding
        # more data (any other pending run keeps at least its tail),
        # and its block-tail record is the stable maximum of the safe
        # set — so replay its refill read just before that record is
        # placed, exactly where the reference engine issues it.
        yield from emitter.push(merged[:-1])
        cursors[m].refill()
        tree.update(
            m,
            cursors[m].tail_key()
            if cursors[m].buffered() and cursors[m].has_pending()
            else None,
        )
        yield from emitter.push(merged[-1:])


MERGE_ENGINES = ("blockwise", "heapq")


def merge_stream(
    engine: str,
    runs: "list[tuple[PagedFile, int]]",
    rec_dtype: np.dtype,
    buffer_records: int,
) -> Iterator[MergeChunk]:
    """Dispatch to a merge engine by name (see :data:`MERGE_ENGINES`)."""
    if engine == "heapq":
        return heapq_merge_stream(runs, rec_dtype, buffer_records)
    if engine == "blockwise":
        return blockwise_merge_stream(runs, rec_dtype, buffer_records)
    raise ValueError(f"unknown merge engine {engine!r}; choose from {MERGE_ENGINES}")


# ---------------------------------------------------------------------------
# In-memory vectorized merging (whole runs already resident)
# ---------------------------------------------------------------------------
def merge_pair(
    left: "tuple[np.ndarray, np.ndarray]", right: "tuple[np.ndarray, np.ndarray]"
) -> "tuple[np.ndarray, np.ndarray]":
    """Stable vectorized merge of two sorted runs (left wins ties)."""
    k1, p1 = left
    k2, p2 = right
    pos1 = np.arange(len(k1)) + np.searchsorted(k2, k1, side="left")
    pos2 = np.arange(len(k2)) + np.searchsorted(k1, k2, side="right")
    keys = np.empty(len(k1) + len(k2), dtype=k1.dtype)
    payloads = np.empty((len(p1) + len(p2),) + p1.shape[1:], dtype=p1.dtype)
    keys[pos1], keys[pos2] = k1, k2
    payloads[pos1], payloads[pos2] = p1, p2
    return keys, payloads


def merge_presorted(
    runs: "list[tuple[np.ndarray, np.ndarray]]",
) -> "tuple[np.ndarray, np.ndarray]":
    """Reduce adjacent sorted runs pairwise until one remains.

    Runs must each be internally (stably) sorted; the result is the
    stable merge in run order — identical to a stable argsort of the
    concatenation, computed with searchsorted scatters instead of a
    comparison sort.
    """
    while len(runs) > 1:
        runs = [
            merge_pair(runs[i], runs[i + 1]) if i + 1 < len(runs) else runs[i]
            for i in range(0, len(runs), 2)
        ]
    return runs[0]
