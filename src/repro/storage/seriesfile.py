"""The raw data series file.

All indexes in the paper operate against a "raw file" that stores the
z-normalized data series one after the other.  Secondary
(non-materialized) indexes keep only offsets into this file and fetch
series from it at query time; materialized indexes copy the series into
their leaves.  This module stores the raw file on the simulated disk so
that fetches are charged to the I/O model, while also keeping the array
in memory for distance computations once a fetch has paid its I/O.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from .bufferpool import BufferPool
from .disk import SimulatedDisk
from .pager import PagedFile


class RawSeriesFile:
    """N float32 data series of equal length, stored record-aligned.

    Series are packed ``series_per_page`` to a page when a record fits
    in a page, and span ``pages_per_series`` consecutive pages when it
    does not (e.g. very long series on small pages).
    """

    def __init__(self, disk: SimulatedDisk, length: int, name: str = "raw"):
        if length <= 0:
            raise ValueError(f"series length must be positive, got {length}")
        self.disk = disk
        self.length = length
        self.name = name
        self.record_bytes = 4 * length
        if self.record_bytes <= disk.page_size:
            self.series_per_page = disk.page_size // self.record_bytes
            self.pages_per_series = 1
        else:
            self.series_per_page = 1
            self.pages_per_series = -(-self.record_bytes // disk.page_size)
        self.file = PagedFile(disk, name=name)
        self.n_series = 0
        self._pool: BufferPool | None = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls, disk: SimulatedDisk, data: np.ndarray, name: str = "raw"
    ) -> "RawSeriesFile":
        """Write a (N, n) float32 array to disk as the raw file."""
        data = np.asarray(data, dtype=np.float32)
        if data.ndim != 2:
            raise ValueError(f"expected a 2-D array, got shape {data.shape}")
        raw = cls(disk, data.shape[1], name=name)
        raw.append_batch(data)
        return raw

    def append_batch(self, data: np.ndarray) -> int:
        """Append series to the end of the file (sequential writes).

        Returns the index of the first appended series.
        """
        data = np.asarray(data, dtype=np.float32)
        if data.ndim != 2 or data.shape[1] != self.length:
            raise ValueError(
                f"expected shape (*, {self.length}), got {data.shape}"
            )
        first_idx = self.n_series
        self._append_full(data, first_idx)
        return first_idx

    def _append_full(self, data: np.ndarray, first_idx: int) -> None:
        total = first_idx + len(data)
        if self.pages_per_series == 1:
            spp = self.series_per_page
            # Rewrite partial last page if needed.
            start = first_idx
            if start % spp:
                page = start // spp
                in_page = start % spp
                existing = np.frombuffer(self.file.read(page), dtype=np.float32)
                existing = existing[: in_page * self.length]
                take = min(spp - in_page, len(data))
                merged = np.concatenate([existing, data[:take].ravel()])
                self.file.write(page, merged.astype(np.float32).tobytes())
                data = data[take:]
                start += take
            if len(data):
                n_new_pages = -(-len(data) // spp)
                first_new = start // spp
                if first_new + n_new_pages > self.file.n_pages:
                    self.file.grow(first_new + n_new_pages - self.file.n_pages)
                for i in range(n_new_pages):
                    chunk = data[i * spp : (i + 1) * spp]
                    self.file.write(first_new + i, chunk.ravel().tobytes())
        else:
            pps = self.pages_per_series
            needed = total * pps - self.file.n_pages
            if needed > 0:
                self.file.grow(needed)
            for i, row in enumerate(data):
                blob = row.astype(np.float32).tobytes()
                base = (first_idx + i) * pps
                for j in range(pps):
                    self.file.write(
                        base + j,
                        blob[j * self.disk.page_size : (j + 1) * self.disk.page_size],
                    )
        self.n_series = total

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def attach_pool(self, pool: BufferPool | None) -> None:
        """Route subsequent reads through a buffer pool (or detach)."""
        self._pool = pool

    def _read_logical(self, logical_page: int) -> bytes:
        physical = self.file.physical_page(logical_page)
        if self._pool is not None:
            return self._pool.read(physical)
        return self.disk.read_page(physical)

    def _page_of(self, idx: int) -> int:
        if self.pages_per_series == 1:
            return idx // self.series_per_page
        return idx * self.pages_per_series

    def get(self, idx: int) -> np.ndarray:
        """Fetch one series by index (random I/O unless cached/adjacent)."""
        if not 0 <= idx < self.n_series:
            raise IndexError(f"series {idx} out of range [0, {self.n_series})")
        if self.pages_per_series == 1:
            page = self._read_logical(self._page_of(idx))
            offset = (idx % self.series_per_page) * self.record_bytes
            return np.frombuffer(
                page[offset : offset + self.record_bytes], dtype=np.float32
            ).copy()
        first = self._page_of(idx)
        blob = b"".join(
            self._read_logical(first + j).ljust(self.disk.page_size, b"\x00")
            for j in range(self.pages_per_series)
        )
        return np.frombuffer(blob[: self.record_bytes], dtype=np.float32).copy()

    def get_many(self, idxs: np.ndarray) -> np.ndarray:
        """Fetch many series, visiting each page once in ascending order.

        This is the skip-sequential access pattern of the SIMS exact
        search: indices are visited in file order so the disk head only
        moves forward.
        """
        idxs = np.asarray(idxs, dtype=np.int64)
        order = np.argsort(idxs, kind="stable")
        out = np.empty((len(idxs), self.length), dtype=np.float32)
        last_page = -1
        page_data = b""
        for pos in order:
            idx = int(idxs[pos])
            if self.pages_per_series == 1:
                page = self._page_of(idx)
                if page != last_page:
                    page_data = self._read_logical(page)
                    last_page = page
                offset = (idx % self.series_per_page) * self.record_bytes
                out[pos] = np.frombuffer(
                    page_data[offset : offset + self.record_bytes],
                    dtype=np.float32,
                )
            else:
                out[pos] = self.get(idx)
        return out

    def scan(self, chunk_series: int | None = None) -> Iterator[tuple[int, np.ndarray]]:
        """Sequentially scan the file, yielding (first_index, block).

        ``chunk_series`` bounds the size of each yielded block; blocks
        are always aligned to page boundaries.
        """
        if self.n_series == 0:
            return
        if self.pages_per_series == 1:
            spp = self.series_per_page
            chunk_pages = max(1, (chunk_series or spp * 64) // spp)
            idx = 0
            page = 0
            n_pages = self._page_of(self.n_series - 1) + 1
            payload = spp * self.record_bytes
            while page < n_pages:
                take = min(chunk_pages, n_pages - page)
                parts = [self._read_logical(page + i) for i in range(take)]
                # Records are packed per page: strip each page's tail
                # padding (pages whose size is not a record multiple)
                # before treating the records as contiguous.
                blob = b"".join(
                    p[:payload].ljust(payload, b"\x00") for p in parts
                )
                count = min(take * spp, self.n_series - idx)
                block = np.frombuffer(
                    blob[: count * self.record_bytes], dtype=np.float32
                ).reshape(count, self.length)
                yield idx, block
                idx += count
                page += take
        else:
            step = max(1, chunk_series or 64)
            for start in range(0, self.n_series, step):
                count = min(step, self.n_series - start)
                block = np.empty((count, self.length), dtype=np.float32)
                for i in range(count):
                    block[i] = self.get(start + i)
                yield start, block

    @property
    def size_bytes(self) -> int:
        return self.file.size_bytes

    def __len__(self) -> int:
        return self.n_series

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RawSeriesFile(n={self.n_series}, length={self.length}, "
            f"pages={self.file.n_pages})"
        )
