"""The raw data series file.

All indexes in the paper operate against a "raw file" that stores the
z-normalized data series one after the other.  Secondary
(non-materialized) indexes keep only offsets into this file and fetch
series from it at query time; materialized indexes copy the series into
their leaves.  This module stores the raw file on the simulated disk so
that fetches are charged to the I/O model, while also keeping the array
in memory for distance computations once a fetch has paid its I/O.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np
from numpy.lib.stride_tricks import as_strided

from .bufferpool import BufferPool
from .disk import SimulatedDisk
from .integrity import verify_view
from .pager import PagedFile


def _consecutive_runs(values: np.ndarray) -> "list[tuple[int, int]]":
    """Split ascending distinct ``values`` into maximal consecutive runs.

    Returns ``(first_value, count)`` pairs in ascending order — the
    planning step of the grouped gather: each run becomes one bulk
    read whose classified counters equal the page-at-a-time sequence.
    """
    if len(values) == 0:
        return []
    breaks = np.nonzero(np.diff(values) != 1)[0] + 1
    starts = np.concatenate([[0], breaks, [len(values)]])
    return [
        (int(values[starts[i]]), int(starts[i + 1] - starts[i]))
        for i in range(len(starts) - 1)
    ]


def _sorted_unique(values: np.ndarray) -> "tuple[np.ndarray, bool]":
    """Ascending distinct values, hash-free.

    Returns ``(uniq, values_is_uniq)`` where the flag records that the
    input was already strictly ascending (so callers can skip their
    final reorder take).  Fetch plans usually arrive sorted and
    deduplicated — one vectorized diff is then the entire cost.
    """
    if len(values) < 2:
        return values, True
    diffs = np.diff(values)
    if (diffs > 0).all():
        return values, True
    if (diffs >= 0).all():
        return values[np.concatenate(([True], diffs > 0))], False
    ordered = np.sort(values)
    keep = np.concatenate(([True], ordered[1:] != ordered[:-1]))
    return ordered[keep], False


def _dedup_sorted(values: np.ndarray) -> np.ndarray:
    """Distinct values of an already non-decreasing array."""
    if len(values) < 2:
        return values
    keep = np.concatenate(([True], values[1:] != values[:-1]))
    return values if keep.all() else values[keep]


class RawSeriesFile:
    """N float32 data series of equal length, stored record-aligned.

    Series are packed ``series_per_page`` to a page when a record fits
    in a page, and span ``pages_per_series`` consecutive pages when it
    does not (e.g. very long series on small pages).

    With ``verified_reads=True`` every page this file fetches — direct
    from the device or through an attached pool — is hashed against the
    device's :class:`repro.storage.integrity.ChecksumMap` before its
    bytes are parsed, raising :class:`repro.storage.faults.
    CorruptionError` with page provenance instead of returning records
    from a flipped page.  The raw file is the queries' source of truth,
    so this is the last line of defence between silent media decay and
    a wrong answer.
    """

    def __init__(
        self,
        disk: SimulatedDisk,
        length: int,
        name: str = "raw",
        verified_reads: bool = False,
    ):
        if length <= 0:
            raise ValueError(f"series length must be positive, got {length}")
        self.disk = disk
        self.length = length
        self.name = name
        self.verified_reads = verified_reads
        self.record_bytes = 4 * length
        if self.record_bytes <= disk.page_size:
            self.series_per_page = disk.page_size // self.record_bytes
            self.pages_per_series = 1
        else:
            self.series_per_page = 1
            self.pages_per_series = -(-self.record_bytes // disk.page_size)
        self.file = PagedFile(disk, name=name)
        self.n_series = 0
        self._pool: BufferPool | None = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls, disk: SimulatedDisk, data: np.ndarray, name: str = "raw"
    ) -> "RawSeriesFile":
        """Write a (N, n) float32 array to disk as the raw file."""
        data = np.asarray(data, dtype=np.float32)
        if data.ndim != 2:
            raise ValueError(f"expected a 2-D array, got shape {data.shape}")
        raw = cls(disk, data.shape[1], name=name)
        raw.append_batch(data)
        return raw

    def append_batch(self, data: np.ndarray) -> int:
        """Append series to the end of the file (sequential writes).

        Returns the index of the first appended series.
        """
        data = np.asarray(data, dtype=np.float32)
        if data.ndim != 2 or data.shape[1] != self.length:
            raise ValueError(
                f"expected shape (*, {self.length}), got {data.shape}"
            )
        first_idx = self.n_series
        self._append_full(data, first_idx)
        return first_idx

    def _append_full(self, data: np.ndarray, first_idx: int) -> None:
        total = first_idx + len(data)
        if self.pages_per_series == 1:
            spp = self.series_per_page
            # Rewrite partial last page if needed.
            start = first_idx
            if start % spp:
                page = start // spp
                in_page = start % spp
                # count= bounds the parse to the resident records: the
                # padded page may not be a float32 multiple in length.
                # Routed through _read_logical so verified_reads hashes
                # the page first — a read-modify-write over a corrupt
                # page would otherwise re-record (bless) the damage.
                existing = np.frombuffer(
                    self._read_logical(page),
                    dtype=np.float32,
                    count=in_page * self.length,
                )
                take = min(spp - in_page, len(data))
                merged = np.concatenate([existing, data[:take].ravel()])
                self.file.write(page, merged.astype(np.float32).tobytes())
                data = data[take:]
                start += take
            if len(data):
                n_new_pages = -(-len(data) // spp)
                first_new = start // spp
                if first_new + n_new_pages > self.file.n_pages:
                    self.file.grow(first_new + n_new_pages - self.file.n_pages)
                for i in range(n_new_pages):
                    chunk = data[i * spp : (i + 1) * spp]
                    self.file.write(first_new + i, chunk.ravel().tobytes())
        else:
            pps = self.pages_per_series
            needed = total * pps - self.file.n_pages
            if needed > 0:
                self.file.grow(needed)
            for i, row in enumerate(data):
                blob = row.astype(np.float32).tobytes()
                base = (first_idx + i) * pps
                for j in range(pps):
                    self.file.write(
                        base + j,
                        blob[j * self.disk.page_size : (j + 1) * self.disk.page_size],
                    )
        self.n_series = total

    def truncate(self, n_series: int) -> None:
        """Logically truncate the file to its first ``n_series`` records.

        Crash recovery uses this to drop rows appended by operations
        that were never acknowledged: like a real filesystem truncate,
        only the length changes — pages past the new end keep whatever
        bytes they held, and a later append overwrites them through the
        normal partial-last-page path.
        """
        if not 0 <= n_series <= self.n_series:
            raise ValueError(
                f"cannot truncate to {n_series} (file holds {self.n_series})"
            )
        self.n_series = n_series

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def attach_pool(self, pool: BufferPool | None) -> None:
        """Route subsequent reads through a buffer pool (or detach)."""
        self._pool = pool

    def view(self, device) -> "RawSeriesFile":
        """A read-only view of this file performing its I/O on ``device``.

        Same geometry, same extents, same records — but every read is
        classified against ``device``'s own head and charged to its own
        counters.  This is how parallel query workers stream their
        record fetches through a private shard (or a shard-scoped
        buffer pool) without touching the parent device or each other:
        one view per worker, no shared mutable state.  Views must not
        be appended to.
        """
        view = RawSeriesFile.__new__(RawSeriesFile)
        view.disk = device
        view.length = self.length
        view.name = self.name
        view.record_bytes = self.record_bytes
        view.series_per_page = self.series_per_page
        view.pages_per_series = self.pages_per_series
        view.file = self.file.attach(device)
        view.n_series = self.n_series
        view.verified_reads = self.verified_reads
        view._pool = None
        return view

    def _verify_run(self, device, first_physical: int, data, n_pages: int):
        """Hash ``n_pages`` page slices of a padded stream (zero-copy)."""
        checksums = getattr(device, "checksums", None)
        page_size = self.disk.page_size
        view = data if isinstance(data, memoryview) else memoryview(data)
        source = f"RawSeriesFile({self.name!r})"
        for i in range(n_pages):
            verify_view(
                checksums,
                first_physical + i,
                view[i * page_size : (i + 1) * page_size],
                source,
            )
        return data

    def _read_logical(self, logical_page: int) -> bytes:
        physical = self.file.physical_page(logical_page)
        if self._pool is not None:
            device, data = self._pool, self._pool.read(physical)
        else:
            device, data = self.disk, self.disk.read_page(physical)
        if self.verified_reads:
            verify_view(
                getattr(device, "checksums", None),
                physical,
                data,
                f"RawSeriesFile({self.name!r})",
            )
        return data

    def _read_logical_run(self, first_page: int, n_pages: int) -> bytes:
        """Read consecutive logical pages as one page-padded stream.

        Streams whole extents through the device's bytes-level
        interface when available (same counters as page-at-a-time).
        """
        device = self._pool if self._pool is not None else self.disk
        reader = getattr(device, "read_run_bytes", None)
        if reader is None:  # pragma: no cover - non-bulk devices
            page_size = self.disk.page_size
            return b"".join(
                bytes(self._read_logical(first_page + i)).ljust(
                    page_size, b"\x00"
                )
                for i in range(n_pages)
            )
        parts = []
        for first_physical, run_pages in self.file._physical_runs(
            first_page, n_pages
        ):
            part = reader(first_physical, run_pages)
            if self.verified_reads:
                self._verify_run(device, first_physical, part, run_pages)
            parts.append(part)
        return parts[0] if len(parts) == 1 else b"".join(parts)

    def _page_of(self, idx: int) -> int:
        if self.pages_per_series == 1:
            return idx // self.series_per_page
        return idx * self.pages_per_series

    def get(self, idx: int) -> np.ndarray:
        """Fetch one series by index (random I/O unless cached/adjacent)."""
        if not 0 <= idx < self.n_series:
            raise IndexError(f"series {idx} out of range [0, {self.n_series})")
        if self.pages_per_series == 1:
            page = self._read_logical(self._page_of(idx))
            offset = (idx % self.series_per_page) * self.record_bytes
            return np.frombuffer(
                page[offset : offset + self.record_bytes], dtype=np.float32
            ).copy()
        first = self._page_of(idx)
        blob = b"".join(
            self._read_logical(first + j) for j in range(self.pages_per_series)
        )
        return np.frombuffer(blob[: self.record_bytes], dtype=np.float32).copy()

    def _check_idxs(self, idxs: np.ndarray) -> None:
        """Bounds-check a whole index array before any I/O happens.

        With the padded-read page contract an out-of-range index would
        otherwise silently gather zeros (or arbitrary neighbouring
        records); fetches must fail exactly like :meth:`get` does.
        """
        lo = int(idxs.min())
        hi = int(idxs.max())
        if lo < 0 or hi >= self.n_series:
            bad = lo if lo < 0 else hi
            raise IndexError(f"series {bad} out of range [0, {self.n_series})")

    def get_many(self, idxs: np.ndarray) -> np.ndarray:
        """Fetch many series, visiting each page once in ascending order.

        This is the skip-sequential access pattern of the SIMS exact
        search: the distinct pages behind ``idxs`` are visited in file
        order so the disk head only moves forward, duplicates and
        unsorted input included, and series spanning several pages are
        folded into the same one-visit-per-page plan.  The gather is
        fully vectorized: maximal consecutive page runs are read as
        single padded streams, parsed with one strided copy per run,
        and the output rows are assembled with one fancy-index take —
        no per-record Python work.  Raises :class:`IndexError` on any
        out-of-range index before any I/O is performed.
        """
        idxs = np.asarray(idxs, dtype=np.int64).ravel()
        if len(idxs) == 0:
            return np.empty((0, self.length), dtype=np.float32)
        self._check_idxs(idxs)
        page_size = self.disk.page_size
        # Dedup without hashing: the SIMS fetch already hands us sorted
        # unique candidates, so detect that (one diff) before paying
        # for a sort, and remember when the output rows can be returned
        # without the final reorder take.
        uniq, idxs_is_uniq = _sorted_unique(idxs)
        # Record-sized void cells make every gather below move whole
        # records per element (one C memcpy each), never single bytes.
        cell = np.dtype((np.void, self.record_bytes))
        # Phase 1 — I/O only: one counted read per maximal consecutive
        # page run (the per-page classified counters are guaranteed
        # identical by the device contract), buffers collected in rank
        # order.  All parsing is deferred so the per-run Python cost is
        # nothing but the read itself.
        if self.pages_per_series == 1:
            spp = self.series_per_page
            pages = uniq // spp  # non-decreasing
            slots = uniq % spp
            uniq_pages = _dedup_sorted(pages)
            record_stride = cell.itemsize
        else:
            pps = self.pages_per_series
            pages = uniq  # one record <-> pps consecutive pages
            slots = None
            uniq_pages = uniq
            record_stride = pps * page_size
        parts = []
        for first, count in _consecutive_runs(uniq_pages):
            if count == 1 and self.pages_per_series == 1:
                parts.append(self._read_logical(first))
            elif self.pages_per_series == 1:
                parts.append(self._read_logical_run(first, count))
            else:
                parts.append(
                    self._read_logical_run(first * pps, count * pps)
                )
        # Phase 2 — one vectorized gather over the joined stream.  The
        # join is a single C-level concatenation (zero-copy when the
        # plan collapsed to one run); every requested page occupies one
        # page_size slot in rank order, so record cells sit at a
        # uniform stride and one fancy-index take assembles the rows.
        stream = parts[0] if len(parts) == 1 else b"".join(parts)
        gathered = np.empty((len(uniq), self.length), dtype=np.float32)
        if self.pages_per_series == 1:
            src = np.frombuffer(
                stream,
                dtype=cell,
                count=len(uniq_pages) * page_size // cell.itemsize,
            )
            # Strided (page, slot) window over the padded stream: rows
            # start at page boundaries (skipping each page's tail
            # padding), columns at record boundaries.
            window = as_strided(
                src,
                shape=(len(uniq_pages), spp),
                strides=(page_size, cell.itemsize),
            )
            page_rank = np.searchsorted(uniq_pages, pages)
            gathered.reshape(-1).view(cell)[:] = window[page_rank, slots]
        else:
            src = np.frombuffer(
                stream,
                dtype=cell,
                count=len(uniq) * record_stride // cell.itemsize,
            )
            gathered.reshape(-1).view(cell)[:] = as_strided(
                src, shape=(len(uniq),), strides=(record_stride,)
            )
        if idxs_is_uniq:
            return gathered
        return gathered[np.searchsorted(uniq, idxs)]

    def get_many_loop(self, idxs: np.ndarray) -> np.ndarray:
        """Loop-level oracle for :meth:`get_many` (retained on purpose).

        Executes the same one-visit-per-page ascending plan — same
        bounds checks, same pages in the same order, hence the same
        classified :class:`repro.storage.cost.DiskStats` — but
        assembles every record with per-record Python slicing.  The
        fetch equivalence suite and ``bench fetch`` pin the vectorized
        gather against this, cell by cell, on both page stores.
        """
        idxs = np.asarray(idxs, dtype=np.int64).ravel()
        out = np.empty((len(idxs), self.length), dtype=np.float32)
        if len(idxs) == 0:
            return out
        self._check_idxs(idxs)
        if self.pages_per_series == 1:
            spp = self.series_per_page
            order = np.argsort(idxs, kind="stable")
            last_page = -1
            page_floats = np.empty(0, dtype=np.float32)
            for pos in order:
                idx = int(idxs[pos])
                page = idx // spp
                if page != last_page:
                    # One float view per page (zero-copy over the
                    # device's page view); records inside it are plain
                    # array slices.
                    page_data = self._read_logical(page)
                    usable = (len(page_data) // 4) * 4
                    page_floats = np.frombuffer(
                        page_data[:usable], dtype=np.float32
                    )
                    last_page = page
                offset = (idx % spp) * self.length
                out[pos] = page_floats[offset : offset + self.length]
            return out
        # Multi-page records: read each distinct record's page span
        # once, in ascending order (one visit per page), then route
        # rows — duplicates included — from the assembled cache.
        pps = self.pages_per_series
        assembled: dict[int, np.ndarray] = {}
        for idx in np.unique(idxs):
            first = int(idx) * pps
            blob = b"".join(
                bytes(self._read_logical(first + j)).ljust(
                    self.disk.page_size, b"\x00"
                )
                for j in range(pps)
            )
            assembled[int(idx)] = np.frombuffer(
                blob[: self.record_bytes], dtype=np.float32
            )
        for pos, idx in enumerate(idxs):
            out[pos] = assembled[int(idx)]
        return out

    def scan(
        self,
        chunk_series: int | None = None,
        start: int = 0,
        stop: int | None = None,
    ) -> Iterator[tuple[int, np.ndarray]]:
        """Sequentially scan records ``[start, stop)`` as (index, block).

        ``chunk_series`` bounds the size of each yielded block; reads
        are always whole pages, streamed through the bytes-level device
        interface.  The default arguments scan the entire file; a
        contiguous sub-range is how parallel scan workers split the
        file between them (each worker's reads ascend within its own
        range, preserving per-domain skip-sequential access).
        """
        stop = self.n_series if stop is None else min(stop, self.n_series)
        start = max(0, start)
        if start >= stop:
            return
        if self.pages_per_series == 1:
            spp = self.series_per_page
            page_size = self.disk.page_size
            chunk_pages = max(1, (chunk_series or spp * 64) // spp)
            payload = spp * self.record_bytes
            idx = start
            page = start // spp
            last_page = self._page_of(stop - 1)
            while page <= last_page:
                take = min(chunk_pages, last_page - page + 1)
                raw = self._read_logical_run(page, take)
                block_first = page * spp
                lo = idx - block_first
                hi = min((page + take) * spp, stop) - block_first
                if payload == page_size:
                    # Records are back to back across pages: parse the
                    # needed range straight over the stream (zero-copy
                    # on arena devices).
                    records = np.frombuffer(
                        raw, dtype=np.float32, count=take * spp * self.length
                    ).reshape(take * spp, self.length)
                else:
                    # Records are packed per page with tail padding
                    # (page size not a record multiple): a strided
                    # (page, payload) window skips each page's padding
                    # and one vectorized copy packs the records
                    # contiguously — no per-page join.
                    src = np.frombuffer(raw, dtype=np.uint8)
                    packed = np.ascontiguousarray(
                        as_strided(
                            src, shape=(take, payload), strides=(page_size, 1)
                        )
                    )
                    records = packed.view(np.float32).reshape(
                        take * spp, self.length
                    )
                yield idx, records[lo:hi]
                idx = block_first + hi
                page += take
        else:
            # Multi-page records: each chunk's page span is one
            # consecutive logical run — stream it once (one visit per
            # page, same counters as page-at-a-time) and carve records
            # out with a strided copy that skips each span's padding.
            step = max(1, chunk_series or 64)
            pps = self.pages_per_series
            page_size = self.disk.page_size
            for first in range(start, stop, step):
                count = min(step, stop - first)
                raw = self._read_logical_run(first * pps, count * pps)
                src = np.frombuffer(raw, dtype=np.uint8)
                packed = np.ascontiguousarray(
                    as_strided(
                        src,
                        shape=(count, self.record_bytes),
                        strides=(pps * page_size, 1),
                    )
                )
                yield first, packed.view(np.float32)

    @property
    def live_pages(self) -> int:
        """Logical pages holding live records — the scrubber's raw
        sweep range.  Pages past this (after a recovery truncate) are
        dead: unreachable by any read, nothing sound to restore them
        to."""
        if self.n_series == 0:
            return 0
        if self.pages_per_series == 1:
            return -(-self.n_series // self.series_per_page)
        return self.n_series * self.pages_per_series

    @property
    def size_bytes(self) -> int:
        return self.file.size_bytes

    def __len__(self) -> int:
        return self.n_series

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RawSeriesFile(n={self.n_series}, length={self.length}, "
            f"pages={self.file.n_pages})"
        )
