"""The raw data series file.

All indexes in the paper operate against a "raw file" that stores the
z-normalized data series one after the other.  Secondary
(non-materialized) indexes keep only offsets into this file and fetch
series from it at query time; materialized indexes copy the series into
their leaves.  This module stores the raw file on the simulated disk so
that fetches are charged to the I/O model, while also keeping the array
in memory for distance computations once a fetch has paid its I/O.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from .bufferpool import BufferPool
from .disk import SimulatedDisk
from .pager import PagedFile


class RawSeriesFile:
    """N float32 data series of equal length, stored record-aligned.

    Series are packed ``series_per_page`` to a page when a record fits
    in a page, and span ``pages_per_series`` consecutive pages when it
    does not (e.g. very long series on small pages).
    """

    def __init__(self, disk: SimulatedDisk, length: int, name: str = "raw"):
        if length <= 0:
            raise ValueError(f"series length must be positive, got {length}")
        self.disk = disk
        self.length = length
        self.name = name
        self.record_bytes = 4 * length
        if self.record_bytes <= disk.page_size:
            self.series_per_page = disk.page_size // self.record_bytes
            self.pages_per_series = 1
        else:
            self.series_per_page = 1
            self.pages_per_series = -(-self.record_bytes // disk.page_size)
        self.file = PagedFile(disk, name=name)
        self.n_series = 0
        self._pool: BufferPool | None = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls, disk: SimulatedDisk, data: np.ndarray, name: str = "raw"
    ) -> "RawSeriesFile":
        """Write a (N, n) float32 array to disk as the raw file."""
        data = np.asarray(data, dtype=np.float32)
        if data.ndim != 2:
            raise ValueError(f"expected a 2-D array, got shape {data.shape}")
        raw = cls(disk, data.shape[1], name=name)
        raw.append_batch(data)
        return raw

    def append_batch(self, data: np.ndarray) -> int:
        """Append series to the end of the file (sequential writes).

        Returns the index of the first appended series.
        """
        data = np.asarray(data, dtype=np.float32)
        if data.ndim != 2 or data.shape[1] != self.length:
            raise ValueError(
                f"expected shape (*, {self.length}), got {data.shape}"
            )
        first_idx = self.n_series
        self._append_full(data, first_idx)
        return first_idx

    def _append_full(self, data: np.ndarray, first_idx: int) -> None:
        total = first_idx + len(data)
        if self.pages_per_series == 1:
            spp = self.series_per_page
            # Rewrite partial last page if needed.
            start = first_idx
            if start % spp:
                page = start // spp
                in_page = start % spp
                # count= bounds the parse to the resident records: the
                # padded page may not be a float32 multiple in length.
                existing = np.frombuffer(
                    self.file.read(page),
                    dtype=np.float32,
                    count=in_page * self.length,
                )
                take = min(spp - in_page, len(data))
                merged = np.concatenate([existing, data[:take].ravel()])
                self.file.write(page, merged.astype(np.float32).tobytes())
                data = data[take:]
                start += take
            if len(data):
                n_new_pages = -(-len(data) // spp)
                first_new = start // spp
                if first_new + n_new_pages > self.file.n_pages:
                    self.file.grow(first_new + n_new_pages - self.file.n_pages)
                for i in range(n_new_pages):
                    chunk = data[i * spp : (i + 1) * spp]
                    self.file.write(first_new + i, chunk.ravel().tobytes())
        else:
            pps = self.pages_per_series
            needed = total * pps - self.file.n_pages
            if needed > 0:
                self.file.grow(needed)
            for i, row in enumerate(data):
                blob = row.astype(np.float32).tobytes()
                base = (first_idx + i) * pps
                for j in range(pps):
                    self.file.write(
                        base + j,
                        blob[j * self.disk.page_size : (j + 1) * self.disk.page_size],
                    )
        self.n_series = total

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def attach_pool(self, pool: BufferPool | None) -> None:
        """Route subsequent reads through a buffer pool (or detach)."""
        self._pool = pool

    def view(self, device) -> "RawSeriesFile":
        """A read-only view of this file performing its I/O on ``device``.

        Same geometry, same extents, same records — but every read is
        classified against ``device``'s own head and charged to its own
        counters.  This is how parallel query workers stream their
        record fetches through a private shard (or a shard-scoped
        buffer pool) without touching the parent device or each other:
        one view per worker, no shared mutable state.  Views must not
        be appended to.
        """
        view = RawSeriesFile.__new__(RawSeriesFile)
        view.disk = device
        view.length = self.length
        view.name = self.name
        view.record_bytes = self.record_bytes
        view.series_per_page = self.series_per_page
        view.pages_per_series = self.pages_per_series
        view.file = self.file.attach(device)
        view.n_series = self.n_series
        view._pool = None
        return view

    def _read_logical(self, logical_page: int) -> bytes:
        physical = self.file.physical_page(logical_page)
        if self._pool is not None:
            return self._pool.read(physical)
        return self.disk.read_page(physical)

    def _read_logical_run(self, first_page: int, n_pages: int) -> bytes:
        """Read consecutive logical pages as one page-padded stream.

        Streams whole extents through the device's bytes-level
        interface when available (same counters as page-at-a-time).
        """
        device = self._pool if self._pool is not None else self.disk
        reader = getattr(device, "read_run_bytes", None)
        if reader is None:  # pragma: no cover - non-bulk devices
            page_size = self.disk.page_size
            return b"".join(
                bytes(self._read_logical(first_page + i)).ljust(
                    page_size, b"\x00"
                )
                for i in range(n_pages)
            )
        parts = [
            reader(first_physical, run_pages)
            for first_physical, run_pages in self.file._physical_runs(
                first_page, n_pages
            )
        ]
        return parts[0] if len(parts) == 1 else b"".join(parts)

    def _page_of(self, idx: int) -> int:
        if self.pages_per_series == 1:
            return idx // self.series_per_page
        return idx * self.pages_per_series

    def get(self, idx: int) -> np.ndarray:
        """Fetch one series by index (random I/O unless cached/adjacent)."""
        if not 0 <= idx < self.n_series:
            raise IndexError(f"series {idx} out of range [0, {self.n_series})")
        if self.pages_per_series == 1:
            page = self._read_logical(self._page_of(idx))
            offset = (idx % self.series_per_page) * self.record_bytes
            return np.frombuffer(
                page[offset : offset + self.record_bytes], dtype=np.float32
            ).copy()
        first = self._page_of(idx)
        blob = b"".join(
            self._read_logical(first + j) for j in range(self.pages_per_series)
        )
        return np.frombuffer(blob[: self.record_bytes], dtype=np.float32).copy()

    def get_many(self, idxs: np.ndarray) -> np.ndarray:
        """Fetch many series, visiting each page once in ascending order.

        This is the skip-sequential access pattern of the SIMS exact
        search: indices are visited in file order so the disk head only
        moves forward.
        """
        idxs = np.asarray(idxs, dtype=np.int64)
        order = np.argsort(idxs, kind="stable")
        out = np.empty((len(idxs), self.length), dtype=np.float32)
        last_page = -1
        page_floats = np.empty(0, dtype=np.float32)
        for pos in order:
            idx = int(idxs[pos])
            if self.pages_per_series == 1:
                page = self._page_of(idx)
                if page != last_page:
                    # One float view per page (zero-copy over the
                    # device's page view); records inside it are plain
                    # array slices.
                    page_data = self._read_logical(page)
                    usable = (len(page_data) // 4) * 4
                    page_floats = np.frombuffer(
                        page_data[:usable], dtype=np.float32
                    )
                    last_page = page
                offset = (idx % self.series_per_page) * self.length
                out[pos] = page_floats[offset : offset + self.length]
            else:
                out[pos] = self.get(idx)
        return out

    def scan(
        self,
        chunk_series: int | None = None,
        start: int = 0,
        stop: int | None = None,
    ) -> Iterator[tuple[int, np.ndarray]]:
        """Sequentially scan records ``[start, stop)`` as (index, block).

        ``chunk_series`` bounds the size of each yielded block; reads
        are always whole pages, streamed through the bytes-level device
        interface.  The default arguments scan the entire file; a
        contiguous sub-range is how parallel scan workers split the
        file between them (each worker's reads ascend within its own
        range, preserving per-domain skip-sequential access).
        """
        stop = self.n_series if stop is None else min(stop, self.n_series)
        start = max(0, start)
        if start >= stop:
            return
        if self.pages_per_series == 1:
            spp = self.series_per_page
            page_size = self.disk.page_size
            chunk_pages = max(1, (chunk_series or spp * 64) // spp)
            payload = spp * self.record_bytes
            idx = start
            page = start // spp
            last_page = self._page_of(stop - 1)
            while page <= last_page:
                take = min(chunk_pages, last_page - page + 1)
                raw = self._read_logical_run(page, take)
                if payload == page_size:
                    blob = raw
                else:
                    # Records are packed per page: strip each page's
                    # tail padding (pages whose size is not a record
                    # multiple) before treating records as contiguous.
                    chunk_view = memoryview(raw)
                    blob = b"".join(
                        chunk_view[i * page_size : i * page_size + payload]
                        for i in range(take)
                    )
                block_first = page * spp
                lo = idx - block_first
                hi = min((page + take) * spp, stop) - block_first
                block = np.frombuffer(
                    blob[lo * self.record_bytes : hi * self.record_bytes],
                    dtype=np.float32,
                ).reshape(hi - lo, self.length)
                yield idx, block
                idx = block_first + hi
                page += take
        else:
            step = max(1, chunk_series or 64)
            for first in range(start, stop, step):
                count = min(step, stop - first)
                block = np.empty((count, self.length), dtype=np.float32)
                for i in range(count):
                    block[i] = self.get(first + i)
                yield first, block

    @property
    def size_bytes(self) -> int:
        return self.file.size_bytes

    def __len__(self) -> int:
        return self.n_series

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RawSeriesFile(n={self.n_series}, length={self.length}, "
            f"pages={self.file.n_pages})"
        )
