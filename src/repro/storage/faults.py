"""Deterministic fault injection for the simulated storage stack.

The fault model mirrors the failure taxonomy of real block devices
(see ``docs/robustness.md``):

* **transient I/O errors** — the op raises before any effect; a retry
  of the same logical op (a *new* op index) may succeed,
* **permanent I/O errors** — explicit bad page ranges that fail every
  access, like remapped-out sectors,
* **torn writes** — power loss mid-transfer: a deterministic prefix of
  the payload lands, the rest of the target region keeps its *old*
  content, and the device halts (every later op raises
  :class:`DeviceCrash`),
* **bit flips** — silent media corruption: the payload is written with
  one deterministically chosen bit inverted and the op *acks
  normally*; only checksums can catch it later,
* **clean crashes** — the device halts before an op takes any effect.

Everything is driven by a :class:`FaultPlan`: a frozen, seeded
schedule whose decisions depend only on ``(seed, op kind, op index)``
via an avalanche mix — no RNG state — so a schedule replays bit-identically
regardless of thread interleaving, and per-partition plans stay
deterministic under any pool kind.

:class:`FaultyDevice` wraps any object speaking the paged-device
vocabulary (``SimulatedDisk``, ``DiskShard``, ``BufferPool``) and
forwards everything else untouched, so it slots under ``PagedFile``,
``BufferPool`` and ``RawSeriesFile`` unchanged.  With ``plan=None``
the wrapper is pure forwarding — the disabled-hook overhead gated by
``benchmarks/bench_faults.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

from .disk import PageError

__all__ = [
    "FaultError",
    "TransientIOError",
    "PermanentIOError",
    "CorruptionError",
    "DeviceCrash",
    "TornWrite",
    "FaultPlan",
    "FaultyDevice",
    "InjectedFault",
]


# ----------------------------------------------------------------------
# Exception taxonomy
# ----------------------------------------------------------------------
class FaultError(PageError):
    """Base class for every injected (or detected) device fault."""


class TransientIOError(FaultError):
    """The op failed before taking effect; retrying may succeed."""


class PermanentIOError(FaultError):
    """A bad page range: every access fails, retries included."""


class CorruptionError(FaultError):
    """A checksum mismatch detected by a reader (WAL frame, run file)."""


class DeviceCrash(FaultError):
    """The device halted (power loss); all later ops fail until reopen."""


class TornWrite(DeviceCrash):
    """Power loss mid-write: a prefix landed, then the device halted."""


# ----------------------------------------------------------------------
# Deterministic decision mixing
# ----------------------------------------------------------------------
_U64 = 1 << 64
_U64F = float(_U64)

# Op-kind salts: reads and writes draw from independent streams.
_READ, _WRITE = 0x52, 0x57
# Decision salts within one op.
_S_CRASH, _S_TORN, _S_FLIP, _S_TRANSIENT, _S_POS = 1, 2, 3, 4, 5


def _mix(seed: int, kind: int, salt: int, index: int) -> int:
    """SplitMix64-style avalanche of (seed, op kind, salt, op index).

    A full-avalanche mixer (not a linear checksum: CRC's GF(2)
    linearity makes seed or kind changes a constant XOR on every
    output, so distinct streams would collide).  Stateless and
    bit-exact across platforms — the replayability contract.
    """
    x = (
        (seed & (_U64 - 1)) * 0x9E3779B97F4A7C15
        + ((kind << 8) | salt) * 0xD1B54A32D192ED03
        + (index & (_U64 - 1)) * 0x8CB92BA72F3D8DD7
    ) % _U64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) % _U64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) % _U64
    return x ^ (x >> 31)


def _unit(seed: int, kind: int, salt: int, index: int) -> float:
    """Uniform [0, 1) from (seed, op kind, decision salt, op index)."""
    return _mix(seed, kind, salt, index) / _U64F


def _pick(seed: int, kind: int, salt: int, index: int, n: int) -> int:
    """Deterministic integer in [0, n) for torn/bit-flip positions."""
    return _mix(seed, kind, salt, index + 1) % max(1, n)


@dataclass(frozen=True)
class InjectedFault:
    """Diagnostic record of one injected fault.

    ``bit`` is the flipped bit's offset within the written region (bit
    ``b`` of byte ``bit >> 3``) for ``kind == "flip"`` records, ``-1``
    otherwise — integrity tests use it to map each flip to the exact
    physical page it corrupted.
    """

    kind: str
    op: str
    op_index: int
    first_page: int
    n_pages: int
    bit: int = -1


@dataclass(frozen=True)
class FaultPlan:
    """A frozen, seeded schedule of device faults.

    Decisions are pure functions of ``(seed, op kind, op index)`` —
    the plan carries no mutable state, so the same plan object can be
    consulted from any thread and replays identically.  ``max_faults``
    caps the number of *scheduled* faults (transient, torn, bit-flip,
    crash) one :class:`FaultyDevice` will fire, so retry loops
    eventually make progress; permanent bad pages are a property of
    the medium and are never capped.
    """

    seed: int = 0
    p_transient_read: float = 0.0
    p_transient_write: float = 0.0
    p_torn_write: float = 0.0
    p_bitflip_write: float = 0.0
    p_crash_read: float = 0.0
    p_crash_write: float = 0.0
    bad_pages: tuple = ()  # tuple of (first_page, n_pages) ranges
    max_faults: int | None = None

    def hits_bad_range(self, first_page: int, n_pages: int) -> bool:
        for bad_first, bad_n in self.bad_pages:
            if first_page < bad_first + bad_n and bad_first < first_page + n_pages:
                return True
        return False

    # Each decision reads an independent deterministic stream; the
    # priority order (crash > torn > bit flip > transient) is applied
    # by the device.
    def crash_on(self, kind: int, index: int) -> bool:
        p = self.p_crash_read if kind == _READ else self.p_crash_write
        return p > 0.0 and _unit(self.seed, kind, _S_CRASH, index) < p

    def torn_on(self, index: int) -> bool:
        p = self.p_torn_write
        return p > 0.0 and _unit(self.seed, _WRITE, _S_TORN, index) < p

    def bitflip_on(self, index: int) -> bool:
        p = self.p_bitflip_write
        return p > 0.0 and _unit(self.seed, _WRITE, _S_FLIP, index) < p

    def transient_on(self, kind: int, index: int) -> bool:
        p = self.p_transient_read if kind == _READ else self.p_transient_write
        return p > 0.0 and _unit(self.seed, kind, _S_TRANSIENT, index) < p

    def position(self, kind: int, index: int, n: int) -> int:
        return _pick(self.seed, kind, _S_POS, index, n)


class FaultyDevice:
    """A paged device that injects faults from a :class:`FaultPlan`.

    Wraps any device speaking the paged vocabulary and forwards
    ``allocate`` / ``read_page`` / ``write_page`` / ``read_run_bytes``
    / ``write_run_bytes`` with fault checks; ``page_view`` and every
    other attribute (``cost_model``, ``stats``, ``snapshot``,
    ``stats_since``, ``head_position`` …) pass straight through, so
    the wrapper is transparent to ``PagedFile``, ``BufferPool``,
    ``RawSeriesFile`` and ``Measurement`` alike.
    """

    def __init__(self, inner, plan: FaultPlan | None = None):
        self.inner = inner
        self.plan = plan
        self.crashed = False
        self.reads_issued = 0
        self.writes_issued = 0
        self.faults_injected = 0
        self.injected: list[InjectedFault] = []

    # -- plan bookkeeping ------------------------------------------------
    def _budget_left(self) -> bool:
        plan = self.plan
        return plan.max_faults is None or self.faults_injected < plan.max_faults

    def _record(
        self, kind: str, op: str, index: int, first: int, n: int, bit: int = -1
    ) -> None:
        self.faults_injected += 1
        self.injected.append(InjectedFault(kind, op, index, first, n, bit))

    # -- flip bookkeeping ------------------------------------------------
    @property
    def n_flips_injected(self) -> int:
        """Bits actually flipped into the medium by this device.

        Counted on the *write* side — one ``"flip"`` record per
        corrupted write op — so re-reading a flipped page any number of
        times can neither under- nor over-count, and integrity tests
        can assert ``detected == injected`` exactly.
        """
        return sum(1 for fault in self.injected if fault.kind == "flip")

    @property
    def flipped_pages(self) -> "set[int]":
        """Physical page ids that received a flipped bit."""
        page_size = self.page_size
        return {
            fault.first_page + (fault.bit >> 3) // page_size
            for fault in self.injected
            if fault.kind == "flip" and fault.bit >= 0
        }

    def _check_read(self, first_page: int, n_pages: int) -> None:
        if self.crashed:
            raise DeviceCrash("device halted; reopen before further I/O")
        plan = self.plan
        index = self.reads_issued
        self.reads_issued += 1
        if plan is None:
            return
        if plan.hits_bad_range(first_page, n_pages):
            raise PermanentIOError(
                f"permanent read error in pages [{first_page}, {first_page + n_pages})"
            )
        if not self._budget_left():
            return
        if plan.crash_on(_READ, index):
            self._record("crash", "r", index, first_page, n_pages)
            self.crashed = True
            raise DeviceCrash(f"injected crash before read op {index}")
        if plan.transient_on(_READ, index):
            self._record("transient", "r", index, first_page, n_pages)
            raise TransientIOError(f"injected transient error on read op {index}")

    def _check_write(
        self, first_page: int, n_pages: int, payload_bits: int = 0
    ) -> "str | None":
        """Returns ``None`` (clean), ``"torn"`` or ``"flip"``."""
        if self.crashed:
            raise DeviceCrash("device halted; reopen before further I/O")
        plan = self.plan
        index = self.writes_issued
        self.writes_issued += 1
        if plan is None:
            return None
        if plan.hits_bad_range(first_page, n_pages):
            raise PermanentIOError(
                f"permanent write error in pages [{first_page}, {first_page + n_pages})"
            )
        if not self._budget_left():
            return None
        if plan.crash_on(_WRITE, index):
            self._record("crash", "w", index, first_page, n_pages)
            self.crashed = True
            raise DeviceCrash(f"injected crash before write op {index}")
        if plan.torn_on(index):
            self._record("torn", "w", index, first_page, n_pages)
            return "torn"
        if plan.bitflip_on(index) and payload_bits > 0:
            # Record the exact bit (same deterministic draw
            # _flipped_payload replays), so flip bookkeeping counts
            # bits actually landed — an empty payload flips nothing
            # and records nothing.
            bit = plan.position(_WRITE, index, payload_bits)
            self._record("flip", "w", index, first_page, n_pages, bit=bit)
            return "flip"
        if plan.transient_on(_WRITE, index):
            self._record("transient", "w", index, first_page, n_pages)
            raise TransientIOError(f"injected transient error on write op {index}")
        return None

    # -- payload corruption ---------------------------------------------
    def _old_region(self, first_page: int, n_pages: int) -> bytes:
        inner = self.inner
        return b"".join(
            bytes(inner.page_view(p)) for p in range(first_page, first_page + n_pages)
        )

    def _torn_payload(self, data, first_page: int, n_pages: int, index: int) -> bytes:
        """Prefix of the new payload over the old region content."""
        region = n_pages * self.page_size
        new = bytes(data).ljust(region, b"\x00")
        keep = self.plan.position(_WRITE, index, max(1, len(bytes(data))))
        old = self._old_region(first_page, n_pages)
        return new[:keep] + old[keep:]

    def _flipped_payload(self, data, index: int) -> bytes:
        raw = bytearray(bytes(data))
        if not raw:
            return bytes(raw)
        bit = self.plan.position(_WRITE, index, len(raw) * 8)
        raw[bit >> 3] ^= 1 << (bit & 7)
        return bytes(raw)

    # -- device vocabulary ----------------------------------------------
    @property
    def page_size(self) -> int:
        return self.inner.page_size

    def allocate(self, n_pages: int = 1) -> int:
        if self.crashed:
            raise DeviceCrash("device halted; reopen before further I/O")
        return self.inner.allocate(n_pages)

    def read_page(self, page_id: int):
        self._check_read(page_id, 1)
        return self.inner.read_page(page_id)

    def write_page(self, page_id: int, data) -> None:
        index = self.writes_issued
        mode = self._check_write(page_id, 1, len(data) * 8)
        if mode == "torn":
            self.inner.write_page(page_id, self._torn_payload(data, page_id, 1, index))
            self.crashed = True
            raise TornWrite(f"injected torn write on page {page_id} (op {index})")
        if mode == "flip":
            data = self._flipped_payload(data, index)
        self.inner.write_page(page_id, data)

    def read_run_bytes(self, first_page: int, n_pages: int):
        if n_pages <= 0:
            return b""
        self._check_read(first_page, n_pages)
        return self.inner.read_run_bytes(first_page, n_pages)

    def write_run_bytes(self, first_page: int, data, n_pages: int) -> None:
        if n_pages <= 0:
            return
        index = self.writes_issued
        mode = self._check_write(first_page, n_pages, len(data) * 8)
        if mode == "torn":
            torn = self._torn_payload(data, first_page, n_pages, index)
            self.inner.write_run_bytes(first_page, torn, n_pages)
            self.crashed = True
            raise TornWrite(
                f"injected torn write on pages [{first_page}, {first_page + n_pages}) "
                f"(op {index})"
            )
        if mode == "flip":
            data = self._flipped_payload(data, index)
        self.inner.write_run_bytes(first_page, data, n_pages)

    # BufferPool's single-page interface (so a FaultyDevice can wrap a
    # pool as well as sit underneath one).
    def read(self, page_id: int):
        self._check_read(page_id, 1)
        return self.inner.read(page_id)

    def write(self, page_id: int, data) -> None:
        index = self.writes_issued
        mode = self._check_write(page_id, 1, len(data) * 8)
        if mode == "torn":
            self.inner.write(page_id, self._torn_payload(data, page_id, 1, index))
            self.crashed = True
            raise TornWrite(f"injected torn write on page {page_id} (op {index})")
        if mode == "flip":
            data = self._flipped_payload(data, index)
        self.inner.write(page_id, data)

    def page_view(self, page_id: int):
        # Diagnostic path: no accounting on the inner device, no faults.
        return self.inner.page_view(page_id)

    def halt(self) -> None:
        """Latch the crashed state explicitly (no plan involvement).

        Chaos schedules use this to pull the plug at a chosen step —
        every subsequent read/write raises :class:`DeviceCrash` until
        :meth:`reopen` — without weaving the crash into the seeded
        per-operation plan, so the same :class:`FaultPlan` stays
        comparable across schedules that crash at different points.
        """
        self.crashed = True

    def reopen(self) -> None:
        """Clear the crashed latch, modelling a power-cycle + reopen."""
        self.crashed = False

    def __getattr__(self, name: str):
        # Everything else (cost_model, stats, snapshot, stats_since,
        # head_position, park_head, trace, pages_allocated, …) is
        # forwarded untouched.
        return getattr(self.inner, name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "crashed" if self.crashed else "live"
        return (
            f"FaultyDevice({self.inner!r}, plan={'on' if self.plan else 'off'}, "
            f"{state}, faults={self.faults_injected})"
        )
