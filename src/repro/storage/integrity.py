"""End-to-end page integrity: CRC sidecar, verified reads, scrub + repair.

The fault layer (:mod:`repro.storage.faults`) can flip a single bit in
a write *silently* — the op acks, the corrupt bytes land, and the
zero-copy arena path propagates the flipped view all the way to query
answers.  WAL frames and run footers already carry their own CRCs, but
data pages (Coconut run payloads, the raw series file) had nothing.
This module closes that gap end to end:

* :class:`ChecksumMap` — a per-page CRC32 sidecar keyed by **physical
  page id**.  Checksums are recorded by the *consumers that know the
  intended payload* (:class:`~repro.storage.pager.PagedFile`,
  :class:`~repro.parallel.spill._ExtentWriter`,
  :class:`~repro.storage.bufferpool.BufferPool`) at write time, **after
  the device acks** — never by the device itself.  That ordering is
  load-bearing twice over: a :class:`~repro.storage.faults.FaultyDevice`
  corrupts the payload *before* forwarding it to the real store, so a
  device-level hook would bless the corruption; and a write that faults
  before taking effect must not move the expectation off the bytes that
  are actually on the platter.  Keying by physical id makes the sidecar
  immune to arena extent coalescing (``bytearray.extend`` preserves
  page ids) and lets shard-session maps merge into the parent at detach
  exactly like the pages themselves.

* **Verified reads** — ``verified_reads=True`` on
  :class:`~repro.storage.bufferpool.BufferPool` and
  :class:`~repro.storage.seriesfile.RawSeriesFile` hashes every page
  view fetched from the device (``zlib.crc32`` accepts memoryviews, so
  the zero-copy discipline survives — verification never copies) and
  raises :class:`~repro.storage.faults.CorruptionError` with page
  provenance instead of returning flipped bytes.

* :class:`Scrubber` — sweeps the live on-disk regions (raw series
  pages + every Coconut run extent) in bounded increments, detects
  pages whose content no longer matches the sidecar, repairs
  single-bit decay algebraically (see below), and rebuilds corrupt
  runs from the raw file via the ``CoconutLSM`` recovery seam.

Single-bit repair
-----------------
CRC32 is affine over GF(2): for equal-length messages,
``crc(a ^ b) == crc(a) ^ crc(b) ^ crc(0)``.  A page whose content
``x'`` differs from the intended ``x`` by one flipped bit ``e_p``
therefore satisfies ``crc(x') ^ crc(x) == crc(e_p) ^ crc(zeros)`` — a
*syndrome* that depends only on the bit position and the page size,
never on the data.  :func:`single_bit_syndromes` tabulates all
``8 * page_size`` syndromes once per page size (the CRC-32 polynomial
has Hamming distance >= 4 below ~11450 bytes, so the syndromes of an
8 KiB page are pairwise distinct); repair is then one dict lookup and
one bit flip, verified against the recorded CRC before the page is
patched.  Multi-bit damage misses the table and falls through to the
rebuild-from-raw path (runs) or is quarantined (raw pages, where no
redundant copy exists).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

from .disk import PageError
from .faults import CorruptionError

__all__ = [
    "ChecksumMap",
    "ScrubReport",
    "Scrubber",
    "checksum_page",
    "decay_bit",
    "single_bit_syndromes",
    "verify_view",
]

_ZEROS: "dict[int, bytes]" = {}
_ZERO_CRC: "dict[int, int]" = {}
_SYNDROMES: "dict[int, dict[int, int]]" = {}


def _zeros(n: int) -> bytes:
    pad = _ZEROS.get(n)
    if pad is None:
        pad = _ZEROS[n] = bytes(n)
    return pad


def zero_page_crc(page_size: int) -> int:
    """CRC of a never-written page: the padded-read contract in a hash."""
    crc = _ZERO_CRC.get(page_size)
    if crc is None:
        crc = _ZERO_CRC[page_size] = zlib.crc32(_zeros(page_size))
    return crc


def checksum_page(data, page_size: int) -> int:
    """CRC32 of ``data`` zero-extended to ``page_size`` bytes.

    This is the *padded-page* checksum: every device read returns
    exactly ``page_size`` bytes with short pages zero-filled, so the
    expectation must hash the same shape.  ``data`` may be ``bytes``,
    ``bytearray`` or a ``memoryview`` — no copy is taken.
    """
    n = len(data)
    if n > page_size:
        raise PageError(f"payload of {n} bytes exceeds page size {page_size}")
    crc = zlib.crc32(data)
    if n < page_size:
        crc = zlib.crc32(_zeros(page_size - n), crc)
    return crc


class ChecksumMap:
    """Per-page CRC32 sidecar keyed by physical page id.

    A page with no entry is *expected to be all zeros* — exactly the
    padded-read contract of the page stores, so never-written pages
    verify without any bookkeeping and decay on them is still caught.

    ``child()`` builds the sidecar for a :class:`~repro.storage.disk.
    DiskShard` session: records land in the child's private dict while
    lookups fall through to the parent chain (read-only sessions read
    parent pages), and :meth:`absorb` merges the child back at detach —
    mirroring how the session's pages reconcile.  An aborted session
    simply drops its child, leaving the parent's expectations on the
    untouched parent bytes.
    """

    def __init__(self, page_size: int, parent: "ChecksumMap | None" = None):
        self.page_size = page_size
        self.parent = parent
        self._crcs: "dict[int, int]" = {}

    def __len__(self) -> int:
        return len(self._crcs)

    # ------------------------------------------------------------------
    # Recording (write path: intended payloads only)
    # ------------------------------------------------------------------
    def record_page(self, page_id: int, data) -> None:
        """Record the intended content of one page (short payloads are
        zero-extended, matching the padded write-then-read round trip)."""
        self._crcs[page_id] = checksum_page(data, self.page_size)

    def record_run(self, first_page: int, data, n_pages: int) -> None:
        """Record a multi-page bulk write (``write_run_bytes`` shape).

        Pages past ``len(data)`` are recorded as zero pages — the
        device zero-fills them, and an explicit entry keeps a later
        short rewrite of the run from leaving stale expectations.
        """
        page_size = self.page_size
        view = memoryview(data)
        zero = zero_page_crc(page_size)
        for i in range(n_pages):
            chunk = view[i * page_size : (i + 1) * page_size]
            self._crcs[first_page + i] = (
                checksum_page(chunk, page_size) if len(chunk) else zero
            )

    # ------------------------------------------------------------------
    # Lookup / verification (zero-copy: hashes the given view)
    # ------------------------------------------------------------------
    def expected(self, page_id: int) -> int:
        node: "ChecksumMap | None" = self
        while node is not None:
            crc = node._crcs.get(page_id)
            if crc is not None:
                return crc
            node = node.parent
        return zero_page_crc(self.page_size)

    def recorded(self, page_id: int) -> bool:
        node: "ChecksumMap | None" = self
        while node is not None:
            if page_id in node._crcs:
                return True
            node = node.parent
        return False

    def verify(self, page_id: int, view) -> bool:
        return zlib.crc32(view) == self.expected(page_id)

    # ------------------------------------------------------------------
    # Session lifecycle
    # ------------------------------------------------------------------
    def child(self) -> "ChecksumMap":
        return ChecksumMap(self.page_size, parent=self)

    def absorb(self, child: "ChecksumMap") -> None:
        """Merge a detaching session's records (parent-side reconcile)."""
        self._crcs.update(child._crcs)


def verify_view(checksums: "ChecksumMap | None", page_id: int, view, source: str):
    """Hash ``view`` against the sidecar; raise with provenance on mismatch.

    Returns ``view`` unchanged so callers can verify inline on the
    zero-copy path.  ``source`` names the reader (pool, file) so a
    raised :class:`CorruptionError` pinpoints *where* the corrupt page
    was about to be served, not just which page it was.
    """
    if checksums is None:
        raise PageError(
            f"{source}: verified_reads requires a ChecksumMap on the device "
            "(construct the SimulatedDisk with integrity=True or call "
            "enable_integrity())"
        )
    actual = zlib.crc32(view)
    expected = checksums.expected(page_id)
    if actual != expected:
        error = CorruptionError(
            f"{source}: checksum mismatch on page {page_id} "
            f"(expected {expected:#010x}, got {actual:#010x})"
        )
        error.page_id = page_id
        error.expected_crc = expected
        error.actual_crc = actual
        error.source = source
        raise error
    return view


# ----------------------------------------------------------------------
# Single-bit syndrome repair
# ----------------------------------------------------------------------
def single_bit_syndromes(page_size: int) -> "dict[int, int]":
    """``crc(x') ^ crc(x)`` for every single-bit flip of a page.

    Built once per page size by extending the eight 1-byte error
    messages one zero byte at a time (``zlib.crc32`` resumes from a
    running value, so each step is O(1)); maps syndrome -> bit index in
    the :class:`~repro.storage.faults.FaultyDevice` convention
    (``raw[bit >> 3] ^= 1 << (bit & 7)``).
    """
    table = _SYNDROMES.get(page_size)
    if table is not None:
        return table
    table = {}
    one = b"\x00"
    bit_crcs = [zlib.crc32(bytes([1 << b])) for b in range(8)]
    zeros_crc = zlib.crc32(one)
    # suffix length s: error byte sits at page offset page_size - 1 - s
    for s in range(page_size):
        byte_at = page_size - 1 - s
        for b in range(8):
            table[bit_crcs[b] ^ zeros_crc] = (byte_at << 3) | b
        if s + 1 < page_size:
            bit_crcs = [zlib.crc32(one, c) for c in bit_crcs]
            zeros_crc = zlib.crc32(one, zeros_crc)
    _SYNDROMES[page_size] = table
    return table


def find_flipped_bit(view, expected_crc: int, page_size: int) -> "int | None":
    """Locate the single flipped bit of a full-page view, if there is one.

    Returns the bit index within the page, or ``None`` when the damage
    is not a single-bit flip (multi-bit decay, torn content).
    """
    if len(view) != page_size:
        raise PageError(
            f"single-bit repair needs a full {page_size}-byte page view, "
            f"got {len(view)} bytes"
        )
    syndrome = zlib.crc32(view) ^ expected_crc
    return single_bit_syndromes(page_size).get(syndrome)


# ----------------------------------------------------------------------
# At-rest corruption injection + in-place patching (store internals)
# ----------------------------------------------------------------------
def _store_page(disk, page_id: int, data: bytes) -> None:
    """Patch a page directly in the backing store: no stats, no head
    movement, no checksum update — the maintenance-plane twin of
    ``page_view``.  Scrub repair uses it so healing a page never
    perturbs the deterministic I/O accounting the equivalence suites
    pin."""
    page_size = disk.page_size
    if len(data) != page_size:
        raise PageError(f"patch must be a full page ({page_size} bytes)")
    arenas = getattr(disk, "_arenas", None)
    if disk.store == "arena":
        arenas.splice(page_id, data, page_size)
    else:
        disk._pages[page_id] = bytes(data)


def decay_bit(disk, page_id: int, bit: int) -> None:
    """Flip one bit of a page *at rest* — silent media decay.

    Unlike :class:`~repro.storage.faults.FaultyDevice` (which corrupts
    payloads in flight, during an op), this models the platter rotting
    underneath a page that was written correctly: no op fires, nothing
    acks, no stats move, and the checksum sidecar still holds the
    original expectation.  Integrity tests and the scrub bench inject
    with it because detection accounting is then exact by construction:
    every decayed page is corrupt, nothing else is.
    """
    page_size = disk.page_size
    if not 0 <= bit < page_size * 8:
        raise PageError(f"bit {bit} out of range for a {page_size}-byte page")
    raw = bytearray(disk.page_view(page_id))
    raw[bit >> 3] ^= 1 << (bit & 7)
    _store_page(disk, page_id, bytes(raw))


# ----------------------------------------------------------------------
# Scrubber
# ----------------------------------------------------------------------
@dataclass
class ScrubReport:
    """What one sweep (or one bounded step) found and fixed."""

    pages_scanned: int = 0
    corrupt_pages: "list[int]" = field(default_factory=list)
    repaired_pages: "list[int]" = field(default_factory=list)
    quarantined_runs: "list[int]" = field(default_factory=list)
    rebuilt_runs: int = 0
    unrepairable_pages: "list[int]" = field(default_factory=list)
    complete: bool = False

    def merge(self, other: "ScrubReport") -> None:
        self.pages_scanned += other.pages_scanned
        self.corrupt_pages.extend(other.corrupt_pages)
        self.repaired_pages.extend(other.repaired_pages)
        self.quarantined_runs.extend(other.quarantined_runs)
        self.rebuilt_runs += other.rebuilt_runs
        self.unrepairable_pages.extend(other.unrepairable_pages)
        self.complete = other.complete

    def as_dict(self) -> dict:
        return {
            "pages_scanned": self.pages_scanned,
            "corrupt_pages": len(self.corrupt_pages),
            "repaired_pages": len(self.repaired_pages),
            "quarantined_runs": len(self.quarantined_runs),
            "rebuilt_runs": self.rebuilt_runs,
            "unrepairable_pages": len(self.unrepairable_pages),
            "complete": self.complete,
        }


class Scrubber:
    """Background integrity sweep over the live on-disk regions.

    Targets are the pages queries can actually reach: the raw series
    file's live pages and every Coconut run's extent (data pages +
    footer).  WAL pages are excluded by design — frames self-verify
    with their own CRCs and the append path read-back-verifies before
    acking — and dead regions (truncated raw tail, stale pre-recovery
    extents) are unreachable, so a sweep that finds them rotten would
    have nothing sound to restore them *to*.

    ``step()`` scans at most ``pages_per_step`` pages and returns, so a
    caller holding the ingest lock (the online service) never blocks
    serving for more than a bounded slice; read-only ShardedDisk
    serving sessions are unaffected throughout because scrub reads ride
    the diagnostics plane (``page_view`` — no simulated I/O charge, no
    head movement, no fence interaction).  Targets are re-snapshotted
    at the start of each sweep, so runs retired by compaction between
    sweeps simply fall out of scope.

    Repair policy, per corrupt page:

    1. single-bit decay -> algebraic repair in place (syndrome lookup),
       verified against the recorded CRC before patching;
    2. anything worse inside a run extent -> quarantine the run and
       rebuild it from the raw file through the ``CoconutLSM`` recovery
       seam (``_rebuild_run``), falling back to the in-memory mirrors
       when the raw range itself cannot be read back clean;
    3. anything worse in the raw file -> quarantined (listed in
       ``unrepairable``): raw pages are the source of truth, and
       verified reads keep refusing to serve them — loudly, never
       silently.
    """

    def __init__(
        self,
        disk,
        lsm=None,
        raw=None,
        checksums: "ChecksumMap | None" = None,
        pages_per_step: int = 256,
    ):
        if pages_per_step <= 0:
            raise ValueError("pages_per_step must be positive")
        self.disk = disk
        self.lsm = lsm
        self.raw = raw
        self.checksums = (
            checksums if checksums is not None else getattr(disk, "checksums", None)
        )
        if self.checksums is None:
            raise PageError(
                "Scrubber requires a ChecksumMap (enable integrity on the disk)"
            )
        self.pages_per_step = pages_per_step
        self.unrepairable: "set[int]" = set()
        self.total = ScrubReport()
        self.n_sweeps = 0
        self.n_steps = 0
        self._cursor: "tuple[list, int, int] | None" = None

    # ------------------------------------------------------------------
    # Target discovery
    # ------------------------------------------------------------------
    def _raw_file(self):
        if self.raw is not None:
            return self.raw
        lsm = self.lsm
        return getattr(lsm, "raw", None) if lsm is not None else None

    def _targets(self) -> list:
        """``(kind, run, first_physical, n_pages)`` segments to sweep.

        Raw segments come first: run repair rebuilds from raw, so the
        source of truth must be verified (and single-bit-healed) before
        anything is rebuilt on top of it.
        """
        targets: list = []
        raw = self._raw_file()
        if raw is not None and raw.n_series:
            live = raw.live_pages
            for first, n_pages in raw.file._physical_runs(0, live):
                targets.append(("raw", None, first, n_pages))
        lsm = self.lsm
        if lsm is not None:
            for run in lsm._runs:
                file = run.file
                for first, n_pages in file._physical_runs(0, file.n_pages):
                    targets.append(("run", run, first, n_pages))
        return targets

    # ------------------------------------------------------------------
    # Sweeping
    # ------------------------------------------------------------------
    def step(self, max_pages: "int | None" = None) -> ScrubReport:
        """Scan a bounded slice of the current sweep; repair what it hits.

        A new sweep starts automatically when the previous one
        completed.  A corrupt-run rebuild is charged to the step that
        finished scanning that run's segment.
        """
        budget = self.pages_per_step if max_pages is None else max_pages
        if budget <= 0:
            raise ValueError("max_pages must be positive")
        if self._cursor is None:
            self._cursor = (self._targets(), 0, 0)
        targets, ti, offset = self._cursor
        report = ScrubReport()
        self.n_steps += 1
        while budget > 0 and ti < len(targets):
            kind, run, first, n_pages = targets[ti]
            take = min(budget, n_pages - offset)
            corrupt = self._scan_segment(first + offset, take, report)
            if corrupt:
                self._repair(kind, run, corrupt, report)
            budget -= take
            offset += take
            if offset >= n_pages:
                ti, offset = ti + 1, 0
        if ti >= len(targets):
            report.complete = True
            self._cursor = None
            self.n_sweeps += 1
        else:
            self._cursor = (targets, ti, offset)
        self.total.merge(report)
        return report

    def sweep(self, max_pages: "int | None" = None) -> ScrubReport:
        """Run a full sweep (restarting any partial one) to completion."""
        self._cursor = None
        report = ScrubReport()
        while True:
            report.merge(self.step(max_pages))
            if report.complete:
                return report

    def _scan_segment(self, first: int, n_pages: int, report: ScrubReport):
        checksums = self.checksums
        view_of = self.disk.page_view
        corrupt: "list[int]" = []
        for page in range(first, first + n_pages):
            if not checksums.verify(page, view_of(page)):
                corrupt.append(page)
        report.pages_scanned += n_pages
        report.corrupt_pages.extend(corrupt)
        return corrupt

    # ------------------------------------------------------------------
    # Repair
    # ------------------------------------------------------------------
    def _patch_single_bit(self, page: int) -> bool:
        view = self.disk.page_view(page)
        expected = self.checksums.expected(page)
        bit = find_flipped_bit(view, expected, self.disk.page_size)
        if bit is None:
            return False
        raw = bytearray(view)
        del view  # release the exported view before the store mutates
        raw[bit >> 3] ^= 1 << (bit & 7)
        if zlib.crc32(raw) != expected:  # pragma: no cover - syndrome table bug
            return False
        _store_page(self.disk, page, bytes(raw))
        return True

    def _repair(self, kind: str, run, corrupt: "list[int]", report: ScrubReport):
        remaining = []
        for page in corrupt:
            if self._patch_single_bit(page):
                report.repaired_pages.append(page)
                self.unrepairable.discard(page)
            else:
                remaining.append(page)
        if kind == "run" and corrupt:
            # Quarantine = the run had corruption this step; repaired
            # in place or rebuilt, it is re-verified before release.
            report.quarantined_runs.append(run.file.physical_page(0))
        if not remaining:
            return
        if kind == "run":
            self._rebuild_run(run, remaining, report)
        else:
            for page in remaining:
                self.unrepairable.add(page)
                report.unrepairable_pages.append(page)

    def _rebuild_run(self, run, pages: "list[int]", report: ScrubReport):
        lsm = self.lsm
        from ..core.wal import run_footer

        payload = lsm._pack_records(run.keys, run.offsets)
        crc = zlib.crc32(payload)
        rebuilt = False
        meta = lsm.run_meta_of(run)
        if meta is not None:
            try:
                lsm._rebuild_run(run.file, meta)
                lsm.n_rebuilt_runs += 1
                rebuilt = True
            except (CorruptionError, PageError):
                # The raw range would not read back clean (or no longer
                # matches): fall through to the in-memory mirrors, the
                # same arrays every query answer is already computed
                # from.
                rebuilt = False
        if not rebuilt:
            run.file.write_stream(payload)
            if run.file.n_pages > run.data_pages:
                run.file.write(run.data_pages, run_footer(len(run.keys), crc))
        report.rebuilt_runs += 1
        # Release from quarantine only if the extent now verifies.
        for first, n_pages in run.file._physical_runs(0, run.file.n_pages):
            for page in range(first, first + n_pages):
                if not self.checksums.verify(page, self.disk.page_view(page)):
                    self.unrepairable.add(page)
                    report.unrepairable_pages.append(page)
                else:
                    self.unrepairable.discard(page)
