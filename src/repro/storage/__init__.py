"""Storage substrate: a simulated disk in the disk access model.

Provides the block device, paged files, buffer pool, the raw data
series file, and external merge sort — everything the paper's
algorithms need from an I/O subsystem, with sequential/random access
classification so construction and query costs can be compared in the
same cost model the paper uses.
"""

from .bufferpool import BufferPool
from .cost import SSD_COST, UNIFORM_COST, CostModel, DiskStats
from .disk import PageError, SimulatedDisk
from .external_sort import ExternalSorter, SortReport, sort_to_arrays
from .pager import Extent, PagedFile
from .seriesfile import RawSeriesFile

__all__ = [
    "BufferPool",
    "CostModel",
    "DiskStats",
    "Extent",
    "ExternalSorter",
    "PageError",
    "PagedFile",
    "RawSeriesFile",
    "SimulatedDisk",
    "SortReport",
    "SSD_COST",
    "UNIFORM_COST",
    "sort_to_arrays",
]
