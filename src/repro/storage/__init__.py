"""Storage substrate: a simulated disk in the disk access model.

Provides the block device, paged files, buffer pool, the raw data
series file, and external merge sort — everything the paper's
algorithms need from an I/O subsystem, with sequential/random access
classification so construction and query costs can be compared in the
same cost model the paper uses.
"""

from .bufferpool import BufferPool
from .cost import SSD_COST, UNIFORM_COST, CostModel, DiskStats
from .disk import PAGE_STORES, DiskShard, PageError, ShardedDisk, SimulatedDisk
from .external_sort import ExternalSorter, SortReport, sort_to_arrays
from .fence import (
    RunFence,
    build_run_fence,
    fenced_cut_positions,
    page_record_starts,
    read_run_fence,
    write_run_fence,
)
from .faults import (
    CorruptionError,
    DeviceCrash,
    FaultError,
    FaultPlan,
    FaultyDevice,
    InjectedFault,
    PermanentIOError,
    TornWrite,
    TransientIOError,
)
from .integrity import (
    ChecksumMap,
    Scrubber,
    ScrubReport,
    checksum_page,
    decay_bit,
    single_bit_syndromes,
    verify_view,
)
from .merge import (
    MERGE_ENGINES,
    LoserTree,
    RunCursor,
    blockwise_merge_stream,
    heapq_merge_stream,
    merge_pair,
    merge_presorted,
    merge_stream,
)
from .pager import Extent, PagedFile
from .seriesfile import RawSeriesFile

__all__ = [
    "BufferPool",
    "ChecksumMap",
    "CorruptionError",
    "CostModel",
    "DeviceCrash",
    "DiskShard",
    "DiskStats",
    "Extent",
    "FaultError",
    "FaultPlan",
    "FaultyDevice",
    "InjectedFault",
    "PermanentIOError",
    "ShardedDisk",
    "TornWrite",
    "TransientIOError",
    "ExternalSorter",
    "LoserTree",
    "MERGE_ENGINES",
    "PAGE_STORES",
    "PageError",
    "PagedFile",
    "RawSeriesFile",
    "RunCursor",
    "RunFence",
    "Scrubber",
    "ScrubReport",
    "SimulatedDisk",
    "SortReport",
    "SSD_COST",
    "UNIFORM_COST",
    "blockwise_merge_stream",
    "build_run_fence",
    "checksum_page",
    "decay_bit",
    "fenced_cut_positions",
    "heapq_merge_stream",
    "merge_pair",
    "merge_presorted",
    "merge_stream",
    "page_record_starts",
    "read_run_fence",
    "single_bit_syndromes",
    "sort_to_arrays",
    "verify_view",
    "write_run_fence",
]
