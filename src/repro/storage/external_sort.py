"""External merge sort in the disk access model.

This is the bulk-loading engine of Coconut (paper Sec. 3.1): the
partition phase sorts memory-sized chunks and spills them as sorted
runs; the merge phase streams all runs through per-run input buffers
and yields records in globally sorted order.  When the input fits in
the memory budget no I/O is performed at all — the case the paper
highlights for non-materialized Coconut variants, whose summarizations
"in general fit in main memory".

The partition phase can also be fed from outside: ``sort_runs``
accepts chunk runs that were already stably sorted elsewhere — the
parallel summarization pipeline (:mod:`repro.parallel.summarize`)
presorts chunks on worker processes — and merges them into the exact
stream ``sort`` would have produced.

The merge phase is engine-pluggable (:mod:`repro.storage.merge`): the
default ``"blockwise"`` engine merges page-sized blocks with NumPy
galloping and is bit-identical — output stream, chunk shapes, and
simulated-I/O trace — to the ``"heapq"`` per-record reference, which
remains available as the correctness oracle.  When the merge happens
in memory (the runs fit the budget), ``merge_workers > 1`` additionally
range-partitions the key space and merges the disjoint partitions on a
worker pool (:func:`repro.parallel.merge.parallel_merge_runs`), again
with bit-identical output for any worker count.

``merge_workers > 1`` now also parallelizes the *spilled* cascade
(:mod:`repro.parallel.spill`): each cascade group's key space is
range-partitioned, every partition merges its record slices of the
group's run files through a private :class:`repro.storage.disk.
DiskShard` and writes a disjoint extent of the output run; the final
pass streams its partition merges concurrently through read-only
shards straight to the consumer.  The merged record stream stays
bit-identical to the serial merge for any worker count and splitter
sample; the simulated I/O of the sharded plan is bit-identical to its
serial replay (``pool_kind="serial"``), though not to the
single-domain serial plan — partitioned domains classify their seeks
independently, the price of merging on many devices at once.

Keys are fixed-width byte strings (NumPy ``S<k>`` arrays); NumPy sorts
them lexicographically, which for big-endian encoded invSAX words is
exactly z-order.  Payloads are arbitrary fixed-size rows (an int64 file
offset for secondary indexes, a whole float32 series for materialized
ones), so the I/O charged per record reflects what the index actually
moves through the disk.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from .disk import SimulatedDisk
from .merge import MERGE_ENGINES, merge_presorted, merge_stream
from .pager import PagedFile


@dataclass
class SortReport:
    """What the sort did, for construction-cost accounting."""

    n_records: int = 0
    record_bytes: int = 0
    n_runs: int = 1
    spilled: bool = False
    run_pages: int = 0
    merge_passes: int = 0


@dataclass
class _SpillRun:
    """One file-backed sorted run awaiting the merge cascade.

    ``keys`` is the run's in-memory key mirror, retained only when the
    sharded parallel cascade needs it for splitter sampling and exact
    record-level cuts (the sortable summarizations are what "in general
    fit in main memory"); the serial cascade carries ``None``.  With
    ``cut_planning="fence"`` the mirror is dropped too — ``fence``
    holds the per-page zone map (:class:`repro.storage.fence.RunFence`,
    also persisted as the run's footer) that plans the same cuts from
    two keys per page plus boundary-page reads.
    """

    file: PagedFile
    n_records: int
    keys: np.ndarray | None = None
    fence: object | None = None


def _record_dtype(keys: np.ndarray, payloads: np.ndarray) -> np.dtype:
    if payloads.ndim == 1:
        return np.dtype([("k", keys.dtype), ("v", payloads.dtype)])
    return np.dtype([("k", keys.dtype), ("v", payloads.dtype, payloads.shape[1:])])


class ExternalSorter:
    """Sorts (key, payload) records under a main-memory budget.

    ``merge_engine`` selects the k-way merge implementation for spilled
    sorts (``"blockwise"`` — vectorized, the default — or ``"heapq"``,
    the per-record oracle); both are bit-identical in output and
    simulated I/O.  ``merge_workers > 1`` parallelizes both merges by
    key-range partitioning: the in-memory merge of resident presorted
    runs on a worker pool, and the file-backed spilled cascade on
    per-partition disk shards (:mod:`repro.parallel.spill`).
    ``pool_kind`` defaults to ``"auto"``, which picks threads for large
    merge payloads (NumPy releases the GIL; no pickling) and processes
    for tiny ones (:func:`repro.parallel.merge.choose_pool_kind`);
    the sharded spilled merge always uses threads — worker processes
    cannot mutate the shared simulated device — unless
    ``pool_kind="serial"`` asks for the inline serial replay.
    """

    def __init__(
        self,
        disk: SimulatedDisk,
        memory_bytes: int,
        merge_engine: str = "blockwise",
        merge_workers: int = 1,
        pool_kind: str = "auto",
        cut_planning: str = "mirror",
    ):
        if memory_bytes <= 0:
            raise ValueError(f"memory_bytes must be positive, got {memory_bytes}")
        if merge_engine not in MERGE_ENGINES:
            raise ValueError(
                f"merge_engine must be one of {MERGE_ENGINES}, got {merge_engine!r}"
            )
        if cut_planning not in ("mirror", "fence"):
            raise ValueError(
                "cut_planning must be 'mirror' or 'fence', "
                f"got {cut_planning!r}"
            )
        self.disk = disk
        self.memory_bytes = memory_bytes
        self.merge_engine = merge_engine
        self.merge_workers = max(1, int(merge_workers))
        self.pool_kind = pool_kind
        #: How the sharded cascade plans its splitter cuts: ``"mirror"``
        #: keeps each run's full key column resident (free planning),
        #: ``"fence"`` persists a per-page zone map in the run footer
        #: and plans the *identical* cuts from it with a few charged
        #: boundary-page reads (:mod:`repro.storage.fence`).
        self.cut_planning = cut_planning
        self.report = SortReport()

    def sort(
        self, keys: np.ndarray, payloads: np.ndarray
    ) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield (keys, payloads) chunks in globally sorted key order.

        Ties are broken by input position (stable sort), which the
        bulk loaders rely on for deterministic layouts.
        """
        keys = np.asarray(keys)
        payloads = np.asarray(payloads)
        if len(keys) != len(payloads):
            raise ValueError(
                f"{len(keys)} keys vs {len(payloads)} payloads"
            )
        rec_dtype = _record_dtype(keys, payloads)
        n = len(keys)
        self.report = SortReport(n_records=n, record_bytes=rec_dtype.itemsize)
        if n == 0:
            self.report.n_runs = 0
            return iter(())
        mem_records = max(2, self.memory_bytes // rec_dtype.itemsize)
        if n <= mem_records:
            return self._sort_in_memory(keys, payloads, mem_records)
        return self._sort_spilled(keys, payloads, rec_dtype, mem_records)

    # ------------------------------------------------------------------
    def _sort_in_memory(
        self, keys: np.ndarray, payloads: np.ndarray, chunk: int
    ) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        order = np.argsort(keys, kind="stable")
        skeys, spay = keys[order], payloads[order]

        def chunks() -> Iterator[tuple[np.ndarray, np.ndarray]]:
            for i in range(0, len(skeys), chunk):
                yield skeys[i : i + chunk], spay[i : i + chunk]

        return chunks()

    # ------------------------------------------------------------------
    @property
    def _fan_in(self) -> int:
        """Maximum runs merged at once: one multi-page buffer per run.

        Real external sorters bound merge fan-in by the number of
        input buffers main memory can hold; exceeding it degrades every
        read to a seek.  When there are more runs, we cascade: merge
        groups of ``fan_in`` runs into longer runs, then repeat.
        """
        return max(2, self.memory_bytes // (self.disk.page_size * 2))

    @property
    def _parallel_spill(self) -> bool:
        """Whether the spilled cascade runs on per-partition shards.

        ``pool_kind="serial"`` keeps the sharded plan but executes it
        inline — the serial replay oracle with bit-identical counters.
        """
        return self.merge_workers > 1

    def _sort_spilled(
        self,
        keys: np.ndarray,
        payloads: np.ndarray,
        rec_dtype: np.dtype,
        mem_records: int,
    ) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        n = len(keys)
        runs: list[_SpillRun] = []
        for start in range(0, n, mem_records):
            stop = min(start + mem_records, n)
            order = np.argsort(keys[start:stop], kind="stable")
            sorted_keys = keys[start:stop][order]
            block = np.empty(stop - start, dtype=rec_dtype)
            block["k"] = sorted_keys
            block["v"] = payloads[start:stop][order]
            run = PagedFile(self.disk, name=f"sort-run-{len(runs)}")
            run.write_stream(block.tobytes())
            runs.append(self._spill_run(run, sorted_keys, rec_dtype))
        self.report.n_runs = len(runs)
        self.report.spilled = True
        self.report.run_pages = sum(run.file.n_pages for run in runs)
        return self._merge_spilled(runs, rec_dtype, mem_records)

    def _spill_run(
        self, file: PagedFile, sorted_keys: np.ndarray, rec_dtype: np.dtype
    ) -> _SpillRun:
        """Wrap a freshly written run with its cut-planning metadata."""
        n = len(sorted_keys)
        if not self._parallel_spill:
            return _SpillRun(file, n)
        if self.cut_planning == "fence":
            from .fence import write_run_fence

            fence = write_run_fence(file, sorted_keys, rec_dtype.itemsize)
            return _SpillRun(file, n, keys=None, fence=fence)
        return _SpillRun(file, n, keys=sorted_keys)

    def _plan_cuts(self, group: list[_SpillRun], rec_dtype: np.dtype):
        """Fence-mode splitters and exact cuts for one cascade group.

        Splitters are sampled from the fences' per-page ``hi`` keys
        (every sample is a real record key, including each run's tail)
        and the cuts resolve with boundary-page planning reads on the
        parent device — identical positions to cutting the full key
        mirrors (:mod:`repro.storage.fence`).  Mirror mode returns
        ``(None, None)``: the sharded merge plans from the mirrors.
        """
        if self.cut_planning != "fence":
            return None, None
        from ..parallel.merge import sample_splitters
        from .fence import fenced_cut_positions

        splitters = sample_splitters(
            [run.fence.hi for run in group], self.merge_workers
        )
        cuts = [
            fenced_cut_positions(run.file, run.fence, splitters, rec_dtype)
            for run in group
        ]
        return splitters, cuts

    def _merge_spilled(
        self,
        runs: list[_SpillRun],
        rec_dtype: np.dtype,
        mem_records: int,
    ) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        parallel = self._parallel_spill and all(
            run.keys is not None or run.fence is not None for run in runs
        )
        # Cascade until one merge pass suffices.  The grouping — and
        # with it the SortReport — is the same for the serial and the
        # sharded cascade.
        while len(runs) > self._fan_in:
            self.report.merge_passes += 1
            next_runs: list[_SpillRun] = []
            for start in range(0, len(runs), self._fan_in):
                group = runs[start : start + self._fan_in]
                name = f"sort-merge-{len(next_runs)}"
                if parallel:
                    next_runs.append(
                        self._sharded_group_merge(
                            group, rec_dtype, mem_records, name
                        )
                    )
                else:
                    next_runs.append(
                        self._serial_group_merge(
                            group, rec_dtype, mem_records, name
                        )
                    )
            runs = next_runs
        self.report.merge_passes += 1
        if parallel and len(runs) > 1:
            # Parallel final pass: the per-partition merges stream
            # concurrently through read-only shards straight to the
            # consumer (no materialization), re-chunked to the exact
            # shapes the serial merge would have yielded.
            from ..parallel.spill import sharded_stream_merge

            splitters, cuts = self._plan_cuts(runs, rec_dtype)
            buffer_records = max(1, mem_records // (len(runs) + 1))
            return sharded_stream_merge(
                self.disk,
                [(run.file, run.n_records, run.keys) for run in runs],
                rec_dtype,
                n_partitions=self.merge_workers,
                buffer_records=buffer_records,
                pool_kind=self.pool_kind,
                engine=self.merge_engine,
                splitters=splitters,
                cuts=cuts,
            )
        return self._merge_runs(runs, rec_dtype, mem_records)

    def _serial_group_merge(
        self,
        group: list[_SpillRun],
        rec_dtype: np.dtype,
        mem_records: int,
        name: str,
    ) -> _SpillRun:
        """Stream-merge one cascade group into a new run (one domain)."""
        merged_file = PagedFile(self.disk, name=name)
        total = sum(run.n_records for run in group)
        out_page = 0
        remainder = b""
        for chunk_keys, chunk_values in self._merge_runs(
            group, rec_dtype, mem_records
        ):
            block = np.empty(len(chunk_keys), dtype=rec_dtype)
            block["k"] = chunk_keys
            block["v"] = chunk_values
            data = remainder + block.tobytes()
            whole = (len(data) // self.disk.page_size) * self.disk.page_size
            if whole:
                merged_file.write_stream(data[:whole], at_page=out_page)
                out_page += whole // self.disk.page_size
            remainder = data[whole:]
        if remainder:
            merged_file.write_stream(remainder, at_page=out_page)
        return _SpillRun(merged_file, total)

    def _sharded_group_merge(
        self,
        group: list[_SpillRun],
        rec_dtype: np.dtype,
        mem_records: int,
        name: str,
    ) -> _SpillRun:
        """Merge one cascade group on per-partition disk shards.

        The merged key mirror rides along for the next pass's cuts.
        """
        from ..parallel.spill import sharded_spill_merge

        # Each partition streams with the serial merge's buffer
        # geometry (one buffer per source run plus the output buffer);
        # aggregate transient memory is n_partitions times the serial
        # merge's buffers — the standard space-time trade of parallel
        # merging.  The I/O *plan* therefore depends on the worker
        # count only through the splitters.
        buffer_records = max(1, mem_records // (len(group) + 1))
        splitters, cuts = self._plan_cuts(group, rec_dtype)
        result = sharded_spill_merge(
            self.disk,
            [(run.file, run.n_records, run.keys) for run in group],
            rec_dtype,
            n_partitions=self.merge_workers,
            buffer_records=buffer_records,
            pool_kind=self.pool_kind,
            engine=self.merge_engine,
            splitters=splitters,
            cuts=cuts,
            collect="keys",
            out_name=name,
        )
        if self.cut_planning == "fence":
            # The merged keys exist transiently to fence the output run
            # for the next pass; the resident state between passes is
            # the zone map, not the mirror.
            from .fence import write_run_fence

            fence = write_run_fence(
                result.file, result.keys, rec_dtype.itemsize
            )
            return _SpillRun(
                result.file, result.n_records, keys=None, fence=fence
            )
        return _SpillRun(result.file, result.n_records, result.keys)

    def _merge_runs(
        self,
        runs: list[_SpillRun],
        rec_dtype: np.dtype,
        mem_records: int,
    ) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        buffer_records = max(1, mem_records // (len(runs) + 1))
        return merge_stream(
            self.merge_engine,
            [(run.file, run.n_records) for run in runs],
            rec_dtype,
            buffer_records,
        )

    # ------------------------------------------------------------------
    def sort_runs(
        self, runs: list[tuple[np.ndarray, np.ndarray]]
    ) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Merge pre-sorted runs into one globally sorted stream.

        ``runs`` are (keys, payloads) pairs, each internally sorted with
        a *stable* sort, whose concatenation in list order corresponds
        to the original input order.  Under those conditions the merged
        output — ties resolve in run order, then in within-run order —
        is bit-identical to :meth:`sort` on the unsorted concatenation.
        This is the entry point of the parallel bulk-loading pipeline:
        worker processes presort chunks, and the partition phase here is
        reduced to writing the runs out (or merging them in memory).
        """
        runs = [(np.asarray(k), np.asarray(p)) for k, p in runs]
        for k, p in runs:
            if len(k) != len(p):
                raise ValueError(f"{len(k)} keys vs {len(p)} payloads in run")
        runs = [run for run in runs if len(run[0])]
        if not runs:
            self.report = SortReport(n_runs=0)
            return iter(())
        rec_dtype = _record_dtype(*runs[0])
        n = sum(len(k) for k, _ in runs)
        self.report = SortReport(
            n_records=n, record_bytes=rec_dtype.itemsize, n_runs=len(runs)
        )
        mem_records = max(2, self.memory_bytes // rec_dtype.itemsize)
        if n <= mem_records:
            keys, payloads = self._merge_in_memory(runs)

            def chunks() -> Iterator[tuple[np.ndarray, np.ndarray]]:
                for i in range(0, n, mem_records):
                    yield keys[i : i + mem_records], payloads[i : i + mem_records]

            return chunks()
        self.report.spilled = True
        files: list[_SpillRun] = []
        for keys, payloads in runs:
            block = np.empty(len(keys), dtype=rec_dtype)
            block["k"] = keys
            block["v"] = payloads
            run = PagedFile(self.disk, name=f"sort-run-{len(files)}")
            run.write_stream(block.tobytes())
            files.append(self._spill_run(run, keys, rec_dtype))
        self.report.run_pages = sum(run.file.n_pages for run in files)
        return self._merge_spilled(files, rec_dtype, mem_records)

    def _merge_in_memory(
        self, runs: list[tuple[np.ndarray, np.ndarray]]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Merge resident presorted runs, in parallel when configured."""
        if self.merge_workers > 1 and len(runs) > 1:
            # Lazy import: repro.parallel pulls in the index layer.
            from ..parallel.merge import parallel_merge_runs

            return parallel_merge_runs(
                runs, workers=self.merge_workers, kind=self.pool_kind
            )
        return merge_presorted(runs)


def sort_to_arrays(
    sorter: ExternalSorter, keys: np.ndarray, payloads: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Run a full sort and concatenate the output (convenience helper)."""
    key_parts, pay_parts = [], []
    for k, v in sorter.sort(keys, payloads):
        key_parts.append(k)
        pay_parts.append(v)
    if not key_parts:
        return keys[:0], payloads[:0]
    return np.concatenate(key_parts), np.concatenate(pay_parts)
