"""External merge sort in the disk access model.

This is the bulk-loading engine of Coconut (paper Sec. 3.1): the
partition phase sorts memory-sized chunks and spills them as sorted
runs; the merge phase streams all runs through per-run input buffers
and yields records in globally sorted order.  When the input fits in
the memory budget no I/O is performed at all — the case the paper
highlights for non-materialized Coconut variants, whose summarizations
"in general fit in main memory".

The partition phase can also be fed from outside: ``sort_runs``
accepts chunk runs that were already stably sorted elsewhere — the
parallel summarization pipeline (:mod:`repro.parallel.summarize`)
presorts chunks on worker processes — and merges them into the exact
stream ``sort`` would have produced.

The merge phase is engine-pluggable (:mod:`repro.storage.merge`): the
default ``"blockwise"`` engine merges page-sized blocks with NumPy
galloping and is bit-identical — output stream, chunk shapes, and
simulated-I/O trace — to the ``"heapq"`` per-record reference, which
remains available as the correctness oracle.  When the merge happens
in memory (the runs fit the budget), ``merge_workers > 1`` additionally
range-partitions the key space and merges the disjoint partitions on a
worker pool (:func:`repro.parallel.merge.parallel_merge_runs`), again
with bit-identical output for any worker count.

Keys are fixed-width byte strings (NumPy ``S<k>`` arrays); NumPy sorts
them lexicographically, which for big-endian encoded invSAX words is
exactly z-order.  Payloads are arbitrary fixed-size rows (an int64 file
offset for secondary indexes, a whole float32 series for materialized
ones), so the I/O charged per record reflects what the index actually
moves through the disk.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from .disk import SimulatedDisk
from .merge import MERGE_ENGINES, merge_presorted, merge_stream
from .pager import PagedFile


@dataclass
class SortReport:
    """What the sort did, for construction-cost accounting."""

    n_records: int = 0
    record_bytes: int = 0
    n_runs: int = 1
    spilled: bool = False
    run_pages: int = 0
    merge_passes: int = 0


def _record_dtype(keys: np.ndarray, payloads: np.ndarray) -> np.dtype:
    if payloads.ndim == 1:
        return np.dtype([("k", keys.dtype), ("v", payloads.dtype)])
    return np.dtype([("k", keys.dtype), ("v", payloads.dtype, payloads.shape[1:])])


class ExternalSorter:
    """Sorts (key, payload) records under a main-memory budget.

    ``merge_engine`` selects the k-way merge implementation for spilled
    sorts (``"blockwise"`` — vectorized, the default — or ``"heapq"``,
    the per-record oracle); both are bit-identical in output and
    simulated I/O.  ``merge_workers > 1`` parallelizes the in-memory
    merge of presorted runs by key-range partitioning.  ``pool_kind``
    defaults to threads, unlike the summarization pipeline: merging is
    memory-bandwidth-bound NumPy work that releases the GIL, and a
    process pool would spend more time pickling whole runs across the
    boundary than merging them.
    """

    def __init__(
        self,
        disk: SimulatedDisk,
        memory_bytes: int,
        merge_engine: str = "blockwise",
        merge_workers: int = 1,
        pool_kind: str = "thread",
    ):
        if memory_bytes <= 0:
            raise ValueError(f"memory_bytes must be positive, got {memory_bytes}")
        if merge_engine not in MERGE_ENGINES:
            raise ValueError(
                f"merge_engine must be one of {MERGE_ENGINES}, got {merge_engine!r}"
            )
        self.disk = disk
        self.memory_bytes = memory_bytes
        self.merge_engine = merge_engine
        self.merge_workers = max(1, int(merge_workers))
        self.pool_kind = pool_kind
        self.report = SortReport()

    def sort(
        self, keys: np.ndarray, payloads: np.ndarray
    ) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield (keys, payloads) chunks in globally sorted key order.

        Ties are broken by input position (stable sort), which the
        bulk loaders rely on for deterministic layouts.
        """
        keys = np.asarray(keys)
        payloads = np.asarray(payloads)
        if len(keys) != len(payloads):
            raise ValueError(
                f"{len(keys)} keys vs {len(payloads)} payloads"
            )
        rec_dtype = _record_dtype(keys, payloads)
        n = len(keys)
        self.report = SortReport(n_records=n, record_bytes=rec_dtype.itemsize)
        if n == 0:
            self.report.n_runs = 0
            return iter(())
        mem_records = max(2, self.memory_bytes // rec_dtype.itemsize)
        if n <= mem_records:
            return self._sort_in_memory(keys, payloads, mem_records)
        return self._sort_spilled(keys, payloads, rec_dtype, mem_records)

    # ------------------------------------------------------------------
    def _sort_in_memory(
        self, keys: np.ndarray, payloads: np.ndarray, chunk: int
    ) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        order = np.argsort(keys, kind="stable")
        skeys, spay = keys[order], payloads[order]

        def chunks() -> Iterator[tuple[np.ndarray, np.ndarray]]:
            for i in range(0, len(skeys), chunk):
                yield skeys[i : i + chunk], spay[i : i + chunk]

        return chunks()

    # ------------------------------------------------------------------
    @property
    def _fan_in(self) -> int:
        """Maximum runs merged at once: one multi-page buffer per run.

        Real external sorters bound merge fan-in by the number of
        input buffers main memory can hold; exceeding it degrades every
        read to a seek.  When there are more runs, we cascade: merge
        groups of ``fan_in`` runs into longer runs, then repeat.
        """
        return max(2, self.memory_bytes // (self.disk.page_size * 2))

    def _sort_spilled(
        self,
        keys: np.ndarray,
        payloads: np.ndarray,
        rec_dtype: np.dtype,
        mem_records: int,
    ) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        n = len(keys)
        runs: list[tuple[PagedFile, int]] = []
        for start in range(0, n, mem_records):
            stop = min(start + mem_records, n)
            order = np.argsort(keys[start:stop], kind="stable")
            block = np.empty(stop - start, dtype=rec_dtype)
            block["k"] = keys[start:stop][order]
            block["v"] = payloads[start:stop][order]
            run = PagedFile(self.disk, name=f"sort-run-{len(runs)}")
            run.write_stream(block.tobytes())
            runs.append((run, stop - start))
        self.report.n_runs = len(runs)
        self.report.spilled = True
        self.report.run_pages = sum(run.n_pages for run, _ in runs)
        return self._merge_spilled(runs, rec_dtype, mem_records)

    def _merge_spilled(
        self,
        runs: list[tuple[PagedFile, int]],
        rec_dtype: np.dtype,
        mem_records: int,
    ) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        # Cascade until one merge pass suffices.
        while len(runs) > self._fan_in:
            self.report.merge_passes += 1
            next_runs: list[tuple[PagedFile, int]] = []
            for start in range(0, len(runs), self._fan_in):
                group = runs[start : start + self._fan_in]
                merged_file = PagedFile(
                    self.disk, name=f"sort-merge-{len(next_runs)}"
                )
                total = sum(count for _, count in group)
                out_page = 0
                remainder = b""
                for chunk_keys, chunk_values in self._merge_runs(
                    group, rec_dtype, mem_records
                ):
                    block = np.empty(len(chunk_keys), dtype=rec_dtype)
                    block["k"] = chunk_keys
                    block["v"] = chunk_values
                    data = remainder + block.tobytes()
                    whole = (len(data) // self.disk.page_size) * self.disk.page_size
                    if whole:
                        merged_file.write_stream(data[:whole], at_page=out_page)
                        out_page += whole // self.disk.page_size
                    remainder = data[whole:]
                if remainder:
                    merged_file.write_stream(remainder, at_page=out_page)
                next_runs.append((merged_file, total))
            runs = next_runs
        self.report.merge_passes += 1
        return self._merge_runs(runs, rec_dtype, mem_records)

    def _merge_runs(
        self,
        runs: list[tuple[PagedFile, int]],
        rec_dtype: np.dtype,
        mem_records: int,
    ) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        buffer_records = max(1, mem_records // (len(runs) + 1))
        return merge_stream(self.merge_engine, runs, rec_dtype, buffer_records)

    # ------------------------------------------------------------------
    def sort_runs(
        self, runs: list[tuple[np.ndarray, np.ndarray]]
    ) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Merge pre-sorted runs into one globally sorted stream.

        ``runs`` are (keys, payloads) pairs, each internally sorted with
        a *stable* sort, whose concatenation in list order corresponds
        to the original input order.  Under those conditions the merged
        output — ties resolve in run order, then in within-run order —
        is bit-identical to :meth:`sort` on the unsorted concatenation.
        This is the entry point of the parallel bulk-loading pipeline:
        worker processes presort chunks, and the partition phase here is
        reduced to writing the runs out (or merging them in memory).
        """
        runs = [(np.asarray(k), np.asarray(p)) for k, p in runs]
        for k, p in runs:
            if len(k) != len(p):
                raise ValueError(f"{len(k)} keys vs {len(p)} payloads in run")
        runs = [run for run in runs if len(run[0])]
        if not runs:
            self.report = SortReport(n_runs=0)
            return iter(())
        rec_dtype = _record_dtype(*runs[0])
        n = sum(len(k) for k, _ in runs)
        self.report = SortReport(
            n_records=n, record_bytes=rec_dtype.itemsize, n_runs=len(runs)
        )
        mem_records = max(2, self.memory_bytes // rec_dtype.itemsize)
        if n <= mem_records:
            keys, payloads = self._merge_in_memory(runs)

            def chunks() -> Iterator[tuple[np.ndarray, np.ndarray]]:
                for i in range(0, n, mem_records):
                    yield keys[i : i + mem_records], payloads[i : i + mem_records]

            return chunks()
        self.report.spilled = True
        files: list[tuple[PagedFile, int]] = []
        for keys, payloads in runs:
            block = np.empty(len(keys), dtype=rec_dtype)
            block["k"] = keys
            block["v"] = payloads
            run = PagedFile(self.disk, name=f"sort-run-{len(files)}")
            run.write_stream(block.tobytes())
            files.append((run, len(keys)))
        self.report.run_pages = sum(run.n_pages for run, _ in files)
        return self._merge_spilled(files, rec_dtype, mem_records)

    def _merge_in_memory(
        self, runs: list[tuple[np.ndarray, np.ndarray]]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Merge resident presorted runs, in parallel when configured."""
        if self.merge_workers > 1 and len(runs) > 1:
            # Lazy import: repro.parallel pulls in the index layer.
            from ..parallel.merge import parallel_merge_runs

            return parallel_merge_runs(
                runs, workers=self.merge_workers, kind=self.pool_kind
            )
        return merge_presorted(runs)


def sort_to_arrays(
    sorter: ExternalSorter, keys: np.ndarray, payloads: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Run a full sort and concatenate the output (convenience helper)."""
    key_parts, pay_parts = [], []
    for k, v in sorter.sort(keys, payloads):
        key_parts.append(k)
        pay_parts.append(v)
    if not key_parts:
        return keys[:0], payloads[:0]
    return np.concatenate(key_parts), np.concatenate(pay_parts)
