"""A simulated page-addressed block device with I/O classification.

The device exposes a flat physical address space of fixed-size pages.
Every read or write is classified as *sequential* (the accessed page
immediately follows the previously accessed page, so the disk head does
not move) or *random* (anything else).  Counters live in
:class:`repro.storage.cost.DiskStats` and are converted to simulated
time by a :class:`repro.storage.cost.CostModel`.

Indexes built bottom-up allocate their pages in contiguous extents and
touch them in order, so their I/O is counted as sequential — the
contiguity property the Coconut paper establishes.  Indexes built by
top-down insertion allocate leaves at split time, scattering them across
the address space, so their I/O is counted as random.
"""

from __future__ import annotations

from .cost import CostModel, DiskStats


class PageError(Exception):
    """Raised on invalid page accesses (unallocated page, oversized data)."""


class SimulatedDisk:
    """A block device simulation that counts classified page I/Os.

    Parameters
    ----------
    page_size:
        Bytes per page.  All I/O accounting is in whole pages; writing
        fewer bytes than a page still transfers one page.
    cost_model:
        Converts access counts to simulated milliseconds.
    """

    def __init__(self, page_size: int = 8192, cost_model: CostModel | None = None):
        if page_size <= 0:
            raise ValueError(f"page_size must be positive, got {page_size}")
        self.page_size = page_size
        self.cost_model = cost_model or CostModel()
        self._pages: dict[int, bytes] = {}
        self._next_page = 0
        self._head = -2  # physical position of the disk head; -2 = parked
        self._stats = DiskStats()

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def allocate(self, n_pages: int = 1) -> int:
        """Reserve ``n_pages`` physically contiguous pages.

        Returns the id of the first page.  Allocation itself performs no
        I/O; pages contain empty bytes until written.
        """
        if n_pages <= 0:
            raise ValueError(f"n_pages must be positive, got {n_pages}")
        first = self._next_page
        self._next_page += n_pages
        return first

    @property
    def pages_allocated(self) -> int:
        return self._next_page

    @property
    def pages_written(self) -> int:
        return len(self._pages)

    # ------------------------------------------------------------------
    # I/O
    # ------------------------------------------------------------------
    def write_page(self, page_id: int, data: bytes) -> None:
        """Write one page, classifying the access by head position."""
        self._check_page(page_id)
        if len(data) > self.page_size:
            raise PageError(
                f"data of {len(data)} bytes exceeds page size {self.page_size}"
            )
        if page_id == self._head + 1:
            self._stats.sequential_writes += 1
        else:
            self._stats.random_writes += 1
        self._stats.bytes_written += self.page_size
        self._pages[page_id] = bytes(data)
        self._head = page_id

    def read_page(self, page_id: int) -> bytes:
        """Read one page, classifying the access by head position."""
        self._check_page(page_id)
        if page_id == self._head + 1:
            self._stats.sequential_reads += 1
        else:
            self._stats.random_reads += 1
        self._stats.bytes_read += self.page_size
        self._head = page_id
        return self._pages.get(page_id, b"")

    def read_run(self, first_page: int, n_pages: int) -> list[bytes]:
        """Read ``n_pages`` consecutive pages (one seek, then streaming)."""
        return [self.read_page(first_page + i) for i in range(n_pages)]

    def write_run(self, first_page: int, pages: list[bytes]) -> None:
        """Write consecutive pages (one seek, then streaming)."""
        for i, data in enumerate(pages):
            self.write_page(first_page + i, data)

    def _check_page(self, page_id: int) -> None:
        if not 0 <= page_id < self._next_page:
            raise PageError(
                f"page {page_id} is not allocated (allocated: {self._next_page})"
            )

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    @property
    def stats(self) -> DiskStats:
        """Live counters (mutating object — use :meth:`snapshot` to diff)."""
        return self._stats

    def snapshot(self) -> DiskStats:
        """An immutable copy of the current counters."""
        return self._stats.copy()

    def stats_since(self, snapshot: DiskStats) -> DiskStats:
        """Counters accumulated since ``snapshot`` was taken."""
        return self._stats - snapshot

    def io_ms_since(self, snapshot: DiskStats) -> float:
        """Simulated I/O milliseconds since ``snapshot``."""
        return self.cost_model.io_ms(self.stats_since(snapshot))

    def reset_stats(self) -> None:
        self._stats = DiskStats()

    def park_head(self) -> None:
        """Move the head to a neutral position (next access is random)."""
        self._head = -2

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SimulatedDisk(page_size={self.page_size}, "
            f"allocated={self._next_page}, written={len(self._pages)})"
        )
