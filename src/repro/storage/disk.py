"""A simulated page-addressed block device with I/O classification.

The device exposes a flat physical address space of fixed-size pages.
Every read or write is classified as *sequential* (the accessed page
immediately follows the previously accessed page, so the disk head does
not move) or *random* (anything else).  Counters live in
:class:`repro.storage.cost.DiskStats` and are converted to simulated
time by a :class:`repro.storage.cost.CostModel`.

Indexes built bottom-up allocate their pages in contiguous extents and
touch them in order, so their I/O is counted as sequential — the
contiguity property the Coconut paper establishes.  Indexes built by
top-down insertion allocate leaves at split time, scattering them across
the address space, so their I/O is counted as random.

Page stores
-----------
Two page stores implement the same contract:

* ``store="arena"`` (the default) keeps pages in **contiguous arenas,
  one per allocation extent**: every ``allocate`` call reserves one
  fixed-size ``bytearray`` holding its pages back to back.  Reads
  return zero-copy read-only ``memoryview`` slices of the arena —
  :meth:`read_run_bytes` of a run inside one arena is a single slice,
  no join, no copy — and :meth:`write_run_bytes` splices a whole run
  with one buffer assignment.  Arenas are fixed-size, so views stay
  valid for the life of the device (growing the address space adds new
  arenas, it never reallocates old ones).
* ``store="dict"`` is the per-page ``dict[int, bytes]`` store the
  arena replaced, retained as the *copy-level oracle*: identical page
  contents, counters, head movement and (optional) access traces for
  every access sequence — only the allocation/copy profile differs.
  ``benchmarks/bench_arena.py`` pins the equivalence per cell.

Both stores share one read semantics: **a page read always returns
exactly ``page_size`` bytes**.  Pages never written — and the tail of
pages written short — read as zeros, on ``read_page`` and
``read_run_bytes`` alike.  (The seed's dict store returned the raw
short bytes from ``read_page`` and padded only in ``read_run_bytes``;
consumers had to re-pad, and a never-written page read as ``b""``.)

Zero-copy view lifetime
-----------------------
Views returned by an arena device alias live storage: they observe
later writes to the same pages, and they pin the arena's memory while
referenced.  The safe lifetime rules are documented in
``docs/storage.md``; in short, a view taken from a :class:`DiskShard`
must not outlive the shard's session, and a consumer that needs a
stable private copy (e.g. to mutate) must copy explicitly — everything
inside this package already does.

Access traces
-------------
``trace=True`` records every classified access as ``(op, first_page,
n_pages)`` tuples (``op`` is ``"r"`` or ``"w"``) in :attr:`trace`.
Bulk accesses record one tuple — exactly the granularity the
classification happens at — so two devices driven by the same plan
produce bit-identical traces regardless of their page store.  Shards
of a tracing parent trace privately; detach appends their traces to
the parent in partition order, keeping the reconciled trace a pure
function of the per-shard plans.

Sharding
--------
A :class:`SimulatedDisk` is a single I/O domain: one head, one set of
counters, no concurrency.  Parallel consumers — the range-partitioned
spilled-run merge, LSM compaction — instead open a :class:`ShardedDisk`
session, which fences the parent device and hands each worker a
:class:`DiskShard`: a private I/O domain with

* a *writable extent* — a contiguous, pre-allocated page range that no
  other shard may touch;
* read-only access to every page the parent held when the session was
  attached (sources written by sibling shards are invisible — snapshot
  isolation);
* its own head position and its own :class:`DiskStats`.

In arena mode the shard's private store is a **private arena covering
its extent**, seeded with the parent's extent content at attach;
detach reconciles by splicing whole arenas back into the parent in
partition order — one buffer assignment per shard, never a per-page
loop.

Because classification depends only on a shard's *own* access sequence,
the sequential/random split of a parallel run is independent of thread
scheduling: executing the same per-shard plans inline, one shard after
another, reproduces every counter bit for bit — the *serial replay
oracle* the equivalence suite pins against.  On detach the shards are
reconciled into the parent deterministically, in partition order:
pages merge into the parent's store, stats add up shard by shard, and
the parent head is parked so the first post-session access classifies
as random no matter how the pool interleaved.
"""

from __future__ import annotations

from bisect import bisect_right

from .cost import CostModel, DiskStats

#: Page store kinds accepted by :class:`SimulatedDisk`.
PAGE_STORES = ("arena", "dict")


class PageError(Exception):
    """Raised on invalid page accesses (unallocated page, oversized data)."""


class _ExtentArenas:
    """Contiguous page storage: one ``bytearray`` arena per extent run.

    Arenas are appended in ascending page order (allocation is
    monotonic).  A freshly allocated extent that is physically adjacent
    to the tail arena is *coalesced* into it — grown in place — so
    incrementally built files stay single-arena and their runs stay on
    the zero-copy path of :meth:`run_view`.  Growing a ``bytearray``
    with exported memoryviews raises ``BufferError``, so coalescing
    backs off to a separate arena exactly when a grow could invalidate
    a live view; an arena with no exports never moves data (``extend``
    preserves existing offsets), and once created an arena is never
    removed, so exported views stay valid for the life of the
    container.  All views handed out are read-only; mutation goes
    through :meth:`splice`.
    """

    __slots__ = ("page_size", "starts", "arenas")

    def __init__(self, page_size: int):
        self.page_size = page_size
        self.starts: list[int] = []  # first page id of each arena
        self.arenas: list[bytearray] = []

    def add(self, first_page: int, n_pages: int) -> None:
        """Back a freshly allocated extent with zero-filled storage."""
        grow = n_pages * self.page_size
        if self.arenas:
            tail_pages = len(self.arenas[-1]) // self.page_size
            if first_page == self.starts[-1] + tail_pages:
                try:
                    self.arenas[-1].extend(bytes(grow))
                    return
                except BufferError:
                    pass  # live exports pin the tail: new arena instead
        self.starts.append(first_page)
        self.arenas.append(bytearray(grow))

    def _locate(self, page_id: int) -> int:
        """Index of the arena containing ``page_id`` (must be backed)."""
        return bisect_right(self.starts, page_id) - 1

    def page(self, page_id: int) -> memoryview:
        """Zero-copy read-only view of one full page."""
        i = self._locate(page_id)
        at = (page_id - self.starts[i]) * self.page_size
        return memoryview(self.arenas[i]).toreadonly()[at : at + self.page_size]

    def run_view(self, first_page: int, n_pages: int):
        """A contiguous run as one zero-copy view when it fits one arena.

        Runs spanning an arena boundary (physically adjacent pages from
        separate ``allocate`` calls, e.g. an incrementally grown file)
        fall back to a joined ``bytes`` copy — correctness first, the
        zero-copy fast path where allocation made it possible.
        """
        ps = self.page_size
        i = self._locate(first_page)
        at = (first_page - self.starts[i]) * ps
        want = n_pages * ps
        arena = self.arenas[i]
        if at + want <= len(arena):
            return memoryview(arena).toreadonly()[at : at + want]
        parts = []
        while want > 0:
            arena = self.arenas[i]
            take = min(want, len(arena) - at)
            parts.append(memoryview(arena)[at : at + take])
            want -= take
            at = 0
            i += 1
        return b"".join(parts)

    def splice(self, first_page: int, data, n_bytes: int) -> None:
        """Write ``data`` at ``first_page``, zero-filling up to ``n_bytes``.

        One buffer assignment per arena touched (one, for runs inside a
        single arena) — the write-side twin of :meth:`run_view`.
        """
        view = memoryview(data)
        fill = len(view)
        i = self._locate(first_page)
        at = (first_page - self.starts[i]) * self.page_size
        pos = 0
        while pos < n_bytes:
            # Assign through a memoryview of the arena: memoryview-to-
            # memoryview slice assignment copies buffer to buffer with
            # no intermediate bytes object (bytearray slice assignment
            # from a view would materialize one).
            arena = memoryview(self.arenas[i])
            take = min(n_bytes - pos, len(arena) - at)
            src_take = min(take, max(0, fill - pos))
            if src_take:
                arena[at : at + src_take] = view[pos : pos + src_take]
            if src_take < take:
                arena[at + src_take : at + take] = bytes(take - src_take)
            pos += take
            at = 0
            i += 1

    def copy_out(self, first_page: int, n_pages: int) -> bytearray:
        """A private copy of a page range (shard-arena seeding)."""
        run = self.run_view(first_page, n_pages)
        return bytearray(run)


class _PagedDevice:
    """Accounting and streaming helpers shared by disks and shards.

    Subclasses provide ``page_size``, ``cost_model``, ``read_page``,
    ``write_page`` and ``read_run_bytes``; this base owns the head
    position (``None`` while parked — the next access is always
    random), the live counters and the optional access trace.
    """

    page_size: int
    cost_model: CostModel

    def _init_accounting(self, trace: bool = False) -> None:
        self._head: int | None = None
        self._stats = DiskStats()
        self._trace: list[tuple[str, int, int]] | None = [] if trace else None

    # ------------------------------------------------------------------
    # Classification
    # ------------------------------------------------------------------
    def _count_read(self, page_id: int) -> None:
        if self._head is not None and page_id == self._head + 1:
            self._stats.sequential_reads += 1
        else:
            self._stats.random_reads += 1
        self._stats.bytes_read += self.page_size
        self._head = page_id
        if self._trace is not None:
            self._trace.append(("r", page_id, 1))

    def _count_write(self, page_id: int) -> None:
        if self._head is not None and page_id == self._head + 1:
            self._stats.sequential_writes += 1
        else:
            self._stats.random_writes += 1
        self._stats.bytes_written += self.page_size
        self._head = page_id
        if self._trace is not None:
            self._trace.append(("w", page_id, 1))

    # ------------------------------------------------------------------
    # Bulk classification (the bytes-level fast path)
    # ------------------------------------------------------------------
    def _count_read_run(self, first_page: int, n_pages: int) -> None:
        """Classify ``n_pages`` consecutive reads in one step.

        Bit-identical to calling :meth:`_count_read` page by page: the
        first access is sequential iff it lands right after the head,
        every following access within the run is sequential by
        construction, and the head ends on the run's last page.
        """
        if self._head is not None and first_page == self._head + 1:
            self._stats.sequential_reads += n_pages
        else:
            self._stats.random_reads += 1
            self._stats.sequential_reads += n_pages - 1
        self._stats.bytes_read += n_pages * self.page_size
        self._head = first_page + n_pages - 1
        if self._trace is not None:
            self._trace.append(("r", first_page, n_pages))

    def _count_write_run(self, first_page: int, n_pages: int) -> None:
        """Write-side twin of :meth:`_count_read_run`."""
        if self._head is not None and first_page == self._head + 1:
            self._stats.sequential_writes += n_pages
        else:
            self._stats.random_writes += 1
            self._stats.sequential_writes += n_pages - 1
        self._stats.bytes_written += n_pages * self.page_size
        self._head = first_page + n_pages - 1
        if self._trace is not None:
            self._trace.append(("w", first_page, n_pages))

    # ------------------------------------------------------------------
    # Streaming convenience
    # ------------------------------------------------------------------
    def read_run(self, first_page: int, n_pages: int) -> list:
        """Read ``n_pages`` consecutive pages (one seek, then streaming).

        Rides the bytes-level fast path: one :meth:`read_run_bytes`
        call sliced at page boundaries, so the legacy list API gets the
        arena's zero-copy reads (the slices are sub-views of the same
        buffer) and the same bulk-classified counters.
        """
        if n_pages <= 0:
            return []
        blob = self.read_run_bytes(first_page, n_pages)
        view = blob if isinstance(blob, memoryview) else memoryview(blob)
        ps = self.page_size
        return [view[i * ps : (i + 1) * ps] for i in range(n_pages)]

    def write_run(self, first_page: int, pages: list) -> None:
        """Write consecutive pages (one seek, then streaming)."""
        for i, data in enumerate(pages):
            self.write_page(first_page + i, data)

    def _check_run_payload(self, data, n_pages: int) -> None:
        if len(data) > n_pages * self.page_size:
            raise PageError(
                f"data of {len(data)} bytes exceeds {n_pages} pages of "
                f"{self.page_size} bytes"
            )

    def _store_run_pages(
        self, pages: "dict[int, bytes]", first_page: int, data, n_pages: int
    ) -> None:
        """Dict-store bulk write: one short-sliced bytes object per page.

        Shared by the disk and shard dict paths so their stored layout
        (and with it the cross-store oracle) cannot drift apart.
        """
        view = memoryview(data)
        page_size = self.page_size
        for i in range(n_pages):
            pages[first_page + i] = bytes(
                view[i * page_size : (i + 1) * page_size]
            )

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    @property
    def stats(self) -> DiskStats:
        """Live counters (mutating object — use :meth:`snapshot` to diff)."""
        return self._stats

    @property
    def trace(self) -> "list[tuple[str, int, int]] | None":
        """Recorded accesses (``None`` unless built with ``trace=True``)."""
        return self._trace

    def snapshot(self) -> DiskStats:
        """An immutable copy of the current counters."""
        return self._stats.copy()

    def stats_since(self, snapshot: DiskStats) -> DiskStats:
        """Counters accumulated since ``snapshot`` was taken."""
        return self._stats - snapshot

    def io_ms_since(self, snapshot: DiskStats) -> float:
        """Simulated I/O milliseconds since ``snapshot``."""
        return self.cost_model.io_ms(self.stats_since(snapshot))

    def reset_stats(self) -> None:
        self._stats = DiskStats()
        if self._trace is not None:
            self._trace = []

    @property
    def head_position(self) -> int | None:
        """Physical page under the head, or ``None`` while parked."""
        return self._head

    def park_head(self) -> None:
        """Park the head: the next access, wherever it lands, is random.

        Parking is idempotent and deterministic — there is no sentinel
        page id that a later access could accidentally be "adjacent" to,
        so interleaved pools can never perturb a parked device's next
        classification.
        """
        self._head = None


class SimulatedDisk(_PagedDevice):
    """A block device simulation that counts classified page I/Os.

    Parameters
    ----------
    page_size:
        Bytes per page.  All I/O accounting is in whole pages; writing
        fewer bytes than a page still transfers one page.
    cost_model:
        Converts access counts to simulated milliseconds.
    store:
        ``"arena"`` (default) for contiguous per-extent arenas with
        zero-copy reads, ``"dict"`` for the per-page copy-level oracle.
    trace:
        Record every classified access in :attr:`trace`.
    integrity:
        Attach a :class:`repro.storage.integrity.ChecksumMap` sidecar
        from page zero.  Consumers (``PagedFile``, ``BufferPool``, the
        spill ``_ExtentWriter``) record intended payloads into it at
        write time; ``verified_reads`` and the ``Scrubber`` check
        against it.  Off by default: with no sidecar every recording
        hook is a single failed attribute lookup.
    """

    def __init__(
        self,
        page_size: int = 8192,
        cost_model: CostModel | None = None,
        store: str = "arena",
        trace: bool = False,
        integrity: bool = False,
    ):
        if page_size <= 0:
            raise ValueError(f"page_size must be positive, got {page_size}")
        if store not in PAGE_STORES:
            raise ValueError(f"store must be one of {PAGE_STORES}, got {store!r}")
        self.page_size = page_size
        self.cost_model = cost_model or CostModel()
        self.store = store
        self._pages: dict[int, bytes] = {}
        self._arenas = _ExtentArenas(page_size)
        self._written: set[int] = set()
        self._next_page = 0
        self._shard_session: "ShardedDisk | None" = None
        self.checksums = None
        self._init_accounting(trace=trace)
        if integrity:
            self.enable_integrity()

    def enable_integrity(self):
        """Attach (or return) the CRC sidecar for this device.

        Enabling on a disk that already holds data *blesses* the
        current content: every written page's present bytes are
        recorded as the expectation, exactly like the initial
        verification pass a real scrubber runs when checksumming is
        turned on over an existing volume.
        """
        if self.checksums is None:
            from .integrity import ChecksumMap

            self.checksums = ChecksumMap(self.page_size)
            for page_id in self._written if self.store == "arena" else self._pages:
                self.checksums.record_page(page_id, self.page_view(page_id))
        return self.checksums

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def allocate(self, n_pages: int = 1) -> int:
        """Reserve ``n_pages`` physically contiguous pages.

        Returns the id of the first page.  Allocation itself performs
        no I/O; pages read as zeros until written.  In arena mode each
        allocation is backed by one contiguous arena, so runs inside it
        stream as single zero-copy views.
        """
        if n_pages <= 0:
            raise ValueError(f"n_pages must be positive, got {n_pages}")
        self._check_unsharded("allocate")
        first = self._next_page
        self._next_page += n_pages
        if self.store == "arena":
            self._arenas.add(first, n_pages)
        return first

    @property
    def pages_allocated(self) -> int:
        return self._next_page

    @property
    def pages_written(self) -> int:
        if self.store == "arena":
            return len(self._written)
        return len(self._pages)

    @property
    def sharded(self) -> bool:
        """Whether a :class:`ShardedDisk` session is currently attached."""
        return self._shard_session is not None

    # ------------------------------------------------------------------
    # I/O
    # ------------------------------------------------------------------
    def write_page(self, page_id: int, data) -> None:
        """Write one page, classifying the access by head position.

        ``data`` (bytes or any buffer) may be shorter than a page; the
        tail reads back as zeros either way.
        """
        self._check_unsharded("write_page")
        self._check_page(page_id)
        if len(data) > self.page_size:
            raise PageError(
                f"data of {len(data)} bytes exceeds page size {self.page_size}"
            )
        self._count_write(page_id)
        if self.store == "arena":
            self._arenas.splice(page_id, data, self.page_size)
            self._written.add(page_id)
        else:
            self._pages[page_id] = bytes(data)

    def read_page(self, page_id: int):
        """Read one full page, classifying the access by head position.

        Always returns exactly ``page_size`` bytes; never-written pages
        (and the tail of short writes) read as zeros.  Arena stores
        return a zero-copy read-only ``memoryview``.
        """
        self._check_unsharded("read_page")
        self._check_page(page_id)
        self._count_read(page_id)
        if self.store == "arena":
            return self._arenas.page(page_id)
        return self._pages.get(page_id, b"").ljust(self.page_size, b"\x00")

    # ------------------------------------------------------------------
    # Bytes-level streaming (whole-run I/O without per-page dispatch)
    # ------------------------------------------------------------------
    def read_run_bytes(self, first_page: int, n_pages: int):
        """Read a physically contiguous run as one padded byte stream.

        Returns exactly ``n_pages * page_size`` bytes (short pages are
        zero-padded).  Classification, counters and the final head
        position are bit-identical to ``n_pages`` :meth:`read_page`
        calls — the accounting happens in one bulk step.  Arena stores
        return a zero-copy read-only ``memoryview`` when the run lies
        within one allocation extent — the common case for bulk-built
        files — which is what lets :meth:`repro.storage.pager.
        PagedFile.read_stream` hand whole extents upward without a
        single copy.
        """
        if n_pages <= 0:
            return b""
        self._check_unsharded("read_page")
        self._check_page(first_page)
        self._check_page(first_page + n_pages - 1)
        self._count_read_run(first_page, n_pages)
        if self.store == "arena":
            return self._arenas.run_view(first_page, n_pages)
        pages, page_size = self._pages, self.page_size
        return b"".join(
            pages.get(p, b"").ljust(page_size, b"\x00")
            for p in range(first_page, first_page + n_pages)
        )

    def write_run_bytes(self, first_page: int, data, n_pages: int) -> None:
        """Write one byte stream across a physically contiguous run.

        ``data`` (bytes or memoryview) is laid out back to back; bytes
        past ``len(data)`` up to the run's end read as zeros, exactly
        as the per-page path behaves.  Accounting is bit-identical to
        ``n_pages`` :meth:`write_page` calls.  Arena stores splice the
        whole run with one buffer assignment.
        """
        if n_pages <= 0:
            return
        self._check_unsharded("write_page")
        self._check_page(first_page)
        self._check_page(first_page + n_pages - 1)
        self._check_run_payload(data, n_pages)
        self._count_write_run(first_page, n_pages)
        if self.store == "arena":
            self._arenas.splice(first_page, data, n_pages * self.page_size)
            self._written.update(range(first_page, first_page + n_pages))
            return
        self._store_run_pages(self._pages, first_page, data, n_pages)

    # ------------------------------------------------------------------
    # Diagnostics (no I/O accounting)
    # ------------------------------------------------------------------
    def page_view(self, page_id: int):
        """A full zero-padded page without touching head or counters.

        Zero-copy in arena mode; used by :class:`repro.storage.
        bufferpool.BufferPool` to admit views instead of copies, and by
        the equivalence suites to compare stores.
        """
        self._check_page(page_id)
        if self.store == "arena":
            return self._arenas.page(page_id)
        return self._pages.get(page_id, b"").ljust(self.page_size, b"\x00")

    def dump_pages(self) -> "dict[int, bytes]":
        """Written pages as ``{page_id: padded bytes}`` (diagnostics).

        Comparable across stores: the same op sequence on an arena and
        a dict device dumps identically.
        """
        written = self._written if self.store == "arena" else self._pages
        return {p: bytes(self.page_view(p)) for p in sorted(written)}

    def _check_page(self, page_id: int) -> None:
        if not 0 <= page_id < self._next_page:
            raise PageError(
                f"page {page_id} is not allocated (allocated: {self._next_page})"
            )

    def _check_unsharded(self, operation: str) -> None:
        if self._shard_session is not None:
            raise PageError(
                f"cannot {operation} while a ShardedDisk session is attached; "
                "route I/O through the shards and detach first"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SimulatedDisk(page_size={self.page_size}, store={self.store!r}, "
            f"allocated={self._next_page}, written={self.pages_written})"
        )


class DiskShard(_PagedDevice):
    """A private I/O domain over a reserved extent of a parent disk.

    Writes land in a shard-private store restricted to the shard's
    writable extent; reads prefer the private store and fall back to the
    parent's pages as they stood when the session attached (snapshot
    isolation — a sibling shard's concurrent writes are invisible).
    Head position and :class:`DiskStats` are private, so every access
    classification depends only on this shard's own sequence, never on
    how a pool interleaves shards.

    In arena mode the private store is one contiguous arena covering
    the extent, seeded with the parent's extent content at attach, so
    extent reads are zero-copy views and detach splices the whole arena
    back in one buffer assignment.

    Shards are created by :class:`ShardedDisk`, not directly.
    """

    def __init__(
        self,
        parent: SimulatedDisk,
        first_page: int,
        n_pages: int,
        shard_id: int,
        name: str = "",
    ):
        self.parent = parent
        self.page_size = parent.page_size
        self.cost_model = parent.cost_model
        self.store = parent.store
        self.first_page = first_page
        self.extent_pages = n_pages
        self.shard_id = shard_id
        self.name = name or f"shard-{shard_id}"
        self._readable_below = parent.pages_allocated
        self._next_page = first_page
        self._pages: dict[int, bytes] = {}
        self._written: set[int] = set()
        # The private store is a single-extent _ExtentArenas covering
        # the writable range — the same arena mechanics as the parent,
        # in one place.  Seeded with the parent's extent content so
        # unwritten pages read (and reconcile) as the snapshot held.
        self._arenas = _ExtentArenas(self.page_size)
        if self.store == "arena" and n_pages:
            self._arenas.starts.append(first_page)
            if parent._written.isdisjoint(range(first_page, first_page + n_pages)):
                # Nothing written in the extent yet: zeros, no copy.
                self._arenas.arenas.append(bytearray(n_pages * self.page_size))
            else:
                self._arenas.arenas.append(
                    parent._arenas.copy_out(first_page, n_pages)
                )
        self._attached = True
        # Session-private checksum sidecar: records made through this
        # shard land here (lookups fall through to the parent chain)
        # and reconcile into the parent map at detach, exactly like the
        # pages; an aborted session drops them with the pages.
        self.checksums = (
            parent.checksums.child() if parent.checksums is not None else None
        )
        self._init_accounting(trace=parent._trace is not None)

    # ------------------------------------------------------------------
    @property
    def attached(self) -> bool:
        return self._attached

    @property
    def pages_allocated(self) -> int:
        return self._next_page - self.first_page

    @property
    def pages_written(self) -> int:
        if self.store == "arena":
            return len(self._written)
        return len(self._pages)

    def allocate(self, n_pages: int = 1) -> int:
        """Carve ``n_pages`` from the shard's extent (no parent call)."""
        if n_pages <= 0:
            raise ValueError(f"n_pages must be positive, got {n_pages}")
        self._check_attached()
        if self._next_page + n_pages > self.first_page + self.extent_pages:
            raise PageError(
                f"{self.name}: extent of {self.extent_pages} pages exhausted"
            )
        first = self._next_page
        self._next_page += n_pages
        return first

    # ------------------------------------------------------------------
    def _in_extent(self, page_id: int) -> bool:
        return self.first_page <= page_id < self.first_page + self.extent_pages

    def write_page(self, page_id: int, data) -> None:
        """Write within the shard's extent, classified by its own head."""
        self._check_attached()
        if not self._in_extent(page_id):
            raise PageError(
                f"{self.name}: page {page_id} outside writable extent "
                f"[{self.first_page}, {self.first_page + self.extent_pages})"
            )
        if len(data) > self.page_size:
            raise PageError(
                f"data of {len(data)} bytes exceeds page size {self.page_size}"
            )
        self._count_write(page_id)
        if self.store == "arena":
            self._arenas.splice(page_id, data, self.page_size)
            self._written.add(page_id)
        else:
            self._pages[page_id] = bytes(data)

    def read_page(self, page_id: int):
        """Read own pages, or any pre-session parent page (read-only).

        Same padded-page contract as :meth:`SimulatedDisk.read_page`.
        """
        self._check_attached()
        if self.store == "arena":
            in_extent = self._in_extent(page_id)
            if not in_extent and not 0 <= page_id < self._readable_below:
                raise PageError(
                    f"{self.name}: page {page_id} is neither in the shard's "
                    f"extent nor readable from the parent snapshot "
                    f"(< {self._readable_below})"
                )
            self._count_read(page_id)
            if in_extent:
                return self._arenas.page(page_id)
            # Parent pages are immutable while the session is attached
            # (the parent is fenced and sibling writes stay shard-local),
            # so this lookup is safe from any thread.
            return self.parent._arenas.page(page_id)
        if page_id in self._pages:
            self._count_read(page_id)
            return self._pages[page_id].ljust(self.page_size, b"\x00")
        if not self._in_extent(page_id) and not 0 <= page_id < self._readable_below:
            raise PageError(
                f"{self.name}: page {page_id} is neither in the shard's "
                f"extent nor readable from the parent snapshot "
                f"(< {self._readable_below})"
            )
        self._count_read(page_id)
        return self.parent._pages.get(page_id, b"").ljust(
            self.page_size, b"\x00"
        )

    # ------------------------------------------------------------------
    # Bytes-level streaming (see SimulatedDisk for the contract)
    # ------------------------------------------------------------------
    def _readable(self, page_id: int) -> bool:
        if page_id in self._pages:
            return True
        return self._in_extent(page_id) or 0 <= page_id < self._readable_below

    def _check_run_readable(self, first_page: int, n_pages: int) -> None:
        """Range check against the snapshot watermark.

        The writable extent is always allocated before the session
        attaches, so the readable set — ``[0, readable_below)`` plus
        the extent — collapses to ``[0, readable_below)``: a run is
        readable iff it stays below the watermark.
        """
        last = first_page + n_pages - 1
        if first_page < 0 or last >= self._readable_below:
            bad = first_page if first_page < 0 else last
            raise PageError(
                f"{self.name}: page {bad} is neither in the shard's "
                f"extent nor readable from the parent snapshot "
                f"(< {self._readable_below})"
            )

    def read_run_bytes(self, first_page: int, n_pages: int):
        """Bulk read of a contiguous run, padded to whole pages.

        Shard-private extent pages take precedence over the parent
        snapshot, and every counter matches ``n_pages`` single-page
        reads exactly.  Arena mode returns a single zero-copy view when
        the run lies entirely inside the extent arena or entirely
        inside one parent arena.
        """
        if n_pages <= 0:
            return b""
        self._check_attached()
        if self.store == "arena":
            self._check_run_readable(first_page, n_pages)
            self._count_read_run(first_page, n_pages)
            return self._run_parts(first_page, n_pages)
        for page_id in range(first_page, first_page + n_pages):
            if not self._readable(page_id):
                raise PageError(
                    f"{self.name}: page {page_id} is neither in the shard's "
                    f"extent nor readable from the parent snapshot "
                    f"(< {self._readable_below})"
                )
        self._count_read_run(first_page, n_pages)
        local, parent, page_size = self._pages, self.parent._pages, self.page_size
        return b"".join(
            (
                local[p] if p in local else parent.get(p, b"")
            ).ljust(page_size, b"\x00")
            for p in range(first_page, first_page + n_pages)
        )

    def _run_parts(self, first_page: int, n_pages: int):
        """Compose a run from the extent arena and the parent snapshot.

        The extent is one contiguous range, so a run splits into at
        most three segments: before, inside, after.  Single-segment
        runs return one zero-copy view.
        """
        end = first_page + n_pages
        lo, hi = self.first_page, self.first_page + self.extent_pages
        mid_lo, mid_hi = max(first_page, lo), min(end, hi)
        if mid_lo >= mid_hi:  # entirely outside the extent
            return self.parent._arenas.run_view(first_page, n_pages)
        if first_page >= lo and end <= hi:  # entirely inside
            return self._arenas.run_view(first_page, n_pages)
        parts = []
        if first_page < mid_lo:
            parts.append(self.parent._arenas.run_view(first_page, mid_lo - first_page))
        parts.append(self._arenas.run_view(mid_lo, mid_hi - mid_lo))
        if mid_hi < end:
            parts.append(self.parent._arenas.run_view(mid_hi, end - mid_hi))
        return b"".join(parts)

    def write_run_bytes(self, first_page: int, data, n_pages: int) -> None:
        """Bulk write within the shard's extent (see SimulatedDisk)."""
        if n_pages <= 0:
            return
        self._check_attached()
        last = first_page + n_pages - 1
        if not (
            self.first_page <= first_page
            and last < self.first_page + self.extent_pages
        ):
            raise PageError(
                f"{self.name}: pages [{first_page}, {last}] outside writable "
                f"extent [{self.first_page}, "
                f"{self.first_page + self.extent_pages})"
            )
        self._check_run_payload(data, n_pages)
        self._count_write_run(first_page, n_pages)
        if self.store == "arena":
            self._arenas.splice(first_page, data, n_pages * self.page_size)
            self._written.update(range(first_page, first_page + n_pages))
            return
        self._store_run_pages(self._pages, first_page, data, n_pages)

    # ------------------------------------------------------------------
    def page_view(self, page_id: int):
        """Diagnostic full-page view (no accounting); see SimulatedDisk."""
        if self.store == "arena":
            if self._in_extent(page_id):
                return self._arenas.page(page_id)
            return self.parent.page_view(page_id)
        if page_id in self._pages:
            return self._pages[page_id].ljust(self.page_size, b"\x00")
        return self.parent._pages.get(page_id, b"").ljust(
            self.page_size, b"\x00"
        )

    def _check_attached(self) -> None:
        if not self._attached:
            raise PageError(f"{self.name} is detached; its session has ended")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DiskShard({self.name!r}, extent=[{self.first_page}, "
            f"{self.first_page + self.extent_pages}), "
            f"written={self.pages_written}, attached={self._attached})"
        )


class ShardedDisk:
    """A scoped sharding session over one :class:`SimulatedDisk`.

    ``extents`` lists each shard's writable page range as ``(first_page,
    n_pages)`` pairs; ranges must already be allocated on the parent and
    pairwise disjoint (``n_pages == 0`` marks a shard that only reads).
    While the session is attached the parent rejects direct I/O — the
    explicit lifecycle that replaces the implicit shared global device —
    and every shard operates on its private domain.  A ``read_only``
    session (all extents zero pages) instead leaves the parent live:
    the shards stream immutable pre-session pages — each still on its
    own head, with its own counters — while the consumer keeps using
    the parent (the pipelined final merge pass feeds the bulk loader
    this way).

    Usable as a context manager::

        with ShardedDisk(disk, [(first, n), ...]) as shards:
            ...  # hand one shard to each worker

    Detach reconciles deterministically in partition order: shard pages
    merge into the parent store (arena mode splices each shard's whole
    extent arena in one buffer assignment — never page by page) and
    shard stats add onto the parent counters shard by shard, then the
    parent head is parked.  The reconciled totals are therefore
    identical for any pool kind or worker count that executes the same
    per-shard plans.
    """

    def __init__(
        self,
        disk: SimulatedDisk,
        extents: "list[tuple[int, int]]",
        names: "list[str] | None" = None,
        read_only: bool = False,
    ):
        if disk.sharded:
            raise PageError("disk already has an attached ShardedDisk session")
        if read_only and any(n_pages for _, n_pages in extents):
            raise ValueError("read_only sessions take zero-page extents")
        occupied: list[tuple[int, int]] = []
        for first, n_pages in extents:
            if n_pages < 0 or first < 0:
                raise ValueError(f"invalid extent ({first}, {n_pages})")
            if first + n_pages > disk.pages_allocated:
                raise PageError(
                    f"extent ({first}, {n_pages}) exceeds allocated space "
                    f"({disk.pages_allocated} pages)"
                )
            for other_first, other_n in occupied:
                if first < other_first + other_n and other_first < first + n_pages:
                    raise PageError(
                        f"extent ({first}, {n_pages}) overlaps "
                        f"({other_first}, {other_n})"
                    )
            if n_pages:
                occupied.append((first, n_pages))
        self.disk = disk
        self.read_only = read_only
        self.shards = [
            DiskShard(
                disk,
                first,
                n_pages,
                shard_id=i,
                name=(names[i] if names else ""),
            )
            for i, (first, n_pages) in enumerate(extents)
        ]
        self._attached = True
        if not read_only:
            # Writing sessions fence the parent: all I/O goes through
            # the shards until detach.  Read-only sessions leave the
            # parent live — its pre-session pages are immutable, so a
            # consumer may keep appending (e.g. writing index leaves)
            # while the shards stream the sources.
            disk._shard_session = self

    # ------------------------------------------------------------------
    @property
    def attached(self) -> bool:
        return self._attached

    def detach(self) -> DiskStats:
        """Reconcile shards into the parent; returns the merged delta.

        Idempotent.  Reconciliation walks the shards in partition order
        (shard 0 first), merging pages and adding stats, then parks the
        parent head — so the session's effect on the parent is a pure,
        deterministic function of the per-shard plans.  An arena-store
        shard reconciles by splicing its whole extent arena into the
        parent arena — one buffer assignment, no per-page loop.
        """
        if not self._attached:
            return DiskStats()
        merged = DiskStats()
        arena = self.disk.store == "arena"
        for shard in self.shards:
            if arena:
                if shard.extent_pages:
                    self.disk._arenas.splice(
                        shard.first_page,
                        shard._arenas.arenas[0],
                        shard.extent_pages * self.disk.page_size,
                    )
                    self.disk._written.update(shard._written)
            else:
                self.disk._pages.update(shard._pages)
            if self.disk.checksums is not None and shard.checksums is not None:
                self.disk.checksums.absorb(shard.checksums)
            merged = merged + shard._stats
            if self.disk._trace is not None and shard._trace:
                self.disk._trace.extend(shard._trace)
            shard._attached = False
        self.disk._stats = self.disk._stats + merged
        if self.disk._shard_session is self:
            self.disk._shard_session = None
        self.disk.park_head()
        self._attached = False
        return merged

    def abort(self) -> DiskStats:
        """Discard the session without reconciling anything.

        Idempotent.  Shard pages, stats and traces are dropped, the
        parent is unfenced, and the parent head is left exactly where
        it was when the session attached — so an aborted attempt (a
        worker raising an injected device fault, a crashed merge)
        contributes *nothing* to the parent: a later retry or a serial
        fallback on the parent replays as if the attempt never ran.
        """
        if not self._attached:
            return DiskStats()
        for shard in self.shards:
            shard._attached = False
        if self.disk._shard_session is self:
            self.disk._shard_session = None
        self._attached = False
        return DiskStats()

    def __enter__(self) -> "list[DiskShard]":
        return self.shards

    def __exit__(self, exc_type, exc, tb) -> None:
        # A clean exit reconciles; an exception aborts, so a raise
        # mid-session can never leave the parent fenced or merge a
        # half-executed plan into its pages and counters.
        if exc_type is None:
            self.detach()
        else:
            self.abort()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardedDisk(shards={len(self.shards)}, attached={self._attached})"
        )
