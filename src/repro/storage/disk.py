"""A simulated page-addressed block device with I/O classification.

The device exposes a flat physical address space of fixed-size pages.
Every read or write is classified as *sequential* (the accessed page
immediately follows the previously accessed page, so the disk head does
not move) or *random* (anything else).  Counters live in
:class:`repro.storage.cost.DiskStats` and are converted to simulated
time by a :class:`repro.storage.cost.CostModel`.

Indexes built bottom-up allocate their pages in contiguous extents and
touch them in order, so their I/O is counted as sequential — the
contiguity property the Coconut paper establishes.  Indexes built by
top-down insertion allocate leaves at split time, scattering them across
the address space, so their I/O is counted as random.

Sharding
--------
A :class:`SimulatedDisk` is a single I/O domain: one head, one set of
counters, no concurrency.  Parallel consumers — the range-partitioned
spilled-run merge, LSM compaction — instead open a :class:`ShardedDisk`
session, which fences the parent device and hands each worker a
:class:`DiskShard`: a private I/O domain with

* a *writable extent* — a contiguous, pre-allocated page range that no
  other shard may touch;
* read-only access to every page the parent held when the session was
  attached (sources written by sibling shards are invisible — snapshot
  isolation);
* its own head position and its own :class:`DiskStats`.

Because classification depends only on a shard's *own* access sequence,
the sequential/random split of a parallel run is independent of thread
scheduling: executing the same per-shard plans inline, one shard after
another, reproduces every counter bit for bit — the *serial replay
oracle* the equivalence suite pins against.  On detach the shards are
reconciled into the parent deterministically, in partition order:
pages merge into the parent's store, stats add up shard by shard, and
the parent head is parked so the first post-session access classifies
as random no matter how the pool interleaved.
"""

from __future__ import annotations

from .cost import CostModel, DiskStats


class PageError(Exception):
    """Raised on invalid page accesses (unallocated page, oversized data)."""


class _PagedDevice:
    """Accounting and streaming helpers shared by disks and shards.

    Subclasses provide ``page_size``, ``cost_model``, ``read_page`` and
    ``write_page``; this base owns the head position (``None`` while
    parked — the next access is always random) and the live counters.
    """

    page_size: int
    cost_model: CostModel

    def _init_accounting(self) -> None:
        self._head: int | None = None
        self._stats = DiskStats()

    # ------------------------------------------------------------------
    # Classification
    # ------------------------------------------------------------------
    def _count_read(self, page_id: int) -> None:
        if self._head is not None and page_id == self._head + 1:
            self._stats.sequential_reads += 1
        else:
            self._stats.random_reads += 1
        self._stats.bytes_read += self.page_size
        self._head = page_id

    def _count_write(self, page_id: int) -> None:
        if self._head is not None and page_id == self._head + 1:
            self._stats.sequential_writes += 1
        else:
            self._stats.random_writes += 1
        self._stats.bytes_written += self.page_size
        self._head = page_id

    # ------------------------------------------------------------------
    # Bulk classification (the bytes-level fast path)
    # ------------------------------------------------------------------
    def _count_read_run(self, first_page: int, n_pages: int) -> None:
        """Classify ``n_pages`` consecutive reads in one step.

        Bit-identical to calling :meth:`_count_read` page by page: the
        first access is sequential iff it lands right after the head,
        every following access within the run is sequential by
        construction, and the head ends on the run's last page.
        """
        if self._head is not None and first_page == self._head + 1:
            self._stats.sequential_reads += n_pages
        else:
            self._stats.random_reads += 1
            self._stats.sequential_reads += n_pages - 1
        self._stats.bytes_read += n_pages * self.page_size
        self._head = first_page + n_pages - 1

    def _count_write_run(self, first_page: int, n_pages: int) -> None:
        """Write-side twin of :meth:`_count_read_run`."""
        if self._head is not None and first_page == self._head + 1:
            self._stats.sequential_writes += n_pages
        else:
            self._stats.random_writes += 1
            self._stats.sequential_writes += n_pages - 1
        self._stats.bytes_written += n_pages * self.page_size
        self._head = first_page + n_pages - 1

    # ------------------------------------------------------------------
    # Streaming convenience
    # ------------------------------------------------------------------
    def read_run(self, first_page: int, n_pages: int) -> list[bytes]:
        """Read ``n_pages`` consecutive pages (one seek, then streaming)."""
        return [self.read_page(first_page + i) for i in range(n_pages)]

    def write_run(self, first_page: int, pages: list[bytes]) -> None:
        """Write consecutive pages (one seek, then streaming)."""
        for i, data in enumerate(pages):
            self.write_page(first_page + i, data)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    @property
    def stats(self) -> DiskStats:
        """Live counters (mutating object — use :meth:`snapshot` to diff)."""
        return self._stats

    def snapshot(self) -> DiskStats:
        """An immutable copy of the current counters."""
        return self._stats.copy()

    def stats_since(self, snapshot: DiskStats) -> DiskStats:
        """Counters accumulated since ``snapshot`` was taken."""
        return self._stats - snapshot

    def io_ms_since(self, snapshot: DiskStats) -> float:
        """Simulated I/O milliseconds since ``snapshot``."""
        return self.cost_model.io_ms(self.stats_since(snapshot))

    def reset_stats(self) -> None:
        self._stats = DiskStats()

    @property
    def head_position(self) -> int | None:
        """Physical page under the head, or ``None`` while parked."""
        return self._head

    def park_head(self) -> None:
        """Park the head: the next access, wherever it lands, is random.

        Parking is idempotent and deterministic — there is no sentinel
        page id that a later access could accidentally be "adjacent" to,
        so interleaved pools can never perturb a parked device's next
        classification.
        """
        self._head = None


class SimulatedDisk(_PagedDevice):
    """A block device simulation that counts classified page I/Os.

    Parameters
    ----------
    page_size:
        Bytes per page.  All I/O accounting is in whole pages; writing
        fewer bytes than a page still transfers one page.
    cost_model:
        Converts access counts to simulated milliseconds.
    """

    def __init__(self, page_size: int = 8192, cost_model: CostModel | None = None):
        if page_size <= 0:
            raise ValueError(f"page_size must be positive, got {page_size}")
        self.page_size = page_size
        self.cost_model = cost_model or CostModel()
        self._pages: dict[int, bytes] = {}
        self._next_page = 0
        self._shard_session: "ShardedDisk | None" = None
        self._init_accounting()

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def allocate(self, n_pages: int = 1) -> int:
        """Reserve ``n_pages`` physically contiguous pages.

        Returns the id of the first page.  Allocation itself performs no
        I/O; pages contain empty bytes until written.
        """
        if n_pages <= 0:
            raise ValueError(f"n_pages must be positive, got {n_pages}")
        self._check_unsharded("allocate")
        first = self._next_page
        self._next_page += n_pages
        return first

    @property
    def pages_allocated(self) -> int:
        return self._next_page

    @property
    def pages_written(self) -> int:
        return len(self._pages)

    @property
    def sharded(self) -> bool:
        """Whether a :class:`ShardedDisk` session is currently attached."""
        return self._shard_session is not None

    # ------------------------------------------------------------------
    # I/O
    # ------------------------------------------------------------------
    def write_page(self, page_id: int, data: bytes) -> None:
        """Write one page, classifying the access by head position."""
        self._check_unsharded("write_page")
        self._check_page(page_id)
        if len(data) > self.page_size:
            raise PageError(
                f"data of {len(data)} bytes exceeds page size {self.page_size}"
            )
        self._count_write(page_id)
        self._pages[page_id] = bytes(data)

    def read_page(self, page_id: int) -> bytes:
        """Read one page, classifying the access by head position."""
        self._check_unsharded("read_page")
        self._check_page(page_id)
        self._count_read(page_id)
        return self._pages.get(page_id, b"")

    # ------------------------------------------------------------------
    # Bytes-level streaming (whole-run I/O without per-page dispatch)
    # ------------------------------------------------------------------
    def read_run_bytes(self, first_page: int, n_pages: int) -> bytes:
        """Read a physically contiguous run as one padded byte stream.

        Returns exactly ``n_pages * page_size`` bytes (short pages are
        zero-padded).  Classification, counters and the final head
        position are bit-identical to ``n_pages`` :meth:`read_page`
        calls — the accounting happens in one bulk step, which is what
        makes :meth:`repro.storage.pager.PagedFile.read_stream` cheap
        enough to scale across threads.
        """
        if n_pages <= 0:
            return b""
        self._check_unsharded("read_page")
        self._check_page(first_page)
        self._check_page(first_page + n_pages - 1)
        self._count_read_run(first_page, n_pages)
        pages, page_size = self._pages, self.page_size
        return b"".join(
            pages.get(p, b"").ljust(page_size, b"\x00")
            for p in range(first_page, first_page + n_pages)
        )

    def write_run_bytes(self, first_page: int, data, n_pages: int) -> None:
        """Write one byte stream across a physically contiguous run.

        ``data`` (bytes or memoryview) is split at page boundaries; the
        final page may be short and is stored short, exactly as the
        per-page path stores it.  Accounting is bit-identical to
        ``n_pages`` :meth:`write_page` calls.
        """
        if n_pages <= 0:
            return
        self._check_unsharded("write_page")
        self._check_page(first_page)
        self._check_page(first_page + n_pages - 1)
        page_size = self.page_size
        if len(data) > n_pages * page_size:
            raise PageError(
                f"data of {len(data)} bytes exceeds {n_pages} pages of "
                f"{page_size} bytes"
            )
        self._count_write_run(first_page, n_pages)
        view = memoryview(data)
        pages = self._pages
        for i in range(n_pages):
            pages[first_page + i] = bytes(
                view[i * page_size : (i + 1) * page_size]
            )

    def _check_page(self, page_id: int) -> None:
        if not 0 <= page_id < self._next_page:
            raise PageError(
                f"page {page_id} is not allocated (allocated: {self._next_page})"
            )

    def _check_unsharded(self, operation: str) -> None:
        if self._shard_session is not None:
            raise PageError(
                f"cannot {operation} while a ShardedDisk session is attached; "
                "route I/O through the shards and detach first"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SimulatedDisk(page_size={self.page_size}, "
            f"allocated={self._next_page}, written={len(self._pages)})"
        )


class DiskShard(_PagedDevice):
    """A private I/O domain over a reserved extent of a parent disk.

    Writes land in a shard-local page store restricted to the shard's
    writable extent; reads prefer the local store and fall back to the
    parent's pages as they stood when the session attached (snapshot
    isolation — a sibling shard's concurrent writes are invisible).
    Head position and :class:`DiskStats` are private, so every access
    classification depends only on this shard's own sequence, never on
    how a pool interleaves shards.

    Shards are created by :class:`ShardedDisk`, not directly.
    """

    def __init__(
        self,
        parent: SimulatedDisk,
        first_page: int,
        n_pages: int,
        shard_id: int,
        name: str = "",
    ):
        self.parent = parent
        self.page_size = parent.page_size
        self.cost_model = parent.cost_model
        self.first_page = first_page
        self.extent_pages = n_pages
        self.shard_id = shard_id
        self.name = name or f"shard-{shard_id}"
        self._readable_below = parent.pages_allocated
        self._next_page = first_page
        self._pages: dict[int, bytes] = {}
        self._attached = True
        self._init_accounting()

    # ------------------------------------------------------------------
    @property
    def attached(self) -> bool:
        return self._attached

    @property
    def pages_allocated(self) -> int:
        return self._next_page - self.first_page

    @property
    def pages_written(self) -> int:
        return len(self._pages)

    def allocate(self, n_pages: int = 1) -> int:
        """Carve ``n_pages`` from the shard's extent (no parent call)."""
        if n_pages <= 0:
            raise ValueError(f"n_pages must be positive, got {n_pages}")
        self._check_attached()
        if self._next_page + n_pages > self.first_page + self.extent_pages:
            raise PageError(
                f"{self.name}: extent of {self.extent_pages} pages exhausted"
            )
        first = self._next_page
        self._next_page += n_pages
        return first

    # ------------------------------------------------------------------
    def write_page(self, page_id: int, data: bytes) -> None:
        """Write within the shard's extent, classified by its own head."""
        self._check_attached()
        if not self.first_page <= page_id < self.first_page + self.extent_pages:
            raise PageError(
                f"{self.name}: page {page_id} outside writable extent "
                f"[{self.first_page}, {self.first_page + self.extent_pages})"
            )
        if len(data) > self.page_size:
            raise PageError(
                f"data of {len(data)} bytes exceeds page size {self.page_size}"
            )
        self._count_write(page_id)
        self._pages[page_id] = bytes(data)

    def read_page(self, page_id: int) -> bytes:
        """Read own pages, or any pre-session parent page (read-only)."""
        self._check_attached()
        if page_id in self._pages:
            self._count_read(page_id)
            return self._pages[page_id]
        in_extent = (
            self.first_page <= page_id < self.first_page + self.extent_pages
        )
        if not in_extent and not 0 <= page_id < self._readable_below:
            raise PageError(
                f"{self.name}: page {page_id} is neither in the shard's "
                f"extent nor readable from the parent snapshot "
                f"(< {self._readable_below})"
            )
        self._count_read(page_id)
        # Parent pages are immutable while the session is attached (the
        # parent is fenced and sibling writes stay shard-local), so this
        # lookup is safe from any thread.
        return self.parent._pages.get(page_id, b"")

    # ------------------------------------------------------------------
    # Bytes-level streaming (see SimulatedDisk for the contract)
    # ------------------------------------------------------------------
    def _readable(self, page_id: int) -> bool:
        if page_id in self._pages:
            return True
        in_extent = (
            self.first_page <= page_id < self.first_page + self.extent_pages
        )
        return in_extent or 0 <= page_id < self._readable_below

    def read_run_bytes(self, first_page: int, n_pages: int) -> bytes:
        """Bulk read of a contiguous run, padded to whole pages.

        Local shard pages take precedence over the parent snapshot page
        by page, and every counter matches ``n_pages`` single-page
        reads exactly.
        """
        if n_pages <= 0:
            return b""
        self._check_attached()
        for page_id in range(first_page, first_page + n_pages):
            if not self._readable(page_id):
                raise PageError(
                    f"{self.name}: page {page_id} is neither in the shard's "
                    f"extent nor readable from the parent snapshot "
                    f"(< {self._readable_below})"
                )
        self._count_read_run(first_page, n_pages)
        local, parent, page_size = self._pages, self.parent._pages, self.page_size
        return b"".join(
            (
                local[p] if p in local else parent.get(p, b"")
            ).ljust(page_size, b"\x00")
            for p in range(first_page, first_page + n_pages)
        )

    def write_run_bytes(self, first_page: int, data, n_pages: int) -> None:
        """Bulk write within the shard's extent (see SimulatedDisk)."""
        if n_pages <= 0:
            return
        self._check_attached()
        last = first_page + n_pages - 1
        if not (
            self.first_page <= first_page
            and last < self.first_page + self.extent_pages
        ):
            raise PageError(
                f"{self.name}: pages [{first_page}, {last}] outside writable "
                f"extent [{self.first_page}, "
                f"{self.first_page + self.extent_pages})"
            )
        page_size = self.page_size
        if len(data) > n_pages * page_size:
            raise PageError(
                f"data of {len(data)} bytes exceeds {n_pages} pages of "
                f"{page_size} bytes"
            )
        self._count_write_run(first_page, n_pages)
        view = memoryview(data)
        pages = self._pages
        for i in range(n_pages):
            pages[first_page + i] = bytes(
                view[i * page_size : (i + 1) * page_size]
            )

    def _check_attached(self) -> None:
        if not self._attached:
            raise PageError(f"{self.name} is detached; its session has ended")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DiskShard({self.name!r}, extent=[{self.first_page}, "
            f"{self.first_page + self.extent_pages}), "
            f"written={len(self._pages)}, attached={self._attached})"
        )


class ShardedDisk:
    """A scoped sharding session over one :class:`SimulatedDisk`.

    ``extents`` lists each shard's writable page range as ``(first_page,
    n_pages)`` pairs; ranges must already be allocated on the parent and
    pairwise disjoint (``n_pages == 0`` marks a shard that only reads).
    While the session is attached the parent rejects direct I/O — the
    explicit lifecycle that replaces the implicit shared global device —
    and every shard operates on its private domain.  A ``read_only``
    session (all extents zero pages) instead leaves the parent live:
    the shards stream immutable pre-session pages — each still on its
    own head, with its own counters — while the consumer keeps using
    the parent (the pipelined final merge pass feeds the bulk loader
    this way).

    Usable as a context manager::

        with ShardedDisk(disk, [(first, n), ...]) as shards:
            ...  # hand one shard to each worker

    Detach reconciles deterministically in partition order: shard pages
    merge into the parent store and shard stats add onto the parent
    counters shard by shard, then the parent head is parked.  The
    reconciled totals are therefore identical for any pool kind or
    worker count that executes the same per-shard plans.
    """

    def __init__(
        self,
        disk: SimulatedDisk,
        extents: "list[tuple[int, int]]",
        names: "list[str] | None" = None,
        read_only: bool = False,
    ):
        if disk.sharded:
            raise PageError("disk already has an attached ShardedDisk session")
        if read_only and any(n_pages for _, n_pages in extents):
            raise ValueError("read_only sessions take zero-page extents")
        occupied: list[tuple[int, int]] = []
        for first, n_pages in extents:
            if n_pages < 0 or first < 0:
                raise ValueError(f"invalid extent ({first}, {n_pages})")
            if first + n_pages > disk.pages_allocated:
                raise PageError(
                    f"extent ({first}, {n_pages}) exceeds allocated space "
                    f"({disk.pages_allocated} pages)"
                )
            for other_first, other_n in occupied:
                if first < other_first + other_n and other_first < first + n_pages:
                    raise PageError(
                        f"extent ({first}, {n_pages}) overlaps "
                        f"({other_first}, {other_n})"
                    )
            if n_pages:
                occupied.append((first, n_pages))
        self.disk = disk
        self.read_only = read_only
        self.shards = [
            DiskShard(
                disk,
                first,
                n_pages,
                shard_id=i,
                name=(names[i] if names else ""),
            )
            for i, (first, n_pages) in enumerate(extents)
        ]
        self._attached = True
        if not read_only:
            # Writing sessions fence the parent: all I/O goes through
            # the shards until detach.  Read-only sessions leave the
            # parent live — its pre-session pages are immutable, so a
            # consumer may keep appending (e.g. writing index leaves)
            # while the shards stream the sources.
            disk._shard_session = self

    # ------------------------------------------------------------------
    @property
    def attached(self) -> bool:
        return self._attached

    def detach(self) -> DiskStats:
        """Reconcile shards into the parent; returns the merged delta.

        Idempotent.  Reconciliation walks the shards in partition order
        (shard 0 first), merging pages and adding stats, then parks the
        parent head — so the session's effect on the parent is a pure,
        deterministic function of the per-shard plans.
        """
        if not self._attached:
            return DiskStats()
        merged = DiskStats()
        for shard in self.shards:
            self.disk._pages.update(shard._pages)
            merged = merged + shard._stats
            shard._attached = False
        self.disk._stats = self.disk._stats + merged
        if self.disk._shard_session is self:
            self.disk._shard_session = None
        self.disk.park_head()
        self._attached = False
        return merged

    def __enter__(self) -> "list[DiskShard]":
        return self.shards

    def __exit__(self, *exc_info) -> None:
        self.detach()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardedDisk(shards={len(self.shards)}, attached={self._attached})"
        )
